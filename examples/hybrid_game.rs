//! A game-server deployment (paper §6 "Offline and Interactive"): one
//! batch-capped GPU runs the background village simulation while a
//! player chats with characters. Compare what the player feels under
//! plain FIFO serving versus the lane-aware admission with reserved
//! batch slots.
//!
//! ```text
//! cargo run --release --example hybrid_game
//! ```

use std::sync::Arc;

use ai_metropolis::core::exec::hybrid::{run_hybrid_sim, InteractiveLoad};
use ai_metropolis::core::exec::sim::SimConfig;
use ai_metropolis::core::workload::Workload;
use ai_metropolis::llm::{presets, ServerConfig, SimServer};
use ai_metropolis::prelude::*;
use ai_metropolis::store::Db;
use ai_metropolis::trace::gen;

fn main() {
    println!("Generating the lunch rush for a 50-agent town…");
    let trace = gen::generate(&gen::GenConfig {
        villes: 2,
        agents_per_ville: 25,
        seed: 42,
        window_start: ai_metropolis::world::clock_to_step(12, 0),
        window_len: 360,
    });
    let meta = trace.meta();
    let initial: Vec<Point> = (0..meta.num_agents)
        .map(|a| trace.initial_position(a))
        .collect();

    // The player sends a chat turn every ~2 simulated seconds.
    let load = InteractiveLoad::chat(2_000_000, 300, 7);
    println!(
        "Player chat: {} turns, ~{}s apart, {} prompt / {} reply tokens\n",
        load.count,
        load.mean_interarrival_us / 1_000_000,
        load.input_tokens,
        load.output_tokens
    );

    let preset = presets::l4_game_server();
    println!(
        "Game server: 1× {} (batch capped at {} to bound token latency)\n",
        preset.name, preset.max_running
    );

    let arms: [(&str, ServerConfig); 3] = [
        ("fifo", ServerConfig::from_preset(preset.clone(), 1, false)),
        (
            "step-priority",
            ServerConfig::from_preset(preset.clone(), 1, true),
        ),
        (
            "lane + 3-slot reserve",
            ServerConfig::from_preset(preset.clone(), 1, true).with_interactive_lane(3),
        ),
    ];

    println!(
        "{:>22} | {:>9} | {:>9} | {:>9} | {:>12}",
        "serving policy", "p50 (ms)", "p95 (ms)", "max (ms)", "sim time (s)"
    );
    for (name, server_cfg) in arms {
        let mut sched = Scheduler::new(
            Arc::new(GridSpace::new(meta.map_width, meta.map_height)),
            RuleParams::new(meta.radius_p, meta.max_vel),
            DependencyPolicy::Spatiotemporal,
            Arc::new(Db::new()),
            &initial,
            Workload::target_step(&trace),
        )
        .expect("scheduler");
        let mut server = SimServer::new(server_cfg);
        let (report, chat) = run_hybrid_sim(
            &mut sched,
            &trace,
            &mut server,
            &load,
            &SimConfig::default(),
        )
        .expect("hybrid run");
        println!(
            "{:>22} | {:>9.0} | {:>9.0} | {:>9.0} | {:>12.1}",
            name,
            chat.p50_us as f64 / 1e3,
            chat.p95_us as f64 / 1e3,
            chat.max_us as f64 / 1e3,
            report.makespan.as_secs_f64()
        );
    }

    println!("\nSame GPU, same village, same chat stream: admission policy alone");
    println!("decides whether the player waits behind the town's background");
    println!("planning. Reserved batch slots are the §6 hybrid deployment: the");
    println!("interactive part gets latency, the simulation keeps its throughput.");
}
