//! Quickstart: schedule a small agent society out of order and measure the
//! speedup over lock-step execution.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ai_metropolis::llm::{presets, ServerConfig};
use ai_metropolis::prelude::*;

fn main() {
    // 1. A workload: one simulated working hour of a 25-agent SmallVille,
    //    synthesized by self-play (the paper replays recorded traces; the
    //    generator produces statistically matching ones).
    let trace = ai_metropolis::trace::gen::generate(&GenConfig {
        villes: 1,
        agents_per_ville: 25,
        seed: 7,
        window_start: ai_metropolis::trace::gen::hour(9),
        window_len: 360, // one hour of 10-second steps
    });
    println!(
        "workload: {} agents, {} steps, {} LLM calls",
        trace.meta().num_agents,
        trace.meta().num_steps,
        trace.calls().len()
    );

    // 2. A serving deployment: one simulated L4 GPU running Llama-3-8B.
    let server = ServerConfig::from_preset(presets::l4_llama3_8b(), 1, true);

    // 3. Run the same workload under lock-step and out-of-order policies.
    let mut results = Vec::new();
    for policy in [
        DependencyPolicy::GlobalSync,
        DependencyPolicy::Spatiotemporal,
    ] {
        let engine = Engine::builder(GridSpace::new(
            trace.meta().map_width,
            trace.meta().map_height,
        ))
        .rules(RuleParams::genagent())
        .policy(policy)
        .server(server.clone())
        .build();
        let report = engine.run_replay(&trace).expect("replay");
        println!(
            "{:>14}: completion {:>8.1}s | parallelism {:>5.2} | gpu util {:>5.1}%",
            report.mode,
            report.makespan.as_secs_f64(),
            report.achieved_parallelism,
            report.gpu_utilization * 100.0
        );
        results.push(report);
    }

    // 4. The paper's headline: out-of-order wins by removing false
    //    dependencies between distant agents.
    let speedup = results[1].speedup_over(&results[0]);
    println!("\nAI Metropolis speedup over parallel-sync: {speedup:.2}x");
    assert!(
        speedup >= 1.0,
        "out-of-order must never lose to the barrier"
    );
}
