//! A **resumable long-horizon run** with bounded memory: a 100-agent
//! village is driven for 120 out-of-order steps on the threaded runtime
//! while the checkpoint subsystem (a) snapshots the full run state —
//! store image, dependency graph, world — every 30 committed steps, and
//! (b) evicts dependency-graph history below the deepest legal rollback
//! at each checkpoint, keeping the resident store O(agents × window)
//! instead of O(agents × horizon).
//!
//! The example then *interrupts itself*: it throws the live run away,
//! reloads the last mid-run snapshot from disk, resumes, and asserts the
//! resumed world is identical, field for field, to the uninterrupted
//! one — the paper's outcome-equivalence bar applied to crash recovery.
//!
//! ```text
//! cargo run --release --example long_horizon
//! trace_tool snapshot target/long_horizon/ckpt-*.aimsnap --validate
//! ```
//!
//! The checkpoint files are left under `target/long_horizon/` so the
//! `trace_tool snapshot --validate` smoke (run in CI) can inspect them.

use std::sync::Arc;

use ai_metropolis::core::checkpoint::{self, SECTION_WORLD};
use ai_metropolis::core::exec::threaded::run_threaded_with_checkpoints;
use ai_metropolis::llm::InstantBackend;
use ai_metropolis::prelude::*;
use ai_metropolis::store::{Checkpointer, Db, Snapshot};
use ai_metropolis::world::program::VillageProgram;
use ai_metropolis::world::{clock_to_step, Village};

const VILLES: u32 = 4; // 4 × 25 = 100 agents
const STEPS: u32 = 120;
const EVERY: u32 = 30;
const WORKERS: usize = 8;

fn main() {
    let start = clock_to_step(8, 0);
    let dir = "target/long_horizon";
    std::fs::remove_dir_all(dir).ok();

    println!("Warming a {}-agent town to 8am…", VILLES * 25);
    let mut village = Village::generate(&VillageConfig {
        villes: VILLES,
        agents_per_ville: 25,
        seed: 7,
    });
    village.run_lockstep(0, start, |_, _, _, _| {});
    let space = village.space();

    // History recording ON: every committed (agent, step) also writes an
    // immutable history record, the raw material of rollback auditing —
    // and the thing that would grow with the horizon if never evicted.
    let program = Arc::new(VillageProgram::with_step_offset(village, start));
    let initial = program.initial_positions();
    let db = Arc::new(Db::new());
    let mut sched = Scheduler::new_with_history(
        Arc::new(space),
        RuleParams::genagent(),
        DependencyPolicy::Spatiotemporal,
        Arc::clone(&db),
        &initial,
        Step(STEPS),
        true,
    )
    .expect("scheduler");

    let mut ckpt = Checkpointer::new(dir, EVERY, 3);
    let mut log: Vec<(u32, u64, u64, u64)> = Vec::new(); // (step, evicted, resident_hist, db_keys)
    {
        let world_src = Arc::clone(&program);
        let db = Arc::clone(&db);
        let ckpt = &mut ckpt;
        let log = &mut log;
        let mut hook_fn = move |sched: &mut Scheduler<GridSpace>| -> Result<(), EngineError> {
            let evicted = sched.evict_history()?;
            let committed = sched.graph().min_step().0;
            let world = world_src.capture_state();
            let builder = checkpoint::snapshot_run(sched, start, Some(world));
            ckpt.write(committed, &builder)?;
            log.push((
                committed,
                evicted,
                sched.graph().history_records(),
                db.stats().keys as u64,
            ));
            Ok(())
        };
        run_threaded_with_checkpoints(
            &mut sched,
            Arc::clone(&program),
            Arc::new(InstantBackend::new()),
            ThreadedConfig {
                workers: WORKERS,
                priority_enabled: true,
            },
            Some(CheckpointHook {
                every_steps: EVERY,
                f: &mut hook_fn,
            }),
        )
        .expect("checkpointed run");
    }
    assert!(sched.is_done());
    assert!(sched.graph().validate().is_ok());

    let agents = initial.len() as u64;
    println!("\ncheckpoint | evicted | resident history | store keys | no-evict history would be");
    for (step, evicted, resident, keys) in &log {
        println!(
            "  step {step:>4} | {evicted:>7} | {resident:>16} | {keys:>10} | {}",
            agents * (*step as u64 + 1)
        );
    }

    // Bounded memory: resident history never exceeds agents × window,
    // where the window is the checkpoint cadence plus the step skew —
    // while an eviction-free run would retain agents × horizon records.
    let max_resident = log
        .iter()
        .map(|(_, _, r, _)| *r)
        .max()
        .expect("checkpoints ran");
    let window_bound = agents * (EVERY as u64 + sched.stats().max_step_skew as u64 + 1);
    assert!(
        max_resident <= window_bound,
        "history must stay within the window bound: {max_resident} > {window_bound}"
    );
    assert!(
        ckpt.written() >= (STEPS / EVERY - 1) as u64,
        "expected mid-run checkpoints"
    );

    let oracle = Arc::try_unwrap(program)
        .expect("workers joined")
        .into_village();

    // --- The interruption: resume from the last snapshot file ----------
    let snap_path = ckpt.last_path().expect("checkpoints written").to_path_buf();
    println!("\nInterrupting: resuming from {}…", snap_path.display());
    let snap = Snapshot::load(&snap_path).expect("snapshot loads");
    let (meta, mut resumed_sched) = checkpoint::resume(&snap, None, None).expect("resume");
    println!(
        "  restored {} agents at steps {}..{} ({} store records)",
        meta.num_agents,
        meta.min_step,
        meta.max_step,
        snap.info().db_records
    );
    let village = Village::restore(snap.section(SECTION_WORLD).expect("world section"))
        .expect("village restores");
    let program = Arc::new(VillageProgram::with_step_offset(village, meta.step_offset));
    run_threaded(
        &mut resumed_sched,
        Arc::clone(&program),
        Arc::new(InstantBackend::new()),
        ThreadedConfig {
            workers: WORKERS,
            priority_enabled: true,
        },
    )
    .expect("resumed run");
    assert!(resumed_sched.is_done());
    let resumed = Arc::try_unwrap(program)
        .expect("workers joined")
        .into_village();

    // The acceptance bar: interrupted-and-resumed equals uninterrupted,
    // world for world.
    assert_eq!(
        oracle.positions(),
        resumed.positions(),
        "positions diverged"
    );
    assert_eq!(oracle.events(), resumed.events(), "event logs diverged");
    for agent in 0..oracle.num_agents() as u32 {
        assert_eq!(
            oracle.conversation_cooldown(agent),
            resumed.conversation_cooldown(agent),
            "agent {agent} conversation state diverged"
        );
    }
    assert!(
        !oracle.events().is_empty(),
        "a 100-agent morning must produce events"
    );

    println!(
        "\nResumed run equals the uninterrupted one: {} events, {} agents, \
         history bounded at {} records (vs {} unevicted).",
        oracle.events().len(),
        oracle.num_agents(),
        max_resident,
        agents * (STEPS as u64 + 1),
    );
    println!("Snapshots retained under {dir}/ for `trace_tool snapshot --validate`.");
}
