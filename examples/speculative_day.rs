//! Speculative execution (paper §6) on the busy SmallVille lunch hour:
//! run the conservative engine, then let agents run ahead of the §3.2
//! blocking rule with race detection and rollback, and inspect what the
//! gamble buys — and what it wastes.
//!
//! ```text
//! cargo run --release --example speculative_day
//! ```

use std::sync::Arc;

use ai_metropolis::core::exec::sim::{run_sim, SimConfig};
use ai_metropolis::core::spec::{run_spec_sim, SpecParams, SpecScheduler};
use ai_metropolis::core::workload::Workload;
use ai_metropolis::llm::{presets, ServerConfig, SimServer};
use ai_metropolis::prelude::*;
use ai_metropolis::store::Db;
use ai_metropolis::trace::{gen, oracle};

fn main() {
    println!("Generating the busy hour (12pm-1pm) of 25-agent SmallVille…\n");
    let trace = gen::generate(&GenConfig::busy_hour(1, 42));
    let meta = trace.meta();
    let initial: Vec<Point> = (0..meta.num_agents)
        .map(|a| trace.initial_position(a))
        .collect();
    let space = || Arc::new(GridSpace::new(meta.map_width, meta.map_height));
    let params = RuleParams::new(meta.radius_p, meta.max_vel);
    let server = ServerConfig::from_preset(presets::l4_llama3_8b(), 4, true);

    // Conservative AI Metropolis (§3.2 rules, never rolls back).
    let mut sched = Scheduler::new(
        space(),
        params,
        DependencyPolicy::Spatiotemporal,
        Arc::new(Db::new()),
        &initial,
        Workload::target_step(&trace),
    )
    .expect("scheduler");
    let mut llm = SimServer::new(server.clone());
    let conservative =
        run_sim(&mut sched, &trace, &mut llm, &SimConfig::default()).expect("replay");

    // Ground-truth dependencies: the upper bound speculation chases.
    let graph = Arc::new(oracle::mine(&trace));
    let mut sched = Scheduler::new(
        space(),
        params,
        DependencyPolicy::Oracle(graph),
        Arc::new(Db::new()),
        &initial,
        Workload::target_step(&trace),
    )
    .expect("scheduler");
    let mut llm = SimServer::new(server.clone());
    let oracle_run = run_sim(&mut sched, &trace, &mut llm, &SimConfig::default()).expect("replay");

    println!(
        "conservative metropolis: {:>8.1}s  (parallelism {:.2})",
        conservative.makespan.as_secs_f64(),
        conservative.achieved_parallelism
    );
    println!(
        "oracle upper bound     : {:>8.1}s  (parallelism {:.2})\n",
        oracle_run.makespan.as_secs_f64(),
        oracle_run.achieved_parallelism
    );

    println!("Letting blocked agents run ahead, with race detection + rollback:\n");
    println!(
        "{:>9} | {:>9} | {:>11} | {:>9} | {:>8} | {:>8}",
        "runahead", "time (s)", "% of oracle", "squashed", "poisoned", "waste %"
    );
    for budget in [1u32, 2, 4, 8, 16] {
        let mut sched = SpecScheduler::new(
            space(),
            params,
            SpecParams::new(budget),
            Arc::new(Db::new()),
            &initial,
            Workload::target_step(&trace),
        )
        .expect("spec scheduler");
        let mut llm = SimServer::new(server.clone());
        let r = run_spec_sim(&mut sched, &trace, &mut llm, &SimConfig::default())
            .expect("speculative replay");
        let sr = r.spec.as_ref().expect("spec report");
        println!(
            "{:>9} | {:>9.1} | {:>10.1}% | {:>9} | {:>8} | {:>7.2}%",
            budget,
            r.makespan.as_secs_f64(),
            100.0 * oracle_run.makespan.as_secs_f64() / r.makespan.as_secs_f64(),
            sr.stats.squashed_steps,
            sr.stats.poisoned_clusters,
            100.0 * sr.waste_fraction(r.total_input_tokens, r.total_output_tokens),
        );
    }

    println!("\nSpeculation closes part of the conservative-to-oracle gap by");
    println!("betting that lagging neighbors will not actually walk into an");
    println!("agent's perception radius; lost bets are squashed and re-run —");
    println!("the extra LLM calls above are the price of those lost bets (§6).");
}
