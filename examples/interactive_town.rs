//! The threaded runtime, live: Algorithm 3 with real worker threads, one
//! thread per agent, and a wall-clock-paced simulated serving engine.
//!
//! This is the deployment shape the paper sketches for interactive use
//! (§6): the engine schedules a *live* village (no pre-recorded trace),
//! workers block on LLM calls against a shared continuous-batching
//! backend, and the world commits cluster by cluster.
//!
//! ```text
//! cargo run --release --example interactive_town
//! ```

use std::sync::Arc;
use std::time::Instant;

use ai_metropolis::core::exec::threaded::{run_threaded, ThreadedConfig};
use ai_metropolis::llm::{presets, LlmBackend, RealtimeSimBackend, ServerConfig};
use ai_metropolis::prelude::*;
use ai_metropolis::store::Db;
use ai_metropolis::world::program::VillageProgram;

fn main() {
    // A 10-agent village at 8am (agents are awake and walking to work).
    let mut village = Village::generate(&VillageConfig {
        villes: 1,
        agents_per_ville: 10,
        seed: 11,
    });
    let morning = ai_metropolis::world::clock_to_step(8, 0);
    village.run_lockstep(0, morning, |_, _, _, _| {});
    println!("village warmed up to 08:00; running 20 live steps out of order…");

    // The scheduler counts steps from 0; the program maps them onto the
    // warmed-up world (absolute step = morning + cluster step).
    let program = Arc::new(VillageProgram::with_step_offset(village, morning));
    let initial = program.initial_positions();
    let mut scheduler = Scheduler::new(
        Arc::new(GridSpace::new(100, 140)),
        RuleParams::genagent(),
        DependencyPolicy::Spatiotemporal,
        Arc::new(Db::new()),
        &initial,
        Step(20),
    )
    .expect("scheduler");

    // The backend: a simulated 2-replica tiny deployment running 20 000x
    // faster than real time, shared by all worker threads. Swap in your
    // own `LlmBackend` impl to talk to a real serving engine.
    let backend: Arc<dyn LlmBackend> = Arc::new(RealtimeSimBackend::new(
        ServerConfig::from_preset(presets::tiny_test(), 2, true),
        20_000.0,
    ));
    println!("backend: {}", backend.describe());

    let wall = Instant::now();
    let report = run_threaded(
        &mut scheduler,
        Arc::clone(&program),
        backend,
        ThreadedConfig {
            workers: 4,
            priority_enabled: true,
        },
    )
    .expect("threaded run");
    println!(
        "executed {} clusters / {} agent-steps in {:.2}s wall time",
        report.clusters,
        report.agent_steps,
        wall.elapsed().as_secs_f64()
    );
    println!("llm calls issued live: {}", program.calls_made());
    println!("max step skew: {} steps", scheduler.stats().max_step_skew);
    assert!(scheduler.is_done());
    assert!(
        scheduler.graph().validate().is_ok(),
        "causality held throughout"
    );

    let village = Arc::try_unwrap(program)
        .expect("workers joined")
        .into_village();
    println!("world events committed: {}", village.events().len());
    println!("\nThe same scheduler that replays benchmarks drives live worlds:");
    println!("plug an HTTP backend into `LlmBackend` and this becomes a game loop.");
}
