//! Non-Euclidean spaces: out-of-order scheduling over a *social network*
//! (paper §6: "our derivations … can extend to non-Euclidean spaces, such
//! as social networks").
//!
//! Agents live on graph nodes; "perception" is reading posts within
//! `radius_p` hops, "movement" is hopping one edge per step. The same
//! coupling/blocking rules apply with hop distance, so two communities
//! joined by a long bridge can simulate far apart in time.
//!
//! ```text
//! cargo run --release --example social_network
//! ```

use ai_metropolis::core::workload::CallSpec;
use ai_metropolis::core::{AgentId, Step};
use ai_metropolis::llm::{presets, CallKind, ServerConfig};
use ai_metropolis::prelude::*;

/// Two 6-node cliques joined by a 10-hop chain of relay nodes.
fn community_graph() -> SocialSpace {
    let mut edges = Vec::new();
    // Clique A: nodes 0..6, clique B: nodes 6..12.
    for c in 0..2u32 {
        let base = c * 6;
        for i in 0..6 {
            for j in (i + 1)..6 {
                edges.push((base + i, base + j));
            }
        }
    }
    // Bridge: 12..21 chained, attached to node 0 and node 6.
    edges.push((0, 12));
    for i in 12..20 {
        edges.push((i, i + 1));
    }
    edges.push((20, 6));
    SocialSpace::new(21, &edges)
}

/// Each community's members post and react within their clique; one agent
/// per community is "influential" (heavier chains).
struct FeedWorkload;

impl Workload<NodeId> for FeedWorkload {
    fn num_agents(&self) -> usize {
        8 // four per community
    }
    fn target_step(&self) -> Step {
        Step(30)
    }
    fn initial_pos(&self, agent: AgentId) -> NodeId {
        // Agents 0-3 on clique A nodes, 4-7 on clique B nodes.
        let community = agent.0 / 4;
        NodeId(community * 6 + (agent.0 % 4))
    }
    fn calls(&self, agent: AgentId, step: Step) -> Vec<CallSpec> {
        // Communities are active in alternating 3-step phases (different
        // timezones, say): during its phase a community's influencer
        // writes a long thread and members react; off-phase it is quiet.
        let community = agent.0 / 4;
        let active = (step.0 / 3) % 2 == community;
        if !active {
            return Vec::new();
        }
        if agent.0 % 4 == 0 {
            vec![
                CallSpec::new(900, 60, CallKind::Plan),
                CallSpec::new(700, 40, CallKind::Reflect),
                CallSpec::new(500, 30, CallKind::Summarize),
            ]
        } else {
            vec![CallSpec::new(300, 10, CallKind::Perceive)]
        }
    }
    fn pos_after(&self, agent: AgentId, _step: Step) -> NodeId {
        self.initial_pos(agent) // members stay in their community
    }
}

fn main() {
    let space = community_graph();
    println!(
        "social graph: 2 cliques of 6, bridged by a 10-hop chain; \
         hop distance between communities = {}",
        space.dist(NodeId(0), NodeId(6))
    );

    // radius_p = 2 hops of feed visibility, max_vel = 1 hop/step.
    let run = |policy: DependencyPolicy| {
        Engine::builder(community_graph())
            .rules(RuleParams::new(2, 1))
            .policy(policy)
            .server(ServerConfig::from_preset(presets::l4_llama3_8b(), 1, true))
            .build()
            .run_replay(&FeedWorkload)
            .expect("replay")
    };
    let sync = run(DependencyPolicy::GlobalSync);
    let ooo = run(DependencyPolicy::Spatiotemporal);
    println!(
        "parallel-sync: {:.1}s (parallelism {:.2})",
        sync.makespan.as_secs_f64(),
        sync.achieved_parallelism
    );
    println!(
        "   metropolis: {:.1}s (parallelism {:.2}, max skew {} steps)",
        ooo.makespan.as_secs_f64(),
        ooo.achieved_parallelism,
        ooo.sched.max_step_skew
    );
    println!("      speedup: {:.2}x", ooo.speedup_over(&sync));
    println!(
        "\nThe 11-hop bridge means community B never observes community A's\n\
         fresh posts within a step, so their simulated timelines decouple —\n\
         the same rule algebra as the grid, in a different metric space."
    );
    assert!(ooo.makespan <= sync.makespan);
    assert!(
        ooo.sched.max_step_skew > 0,
        "communities should have drifted in step"
    );
}
