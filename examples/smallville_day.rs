//! A full simulated day in SmallVille: generate the workload, inspect its
//! diurnal shape, and compare every scheduling mode on a 4-GPU deployment.
//!
//! ```text
//! cargo run --release --example smallville_day
//! ```

use std::sync::Arc;

use ai_metropolis::core::exec::sim::{run_sim, SimConfig};
use ai_metropolis::core::workload::Workload;
use ai_metropolis::llm::{presets, ServerConfig, SimServer};
use ai_metropolis::prelude::*;
use ai_metropolis::store::Db;
use ai_metropolis::trace::{gen, oracle, stats};

fn main() {
    println!("Generating one simulated day of 25-agent SmallVille…");
    let trace = gen::generate(&GenConfig::full_day(42));
    let s = stats::compute(&trace);
    println!(
        "{} LLM calls | mean {:.0} input / {:.0} output tokens | {:.2} deps/agent\n",
        s.total_calls, s.mean_input_tokens, s.mean_output_tokens, s.avg_dependencies
    );
    println!("Calls per simulated hour (the paper's Fig. 4c):");
    println!("{}", stats::render_hourly(&s, 46));

    let preset = presets::l4_llama3_8b();
    let server = ServerConfig::from_preset(preset.clone(), 4, true);
    let graph = Arc::new(oracle::mine(&trace));
    let meta = trace.meta();
    let initial: Vec<Point> = (0..meta.num_agents)
        .map(|a| trace.initial_position(a))
        .collect();

    println!("Replaying the day on 4 simulated L4 GPUs…\n");
    let mut baseline = None;
    for (name, policy, sim) in [
        (
            "single-thread",
            DependencyPolicy::GlobalSync,
            SimConfig::single_thread(),
        ),
        (
            "parallel-sync",
            DependencyPolicy::GlobalSync,
            SimConfig::default(),
        ),
        (
            "metropolis",
            DependencyPolicy::Spatiotemporal,
            SimConfig::default(),
        ),
        (
            "oracle",
            DependencyPolicy::Oracle(Arc::clone(&graph)),
            SimConfig::default(),
        ),
    ] {
        let mut sched = Scheduler::new(
            Arc::new(GridSpace::new(meta.map_width, meta.map_height)),
            RuleParams::new(meta.radius_p, meta.max_vel),
            policy,
            Arc::new(Db::new()),
            &initial,
            Workload::target_step(&trace),
        )
        .expect("scheduler");
        let mut llm = SimServer::new(server.clone());
        let report = run_sim(&mut sched, &trace, &mut llm, &sim).expect("replay");
        let vs = baseline
            .get_or_insert(report.makespan.as_secs_f64())
            .to_owned()
            / report.makespan.as_secs_f64();
        println!(
            "{name:>14}: {:>9.1}s ({vs:4.2}x vs single-thread) | parallelism {:>5.2} | skew {:>3} steps",
            report.makespan.as_secs_f64(),
            report.achieved_parallelism,
            report.sched.max_step_skew
        );
    }
    println!("\nLower completion time with identical simulation outcome — that");
    println!("is the whole point of out-of-order execution (paper §3).");
}
