//! A district city morning on the sharded engine, end to end: generate
//! an OpenCity-style city (template-pool personas, road-grid districts),
//! drive it out of order on the threaded runtime over a
//! `ShardedDepGraph` — fully **observed** by the telemetry subsystem —
//! take a **sharded checkpoint** mid-run machinery (per-shard
//! membership sections in the `AIMSNAP` stream), and prove the
//! checkpoint resumes to an identical tracker.
//!
//! ```text
//! cargo run --release --example city_day
//! ```
//!
//! The checkpoint is left at `target/city_day/ckpt-city.aimsnap` so
//! `trace_tool snapshot <file> --validate` can inspect it (CI does),
//! and the observed run's spans at `target/city_day/city.telemetry` /
//! `city.trace.json` for `trace_tool timeline` / Perfetto.

use std::sync::Arc;

use ai_metropolis::core::checkpoint;
use ai_metropolis::core::exec::threaded::{run_threaded_observed, ThreadedConfig};
use ai_metropolis::core::shard::ShardedDepGraph;
use ai_metropolis::core::telemetry::Telemetry;
use ai_metropolis::llm::InstantBackend;
use ai_metropolis::prelude::*;
use ai_metropolis::store::{Db, Snapshot};
use ai_metropolis::world::city::{self, CityConfig, RoadGraph};
use ai_metropolis::world::clock_to_step;
use ai_metropolis::world::program::VillageProgram;

fn main() {
    let cfg = CityConfig {
        districts_x: 3,
        districts_y: 2,
        agents: 942,
        seed: 77,
    };
    let shards = 6usize;
    let steps = 30u32;
    let start = clock_to_step(8, 0);

    let village = city::generate(&cfg);
    let map = village.map().clone();
    println!(
        "city: {} agents, {}×{} districts ({}×{} tiles), {} areas",
        village.num_agents(),
        cfg.districts_x,
        cfg.districts_y,
        map.width(),
        map.height(),
        map.areas().len()
    );

    // The district transit graph, built from real street-grid A* runs.
    let roads = RoadGraph::build(&map, &cfg);
    let cross_town = roads
        .transit_len(0, cfg.num_districts() - 1)
        .expect("city is connected");
    println!(
        "roads: {} district nodes, {} edges; corner-to-corner transit {} steps",
        roads.nodes.len(),
        roads.edges.len(),
        cross_town
    );
    assert!(cross_town > 0, "distinct districts must be apart");

    // Drive a workday morning out of order on a sharded tracker.
    let space = village.space();
    let program = Arc::new(VillageProgram::with_step_offset(village, start));
    let initial = program.initial_positions();
    let graph = ShardedDepGraph::new(
        Arc::new(space),
        RuleParams::genagent(),
        Arc::new(Db::new()),
        &initial,
        Arc::new(cfg.shard_map(shards)),
    )
    .expect("sharded graph");
    let mut sched = Scheduler::from_graph(graph, DependencyPolicy::Spatiotemporal, Step(steps));
    let report = run_threaded_observed(
        &mut sched,
        Arc::clone(&program),
        Arc::new(InstantBackend::new()),
        ThreadedConfig {
            workers: 8,
            priority_enabled: true,
        },
        None,
        Some(Arc::new(Telemetry::new())),
    )
    .expect("threaded run");
    assert!(sched.is_done());
    assert!(sched.graph().validate().is_ok(), "causality violated");
    sched.graph().check_invariants();
    let stats = sched.stats();
    println!(
        "run: {} clusters, {} agent-steps, {} LLM calls, max cluster {}, skew {}, {:.0} ms wall",
        report.clusters,
        report.agent_steps,
        program.calls_made(),
        stats.max_cluster_size,
        stats.max_step_skew,
        report.wall.as_secs_f64() * 1e3
    );
    print!("{report}");

    // The observed run's unified telemetry: save the span log and a
    // Perfetto-loadable trace next to the checkpoint.
    let rt = report.telemetry.as_ref().expect("run was observed");
    assert!(
        rt.decomposition.coverage() >= 0.95,
        "stall decomposition must cover the budget"
    );
    let dir = std::path::Path::new("target/city_day");
    std::fs::create_dir_all(dir).expect("mkdir");
    ai_metropolis::trace::telemetry::save(rt, &dir.join("city.telemetry")).expect("telemetry");
    let mut json = std::io::BufWriter::new(
        std::fs::File::create(dir.join("city.trace.json")).expect("trace.json"),
    );
    ai_metropolis::trace::telemetry::write_chrome_trace(rt, &mut json).expect("chrome trace");
    println!(
        "telemetry: {} spans → target/city_day/city.telemetry + city.trace.json",
        rt.spans.len()
    );
    for shard in 0..shards {
        print!(
            "{}shard {shard}: {} agents",
            if shard == 0 { "shards: " } else { " | " },
            sched.graph().members(shard).len()
        );
    }
    println!();

    // Sharded checkpoint: write, reload, resume, compare edge-for-edge.
    let path = dir.join("ckpt-city.aimsnap");
    checkpoint::snapshot_sharded_run(&sched, start, None)
        .save(&path)
        .expect("snapshot saved");
    let snap = Snapshot::load(&path).expect("snapshot loads");
    let shard_sections = snap.sections_with_prefix("shard/").count();
    assert_eq!(shard_sections, shards, "one membership section per shard");
    let (meta, resumed) = checkpoint::resume_sharded(&snap, None, None).expect("resume");
    assert_eq!(meta.shards as usize, shards);
    assert_eq!(resumed.graph().snapshot(), sched.graph().snapshot());
    for shard in 0..shards {
        assert_eq!(resumed.graph().members(shard), sched.graph().members(shard));
    }
    println!(
        "checkpoint: {} ({} shard sections) resumes to an identical tracker",
        path.display(),
        shard_sections
    );

    let village = Arc::try_unwrap(program)
        .expect("workers joined")
        .into_village();
    assert!(
        !village.events().is_empty(),
        "a city morning must produce events"
    );
    println!(
        "world: {} events committed; the city lives a morning out of order",
        village.events().len()
    );
}
