//! A **heterogeneous serving fleet** drives a live village: one
//! virtual-time simulated engine (the `test/tiny` preset behind
//! `RealtimeSimBackend`) and one latency-replay replica
//! (`ReplayBackend`), behind each shipped routing policy in turn.
//!
//! While the village simulates its lunch hour on the threaded runtime, a
//! "player" thread chats with the town through the *same* fleet on the
//! interactive lane. Per-replica metrics after each run show what the
//! policy did with that mix — and the example asserts that **every
//! replica served traffic under every policy**, which is the whole point
//! of a fleet: no capacity stranded, whatever the routing rule.
//!
//! ```text
//! cargo run --release --example heterogeneous_fleet
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use ai_metropolis::core::exec::threaded::{run_threaded, ThreadedConfig};
use ai_metropolis::llm::presets;
use ai_metropolis::llm::{
    CallKind, Fleet, FleetConfig, LatencyProfile, LlmBackend, LlmRequest, ReplicaSpec, RequestId,
    RoutePolicyKind, ServerConfig,
};
use ai_metropolis::prelude::*;
use ai_metropolis::store::Db;
use ai_metropolis::world::program::VillageProgram;
use ai_metropolis::world::{clock_to_step, Village};

/// Virtual time per wall-clock unit for both paced replicas. Kept low
/// enough that a call's wall latency (tens to hundreds of µs) dwarfs
/// thread-scheduling noise — least-outstanding routing only spreads
/// load when calls genuinely overlap, so a too-aggressive scale would
/// make the per-replica traffic assertions timing-dependent.
const TIME_SCALE: f64 = 2_000.0;

fn build_fleet(policy: RoutePolicyKind, profile: &LatencyProfile) -> Arc<Fleet> {
    // Replica 0: a simulated continuous-batching engine, paced.
    // Replica 1: replays a recorded latency distribution; tagged
    // interactive so lane-aware routing dedicates it to the player.
    let sim = ServerConfig::from_preset(presets::tiny_test(), 1, true);
    Arc::new(
        FleetConfig::new("town-fleet", policy)
            .with_replica(ReplicaSpec::sim(sim, TIME_SCALE))
            .with_replica(ReplicaSpec::replay(profile.clone(), 7, Some(TIME_SCALE)).interactive())
            .build(),
    )
}

fn main() {
    // The replay replica's distribution. A production setup would mine
    // this from real serving logs (`trace_tool latency town.trc out.lat`
    // → `LatencyProfile::load`); a synthetic one keeps the example
    // self-contained.
    let mut profile = LatencyProfile::new("reference-deployment");
    for (kind, base) in [
        (CallKind::Perceive, 12_000),
        (CallKind::Plan, 45_000),
        (CallKind::Converse, 30_000),
        (CallKind::Summarize, 25_000),
    ] {
        for jitter in 0..8u64 {
            profile.push(kind, base + jitter * 3_000);
        }
    }
    println!(
        "Replay replica: {} latency samples, mean {:.0} ms virtual",
        profile.len(),
        profile.mean_us() / 1e3
    );

    let start = clock_to_step(12, 0);
    let steps = 40;

    for policy in RoutePolicyKind::ALL {
        println!("\n=== routing policy: {policy} ===");

        let mut village = Village::generate(&VillageConfig {
            villes: 1,
            agents_per_ville: 15,
            seed: 42,
        });
        village.run_lockstep(0, start, |_, _, _, _| {});
        let program = Arc::new(VillageProgram::with_step_offset(village, start));
        let initial = program.initial_positions();
        let mut sched = Scheduler::new(
            Arc::new(GridSpace::new(100, 140)),
            RuleParams::genagent(),
            DependencyPolicy::Spatiotemporal,
            Arc::new(Db::new()),
            &initial,
            Step(steps),
        )
        .expect("scheduler");

        let fleet = build_fleet(policy, &profile);

        // The player talks to the town through the same fleet.
        let stop = Arc::new(AtomicBool::new(false));
        let player = {
            let fleet = Arc::clone(&fleet);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut turns = 0u64;
                // At least a few turns even if the village finishes first,
                // so the tagged replica always sees interactive traffic.
                while turns < 5 || (!stop.load(Ordering::Relaxed) && turns < 50) {
                    fleet.call(
                        &LlmRequest::new(
                            RequestId(1_000_000 + turns),
                            u32::MAX,
                            0,
                            300,
                            7,
                            CallKind::Converse,
                        )
                        .interactive(),
                    );
                    turns += 1;
                    std::thread::sleep(std::time::Duration::from_micros(500));
                }
                turns
            })
        };

        let backend: Arc<dyn LlmBackend> = Arc::clone(&fleet) as Arc<dyn LlmBackend>;
        let report = run_threaded(
            &mut sched,
            Arc::clone(&program),
            backend,
            ThreadedConfig {
                workers: 8,
                priority_enabled: true,
            },
        )
        .expect("threaded run");
        stop.store(true, Ordering::Relaxed);
        let chat_turns = player.join().expect("player thread");

        println!("deployment : {}", report.backend);
        println!(
            "run        : {} clusters, {} agent-steps, {} chat turns, {:.0} ms wall",
            report.clusters,
            report.agent_steps,
            chat_turns,
            report.wall.as_secs_f64() * 1e3
        );

        let m = fleet.metrics();
        println!(
            "{:>7} | {:>34} | {:>6} | {:>11} | {:>4}",
            "replica", "backend", "served", "interactive", "peak"
        );
        for r in &m.replicas {
            println!(
                "{:>6}{} | {:>34} | {:>6} | {:>11} | {:>4}",
                r.replica,
                if r.interactive { "*" } else { " " },
                r.description.chars().take(34).collect::<String>(),
                r.served,
                r.interactive_served,
                r.peak_outstanding
            );
        }

        // The acceptance bar: a heterogeneous fleet strands no replica,
        // under any shipped policy.
        assert!(
            m.all_replicas_served(),
            "{policy}: every replica must serve traffic: {m:?}"
        );
        assert_eq!(
            m.total_served(),
            program.calls_made() + chat_turns,
            "the fleet saw every village call plus every chat turn"
        );
        if policy == RoutePolicyKind::LaneAware {
            let tagged = &m.replicas[1];
            assert_eq!(
                tagged.interactive_served, chat_turns,
                "lane-aware must pin the player to the tagged replica"
            );
        }
    }

    println!("\nSame village, same player, five routing policies: the fleet");
    println!("abstraction makes deployment shape — replica mix and routing —");
    println!("a config knob instead of an engine rewrite.");
}
