//! Scaling the society: concatenated villes from 25 to 200 agents replay
//! their busy hour on 8 simulated GPUs (paper §4.3 in miniature).
//!
//! ```text
//! cargo run --release --example scaling_society
//! ```

use ai_metropolis::llm::{presets, ServerConfig};
use ai_metropolis::prelude::*;
use ai_metropolis::trace::gen;

fn main() {
    let preset = presets::l4_llama3_8b();
    println!("busy hour (12pm-1pm), Llama-3-8B on 8 simulated L4 GPUs\n");
    println!(
        "{:>7} | {:>13} | {:>11} | {:>8}",
        "agents", "parallel-sync", "metropolis", "speedup"
    );
    println!("{}", "-".repeat(50));
    for villes in [1u32, 2, 4, 8] {
        let trace = gen::generate(&GenConfig::busy_hour(villes, 42));
        let run = |policy: DependencyPolicy| {
            Engine::builder(GridSpace::new(
                trace.meta().map_width,
                trace.meta().map_height,
            ))
            .policy(policy)
            .server(ServerConfig::from_preset(preset.clone(), 8, true))
            .build()
            .run_replay(&trace)
            .expect("replay")
        };
        let sync = run(DependencyPolicy::GlobalSync);
        let ooo = run(DependencyPolicy::Spatiotemporal);
        println!(
            "{:>7} | {:>12.1}s | {:>10.1}s | {:>7.2}x",
            villes * 25,
            sync.makespan.as_secs_f64(),
            ooo.makespan.as_secs_f64(),
            ooo.speedup_over(&sync)
        );
    }
    println!("\nThe speedup grows with the agent count: more agents mean more");
    println!("false dependencies for the barrier, but not for AI Metropolis.");
}
