//! Offline shim for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`strategy::Strategy`] trait (`prop_map`,
//! `prop_flat_map`, `boxed`), range/tuple/[`strategy::Just`] strategies,
//! [`collection::vec`](fn@collection::vec), `any::<T>()`, `prop_oneof!`, and the
//! [`proptest!`] test-harness macro with `ProptestConfig::with_cases`.
//!
//! Differences from the real crate, deliberately accepted:
//! * **No shrinking** — a failing case reports its case index and the
//!   run's seed instead of a minimal counterexample.
//! * **Deterministic by default** — the RNG seed is fixed (override
//!   with `PROPTEST_SEED`); case counts honor `PROPTEST_CASES`.

/// Deterministic RNG (SplitMix64) driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }
}

/// Test-runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Runtime support used by the [`proptest!`] expansion; not public API.
#[doc(hidden)]
pub mod runner {
    use super::ProptestConfig;

    /// Resolves the effective case count (`PROPTEST_CASES` wins).
    pub fn effective_cases(cfg: &ProptestConfig) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(cfg.cases)
    }

    /// Resolves the base RNG seed (`PROPTEST_SEED` wins).
    pub fn base_seed() -> u64 {
        std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0x5EED_CAFE_F00D_0001)
    }
}

/// Strategy combinators and implementations.
pub mod strategy {
    use super::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }

        /// Generates an intermediate value, then generates from the
        /// strategy `f` builds out of it.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { base: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng| self.generate(rng)))
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) base: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        pub(crate) base: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            let mid = self.base.generate(rng);
            (self.f)(mid).generate(rng)
        }
    }

    /// A type-erased strategy (see [`Strategy::boxed`]).
    pub struct BoxedStrategy<V>(Box<dyn Fn(&mut TestRng) -> V>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (self.0)(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<V: Clone>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;
        fn generate(&self, _rng: &mut TestRng) -> V {
            self.0.clone()
        }
    }

    /// Uniform choice among same-valued strategies (see `prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union; `arms` must be non-empty.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty.
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $i:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// Types with a canonical whole-domain strategy (see [`super::arbitrary::any`]).
    pub trait Arbitrary: Sized {
        /// Draws one value uniformly over the type's domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy produced by [`super::arbitrary::any`].
    pub struct Any<T>(pub(crate) core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// `any::<T>()` — the whole-domain strategy for `T`.
pub mod arbitrary {
    use super::strategy::{Any, Arbitrary};

    /// Returns the canonical strategy covering all of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Inclusive length bounds for [`vec`](fn@vec), convertible from ranges.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Generates `Vec`s whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`](fn@vec).
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let n = self.size.lo + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The names a proptest file conventionally glob-imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig, TestRng,
    };
}

/// Panic payload marking a case rejected by [`prop_assume!`]; the
/// runner skips such cases instead of failing.
#[doc(hidden)]
#[derive(Debug)]
pub struct Rejected;

/// Skips the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !$cond {
            ::std::panic::panic_any($crate::Rejected);
        }
    };
}

/// Asserts a condition inside a property, with optional format args.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property, with optional format args.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property, with optional format args.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Declares property tests: each `name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            let __cases = $crate::runner::effective_cases(&__cfg);
            let __seed = $crate::runner::base_seed();
            // `prop_assume!` rejections don't count as run cases; retry
            // with fresh inputs up to 10x the case budget, and fail
            // loudly if the assumption filtered out *every* attempt —
            // a silently vacuous property is worse than a failing one.
            let __max_attempts = __cases.saturating_mul(10).max(1);
            let mut __done: u32 = 0;
            let mut __attempt: u32 = 0;
            while __done < __cases && __attempt < __max_attempts {
                let __case = __attempt;
                __attempt += 1;
                let mut __rng =
                    $crate::TestRng::new(__seed ^ ((__case as u64) << 32 | __case as u64));
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __result = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| { $body }),
                );
                match __result {
                    Ok(_) => __done += 1,
                    Err(__e) if __e.downcast_ref::<$crate::Rejected>().is_some() => {
                        continue; // prop_assume! rejected this case
                    }
                    Err(__e) => {
                        eprintln!(
                            "proptest {}: case {}/{} failed (base seed {:#x})",
                            stringify!($name), __case, __cases, __seed,
                        );
                        ::std::panic::resume_unwind(__e);
                    }
                }
            }
            assert!(
                __done > 0,
                "proptest {}: prop_assume! rejected all {} attempts — \
                 the property was never exercised",
                stringify!($name),
                __attempt,
            );
            if __done < __cases {
                eprintln!(
                    "proptest {}: only {}/{} cases ran ({} rejected by prop_assume!)",
                    stringify!($name), __done, __cases, __attempt - __done,
                );
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;

    #[test]
    fn ranges_and_maps_compose() {
        let mut rng = TestRng::new(1);
        let s = (0u32..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v < 20 && v % 2 == 0);
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::new(2);
        let s = crate::collection::vec(any::<u8>(), 2..5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = TestRng::new(3);
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_multiple_args(a in 0u8..10, (b, c) in (0u8..10, 1u8..=4)) {
            prop_assert!(a < 10);
            prop_assert!(b < 10 && (1..=4).contains(&c));
        }

        #[test]
        fn assume_filters_cases_without_failing(v in 0u8..10) {
            prop_assume!(v % 2 == 0);
            prop_assert!(v % 2 == 0);
        }

        #[test]
        #[should_panic(expected = "rejected all")]
        fn vacuous_assume_is_an_error(_v in 0u8..10) {
            prop_assume!(false);
        }
    }
}
