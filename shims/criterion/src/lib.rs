//! Offline shim for `criterion`.
//!
//! Exposes the `Criterion` / `BenchmarkGroup` / `Bencher` /
//! `BenchmarkId` API plus the `criterion_group!`/`criterion_main!`
//! macros, backed by a simple wall-clock harness: each benchmark is
//! warmed up once, then timed over a fixed number of samples and the
//! per-iteration median is printed as
//! `bench <name> ... <time>`. No statistics, plots, or baselines — the
//! goal is that `cargo bench` runs and prints comparable numbers.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), param),
        }
    }

    /// An id carrying just a parameter value.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter` call.
    last: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, recording the median per-iteration time over the
    /// sample count.
    ///
    /// Each sample batches enough iterations to take roughly
    /// `TARGET_SAMPLE_TIME` (1 ms) so that fast routines (tens of
    /// nanoseconds) are not drowned out by clock-read overhead and
    /// timer quantization.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up doubles as calibration: estimate one iteration's cost.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let per_sample = (TARGET_SAMPLE_TIME.as_nanos() / once.as_nanos()).clamp(1, 1_000_000);
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            times.push(start.elapsed() / per_sample as u32);
        }
        times.sort();
        self.last = Some(times[times.len() / 2]);
    }
}

/// Wall-clock time each measurement sample aims to occupy.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(1);

fn human(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

const DEFAULT_SAMPLES: usize = 10;

fn run_one(name: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        last: None,
    };
    f(&mut b);
    match b.last {
        Some(t) => println!("bench {name:<40} {}", human(t)),
        None => println!("bench {name:<40} (no measurement)"),
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Accepts CLI args for compatibility; they are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, DEFAULT_SAMPLES, |b| f(b));
        self
    }

    /// Runs a named benchmark over one input.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.into().id, DEFAULT_SAMPLES, |b| f(b, input));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            samples: DEFAULT_SAMPLES,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count for subsequent benchmarks in the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.samples, |b| f(b));
        self
    }

    /// Runs one benchmark in the group over one input.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.samples, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("trivial_add", |b| b.iter(|| black_box(1u64) + 1));
    }

    criterion_group!(smoke, trivial);

    #[test]
    fn harness_runs_groups_and_measures() {
        smoke();
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let n = 4u64;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
