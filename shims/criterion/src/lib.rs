//! Offline shim for `criterion`.
//!
//! Exposes the `Criterion` / `BenchmarkGroup` / `Bencher` /
//! `BenchmarkId` API plus the `criterion_group!`/`criterion_main!`
//! macros, backed by a simple wall-clock harness: each benchmark is
//! warmed up for ~50 ms, then timed over a fixed number of samples, and
//! the **fastest** per-iteration sample is printed as
//! `bench <name> ... <time>`. The minimum — not the mean or median — is
//! the deliberate choice for a statistic that feeds a CI regression
//! gate: scheduling noise on a loaded (or single-CPU) runner only ever
//! *adds* time, so the fastest observed sample is the most reproducible
//! estimate of the code's actual cost. No plots — the goal is that
//! `cargo bench` runs and prints comparable, gateable numbers.
//!
//! # Baselines: `--json`
//!
//! Passing `--json` after `--` (`cargo bench -- --json`) additionally
//! writes `BENCH_<target>.json` at the workspace root (the nearest
//! ancestor directory holding a `Cargo.lock`), where `<target>` is the
//! bench binary's name with cargo's trailing `-<hash>` stripped. The
//! file maps every benchmark name to its ns/iter estimate:
//!
//! ```json
//! { "bench": "fleet", "ns_per_iter": { "fleet/route/round-robin/2": 65 } }
//! ```
//!
//! The file is rewritten after each measurement, so even an interrupted
//! run leaves a valid baseline of what completed. Committed baselines
//! plus this output are what CHANGES.md bench-delta notes and the CI
//! `bench_gate` diff against.

use std::collections::BTreeMap;
use std::fmt::{self, Display};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), param),
        }
    }

    /// An id carrying just a parameter value.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter` call.
    last: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, recording the fastest per-iteration sample over
    /// the sample count.
    ///
    /// Each sample batches enough iterations to take roughly
    /// `TARGET_SAMPLE_TIME` (1 ms) so that fast routines (tens of
    /// nanoseconds) are not drowned out by clock-read overhead and
    /// timer quantization.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run the routine for ~WARMUP_TIME before measuring so
        // caches, branch predictors, and CPU frequency settle — the first
        // calls after process start are reliably 30–60% slower and would
        // otherwise poison the estimate (and any baseline gating built
        // on it). The warm-up doubles as calibration for the batch size;
        // routines slower than the warm-up budget pay a single call.
        let warm_start = Instant::now();
        black_box(routine());
        let mut once = warm_start.elapsed().max(Duration::from_nanos(1));
        if once < WARMUP_TIME {
            let mut calls = 1u32;
            while warm_start.elapsed() < WARMUP_TIME {
                let t = Instant::now();
                black_box(routine());
                once = once.min(t.elapsed().max(Duration::from_nanos(1)));
                calls += 1;
                if calls >= 1_000_000 {
                    break;
                }
            }
        }
        let per_sample = (TARGET_SAMPLE_TIME.as_nanos() / once.as_nanos()).clamp(1, 1_000_000);
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            times.push(start.elapsed() / per_sample as u32);
        }
        // Minimum, not median: interference from other processes only
        // ever inflates a sample, so the fastest one is the stablest
        // run-to-run estimate (see the module docs).
        self.last = times.into_iter().min();
    }
}

/// Wall-clock time each measurement sample aims to occupy.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(1);

/// Wall-clock budget spent warming a benchmark up before sampling.
const WARMUP_TIME: Duration = Duration::from_millis(50);

fn human(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

const DEFAULT_SAMPLES: usize = 10;

/// The `--json` baseline file path and the bench target name it is
/// named after, decided once per process (None = json mode off).
fn json_sink() -> Option<&'static (PathBuf, String)> {
    static SINK: OnceLock<Option<(PathBuf, String)>> = OnceLock::new();
    SINK.get_or_init(|| {
        if !std::env::args().any(|a| a == "--json") {
            return None;
        }
        let target = std::env::current_exe()
            .ok()
            .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
            .map(|s| strip_cargo_hash(&s).to_string())
            .unwrap_or_else(|| "unknown".to_string());
        let root = workspace_root(&std::env::current_dir().unwrap_or_default());
        Some((root.join(format!("BENCH_{target}.json")), target))
    })
    .as_ref()
}

/// Collected `name → ns/iter` results of this process.
static RESULTS: Mutex<BTreeMap<String, u128>> = Mutex::new(BTreeMap::new());

/// Strips cargo's `-<16 hex digits>` binary-name suffix, if present.
fn strip_cargo_hash(stem: &str) -> &str {
    match stem.rsplit_once('-') {
        Some((name, hash)) if hash.len() == 16 && hash.chars().all(|c| c.is_ascii_hexdigit()) => {
            name
        }
        _ => stem,
    }
}

/// The nearest ancestor of `from` holding a `Cargo.lock` (the workspace
/// root), or `from` itself when none is found.
fn workspace_root(from: &Path) -> PathBuf {
    let mut dir = from;
    loop {
        if dir.join("Cargo.lock").is_file() {
            return dir.to_path_buf();
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => return from.to_path_buf(),
        }
    }
}

/// Renders the baseline JSON document (stable key order, minimal
/// escaping — benchmark names are plain identifiers and `/`).
fn render_json(target: &str, results: &BTreeMap<String, u128>) -> String {
    let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let mut out = format!(
        "{{\n  \"bench\": \"{}\",\n  \"ns_per_iter\": {{\n",
        esc(target)
    );
    for (i, (name, ns)) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        out.push_str(&format!("    \"{}\": {ns}{sep}\n", esc(name)));
    }
    out.push_str("  }\n}\n");
    out
}

fn record(name: &str, time: Duration) {
    let Some((path, target)) = json_sink() else {
        return;
    };
    let mut results = RESULTS.lock().expect("results poisoned");
    results.insert(name.to_string(), time.as_nanos());
    if let Err(e) = std::fs::write(path, render_json(target, &results)) {
        eprintln!("criterion shim: cannot write {}: {e}", path.display());
    }
}

fn run_one(name: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        last: None,
    };
    f(&mut b);
    match b.last {
        Some(t) => {
            println!("bench {name:<40} {}", human(t));
            record(name, t);
        }
        None => println!("bench {name:<40} (no measurement)"),
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Accepts CLI args for compatibility. The only recognized flag is
    /// `--json` (see the module docs); everything else is ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, DEFAULT_SAMPLES, |b| f(b));
        self
    }

    /// Runs a named benchmark over one input.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.into().id, DEFAULT_SAMPLES, |b| f(b, input));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            samples: DEFAULT_SAMPLES,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count for subsequent benchmarks in the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.samples, |b| f(b));
        self
    }

    /// Runs one benchmark in the group over one input.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.samples, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("trivial_add", |b| b.iter(|| black_box(1u64) + 1));
    }

    criterion_group!(smoke, trivial);

    #[test]
    fn harness_runs_groups_and_measures() {
        smoke();
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let n = 4u64;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    #[test]
    fn cargo_hash_suffix_is_stripped() {
        assert_eq!(strip_cargo_hash("fleet-0123456789abcdef"), "fleet");
        assert_eq!(strip_cargo_hash("fleet"), "fleet");
        assert_eq!(strip_cargo_hash("round-robin"), "round-robin");
        assert_eq!(
            strip_cargo_hash("two-part-0123456789abcdef"),
            "two-part",
            "only the trailing hash goes"
        );
    }

    #[test]
    fn workspace_root_walks_up_to_cargo_lock() {
        let dir = std::env::temp_dir().join("criterion-shim-root-test");
        let nested = dir.join("a").join("b");
        std::fs::create_dir_all(&nested).unwrap();
        std::fs::write(dir.join("Cargo.lock"), "").unwrap();
        assert_eq!(workspace_root(&nested), dir);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn json_rendering_is_valid_and_sorted() {
        let mut results = BTreeMap::new();
        results.insert("g/b".to_string(), 20u128);
        results.insert("g/a".to_string(), 10u128);
        let json = render_json("smoke", &results);
        assert_eq!(
            json,
            "{\n  \"bench\": \"smoke\",\n  \"ns_per_iter\": {\n    \"g/a\": 10,\n    \"g/b\": 20\n  }\n}\n"
        );
    }
}
