//! Offline shim for `parking_lot`.
//!
//! Thin wrappers over `std::sync` primitives exposing the
//! `parking_lot` API shape: infallible `lock()`/`read()`/`write()`
//! (poison is swallowed by taking the inner guard — the workspace never
//! relies on poisoning), plus a `Condvar` that works with the wrapped
//! [`MutexGuard`]. Performance is whatever `std::sync` provides; swap
//! back to the real crate for contended workloads.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, TryLockError};
use std::time::{Duration, Instant};

/// A mutual-exclusion lock with the `parking_lot::Mutex` API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard taken")
    }
}

/// A reader-writer lock with the `parking_lot::RwLock` API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-access RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// Exclusive-access RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with this shim's [`MutexGuard`].
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Blocks until notified, atomically releasing and reacquiring the lock.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard taken");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(|e| e.into_inner()));
    }

    /// Blocks until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        self.wait_for(guard, timeout)
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard taken");
        let (inner, res) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r)
            }
        };
        guard.0 = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wakes one blocked thread.
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    /// Wakes all blocked threads.
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn condvar_signals_across_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        t.join().unwrap();
        assert!(*done);
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(res.timed_out());
    }
}
