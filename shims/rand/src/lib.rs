//! Offline shim for `rand`.
//!
//! Provides a deterministic [`rngs::StdRng`] (SplitMix64) plus the
//! rand-0.9-style method names the workspace uses: `random::<T>()` and
//! `random_range(..)` via the [`Rng`] extension trait, and
//! [`SeedableRng::seed_from_u64`]. The statistical quality is more than
//! adequate for simulation workloads; the point is reproducibility from
//! a `u64` seed with zero external dependencies.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Builds the RNG from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: SplitMix64.
    ///
    /// Passes through all 2^64 states; each output is a bijective mix of
    /// the counter, so short seed distances still decorrelate streams.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Types samplable uniformly over their whole domain via [`Rng::random`].
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample(rng: &mut dyn RngCore) -> Self;
}

impl StandardSample for u32 {
    fn sample(rng: &mut dyn RngCore) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    fn sample(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample(rng: &mut dyn RngCore) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Extension methods providing the rand 0.9 sampling API.
pub trait Rng: RngCore {
    /// Draws a value uniformly over `T`'s standard domain
    /// (`[0, 1)` for floats, full range for integers).
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i64 = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let u: usize = rng.random_range(3..10usize);
            assert!((3..10).contains(&u));
        }
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let f: f32 = rng.random();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.random();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn distinct_seeds_decorrelate() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert_eq!(same, 0);
    }
}
