//! Offline shim for `bytes`.
//!
//! [`Bytes`] is a cheaply-cloneable, sliceable view over an
//! `Arc<[u8]>`; [`BytesMut`] is a growable buffer that freezes into
//! one. The [`Buf`]/[`BufMut`] traits cover the big-endian integer and
//! slice accessors the workspace codecs use. Semantics match the real
//! crate for this subset (including `split_to` advancing the source and
//! content-based equality/ordering, so `Bytes` works as an ordered map
//! key).

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// A cheaply-cloneable immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static slice (copied once into shared storage).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The viewed bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Returns a sub-view sharing the same storage.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice {lo}..{hi} out of bounds"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Splits off and returns the first `at` bytes, advancing `self`.
    ///
    /// # Panics
    ///
    /// Panics if `at > self.len()`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to({at}) out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// Splits off and returns everything from `at` on, truncating `self`.
    ///
    /// # Panics
    ///
    /// Panics if `at > self.len()`.
    pub fn split_off(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_off({at}) out of bounds");
        let tail = Bytes {
            data: Arc::clone(&self.data),
            start: self.start + at,
            end: self.end,
        };
        self.end = self.start + at;
        tail
    }

    /// Copies the view into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        Bytes {
            start: 0,
            end: data.len(),
            data,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with at least `cap` bytes of capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, other: &[u8]) {
        self.buf.extend_from_slice(other);
    }

    /// Clears the buffer, keeping capacity.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        Bytes::copy_from_slice(&self.buf).fmt(f)
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(buf: Vec<u8>) -> Self {
        BytesMut { buf }
    }
}

macro_rules! get_be {
    ($(($fn:ident, $t:ty)),*) => {$(
        /// Reads a big-endian integer, advancing the cursor.
        ///
        /// # Panics
        ///
        /// Panics if fewer than `size_of::<Self>()` bytes remain.
        fn $fn(&mut self) -> $t {
            const N: usize = std::mem::size_of::<$t>();
            let mut raw = [0u8; N];
            self.copy_to_slice(&mut raw);
            <$t>::from_be_bytes(raw)
        }
    )*};
}

/// Read access to a cursor-like byte buffer (big-endian accessors).
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;

    /// The unread bytes as a contiguous slice.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor by `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies `dst.len()` bytes out, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics if not enough bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads one signed byte, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty.
    fn get_i8(&mut self) -> i8 {
        self.get_u8() as i8
    }

    get_be!(
        (get_u16, u16),
        (get_u32, u32),
        (get_u64, u64),
        (get_i16, i16),
        (get_i32, i32),
        (get_i64, i64)
    );
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance({cnt}) out of bounds");
        self.start += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

macro_rules! put_be {
    ($(($fn:ident, $t:ty)),*) => {$(
        /// Appends a big-endian integer.
        fn $fn(&mut self, v: $t) {
            self.put_slice(&v.to_be_bytes());
        }
    )*};
}

/// Append access to a growable byte buffer (big-endian accessors).
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends one signed byte.
    fn put_i8(&mut self, v: i8) {
        self.put_u8(v as u8);
    }

    put_be!(
        (put_u16, u16),
        (put_u32, u32),
        (put_u64, u64),
        (put_i16, i16),
        (put_i32, i32),
        (put_i64, i64)
    );
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_integers_big_endian() {
        let mut w = BytesMut::new();
        w.put_u32(0xDEAD_BEEF);
        w.put_i64(-9);
        w.put_u8(7);
        assert_eq!(w.as_ref()[0], 0xDE, "big-endian layout");
        let mut r = w.freeze();
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_i64(), -9);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn split_and_slice_share_storage() {
        let mut b = Bytes::from(b"hello world".to_vec());
        let head = b.split_to(5);
        assert_eq!(head.as_slice(), b"hello");
        assert_eq!(b.as_slice(), b" world");
        let tail = b.slice(1..);
        assert_eq!(tail.as_slice(), b"world");
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = Bytes::from("abc");
        let b = Bytes::from("abd");
        assert!(a < b);
        let mut m = std::collections::BTreeMap::new();
        m.insert(a.clone(), 1);
        m.insert(b, 2);
        assert_eq!(m.range(a..).count(), 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn advance_past_end_panics() {
        let mut b = Bytes::from_static(b"xy");
        b.advance(3);
    }
}
