//! Offline shim for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` purely as structural
//! annotations — no code in the tree takes a `T: Serialize` bound or
//! invokes a serializer, and all on-disk formats go through the
//! hand-written binary codecs in `aim-store` and `aim-trace`. These
//! derives therefore accept the full attribute syntax (including
//! `#[serde(...)]` field attributes) and expand to nothing, which keeps
//! the source compatible with the real `serde` when the build regains
//! network access.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
