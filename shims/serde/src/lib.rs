//! Offline shim for `serde`.
//!
//! Exposes the `Serialize`/`Deserialize` trait names and (behind the
//! `derive` feature) the matching no-op derive macros from the sibling
//! `serde_derive` shim. See that crate's docs for why this is sound for
//! this workspace: the derives are structural annotations only, and no
//! code takes serde bounds.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
