//! # AI Metropolis — reproduction facade
//!
//! One-stop crate re-exporting the whole workspace:
//!
//! * [`core`] — the out-of-order scheduling engine (rules,
//!   dependency graph, clustering, scheduler, executors, speculative
//!   execution with rollback, hybrid interactive driver).
//! * [`llm`] — the virtual-time LLM serving simulator and backend
//!   traits.
//! * [`world`] — the GenAgent-style SmallVille substrate.
//! * [`trace`] — workload traces: generation, codec, oracle
//!   mining, critical paths.
//! * [`store`] — the embedded transactional KV store.
//!
//! See the repository README for a tour and `examples/` for runnable
//! programs; the paper's tables and figures regenerate via
//! `cargo run --release -p aim-bench --bin repro -- all`.
//!
//! ```
//! use ai_metropolis::prelude::*;
//! use ai_metropolis::llm::{presets, ServerConfig};
//!
//! let engine = Engine::builder(GridSpace::new(100, 140))
//!     .policy(DependencyPolicy::Spatiotemporal)
//!     .server(ServerConfig::from_preset(presets::tiny_test(), 1, true))
//!     .build();
//! # let _ = engine;
//! ```

#![warn(missing_docs)]

pub use aim_core as core;
pub use aim_llm as llm;
pub use aim_store as store;
pub use aim_trace as trace;
pub use aim_world as world;

/// Commonly used names from every crate.
pub mod prelude {
    pub use aim_core::prelude::*;
    pub use aim_core::workload::{CallSpec, Workload};
    pub use aim_llm::{CallKind, LlmBackend, LlmRequest, LlmResponse, RequestId, VirtualTime};
    pub use aim_trace::{gen::GenConfig, Trace};
    pub use aim_world::{Village, VillageConfig};
}
