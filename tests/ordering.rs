//! Completion-time ordering across scheduling modes (§4.2's hierarchy):
//!
//! `critical ≤ oracle ≤ {metropolis} ≤ parallel-sync ≤ single-thread`
//!
//! and the scaling trend: metropolis's advantage over the barrier grows
//! with the agent count (§4.3).

use std::sync::Arc;

use ai_metropolis::core::exec::sim::{run_sim, SimConfig};
use ai_metropolis::core::metrics::RunReport;
use ai_metropolis::core::workload::Workload;
use ai_metropolis::llm::{presets, ServerConfig, SimServer, VirtualTime};
use ai_metropolis::prelude::*;
use ai_metropolis::store::Db;
use ai_metropolis::trace::{critical, gen, oracle, Trace};
use ai_metropolis::world::clock_to_step;

fn replay(trace: &Trace, policy: DependencyPolicy, sim: &SimConfig, replicas: u32) -> RunReport {
    let meta = trace.meta();
    let initial: Vec<Point> = (0..meta.num_agents)
        .map(|a| trace.initial_position(a))
        .collect();
    let mut sched = Scheduler::new(
        Arc::new(GridSpace::new(meta.map_width, meta.map_height)),
        RuleParams::new(meta.radius_p, meta.max_vel),
        policy,
        Arc::new(Db::new()),
        &initial,
        Workload::target_step(trace),
    )
    .unwrap();
    let mut server = SimServer::new(ServerConfig::from_preset(
        presets::l4_llama3_8b(),
        replicas,
        true,
    ));
    run_sim(&mut sched, trace, &mut server, sim).unwrap()
}

fn work_trace(villes: u32, seed: u64) -> Trace {
    gen::generate(&GenConfig {
        villes,
        agents_per_ville: 25,
        seed,
        window_start: clock_to_step(11, 0),
        window_len: 120,
    })
}

#[test]
fn mode_hierarchy_holds() {
    let trace = work_trace(1, 4);
    let graph = Arc::new(oracle::mine(&trace));
    let preset = presets::l4_llama3_8b();
    let cp = critical::critical_path(&trace, &preset.cost, preset.prefill_chunk, 2_000, 1_000);

    let single = replay(
        &trace,
        DependencyPolicy::GlobalSync,
        &SimConfig::single_thread(),
        2,
    );
    let sync = replay(
        &trace,
        DependencyPolicy::GlobalSync,
        &SimConfig::default(),
        2,
    );
    let metro = replay(
        &trace,
        DependencyPolicy::Spatiotemporal,
        &SimConfig::default(),
        2,
    );
    let orc = replay(
        &trace,
        DependencyPolicy::Oracle(graph),
        &SimConfig::default(),
        2,
    );

    assert!(
        metro.makespan <= sync.makespan,
        "metropolis lost to the barrier"
    );
    assert!(
        sync.makespan <= single.makespan,
        "parallel-sync lost to serial"
    );
    assert!(
        orc.makespan <= metro.makespan,
        "conservative rules beat the oracle?"
    );
    assert!(
        cp.time <= orc.makespan + VirtualTime::from_micros(1),
        "oracle ran faster than the critical lower bound: {} < {}",
        orc.makespan,
        cp.time
    );
    // Parallelism follows the same ordering.
    assert!(metro.achieved_parallelism >= sync.achieved_parallelism);
    assert!(single.achieved_parallelism <= 1.0 + 1e-9);
}

#[test]
fn speedup_grows_with_agent_count() {
    let ratio = |villes: u32| {
        let trace = work_trace(villes, 7);
        let sync = replay(
            &trace,
            DependencyPolicy::GlobalSync,
            &SimConfig::default(),
            8,
        );
        let metro = replay(
            &trace,
            DependencyPolicy::Spatiotemporal,
            &SimConfig::default(),
            8,
        );
        sync.makespan.as_secs_f64() / metro.makespan.as_secs_f64()
    };
    let small = ratio(1);
    let large = ratio(4);
    assert!(
        large > small,
        "speedup should grow with agents: {small:.2}x at 25 vs {large:.2}x at 100"
    );
}

#[test]
fn more_gpus_never_hurt() {
    let trace = work_trace(2, 11);
    let one = replay(
        &trace,
        DependencyPolicy::Spatiotemporal,
        &SimConfig::default(),
        1,
    );
    let eight = replay(
        &trace,
        DependencyPolicy::Spatiotemporal,
        &SimConfig::default(),
        8,
    );
    assert!(eight.makespan <= one.makespan);
    assert!(eight.gpu_utilization <= one.gpu_utilization + 1e-9);
}

#[test]
fn priority_never_hurts_under_contention() {
    let trace = work_trace(4, 13);
    let mk = |priority: bool| {
        let meta = trace.meta();
        let initial: Vec<Point> = (0..meta.num_agents)
            .map(|a| trace.initial_position(a))
            .collect();
        let mut sched = Scheduler::new(
            Arc::new(GridSpace::new(meta.map_width, meta.map_height)),
            RuleParams::new(meta.radius_p, meta.max_vel),
            DependencyPolicy::Spatiotemporal,
            Arc::new(Db::new()),
            &initial,
            Workload::target_step(&trace),
        )
        .unwrap();
        let mut server = SimServer::new(ServerConfig::from_preset(
            presets::l4_llama3_8b(),
            4,
            priority,
        ));
        let sim = SimConfig {
            max_concurrent_clusters: Some(16),
            priority_ready_queue: priority,
            ..SimConfig::default()
        };
        run_sim(&mut sched, &trace, &mut server, &sim).unwrap()
    };
    let with = mk(true);
    let without = mk(false);
    // Priority targets exactly this regime (Table 1); tolerate noise but
    // forbid a real regression.
    assert!(
        with.makespan.as_secs_f64() <= without.makespan.as_secs_f64() * 1.02,
        "priority made things worse: {} vs {}",
        with.makespan,
        without.makespan
    );
}
