//! Checkpoint/restore end to end: a run interrupted at step *k* and
//! resumed from its snapshot must be **world-for-world identical** to an
//! uninterrupted run — under both executors.
//!
//! * Threaded runtime: the same live village is driven with a quiesced
//!   checkpoint hook (history recording + eviction on); the run also
//!   serves as the uninterrupted oracle. A second run starts from the
//!   last snapshot file (restored store → recovered scheduler, restored
//!   village) and must land in the identical final world, under both the
//!   lock-step (global-sync) and out-of-order (spatiotemporal) policies.
//! * Discrete-event executor: a trace replay interrupted at half the
//!   horizon resumes from a snapshot and must land every agent exactly
//!   where the trace says — the same positions oracle the equivalence
//!   suite uses.

use std::path::PathBuf;
use std::sync::Arc;

use ai_metropolis::core::checkpoint::{self, SECTION_WORLD};
use ai_metropolis::core::exec::threaded::run_threaded_with_checkpoints;
use ai_metropolis::llm::InstantBackend;
use ai_metropolis::prelude::*;
use ai_metropolis::store::{Checkpointer, Db, Snapshot};
use ai_metropolis::world::program::VillageProgram;
use ai_metropolis::world::{clock_to_step, Village};

fn assert_worlds_equal(a: &Village, b: &Village) {
    assert_eq!(a.positions(), b.positions(), "final positions diverged");
    assert_eq!(a.events(), b.events(), "world event logs diverged");
    for agent in 0..a.num_agents() as u32 {
        assert_eq!(
            a.conversation_cooldown(agent),
            b.conversation_cooldown(agent),
            "agent {agent} conversation state diverged"
        );
    }
}

/// Runs the checkpointed oracle to completion, then resumes from its last
/// mid-run snapshot and checks the resumed world equals the oracle's.
fn interrupt_and_resume(policy: DependencyPolicy, tag: &str) {
    let start = clock_to_step(12, 0);
    let steps = 60u32;
    let every = 20u32;
    let seed = 9;
    let agents = 15;
    let workers = 4;
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("ckpt-resume-{tag}"));
    std::fs::remove_dir_all(&dir).ok();

    // --- Uninterrupted oracle run, checkpointing as it goes -------------
    let mut village = Village::generate(&VillageConfig {
        villes: 1,
        agents_per_ville: agents,
        seed,
    });
    village.run_lockstep(0, start, |_, _, _, _| {});
    let program = Arc::new(VillageProgram::with_step_offset(village, start));
    let initial = program.initial_positions();
    let mut sched = Scheduler::new_with_history(
        Arc::new(GridSpace::new(100, 140)),
        RuleParams::genagent(),
        policy.clone(),
        Arc::new(Db::new()),
        &initial,
        Step(steps),
        true,
    )
    .expect("scheduler");
    let mut ckpt = Checkpointer::new(&dir, every, 2);
    let mut evicted_total = 0u64;
    {
        let program = Arc::clone(&program);
        let mut hook_fn = |sched: &mut Scheduler<GridSpace>| -> Result<(), EngineError> {
            evicted_total += sched.evict_history()?;
            let world = program.capture_state();
            let committed = sched.graph().min_step().0;
            let builder = checkpoint::snapshot_run(sched, start, Some(world));
            ckpt.write(committed, &builder)?;
            Ok(())
        };
        run_threaded_with_checkpoints(
            &mut sched,
            Arc::clone(&program),
            Arc::new(InstantBackend::new()),
            ThreadedConfig {
                workers,
                priority_enabled: true,
            },
            Some(CheckpointHook {
                every_steps: every,
                f: &mut hook_fn,
            }),
        )
        .expect("checkpointed run");
    }
    assert!(sched.is_done());
    assert!(sched.graph().validate().is_ok());
    assert!(
        ckpt.written() >= 2,
        "expected mid-run checkpoints at steps 20 and 40"
    );
    let snap_path = ckpt.last_path().expect("checkpoint written").to_path_buf();
    let oracle = Arc::try_unwrap(program)
        .expect("workers joined")
        .into_village();

    // --- Resume from the last mid-run snapshot --------------------------
    let snap = Snapshot::load(&snap_path).expect("snapshot loads");
    // Policy deliberately omitted: the snapshot records it, and the
    // recorded tag must drive the resumed scheduler's semantics.
    let (meta, mut resumed_sched) = checkpoint::resume(&snap, None, None).expect("resume");
    assert!(meta.min_step < steps, "snapshot must be mid-run");
    assert_eq!(meta.step_offset, start);
    assert!(meta.history);
    let world_bytes = snap.section(SECTION_WORLD).expect("world section");
    let village = Village::restore(world_bytes).expect("village restores");
    let program = Arc::new(VillageProgram::with_step_offset(village, meta.step_offset));
    run_threaded(
        &mut resumed_sched,
        Arc::clone(&program),
        Arc::new(InstantBackend::new()),
        ThreadedConfig {
            workers,
            priority_enabled: true,
        },
    )
    .expect("resumed run");
    assert!(resumed_sched.is_done());
    assert!(resumed_sched.graph().validate().is_ok());
    let resumed = Arc::try_unwrap(program)
        .expect("workers joined")
        .into_village();

    assert_worlds_equal(&oracle, &resumed);
    assert!(
        !oracle.events().is_empty(),
        "a lunch window must produce events, or this proves nothing"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn interrupted_resume_equals_uninterrupted_lockstep() {
    interrupt_and_resume(DependencyPolicy::GlobalSync, "lockstep");
}

#[test]
fn interrupted_resume_equals_uninterrupted_ooo() {
    interrupt_and_resume(DependencyPolicy::Spatiotemporal, "ooo");
}

#[test]
fn eviction_keeps_resume_intact() {
    // Eviction must never delete anything a resume needs: identical to
    // the OOO case above but with an aggressive cadence so several
    // eviction passes run before the resume point.
    let start = clock_to_step(12, 0);
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("ckpt-evict");
    std::fs::remove_dir_all(&dir).ok();
    let mut village = Village::generate(&VillageConfig {
        villes: 1,
        agents_per_ville: 10,
        seed: 5,
    });
    village.run_lockstep(0, start, |_, _, _, _| {});
    let program = Arc::new(VillageProgram::with_step_offset(village, start));
    let initial = program.initial_positions();
    let mut sched = Scheduler::new_with_history(
        Arc::new(GridSpace::new(100, 140)),
        RuleParams::genagent(),
        DependencyPolicy::Spatiotemporal,
        Arc::new(Db::new()),
        &initial,
        Step(40),
        true,
    )
    .unwrap();
    let mut ckpt = Checkpointer::new(&dir, 5, 1);
    let mut hist_sizes = Vec::new();
    {
        let program = Arc::clone(&program);
        let mut hook_fn = |sched: &mut Scheduler<GridSpace>| -> Result<(), EngineError> {
            sched.evict_history()?;
            hist_sizes.push(sched.graph().history_records());
            let committed = sched.graph().min_step().0;
            let builder = checkpoint::snapshot_run(sched, start, Some(program.capture_state()));
            ckpt.write(committed, &builder)?;
            Ok(())
        };
        run_threaded_with_checkpoints(
            &mut sched,
            Arc::clone(&program),
            Arc::new(InstantBackend::new()),
            ThreadedConfig::default(),
            Some(CheckpointHook {
                every_steps: 5,
                f: &mut hook_fn,
            }),
        )
        .unwrap();
    }
    // Windowed history: resident records stay O(agents × window), far
    // below the O(agents × horizon) 10 × 41 a no-eviction run retains.
    let max_resident = *hist_sizes.iter().max().unwrap();
    assert!(
        max_resident < 10 * 20,
        "history should be windowed, saw {max_resident} records"
    );
    let oracle = Arc::try_unwrap(program).unwrap().into_village();

    let snap = Snapshot::load(ckpt.last_path().unwrap()).unwrap();
    let (meta, mut sched2) = checkpoint::resume(&snap, None, None).unwrap();
    let village = Village::restore(snap.section(SECTION_WORLD).unwrap()).unwrap();
    let program = Arc::new(VillageProgram::with_step_offset(village, meta.step_offset));
    run_threaded(
        &mut sched2,
        Arc::clone(&program),
        Arc::new(InstantBackend::new()),
        ThreadedConfig::default(),
    )
    .unwrap();
    let resumed = Arc::try_unwrap(program).unwrap().into_village();
    assert_worlds_equal(&oracle, &resumed);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn des_replay_resumes_from_snapshot_position_exact() {
    // Interrupt a trace replay at half the horizon under the DES
    // executor, snapshot, resume to the full target, and compare against
    // the trace's own positions — the equivalence suite's oracle.
    use ai_metropolis::core::exec::sim::{run_sim, SimConfig};
    use ai_metropolis::core::workload::Workload;
    use ai_metropolis::llm::{presets, ServerConfig, SimServer};
    use ai_metropolis::trace::gen;

    let trace = gen::generate(&GenConfig {
        villes: 1,
        agents_per_ville: 12,
        seed: 21,
        window_start: clock_to_step(10, 0),
        window_len: 60,
    });
    let meta = trace.meta().clone();
    let initial: Vec<Point> = (0..meta.num_agents)
        .map(|a| trace.initial_position(a))
        .collect();
    let space = || Arc::new(GridSpace::new(meta.map_width, meta.map_height));
    let params = RuleParams::new(meta.radius_p, meta.max_vel);
    let half = Step(meta.num_steps / 2);
    let full = Workload::target_step(&trace);

    // Phase 1: run to the interruption point, then snapshot (the DES
    // executor returns quiesced — everything through `half` committed).
    let mut sched = Scheduler::new_with_history(
        space(),
        params,
        DependencyPolicy::Spatiotemporal,
        Arc::new(Db::new()),
        &initial,
        half,
        true,
    )
    .unwrap();
    let mut server = SimServer::new(ServerConfig::from_preset(presets::tiny_test(), 2, true));
    run_sim(&mut sched, &trace, &mut server, &SimConfig::default()).unwrap();
    assert!(sched.is_done());
    sched.evict_history().unwrap();
    let bytes = checkpoint::snapshot_run(&sched, meta.start_step, None)
        .to_bytes()
        .unwrap();

    // Phase 2: resume from the snapshot with the full-horizon target.
    let snap = Snapshot::from_bytes(bytes).unwrap();
    let (cmeta, mut resumed) = checkpoint::resume(&snap, None, Some(full)).unwrap();
    assert_eq!(cmeta.min_step, half.0);
    assert!(!resumed.is_done());
    let mut server = SimServer::new(ServerConfig::from_preset(presets::tiny_test(), 2, true));
    run_sim(&mut resumed, &trace, &mut server, &SimConfig::default()).unwrap();
    assert!(resumed.is_done());
    assert!(resumed.graph().validate().is_ok());
    for a in 0..meta.num_agents {
        assert_eq!(
            resumed.graph().pos(AgentId(a)),
            trace.position_after(a, meta.num_steps - 1),
            "agent {a} ended in the wrong place after resume"
        );
    }
}
