//! Cross-crate integration of the §6 extensions: speculative execution
//! over real world-generated traces, speculation on a non-Euclidean
//! space, and the hybrid interactive driver against a replayed village.

use std::sync::Arc;

use ai_metropolis::core::exec::hybrid::{run_hybrid_sim, InteractiveLoad};
use ai_metropolis::core::exec::sim::{run_sim, SimConfig};
use ai_metropolis::core::spec::{run_spec_sim, SpecParams, SpecScheduler};
use ai_metropolis::core::workload::Workload;
use ai_metropolis::core::Step;
use ai_metropolis::llm::{presets, ServerConfig, SimServer};
use ai_metropolis::prelude::*;
use ai_metropolis::store::Db;
use ai_metropolis::trace::gen;
use ai_metropolis::world::clock_to_step;

fn lunch_trace(villes: u32, seed: u64) -> Trace {
    gen::generate(&gen::GenConfig {
        villes,
        agents_per_ville: 15,
        seed,
        window_start: clock_to_step(12, 0),
        window_len: 90,
    })
}

fn conservative_run(trace: &Trace, replicas: u32) -> ai_metropolis::core::metrics::RunReport {
    let meta = trace.meta();
    let initial: Vec<Point> = (0..meta.num_agents)
        .map(|a| trace.initial_position(a))
        .collect();
    let mut sched = Scheduler::new(
        Arc::new(GridSpace::new(meta.map_width, meta.map_height)),
        RuleParams::new(meta.radius_p, meta.max_vel),
        DependencyPolicy::Spatiotemporal,
        Arc::new(Db::new()),
        &initial,
        Workload::target_step(trace),
    )
    .unwrap();
    let mut server = SimServer::new(ServerConfig::from_preset(
        presets::tiny_test(),
        replicas,
        true,
    ));
    run_sim(&mut sched, trace, &mut server, &SimConfig::default()).unwrap()
}

fn speculative_run(
    trace: &Trace,
    replicas: u32,
    runahead: u32,
) -> (ai_metropolis::core::metrics::RunReport, Vec<Point>) {
    let meta = trace.meta();
    let initial: Vec<Point> = (0..meta.num_agents)
        .map(|a| trace.initial_position(a))
        .collect();
    let mut sched = SpecScheduler::new(
        Arc::new(GridSpace::new(meta.map_width, meta.map_height)),
        RuleParams::new(meta.radius_p, meta.max_vel),
        SpecParams::new(runahead),
        Arc::new(Db::new()),
        &initial,
        Workload::target_step(trace),
    )
    .unwrap();
    let mut server = SimServer::new(ServerConfig::from_preset(
        presets::tiny_test(),
        replicas,
        true,
    ));
    let report = run_spec_sim(&mut sched, trace, &mut server, &SimConfig::default()).unwrap();
    let finals = (0..meta.num_agents)
        .map(|a| sched.graph().pos(ai_metropolis::core::AgentId(a)))
        .collect();
    (report, finals)
}

#[test]
fn speculative_replay_reproduces_trace_trajectories() {
    // Whatever speculation does along the way, the retired world must be
    // exactly the recorded one.
    let trace = lunch_trace(1, 21);
    let meta = trace.meta();
    let target = Workload::target_step(&trace);
    for runahead in [0u32, 2, 6] {
        let (report, finals) = speculative_run(&trace, 2, runahead);
        for a in 0..meta.num_agents {
            let expected =
                Workload::pos_after(&trace, ai_metropolis::core::AgentId(a), Step(target.0 - 1));
            assert_eq!(
                finals[a as usize], expected,
                "agent {a} diverged (runahead {runahead})"
            );
        }
        let spec = report.spec.expect("speculative runs carry spec stats");
        assert_eq!(
            spec.stats.retired_steps,
            meta.num_agents as u64 * target.0 as u64,
            "every agent-step must retire exactly once"
        );
    }
}

#[test]
fn speculation_stays_within_its_waste_of_conservative() {
    // Speculation is not a free lunch: on a small, contended server the
    // re-executed waste can eat the run-ahead gain (the §6 trade-off).
    // The honest bound is that any loss stays within the measured wasted
    // work plus scheduling noise.
    for seed in [3u64, 21, 77] {
        let trace = lunch_trace(1, seed);
        let cons = conservative_run(&trace, 2);
        let (spec, _) = speculative_run(&trace, 2, 4);
        let sr = spec.spec.as_ref().expect("spec stats");
        let waste = sr.waste_fraction(spec.total_input_tokens, spec.total_output_tokens);
        let bound = cons.makespan.as_secs_f64() * (1.0 + waste + 0.03);
        assert!(
            spec.makespan.as_secs_f64() <= bound,
            "seed {seed}: speculation {} exceeds conservative {} + waste {:.1}% + noise",
            spec.makespan,
            cons.makespan,
            waste * 100.0
        );
    }
}

#[test]
fn runahead_zero_matches_conservative_end_to_end() {
    let trace = lunch_trace(1, 5);
    let cons = conservative_run(&trace, 1);
    let (spec, _) = speculative_run(&trace, 1, 0);
    assert_eq!(cons.makespan, spec.makespan);
    assert_eq!(cons.total_calls, spec.total_calls);
    assert_eq!(spec.spec.unwrap().wasted_calls, 0);
}

#[test]
fn speculation_generalizes_to_social_space() {
    // §6: the same rules — and therefore the same speculative machinery —
    // work on hop distance. A ring of agents shuffling clockwise, with
    // one slow pole: neighbors speculate past it, validate or roll back,
    // and the run retires completely.
    use ai_metropolis::core::space::{NodeId, SocialSpace};
    use ai_metropolis::core::AgentId;

    let n = 24u32;
    let edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    let space = Arc::new(SocialSpace::new(n as usize, &edges));
    let initial: Vec<NodeId> = (0..8).map(|i| NodeId(i * 3)).collect();
    let mut sched = SpecScheduler::new(
        space,
        RuleParams::new(2, 1),
        SpecParams::new(3),
        Arc::new(Db::new()),
        &initial,
        Step(6),
    )
    .unwrap();
    // Drive by hand: hold agent 0's first cluster to create a laggard
    // pole, advance everyone else (shuffling one hop), then release.
    let mut held = None;
    let mut safety = 0;
    while !sched.is_done() {
        safety += 1;
        assert!(safety < 10_000, "failed to converge");
        let ready = sched.ready_clusters().unwrap();
        if ready.is_empty() && sched.inflight_len() == usize::from(held.is_some()) {
            // Only the held cluster remains: release it.
            if let Some(c) = held.take() {
                complete_shuffle(&mut sched, &c, n);
                continue;
            }
        }
        for c in ready {
            if held.is_none() && c.members.contains(&AgentId(0)) && c.step == Step(0) {
                held = Some(c);
                continue;
            }
            complete_shuffle(&mut sched, &c, n);
        }
    }
    assert!(sched.is_done());
    assert_eq!(sched.live_entries(), 0);
    for a in 0..8u32 {
        assert_eq!(sched.graph().step(AgentId(a)), Step(6));
    }

    fn complete_shuffle(
        sched: &mut SpecScheduler<SocialSpace>,
        c: &ai_metropolis::core::scheduler::Cluster,
        n: u32,
    ) {
        let pos: Vec<(AgentId, NodeId)> = c
            .members
            .iter()
            .map(|m| {
                let cur = sched.graph().pos(*m);
                (*m, NodeId((cur.0 + 1) % n))
            })
            .collect();
        sched.complete(&c.id, &pos).unwrap();
    }
}

#[test]
fn hybrid_driver_serves_chat_against_real_trace() {
    let trace = lunch_trace(1, 9);
    let meta = trace.meta();
    let initial: Vec<Point> = (0..meta.num_agents)
        .map(|a| trace.initial_position(a))
        .collect();
    let mut sched = Scheduler::new(
        Arc::new(GridSpace::new(meta.map_width, meta.map_height)),
        RuleParams::new(meta.radius_p, meta.max_vel),
        DependencyPolicy::Spatiotemporal,
        Arc::new(Db::new()),
        &initial,
        Workload::target_step(&trace),
    )
    .unwrap();
    let mut server = SimServer::new(
        ServerConfig::from_preset(presets::tiny_test(), 1, true).with_interactive_lane(2),
    );
    let load = InteractiveLoad::chat(50_000, 40, 13);
    let (report, chat) = run_hybrid_sim(
        &mut sched,
        &trace,
        &mut server,
        &load,
        &SimConfig::default(),
    )
    .unwrap();
    assert_eq!(chat.count, 40, "every chat turn answered");
    assert!(chat.p50_us <= chat.p95_us && chat.p95_us <= chat.max_us);
    assert_eq!(
        report.total_calls,
        Workload::total_calls(&trace),
        "chat traffic must not be double-counted as simulation calls"
    );
    assert!(sched.is_done());
    assert!(sched.graph().validate().is_ok());
}
