//! The paper's correctness claim: out-of-order execution **does not change
//! the simulation outcome** — it only reorders work that could never have
//! been observed (§3.2's causality argument).
//!
//! We verify it end to end on the live world: the same seeded village is
//! executed lock-step and under the spatiotemporal policy (threaded
//! runtime, real threads), and final positions, memories, and the full
//! world-event log must be identical.

use std::sync::Arc;

use ai_metropolis::core::exec::threaded::{run_threaded, ThreadedConfig};
use ai_metropolis::llm::{InstantBackend, LlmBackend};
use ai_metropolis::prelude::*;
use ai_metropolis::store::Db;
use ai_metropolis::world::program::VillageProgram;
use ai_metropolis::world::{clock_to_step, Village};

fn run_live(
    policy: DependencyPolicy,
    seed: u64,
    agents: u32,
    start: u32,
    steps: u32,
    workers: usize,
) -> Village {
    run_live_on(
        policy,
        seed,
        agents,
        start,
        steps,
        workers,
        Arc::new(InstantBackend::new()),
    )
}

fn run_live_on(
    policy: DependencyPolicy,
    seed: u64,
    agents: u32,
    start: u32,
    steps: u32,
    workers: usize,
    backend: Arc<dyn LlmBackend>,
) -> Village {
    let mut village = Village::generate(&VillageConfig {
        villes: 1,
        agents_per_ville: agents,
        seed,
    });
    if start > 0 {
        village.run_lockstep(0, start, |_, _, _, _| {});
    }
    let program = Arc::new(VillageProgram::with_step_offset(village, start));
    let initial = program.initial_positions();
    let mut sched = Scheduler::new(
        Arc::new(GridSpace::new(100, 140)),
        RuleParams::genagent(),
        policy,
        Arc::new(Db::new()),
        &initial,
        Step(steps),
    )
    .expect("scheduler");
    run_threaded(
        &mut sched,
        Arc::clone(&program),
        backend,
        ThreadedConfig {
            workers,
            priority_enabled: true,
        },
    )
    .expect("threaded run");
    assert!(sched.is_done());
    assert!(
        sched.graph().validate().is_ok(),
        "causality invariant violated"
    );
    Arc::try_unwrap(program)
        .expect("workers joined")
        .into_village()
}

fn assert_worlds_equal(a: &Village, b: &Village) {
    assert_eq!(a.positions(), b.positions(), "final positions diverged");
    assert_eq!(a.events(), b.events(), "world event logs diverged");
    for agent in 0..a.num_agents() as u32 {
        assert_eq!(
            a.conversation_cooldown(agent),
            b.conversation_cooldown(agent),
            "agent {agent} conversation state diverged"
        );
    }
}

#[test]
fn ooo_equals_lockstep_morning_commute() {
    // 8am: agents walk to work, perceive each other, converse.
    let start = clock_to_step(8, 0);
    let sync = run_live(DependencyPolicy::GlobalSync, 3, 15, start, 80, 4);
    let ooo = run_live(DependencyPolicy::Spatiotemporal, 3, 15, start, 80, 4);
    assert_worlds_equal(&sync, &ooo);
}

#[test]
fn ooo_equals_lockstep_lunch_rush() {
    // The conversation-heavy window where clusters actually form.
    let start = clock_to_step(12, 0);
    let sync = run_live(DependencyPolicy::GlobalSync, 9, 20, start, 60, 8);
    let ooo = run_live(DependencyPolicy::Spatiotemporal, 9, 20, start, 60, 8);
    assert_worlds_equal(&sync, &ooo);
    // Lunch must not be silent, or this test proves nothing.
    assert!(
        !sync.events().is_empty(),
        "expected events during the lunch window"
    );
}

#[test]
fn ooo_outcome_is_stable_across_worker_counts() {
    // Thread-schedule nondeterminism must never leak into the world.
    let start = clock_to_step(9, 0);
    let a = run_live(DependencyPolicy::Spatiotemporal, 5, 12, start, 50, 2);
    let b = run_live(DependencyPolicy::Spatiotemporal, 5, 12, start, 50, 8);
    assert_worlds_equal(&a, &b);
}

#[test]
fn heterogeneous_fleet_equals_lockstep_oracle() {
    // The fleet layer must be invisible to the simulation outcome: a
    // lock-step run on the instant backend is the oracle, and an
    // out-of-order run whose calls are scattered across a *heterogeneous*
    // fleet (a paced simulated engine + a latency-replay replica, behind
    // each shipped policy) must land in the identical world state —
    // routing and replica latencies reorder work, never observations.
    use ai_metropolis::llm::{
        presets, FleetConfig, LatencyProfile, ReplicaSpec, RoutePolicyKind, ServerConfig,
    };

    let start = clock_to_step(12, 0);
    let oracle = run_live(DependencyPolicy::GlobalSync, 11, 12, start, 50, 4);
    let mut profile = LatencyProfile::new("equivalence");
    for i in 0..16u64 {
        profile.push(ai_metropolis::llm::CallKind::Plan, 2_000 + i * 500);
        profile.push(ai_metropolis::llm::CallKind::Converse, 1_000 + i * 300);
    }
    for policy in RoutePolicyKind::ALL {
        let fleet = Arc::new(
            FleetConfig::new("equiv", policy)
                .with_replica(ReplicaSpec::sim(
                    ServerConfig::from_preset(presets::tiny_test(), 1, true),
                    500_000.0,
                ))
                .with_replica(
                    ReplicaSpec::replay(profile.clone(), 3, Some(500_000.0)).interactive(),
                )
                .build(),
        );
        let ooo = run_live_on(
            DependencyPolicy::Spatiotemporal,
            11,
            12,
            start,
            50,
            8,
            Arc::clone(&fleet) as Arc<dyn LlmBackend>,
        );
        assert_worlds_equal(&oracle, &ooo);
        let m = fleet.metrics();
        assert!(
            m.total_served() > 0,
            "{policy}: the run must have gone through the fleet"
        );
    }
}

#[test]
fn ooo_equals_lockstep_thousand_agents() {
    // The scaling regime the spatial index exists for: 1000 agents across
    // 40 concatenated villes, out-of-order under the threaded runtime,
    // checked world-for-world against the lock-step oracle. The warmed-up
    // morning world is built once and cloned per arm (the warm-up is the
    // expensive part at this scale).
    let start = clock_to_step(8, 0);
    let mut base = Village::generate(&VillageConfig {
        villes: 40,
        agents_per_ville: 25,
        seed: 17,
    });
    assert_eq!(base.num_agents(), 1000);
    base.run_lockstep(0, start, |_, _, _, _| {});
    let space = base.space();

    let run = |village: Village, policy: DependencyPolicy, workers: usize| -> Village {
        let program = Arc::new(VillageProgram::with_step_offset(village, start));
        let initial = program.initial_positions();
        let mut sched = Scheduler::new(
            Arc::new(space),
            RuleParams::genagent(),
            policy,
            Arc::new(Db::new()),
            &initial,
            Step(10),
        )
        .expect("scheduler");
        run_threaded(
            &mut sched,
            Arc::clone(&program),
            Arc::new(InstantBackend::new()),
            ThreadedConfig {
                workers,
                priority_enabled: true,
            },
        )
        .expect("threaded run");
        assert!(sched.is_done());
        assert!(
            sched.graph().validate().is_ok(),
            "causality invariant violated at 1000 agents"
        );
        Arc::try_unwrap(program)
            .expect("workers joined")
            .into_village()
    };

    let sync = run(base.clone(), DependencyPolicy::GlobalSync, 4);
    let ooo = run(base, DependencyPolicy::Spatiotemporal, 8);
    assert_worlds_equal(&sync, &ooo);
    assert!(
        !sync.events().is_empty(),
        "a 1000-agent morning must produce events, or this proves nothing"
    );
}

#[test]
fn fault_injected_fleet_equals_lockstep_thousand_agents() {
    // Resilience must be invisible to the simulation outcome: a
    // 1000-agent out-of-order run whose serving fleet loses a replica
    // mid-run (fail-after-N fault plan) must land in the *identical*
    // world state as the lock-step oracle, under every shipped routing
    // policy. Retries and shedding may move latency around — never
    // state: the fault gate runs before the backend, so a failed attempt
    // provably produced nothing to duplicate, and the retried call
    // commits exactly once in the worker that issued it.
    use ai_metropolis::llm::{
        FaultPlan, FleetConfig, LatencyProfile, ReplicaSpec, RoutePolicyKind,
    };

    let start = clock_to_step(8, 0);
    let mut base = Village::generate(&VillageConfig {
        villes: 40,
        agents_per_ville: 25,
        seed: 17,
    });
    assert_eq!(base.num_agents(), 1000);
    base.run_lockstep(0, start, |_, _, _, _| {});
    let space = base.space();

    let run = |village: Village,
               policy: DependencyPolicy,
               workers: usize,
               backend: Arc<dyn LlmBackend>|
     -> Village {
        let program = Arc::new(VillageProgram::with_step_offset(village, start));
        let initial = program.initial_positions();
        let mut sched = Scheduler::new(
            Arc::new(space),
            RuleParams::genagent(),
            policy,
            Arc::new(Db::new()),
            &initial,
            Step(10),
        )
        .expect("scheduler");
        run_threaded(
            &mut sched,
            Arc::clone(&program),
            backend,
            ThreadedConfig {
                workers,
                priority_enabled: true,
            },
        )
        .expect("threaded run");
        assert!(sched.is_done());
        assert!(
            sched.graph().validate().is_ok(),
            "causality invariant violated at 1000 agents"
        );
        Arc::try_unwrap(program)
            .expect("workers joined")
            .into_village()
    };

    let oracle = run(
        base.clone(),
        DependencyPolicy::GlobalSync,
        4,
        Arc::new(InstantBackend::new()),
    );
    assert!(
        !oracle.events().is_empty(),
        "a 1000-agent morning must produce events, or this proves nothing"
    );

    for policy in RoutePolicyKind::ALL {
        // Replica 0 serves exactly 150 attempts and then dies — well
        // into the run for every policy (each sends it ≥ a third of the
        // ~1.2k calls), well before the end.
        let fleet = Arc::new(
            FleetConfig::new("fault-equiv", policy)
                .with_replica(ReplicaSpec::instant().with_fault(FaultPlan::none().fail_after(150)))
                .with_replica(ReplicaSpec::replay(
                    LatencyProfile::constant("equiv", 5_000),
                    3,
                    None,
                ))
                .with_replica(ReplicaSpec::instant().interactive())
                .build(),
        );
        let ooo = run(
            base.clone(),
            DependencyPolicy::Spatiotemporal,
            8,
            Arc::clone(&fleet) as Arc<dyn LlmBackend>,
        );
        assert_worlds_equal(&oracle, &ooo);
        let m = fleet.metrics();
        assert_eq!(
            m.replicas[0].served, 150,
            "{policy}: replica 0 must serve exactly its fail-after budget: {m:?}"
        );
        assert!(m.replicas[0].down, "{policy}: replica 0 must be down");
        assert_eq!(
            m.total_failed(),
            1,
            "{policy}: the failure costs exactly one retried attempt: {m:?}"
        );
        assert!(
            m.replicas[1].served + m.replicas[2].served > 0,
            "{policy}: survivors must absorb the shed load: {m:?}"
        );
    }
}

#[test]
fn replayed_positions_match_generated_trace_thousand_agents() {
    // Same scale under the discrete-event executor: a 1000-agent trace
    // replayed out of order through the scheduler must land every agent
    // exactly where the lock-step trace says it ends.
    use ai_metropolis::core::exec::sim::{run_sim, SimConfig};
    use ai_metropolis::core::workload::Workload;
    use ai_metropolis::llm::{presets, ServerConfig, SimServer};
    use ai_metropolis::trace::gen;

    let trace = gen::generate(&GenConfig {
        villes: 40,
        agents_per_ville: 25,
        seed: 33,
        window_start: clock_to_step(8, 0),
        window_len: 30,
    });
    let meta = trace.meta().clone();
    assert_eq!(meta.num_agents, 1000);
    let initial: Vec<Point> = (0..meta.num_agents)
        .map(|a| trace.initial_position(a))
        .collect();
    let mut sched = Scheduler::new(
        Arc::new(GridSpace::new(meta.map_width, meta.map_height)),
        RuleParams::new(meta.radius_p, meta.max_vel),
        DependencyPolicy::Spatiotemporal,
        Arc::new(Db::new()),
        &initial,
        Workload::target_step(&trace),
    )
    .unwrap();
    let mut server = SimServer::new(ServerConfig::from_preset(presets::tiny_test(), 8, true));
    run_sim(&mut sched, &trace, &mut server, &SimConfig::default()).unwrap();
    assert!(sched.is_done());
    assert!(sched.graph().validate().is_ok());
    for a in 0..meta.num_agents {
        assert_eq!(
            sched.graph().pos(AgentId(a)),
            trace.position_after(a, meta.num_steps - 1),
            "agent {a} ended in the wrong place"
        );
    }
}

#[test]
fn replayed_positions_match_generated_trace() {
    // The DES executor feeds trace movements back through the scheduler;
    // after a metropolis replay the dependency graph's final positions must
    // equal the trace's final row (i.e. replay is faithful).
    use ai_metropolis::core::exec::sim::{run_sim, SimConfig};
    use ai_metropolis::core::workload::Workload;
    use ai_metropolis::llm::{presets, ServerConfig, SimServer};
    use ai_metropolis::trace::gen;

    let trace = gen::generate(&GenConfig {
        villes: 1,
        agents_per_ville: 12,
        seed: 21,
        window_start: clock_to_step(10, 0),
        window_len: 60,
    });
    let meta = trace.meta().clone();
    let initial: Vec<Point> = (0..meta.num_agents)
        .map(|a| trace.initial_position(a))
        .collect();
    let mut sched = Scheduler::new(
        Arc::new(GridSpace::new(meta.map_width, meta.map_height)),
        RuleParams::new(meta.radius_p, meta.max_vel),
        DependencyPolicy::Spatiotemporal,
        Arc::new(Db::new()),
        &initial,
        Workload::target_step(&trace),
    )
    .unwrap();
    let mut server = SimServer::new(ServerConfig::from_preset(presets::tiny_test(), 2, true));
    run_sim(&mut sched, &trace, &mut server, &SimConfig::default()).unwrap();
    for a in 0..meta.num_agents {
        assert_eq!(
            sched.graph().pos(AgentId(a)),
            trace.position_after(a, meta.num_steps - 1),
            "agent {a} ended in the wrong place"
        );
    }
}
