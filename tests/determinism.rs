//! Bit-level reproducibility of the whole pipeline: same seed → same
//! trace → same replay report, across both executors.

use std::sync::Arc;

use ai_metropolis::core::exec::sim::{run_sim, SimConfig};
use ai_metropolis::core::exec::threaded::{run_threaded, ThreadedConfig};
use ai_metropolis::core::workload::Workload;
use ai_metropolis::llm::{presets, InstantBackend, LlmBackend, ServerConfig, SimServer};
use ai_metropolis::prelude::*;
use ai_metropolis::store::Db;
use ai_metropolis::trace::gen;
use ai_metropolis::world::clock_to_step;
use ai_metropolis::world::program::VillageProgram;

fn cfg() -> GenConfig {
    GenConfig {
        villes: 1,
        agents_per_ville: 12,
        seed: 77,
        window_start: clock_to_step(9, 30),
        window_len: 90,
    }
}

#[test]
fn trace_generation_is_reproducible() {
    assert_eq!(gen::generate(&cfg()), gen::generate(&cfg()));
}

#[test]
fn des_replay_is_reproducible() {
    let trace = gen::generate(&cfg());
    let run = || {
        let meta = trace.meta();
        let initial: Vec<Point> = (0..meta.num_agents)
            .map(|a| trace.initial_position(a))
            .collect();
        let mut sched = Scheduler::new(
            Arc::new(GridSpace::new(meta.map_width, meta.map_height)),
            RuleParams::new(meta.radius_p, meta.max_vel),
            DependencyPolicy::Spatiotemporal,
            Arc::new(Db::new()),
            &initial,
            Workload::target_step(&trace),
        )
        .unwrap();
        let mut server =
            SimServer::new(ServerConfig::from_preset(presets::l4_llama3_8b(), 2, true));
        run_sim(&mut sched, &trace, &mut server, &SimConfig::default()).unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.total_calls, b.total_calls);
    assert_eq!(a.server, b.server);
    assert_eq!(a.sched, b.sched);
}

#[test]
fn threaded_world_outcome_is_reproducible() {
    let run = || {
        let village = Village::generate(&VillageConfig {
            villes: 1,
            agents_per_ville: 10,
            seed: 31,
        });
        let start = clock_to_step(8, 30);
        let mut village = village;
        village.run_lockstep(0, start, |_, _, _, _| {});
        let program = Arc::new(VillageProgram::with_step_offset(village, start));
        let initial = program.initial_positions();
        let mut sched = Scheduler::new(
            Arc::new(GridSpace::new(100, 140)),
            RuleParams::genagent(),
            DependencyPolicy::Spatiotemporal,
            Arc::new(Db::new()),
            &initial,
            Step(40),
        )
        .unwrap();
        let backend: Arc<dyn LlmBackend> = Arc::new(InstantBackend::new());
        run_threaded(
            &mut sched,
            Arc::clone(&program),
            backend,
            ThreadedConfig::default(),
        )
        .unwrap();
        let v = Arc::try_unwrap(program).expect("joined").into_village();
        (v.positions(), v.events().to_vec())
    };
    assert_eq!(run(), run());
}

#[test]
fn different_seeds_give_different_days() {
    let mut a = cfg();
    let mut b = cfg();
    a.seed = 1;
    b.seed = 2;
    assert_ne!(gen::generate(&a), gen::generate(&b));
}
