//! Worker-crash recovery end to end: a distributed run that loses a
//! shard worker mid-flight must heal from that worker's **own database**
//! (the `Recover` handshake) and land in exactly the world an
//! uninterrupted run produces. This is the distributed analogue of
//! `checkpoint_resume.rs` — there the whole run resumes from a snapshot;
//! here one worker dies and is rebuilt while the rest of the fleet keeps
//! its state.

use std::sync::Arc;

use ai_metropolis::core::depgraph::{DepGraph, EdgeMode, GraphOptions};
use ai_metropolis::core::dist::DistTracker;
use ai_metropolis::core::exec::threaded::run_threaded_with_checkpoints;
use ai_metropolis::core::shard::StripShardMap;
use ai_metropolis::llm::InstantBackend;
use ai_metropolis::prelude::*;
use ai_metropolis::store::Db;
use ai_metropolis::world::program::VillageProgram;
use ai_metropolis::world::{clock_to_step, Village};

fn assert_worlds_equal(a: &Village, b: &Village) {
    assert_eq!(a.positions(), b.positions(), "final positions diverged");
    assert_eq!(a.events(), b.events(), "world event logs diverged");
    for agent in 0..a.num_agents() as u32 {
        assert_eq!(
            a.conversation_cooldown(agent),
            b.conversation_cooldown(agent),
            "agent {agent} conversation state diverged"
        );
    }
}

#[test]
fn worker_killed_mid_run_recovers_from_its_own_store() {
    let start = clock_to_step(12, 0);
    let steps = 40u32;
    let shards = 4usize;
    let mut village = Village::generate(&VillageConfig {
        villes: 1,
        agents_per_ville: 15,
        seed: 9,
    });
    village.run_lockstep(0, start, |_, _, _, _| {});

    // Uninterrupted oracle: the same world under plain lock-step.
    let mut oracle = village.clone();
    oracle.run_lockstep(start, start + steps, |_, _, _, _| {});

    // Distributed run: a worker per strip, fault injection at the first
    // quiesced hook point — kill a worker (severing its link without any
    // shutdown handshake), then respawn it from its retained database.
    let space = Arc::new(GridSpace::new(100, 140));
    let program = Arc::new(VillageProgram::with_step_offset(village, start));
    let initial = program.initial_positions();
    let graph = DistTracker::new(
        Arc::clone(&space),
        RuleParams::genagent(),
        &initial,
        Arc::new(StripShardMap::new(100, shards)),
        GraphOptions {
            edges: EdgeMode::Maintained,
            history: true,
        },
    )
    .expect("distributed tracker");
    let mut sched = Scheduler::from_graph(graph, DependencyPolicy::Spatiotemporal, Step(steps));
    let mut crashes = 0u32;
    {
        let mut hook_fn =
            |sched: &mut Scheduler<GridSpace, DistTracker<GridSpace>>| -> Result<(), EngineError> {
                // Crash a different worker at each firing; every one must
                // rebuild its members, index, and step bounds from its own
                // store and agree with the controller mirror.
                let victim = crashes as usize % sched.graph().num_shards();
                sched.graph_mut().kill_worker(victim);
                sched
                    .graph_mut()
                    .respawn_worker(victim)
                    .expect("worker must recover from its own database");
                sched.graph_mut().check_invariants();
                crashes += 1;
                Ok(())
            };
        run_threaded_with_checkpoints(
            &mut sched,
            Arc::clone(&program),
            Arc::new(InstantBackend::new()),
            ThreadedConfig {
                workers: 4,
                priority_enabled: true,
            },
            Some(CheckpointHook {
                every_steps: 10,
                f: &mut hook_fn,
            }),
        )
        .expect("distributed run with fault injection");
    }
    assert!(sched.is_done());
    assert!(crashes >= 2, "fault injection never fired ({crashes})");
    assert!(sched.graph().validate().is_ok());
    sched.graph_mut().check_invariants();

    let recovered = Arc::try_unwrap(program)
        .expect("workers joined")
        .into_village();
    assert_worlds_equal(&oracle, &recovered);
    assert!(
        !oracle.events().is_empty(),
        "a lunch window must produce events, or this proves nothing"
    );
}

#[test]
fn severed_worker_fails_fast_and_respawn_heals() {
    // Direct protocol-level check: once a link is severed, operations
    // touching that worker fail (no partial state), and after respawn the
    // tracker is again exactly equal to a single-shard oracle fed the
    // same operations.
    let space = Arc::new(GridSpace::new(32, 32));
    let params = RuleParams::new(2, 1);
    let options = GraphOptions {
        edges: EdgeMode::Maintained,
        history: true,
    };
    let initial: Vec<Point> = (0..8).map(|i| Point::new(i * 4, 16)).collect();
    let mut dist = DistTracker::new(
        Arc::clone(&space),
        params,
        &initial,
        Arc::new(StripShardMap::new(32, 4)),
        options,
    )
    .unwrap();
    let mut single =
        DepGraph::new_with_options(space, params, Arc::new(Db::new()), &initial, options).unwrap();

    // Warm up with a few committed steps on both sides.
    for round in 0..3 {
        let updates: Vec<(AgentId, Point)> = (0..8)
            .map(|i| {
                let a = AgentId(i);
                let cur = dist.pos(a);
                (a, Point::new(cur.x + (round % 2), cur.y))
            })
            .collect();
        dist.advance(&updates).unwrap();
        single.advance(&updates).unwrap();
    }

    let victim_agent = AgentId(0);
    let victim = dist.shard_of_agent(victim_agent);
    dist.kill_worker(victim);
    let cur = dist.pos(victim_agent);
    let err = dist
        .advance(&[(victim_agent, Point::new(cur.x + 1, cur.y))])
        .expect_err("an advance through a dead worker must fail");
    assert!(
        err.to_string().contains("down"),
        "unexpected error shape: {err}"
    );

    dist.respawn_worker(victim).expect("respawn from own store");
    dist.check_invariants();

    // The failed advance committed nothing: both trackers still agree,
    // and the run continues normally after the respawn.
    assert_eq!(dist.snapshot(), single.snapshot());
    let cur = dist.pos(victim_agent);
    let moved = Point::new(cur.x + 1, cur.y);
    dist.advance(&[(victim_agent, moved)]).unwrap();
    single.advance(&[(victim_agent, moved)]).unwrap();
    assert_eq!(dist.snapshot(), single.snapshot());
    assert_eq!(dist.history_records(), single.history_records());
}
