//! Trace persistence: generated traces round-trip through the file codec
//! and window extraction composes with replay.

use ai_metropolis::core::workload::Workload;
use ai_metropolis::core::{AgentId, Step};
use ai_metropolis::prelude::*;
use ai_metropolis::trace::{codec, gen, stats};
use ai_metropolis::world::clock_to_step;

fn sample() -> Trace {
    gen::generate(&GenConfig {
        villes: 2,
        agents_per_ville: 10,
        seed: 55,
        window_start: clock_to_step(12, 0),
        window_len: 60,
    })
}

#[test]
fn codec_roundtrip_on_generated_trace() {
    let t = sample();
    let mut buf = Vec::new();
    codec::write_trace(&t, &mut buf).unwrap();
    let back = codec::read_trace(&mut std::io::Cursor::new(&buf)).unwrap();
    assert_eq!(t, back);
}

#[test]
fn file_roundtrip_via_tempdir() {
    let t = sample();
    let dir = std::env::temp_dir().join("aim-integration-traces");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("sample.trc");
    codec::save(&t, &path).unwrap();
    let back = codec::load(&path).unwrap();
    assert_eq!(t, back);
    std::fs::remove_file(path).ok();
}

#[test]
fn window_matches_direct_generation_statistics() {
    // Slicing an hour out of a day equals generating that hour directly
    // (same world, same seed, same warm-up path).
    let day = gen::generate(&GenConfig {
        villes: 1,
        agents_per_ville: 10,
        seed: 3,
        window_start: 0,
        window_len: clock_to_step(14, 0),
    });
    let sliced = day.window(clock_to_step(12, 0), 360, "sliced");
    let direct = gen::generate(&GenConfig {
        villes: 1,
        agents_per_ville: 10,
        seed: 3,
        window_start: clock_to_step(12, 0),
        window_len: 360,
    });
    assert_eq!(sliced.calls().len(), direct.calls().len());
    for a in 0..10 {
        assert_eq!(sliced.initial_position(a), direct.initial_position(a));
        assert_eq!(sliced.position_after(a, 359), direct.position_after(a, 359));
    }
    let ss = stats::compute(&sliced);
    let sd = stats::compute(&direct);
    assert_eq!(ss.total_calls, sd.total_calls);
    assert_eq!(ss.calls_per_kind, sd.calls_per_kind);
}

#[test]
fn workload_view_is_consistent_with_raw_trace() {
    let t = sample();
    let mut from_chains = 0u64;
    for a in 0..t.meta().num_agents {
        for s in 0..t.meta().num_steps {
            from_chains += Workload::calls(&t, AgentId(a), Step(s)).len() as u64;
        }
    }
    assert_eq!(from_chains, t.total_calls());
    assert_eq!(from_chains, t.calls().len() as u64);
}
