//! The two executors agree: replaying the same trace through the
//! discrete-event simulator and through the threaded runtime (with a
//! trace-driven `ClusterProgram`) performs the same scheduling work.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ai_metropolis::core::exec::sim::{run_sim, SimConfig};
use ai_metropolis::core::exec::threaded::{run_threaded, ClusterProgram, ThreadedConfig};
use ai_metropolis::core::scheduler::Cluster;
use ai_metropolis::core::workload::Workload;
use ai_metropolis::core::{AgentId, Step};
use ai_metropolis::llm::{
    presets, InstantBackend, LlmBackend, LlmRequest, RequestId, ServerConfig, SimServer,
};
use ai_metropolis::prelude::*;
use ai_metropolis::store::Db;
use ai_metropolis::trace::gen;
use ai_metropolis::world::clock_to_step;

/// Replays a recorded trace through the threaded runtime.
struct TraceProgram {
    trace: Trace,
    req_ids: AtomicU64,
    calls: AtomicU64,
}

impl ClusterProgram<GridSpace> for TraceProgram {
    type Action = Point;

    fn agent_step(&self, agent: AgentId, step: Step, llm: &dyn LlmBackend) -> Point {
        for spec in Workload::calls(&self.trace, agent, step) {
            let id = RequestId(self.req_ids.fetch_add(1, Ordering::Relaxed));
            llm.call(&LlmRequest::new(
                id,
                agent.0,
                step.priority(),
                spec.input_tokens,
                spec.output_tokens,
                spec.kind,
            ));
            self.calls.fetch_add(1, Ordering::Relaxed);
        }
        Workload::pos_after(&self.trace, agent, step)
    }

    fn commit(&self, _cluster: &Cluster, actions: Vec<(AgentId, Point)>) -> Vec<(AgentId, Point)> {
        actions
    }
}

fn mk_sched(trace: &Trace, policy: DependencyPolicy) -> Scheduler<GridSpace> {
    let meta = trace.meta();
    let initial: Vec<Point> = (0..meta.num_agents)
        .map(|a| trace.initial_position(a))
        .collect();
    Scheduler::new(
        Arc::new(GridSpace::new(meta.map_width, meta.map_height)),
        RuleParams::new(meta.radius_p, meta.max_vel),
        policy,
        Arc::new(Db::new()),
        &initial,
        Workload::target_step(trace),
    )
    .unwrap()
}

#[test]
fn same_scheduling_work_in_both_executors() {
    let trace = gen::generate(&GenConfig {
        villes: 1,
        agents_per_ville: 12,
        seed: 41,
        window_start: clock_to_step(10, 0),
        window_len: 50,
    });

    // Discrete-event replay.
    let mut des_sched = mk_sched(&trace, DependencyPolicy::Spatiotemporal);
    let mut server = SimServer::new(ServerConfig::from_preset(presets::tiny_test(), 2, true));
    let des = run_sim(&mut des_sched, &trace, &mut server, &SimConfig::default()).unwrap();

    // Threaded replay of the same trace.
    let mut thr_sched = mk_sched(&trace, DependencyPolicy::Spatiotemporal);
    let program = Arc::new(TraceProgram {
        trace: trace.clone(),
        req_ids: AtomicU64::new(0),
        calls: AtomicU64::new(0),
    });
    let backend: Arc<dyn LlmBackend> = Arc::new(InstantBackend::new());
    let thr = run_threaded(
        &mut thr_sched,
        Arc::clone(&program),
        backend,
        ThreadedConfig {
            workers: 6,
            priority_enabled: true,
        },
    )
    .unwrap();

    // Identical work, regardless of execution substrate.
    assert_eq!(des.total_calls, program.calls.load(Ordering::Relaxed));
    assert_eq!(des.sched.agent_steps, thr.agent_steps);
    // Final agent state identical.
    for a in 0..trace.meta().num_agents {
        assert_eq!(
            des_sched.graph().pos(AgentId(a)),
            thr_sched.graph().pos(AgentId(a))
        );
    }
    // Both satisfy the causality invariant at the end.
    assert!(des_sched.graph().validate().is_ok());
    assert!(thr_sched.graph().validate().is_ok());
}

#[test]
fn threaded_oracle_policy_also_completes() {
    let trace = gen::generate(&GenConfig {
        villes: 1,
        agents_per_ville: 8,
        seed: 43,
        window_start: clock_to_step(12, 0),
        window_len: 40,
    });
    let graph = Arc::new(ai_metropolis::trace::oracle::mine(&trace));
    let mut sched = mk_sched(&trace, DependencyPolicy::Oracle(graph));
    let program = Arc::new(TraceProgram {
        trace: trace.clone(),
        req_ids: AtomicU64::new(0),
        calls: AtomicU64::new(0),
    });
    let backend: Arc<dyn LlmBackend> = Arc::new(InstantBackend::new());
    let report = run_threaded(&mut sched, program, backend, ThreadedConfig::default()).unwrap();
    assert!(sched.is_done());
    assert_eq!(
        report.agent_steps,
        (trace.meta().num_agents * trace.meta().num_steps) as u64
    );
}
