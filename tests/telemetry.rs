//! Telemetry is an *observer*, not a participant: recording spans must
//! neither perturb scheduling nor invent work. Two properties pin that
//! down end to end:
//!
//! * **Determinism** — two identical seeded runs (one worker, instant
//!   backend) produce the identical order-normalized span structure:
//!   same span kinds with the same logical fields (agents, steps,
//!   cluster ids, request ids), same counters. Only timestamps may
//!   differ between runs; the *structure* of what happened may not.
//! * **Decomposition discriminates policies** — the paper's core claim
//!   (§3.2) is that out-of-order execution removes global-barrier
//!   waiting. Running the same village against the same latency replay
//!   under GlobalSync and Spatiotemporal, the telemetry's blocked
//!   category must be strictly smaller under OOO, and both runs'
//!   four-way decompositions must cover ≥95% of the agent-time budget.

use std::sync::Arc;

use ai_metropolis::core::telemetry::{RunTelemetry, Telemetry};
use ai_metropolis::llm::{InstantBackend, LatencyProfile, LlmBackend, ReplayBackend};
use ai_metropolis::prelude::*;
use ai_metropolis::store::Db;
use ai_metropolis::world::program::VillageProgram;
use ai_metropolis::world::{clock_to_step, Village};

/// Drives one observed village run and returns its unified telemetry.
fn observed_run(
    seed: u64,
    policy: DependencyPolicy,
    backend: Arc<dyn LlmBackend>,
    workers: usize,
    steps: u32,
) -> RunTelemetry {
    let start = clock_to_step(12, 0);
    let mut village = Village::generate(&VillageConfig {
        villes: 1,
        agents_per_ville: 12,
        seed,
    });
    village.run_lockstep(0, start, |_, _, _, _| {});
    let space = village.space();
    let program = Arc::new(VillageProgram::with_step_offset(village, start));
    let initial = program.initial_positions();
    let mut sched = Scheduler::new(
        Arc::new(space),
        RuleParams::genagent(),
        policy,
        Arc::new(Db::new()),
        &initial,
        Step(steps),
    )
    .expect("scheduler");
    let report = run_threaded_observed(
        &mut sched,
        program,
        backend,
        ThreadedConfig {
            workers,
            priority_enabled: true,
        },
        None,
        Some(Arc::new(Telemetry::new())),
    )
    .expect("observed run");
    assert!(sched.is_done());
    report.telemetry.expect("telemetry sink was installed")
}

/// The order-normalized span structure: every span reduced to its
/// logical content (kind + ids, no timestamps, no track), sorted. Two
/// runs that did the same work have equal structures even if workers
/// interleaved differently in time.
///
/// Barrier-join waits are excluded: a `Blocked { reason: Barrier }`
/// span exists only when a member's finish-to-join gap is ≥ 1 µs, so
/// its *presence* is itself a wall-clock measurement — unlike every
/// other kind, whose presence is decided by the scheduling logic.
fn structure(rt: &RunTelemetry) -> Vec<String> {
    use ai_metropolis::core::telemetry::{BlockReason, SpanKind};
    let mut kinds: Vec<String> = rt
        .spans
        .iter()
        .filter(|s| {
            !matches!(
                s.kind,
                SpanKind::Blocked {
                    reason: BlockReason::Barrier,
                    ..
                }
            )
        })
        .map(|s| format!("{:?}", s.kind))
        .collect();
    kinds.sort();
    kinds
}

#[test]
fn identical_seeded_runs_have_identical_span_structure() {
    let run = || {
        observed_run(
            7,
            DependencyPolicy::Spatiotemporal,
            Arc::new(InstantBackend::new()),
            1,
            30,
        )
    };
    let (a, b) = (run(), run());

    assert_eq!(a.agents, b.agents);
    assert_eq!(a.dropped, 0, "test-sized runs must not overflow the buffer");
    assert_eq!(b.dropped, 0);
    assert_eq!(a.counters, b.counters, "counters diverged between runs");
    assert_eq!(
        structure(&a),
        structure(&b),
        "span structure diverged between identical seeded runs"
    );
    assert!(!a.spans.is_empty(), "an observed run records spans");
    assert!(
        a.decomposition.coverage() >= 0.95,
        "decomposition must cover ≥95% of the budget: {:?}",
        a.decomposition
    );
}

#[test]
fn ooo_blocks_strictly_less_than_lockstep() {
    // A latency replay with a heavy tail: most calls are fast, one in
    // four drags 12 ms. Under GlobalSync every agent waits for the
    // slowest conversation of the step; under Spatiotemporal only
    // spatial neighbors do.
    let profile = || {
        let mut p = LatencyProfile::new("tailed");
        for us in [200, 500, 1_000, 12_000] {
            p.push(ai_metropolis::llm::CallKind::Plan, us);
        }
        p
    };
    let steps = 8;
    let lockstep = observed_run(
        7,
        DependencyPolicy::GlobalSync,
        Arc::new(ReplayBackend::new(profile(), 64, 1.0)),
        4,
        steps,
    );
    let ooo = observed_run(
        7,
        DependencyPolicy::Spatiotemporal,
        Arc::new(ReplayBackend::new(profile(), 64, 1.0)),
        4,
        steps,
    );

    assert!(
        lockstep.decomposition.blocked_us > 0,
        "global barriers over a tailed replay must record blocked time: {:?}",
        lockstep.decomposition
    );
    assert!(
        ooo.decomposition.blocked_us < lockstep.decomposition.blocked_us,
        "OOO must block strictly less than lockstep: ooo {:?} vs lockstep {:?}",
        ooo.decomposition,
        lockstep.decomposition
    );
    for rt in [&lockstep, &ooo] {
        assert!(
            rt.decomposition.coverage() >= 0.95,
            "decomposition must cover ≥95% of the budget: {:?}",
            rt.decomposition
        );
    }
}
