//! The massive-agent acceptance bar: a **10,000+-agent city** replayed
//! under the threaded out-of-order executor on a sharded dependency
//! tracker must land in exactly the world a lock-step run produces —
//! positions, event log, conversation state. This is the OpenCity-scale
//! regime the `aim_core::shard` subsystem exists for; everything below
//! 10k is covered by the (cheaper) equivalence suite.

use std::sync::Arc;

use ai_metropolis::core::depgraph::{EdgeMode, GraphOptions};
use ai_metropolis::core::dist::DistTracker;
use ai_metropolis::core::exec::threaded::{run_threaded, ThreadedConfig};
use ai_metropolis::core::shard::ShardedDepGraph;
use ai_metropolis::llm::InstantBackend;
use ai_metropolis::prelude::*;
use ai_metropolis::store::Db;
use ai_metropolis::world::city::{self, CityConfig};
use ai_metropolis::world::program::VillageProgram;
use ai_metropolis::world::{clock_to_step, Village};

#[test]
fn ten_thousand_agent_city_ooo_equals_lockstep() {
    let cfg = CityConfig::default();
    assert!(cfg.agents >= 10_000, "the bar is 10k+ agents");
    let base = city::generate(&cfg);
    assert_eq!(base.num_agents(), cfg.agents as usize);

    // Cold-start the workday: at 8am every agent's first plan fires its
    // wake chain, housemates couple into per-house clusters, early
    // commuters start walking — plenty of dependency structure, no
    // multi-hour warm-up.
    let start = clock_to_step(8, 0);
    let steps = 6u32;

    // Arm 1: the lock-step oracle (global synchronization, the paper's
    // Algorithm 1 semantics via the same plan/commit pipeline).
    let mut lockstep = base.clone();
    lockstep.run_lockstep(start, start + steps, |_, _, _, _| {});

    // Arm 2: out-of-order on the threaded runtime over a 16-shard
    // tracker.
    let shards = 16usize;
    let space = base.space();
    let program = Arc::new(VillageProgram::with_step_offset(base, start));
    let initial = program.initial_positions();
    let graph = ShardedDepGraph::new(
        Arc::new(space),
        RuleParams::genagent(),
        Arc::new(Db::new()),
        &initial,
        Arc::new(cfg.shard_map(shards)),
    )
    .expect("sharded graph");
    let mut sched = Scheduler::from_graph(graph, DependencyPolicy::Spatiotemporal, Step(steps));
    let report = run_threaded(
        &mut sched,
        Arc::clone(&program),
        Arc::new(InstantBackend::new()),
        ThreadedConfig {
            workers: 4,
            priority_enabled: true,
        },
    )
    .expect("threaded sharded run");
    assert!(sched.is_done());
    assert_eq!(report.agent_steps, cfg.agents as u64 * steps as u64);
    assert!(
        sched.graph().validate().is_ok(),
        "causality invariant violated at 10k agents"
    );
    sched.graph().check_invariants();
    assert_eq!(sched.graph().num_shards(), shards);
    // Strip sharding must actually spread the population.
    let populated = (0..shards)
        .filter(|&j| !sched.graph().members(j).is_empty())
        .count();
    assert!(populated >= shards / 2, "only {populated} shards populated");

    let ooo = Arc::try_unwrap(program)
        .expect("workers joined")
        .into_village();

    // World-for-world equality with the lock-step oracle.
    assert_eq!(
        ooo.positions(),
        lockstep.positions(),
        "final positions diverged"
    );
    assert_eq!(ooo.events(), lockstep.events(), "world event logs diverged");
    for agent in 0..cfg.agents {
        assert_eq!(
            ooo.conversation_cooldown(agent),
            lockstep.conversation_cooldown(agent),
            "agent {agent} conversation state diverged"
        );
    }
    // A waking city is not silent — otherwise this proves nothing.
    assert!(
        lockstep.events().len() > 5_000,
        "expected a city-scale morning, got {} events",
        lockstep.events().len()
    );
}

#[test]
fn ten_thousand_agent_city_on_isolated_workers_equals_lockstep() {
    // The same 10k+ bar as above, but with the dependency tracker split
    // into channel-isolated shard *workers* — each owning its members,
    // spatial index, and its own database, reachable only through the
    // typed message protocol. The scheduler and executor are unchanged;
    // the final world must still be exactly the lock-step world.
    let cfg = CityConfig::default();
    assert!(cfg.agents >= 10_000, "the bar is 10k+ agents");
    let base = city::generate(&cfg);

    let start = clock_to_step(8, 0);
    let steps = 6u32;

    let mut lockstep = base.clone();
    lockstep.run_lockstep(start, start + steps, |_, _, _, _| {});

    let shards = 16usize;
    let space = base.space();
    let program = Arc::new(VillageProgram::with_step_offset(base, start));
    let initial = program.initial_positions();
    let graph = DistTracker::new(
        Arc::new(space),
        RuleParams::genagent(),
        &initial,
        Arc::new(cfg.shard_map(shards)),
        GraphOptions {
            edges: EdgeMode::Maintained,
            history: false,
        },
    )
    .expect("distributed tracker");
    let mut sched = Scheduler::from_graph(graph, DependencyPolicy::Spatiotemporal, Step(steps));
    let report = run_threaded(
        &mut sched,
        Arc::clone(&program),
        Arc::new(InstantBackend::new()),
        ThreadedConfig {
            workers: 4,
            priority_enabled: true,
        },
    )
    .expect("threaded worker-backed run");
    assert!(sched.is_done());
    assert_eq!(report.agent_steps, cfg.agents as u64 * steps as u64);
    assert!(
        sched.graph().validate().is_ok(),
        "causality invariant violated at 10k agents"
    );
    assert_eq!(sched.graph().num_shards(), shards);
    // Commit transactions really landed in the per-worker stores.
    assert!(sched.graph().commits() > 0);
    let populated = (0..shards)
        .filter(|&j| !sched.graph().members(j).is_empty())
        .count();
    assert!(
        populated >= shards / 2,
        "only {populated} workers populated"
    );
    // Mirror vs worker ground truth (quiesce protocol) at full scale.
    sched.graph_mut().check_invariants();

    let ooo = Arc::try_unwrap(program)
        .expect("workers joined")
        .into_village();
    assert_eq!(
        ooo.positions(),
        lockstep.positions(),
        "final positions diverged"
    );
    assert_eq!(ooo.events(), lockstep.events(), "world event logs diverged");
    for agent in 0..cfg.agents {
        assert_eq!(
            ooo.conversation_cooldown(agent),
            lockstep.conversation_cooldown(agent),
            "agent {agent} conversation state diverged"
        );
    }
    assert!(
        lockstep.events().len() > 5_000,
        "expected a city-scale morning, got {} events",
        lockstep.events().len()
    );
}

#[test]
fn city_through_fleet_serves_on_every_replica() {
    // The closed loop in miniature: a (small) district city driven
    // through a heterogeneous serving fleet — a simulated engine plus a
    // latency-replay replica — completes, both replicas serve traffic,
    // and the run's report surfaces each replica's describe() string and
    // prefix-cache counters.
    use ai_metropolis::llm::{
        presets, FleetConfig, LatencyProfile, LlmBackend, ReplicaSpec, RoutePolicyKind,
        ServerConfig,
    };

    let cfg = CityConfig {
        districts_x: 2,
        districts_y: 1,
        agents: 160,
        seed: 31,
    };
    let base = city::generate(&cfg);
    let start = clock_to_step(8, 20);
    let steps = 12u32;

    let fleet = Arc::new(
        FleetConfig::new("city-mini", RoutePolicyKind::RoundRobin)
            .with_replica(ReplicaSpec::sim(
                ServerConfig::from_preset(presets::tiny_test(), 1, true),
                1_000_000.0,
            ))
            .with_replica(ReplicaSpec::replay(
                LatencyProfile::constant("prod", 20_000),
                5,
                None,
            ))
            .build(),
    );

    let space = base.space();
    let program = Arc::new(VillageProgram::with_step_offset(base, start));
    let initial = program.initial_positions();
    let graph = ShardedDepGraph::new(
        Arc::new(space),
        RuleParams::genagent(),
        Arc::new(Db::new()),
        &initial,
        Arc::new(cfg.shard_map(2)),
    )
    .expect("sharded graph");
    let mut sched = Scheduler::from_graph(graph, DependencyPolicy::Spatiotemporal, Step(steps));
    let report = run_threaded(
        &mut sched,
        Arc::clone(&program),
        Arc::clone(&fleet) as Arc<dyn LlmBackend>,
        ThreadedConfig {
            workers: 4,
            priority_enabled: true,
        },
    )
    .expect("threaded city-over-fleet run");
    assert!(sched.is_done());
    assert_eq!(report.agent_steps, cfg.agents as u64 * steps as u64);
    assert!(sched.graph().validate().is_ok());

    // The report carries the full deployment identity…
    assert!(report.backend.contains("fleet(city-mini, round-robin"));
    assert!(
        report.backend.contains("realtime-sim"),
        "{}",
        report.backend
    );
    assert!(report.backend.contains("replay"), "{}", report.backend);
    // …and the fleet counters, replica by replica.
    let m = report.fleet.as_ref().expect("fleet metrics in the report");
    assert!(m.all_replicas_served(), "{m:?}");
    assert_eq!(m.total_served(), fleet.metrics().total_served());
    assert!(m.replicas[0].description.contains("realtime-sim"));
    assert!(m.replicas[1].description.contains("replay"));
    assert!(
        m.replicas.iter().any(|r| r.prefix.hits > 0),
        "repeated agent calls must hit the prefix cache somewhere: {m:?}"
    );

    let village = Arc::try_unwrap(program)
        .expect("workers joined")
        .into_village();
    assert!(
        !village.events().is_empty(),
        "a commuting morning must produce events"
    );
}

#[test]
fn sharded_scheduler_matches_unsharded_on_a_small_city() {
    // The same world driven by a sharded and an unsharded scheduler must
    // agree — cheap enough to run wide (more steps, walking commuters).
    let cfg = CityConfig {
        districts_x: 3,
        districts_y: 1,
        agents: 240,
        seed: 31,
    };
    let base = city::generate(&cfg);
    let start = clock_to_step(8, 20);
    let steps = 30u32;

    let run = |village: Village, sharded: Option<usize>| -> Village {
        let space = village.space();
        let program = Arc::new(VillageProgram::with_step_offset(village, start));
        let initial = program.initial_positions();
        let backend = Arc::new(InstantBackend::new());
        let tcfg = ThreadedConfig {
            workers: 4,
            priority_enabled: true,
        };
        match sharded {
            Some(n) => {
                let graph = ShardedDepGraph::new(
                    Arc::new(space),
                    RuleParams::genagent(),
                    Arc::new(Db::new()),
                    &initial,
                    Arc::new(cfg.shard_map(n)),
                )
                .expect("sharded graph");
                let mut sched =
                    Scheduler::from_graph(graph, DependencyPolicy::Spatiotemporal, Step(steps));
                run_threaded(&mut sched, Arc::clone(&program), backend, tcfg).expect("run");
                assert!(sched.graph().validate().is_ok());
                sched.graph().check_invariants();
            }
            None => {
                let mut sched = Scheduler::new(
                    Arc::new(space),
                    RuleParams::genagent(),
                    DependencyPolicy::Spatiotemporal,
                    Arc::new(Db::new()),
                    &initial,
                    Step(steps),
                )
                .expect("scheduler");
                run_threaded(&mut sched, Arc::clone(&program), backend, tcfg).expect("run");
                assert!(sched.graph().validate().is_ok());
            }
        }
        Arc::try_unwrap(program)
            .expect("workers joined")
            .into_village()
    };

    let unsharded = run(base.clone(), None);
    for shards in [2, 5] {
        let sharded = run(base.clone(), Some(shards));
        assert_eq!(sharded.positions(), unsharded.positions());
        assert_eq!(sharded.events(), unsharded.events());
    }
    assert!(
        !unsharded.events().is_empty(),
        "a commuting morning must produce events"
    );
}
