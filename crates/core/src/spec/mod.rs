//! Speculative execution with race detection and rollback (paper §6).
//!
//! The conservative rules of §3.2 *over-approximate* dependencies: an
//! agent is blocked whenever a lagging agent **could** reach its read
//! region, even though most laggards never do. The paper leaves closing
//! that gap as future work ("introducing speculative execution with race
//! detection could potentially bridge this gap") and quantifies the
//! available headroom with its `oracle` arm. This module implements that
//! future-work design as an optimistic, Time-Warp-style scheduler:
//!
//! * **Run ahead.** A cluster that the conservative rules would block may
//!   execute anyway, up to [`SpecParams::max_runahead`] unvalidated steps
//!   per agent. Each optimistic execution is recorded as a *speculative
//!   entry* carrying the positions it read and the cluster it ran in.
//! * **Detect races.** Whenever a lagging cluster commits step `s`, every
//!   live speculative entry at step `≥ s` whose read region (perception
//!   ball of radius `radius_p`) overlaps the committed write region
//!   (movement ball of radius `max_vel`) has consumed stale state — a
//!   read-after-write hazard materialized. Reads of *future* state
//!   (an agent perceiving a neighbor that speculatively ran ahead) are
//!   prevented at emission time by squashing run-ahead state out of the
//!   reader's perception region first.
//! * **Squash and re-execute.** A raced entry is discarded: the agent's
//!   dependency-graph state rolls back to the raced step, cluster
//!   partners of discarded steps roll back with it, and executions that
//!   *observed* discarded state are invalidated transitively (the
//!   anti-message cascade of optimistic PDES). In-flight executions hit
//!   by a squash are poisoned and their results dropped on completion —
//!   never preempted mid-inference, matching §3.5.
//! * **Retire.** An entry becomes final once no agent at a step `≤` its
//!   own can still write into its read region — exactly the §3.2
//!   blocking clearance — and all state it read has itself retired. Once
//!   every agent reaches the target step with all entries retired, the
//!   simulation outcome is identical to the conservative schedule's.
//!
//! The hazard model matches §3.2 and Appendix A: during step `s` an agent
//! reads `ball(start, radius_p)` and writes `ball(start, max_vel)`, so
//! two executions at steps `s_w < s_r` conflict iff their start positions
//! are within `radius_p + max_vel` — the same threshold as coupling.
//!
//! Replayed workloads ([`crate::workload::Workload`]) are deterministic,
//! so re-execution reproduces the conservative outcome bit-for-bit and
//! the *cost* of speculation is isolated: wasted LLM calls for squashed
//! work against shorter completion time from the extra parallelism.
//! [`crate::exec::spec_sim::run_spec_sim`] measures both.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use aim_core::prelude::*;
//! use aim_core::spec::{SpecParams, SpecScheduler};
//! use aim_store::Db;
//!
//! # fn main() -> Result<(), aim_store::StoreError> {
//! let space = Arc::new(GridSpace::new(100, 140));
//! // Two agents 10 apart: decoupled, but close enough that the
//! // conservative rules would soon block the one running ahead.
//! let initial = vec![Point::new(0, 0), Point::new(10, 0)];
//! let mut sched = SpecScheduler::new(
//!     space,
//!     RuleParams::genagent(),
//!     SpecParams::new(4),
//!     Arc::new(Db::new()),
//!     &initial,
//!     Step(8),
//! )?;
//! let ready = sched.ready_clusters()?;
//! assert_eq!(ready.len(), 2, "both agents start out ready");
//! # Ok(())
//! # }
//! ```

mod scheduler;
mod table;

pub use scheduler::{CommitOutcome, SpecScheduler};
pub use table::{EntryTable, SpecEntry};

#[doc(inline)]
pub use crate::exec::spec_sim::{run_spec_sim, SpecSimConfig};

use serde::{Deserialize, Serialize};

/// Tuning knobs of the speculative scheduler.
///
/// # Example
///
/// ```
/// use aim_core::spec::SpecParams;
///
/// let p = SpecParams::new(4);
/// assert_eq!(p.max_runahead, 4);
/// assert!(p.speculation_enabled());
/// assert!(!SpecParams::conservative().speculation_enabled());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SpecParams {
    /// Maximum *unretired* speculative entries an agent may accumulate
    /// before a blocked cluster must wait instead of running ahead.
    /// `0` disables speculation entirely, reproducing the conservative
    /// §3.2 schedule.
    pub max_runahead: u32,
}

impl SpecParams {
    /// Creates parameters with the given run-ahead budget.
    pub fn new(max_runahead: u32) -> Self {
        SpecParams { max_runahead }
    }

    /// Speculation disabled: behaves like [`crate::scheduler::Scheduler`]
    /// with [`crate::policy::DependencyPolicy::Spatiotemporal`].
    pub fn conservative() -> Self {
        SpecParams { max_runahead: 0 }
    }

    /// Whether blocked clusters may run ahead at all.
    pub fn speculation_enabled(&self) -> bool {
        self.max_runahead > 0
    }
}

impl Default for SpecParams {
    /// A moderate budget (4 steps) that captures most of the oracle gap
    /// in the GenAgent workloads without unbounded rollback exposure.
    fn default() -> Self {
        SpecParams { max_runahead: 4 }
    }
}

/// Counters describing a speculative run (see [`SpecScheduler::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct SpecStats {
    /// Clusters emitted while unblocked (the conservative path).
    pub emitted_firm: u64,
    /// Clusters emitted while blocked (optimistic run-ahead).
    pub emitted_spec: u64,
    /// Total members across emitted clusters (= agent-step executions,
    /// including executions later squashed and re-run).
    pub agent_steps: u64,
    /// Committed agent-step executions discarded by a squash.
    pub squashed_steps: u64,
    /// In-flight executions whose results were dropped on completion.
    pub poisoned_clusters: u64,
    /// Total member agent-steps across poisoned executions (each re-runs).
    pub poisoned_steps: u64,
    /// Agent-step executions validated as final.
    pub retired_steps: u64,
    /// Emissions deferred because a same-step cluster was already in
    /// flight within coupling range.
    pub deferrals: u64,
    /// Blocked clusters denied speculation (budget exhausted or post-
    /// squash cooldown) that had to wait conservatively.
    pub spec_denied: u64,
    /// Largest number of live (unretired) entries observed at once.
    pub max_live_entries: u32,
    /// Maximum observed step skew (max step − min step over agents).
    pub max_step_skew: u32,
    /// Largest cluster emitted.
    pub max_cluster_size: u32,
}

/// Speculation outcome of one executed run: scheduler counters plus the
/// executor-side accounting of wasted LLM work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct SpecReport {
    /// Scheduler-side counters.
    pub stats: SpecStats,
    /// LLM calls issued for executions that were later discarded.
    pub wasted_calls: u64,
    /// Prompt tokens of discarded executions.
    pub wasted_input_tokens: u64,
    /// Generated tokens of discarded executions.
    pub wasted_output_tokens: u64,
}

impl SpecReport {
    /// Wasted fraction of all issued tokens (prompt + generation).
    pub fn waste_fraction(&self, total_input: u64, total_output: u64) -> f64 {
        let total = total_input + total_output;
        if total == 0 {
            return 0.0;
        }
        (self.wasted_input_tokens + self.wasted_output_tokens) as f64 / total as f64
    }
}

impl SpecStats {
    /// Fraction of emitted executions that were later discarded
    /// (squashed commits plus poisoned in-flight results).
    pub fn waste_ratio(&self) -> f64 {
        if self.agent_steps == 0 {
            return 0.0;
        }
        (self.squashed_steps + self.poisoned_clusters) as f64 / self.agent_steps as f64
    }

    /// Fraction of emissions that ran ahead of a conservative block.
    pub fn speculation_ratio(&self) -> f64 {
        let total = self.emitted_firm + self.emitted_spec;
        if total == 0 {
            return 0.0;
        }
        self.emitted_spec as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_constructors() {
        assert_eq!(SpecParams::default().max_runahead, 4);
        assert_eq!(SpecParams::conservative(), SpecParams::new(0));
        assert!(SpecParams::new(1).speculation_enabled());
    }

    #[test]
    fn waste_and_speculation_ratios() {
        let mut s = SpecStats::default();
        assert_eq!(s.waste_ratio(), 0.0);
        assert_eq!(s.speculation_ratio(), 0.0);
        s.agent_steps = 10;
        s.squashed_steps = 1;
        s.poisoned_clusters = 1;
        s.emitted_firm = 6;
        s.emitted_spec = 2;
        assert!((s.waste_ratio() - 0.2).abs() < 1e-12);
        assert!((s.speculation_ratio() - 0.25).abs() < 1e-12);
    }
}
