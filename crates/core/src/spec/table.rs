//! Bookkeeping for speculative executions: per-agent entry stacks, the
//! cluster instances they ran in, and the observation index used for
//! cascading invalidation.
//!
//! An **entry** records one optimistically executed agent-step: the
//! position the agent read the world from (`start_pos`), where it ended
//! up, and which cluster instance it executed with. Entries live from
//! commit until they either *retire* (validated — popped from the front
//! of the agent's stack, oldest first) or are *squashed* (invalidated —
//! popped from the back, newest first). The two disciplines never
//! interleave on the same entry, so each agent's live entries always form
//! a contiguous run of steps.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::fmt;

use crate::ids::{AgentId, Step};

/// One speculatively executed (unretired) agent-step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpecEntry<P> {
    /// The executing agent.
    pub agent: AgentId,
    /// The step this execution performed.
    pub step: Step,
    /// Position the step was executed from (the agent's state after
    /// `step - 1`); its perception ball is centered here.
    pub start_pos: P,
    /// Position after the step committed.
    pub end_pos: P,
    /// The cluster instance this execution belonged to.
    pub instance: u64,
}

/// A committed cluster execution whose entries are still live.
#[derive(Debug, Clone)]
pub(crate) struct Instance {
    pub step: Step,
    pub members: Vec<AgentId>,
    /// `(agent, graph step at observation)`: speculative states within
    /// perception range that this execution read. Invalidated when the
    /// observed agent squashes below the observed step.
    pub observed: Vec<(AgentId, Step)>,
}

/// The live-entry table: stacks, instances, and the observation index.
pub struct EntryTable<P> {
    stacks: Vec<VecDeque<SpecEntry<P>>>,
    instances: HashMap<u64, Instance>,
    /// observed agent → `(observed step, observing instance)`; cleaned
    /// lazily (dead instances are skipped on read).
    observers: HashMap<u32, Vec<(u32, u64)>>,
    /// Agents with at least one live entry (for race scans).
    occupied: BTreeSet<u32>,
    live: usize,
}

impl<P> fmt::Debug for EntryTable<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EntryTable")
            .field("agents", &self.stacks.len())
            .field("live_entries", &self.live)
            .field("instances", &self.instances.len())
            .finish()
    }
}

impl<P: Copy + fmt::Debug + PartialEq> EntryTable<P> {
    /// Creates an empty table for `num_agents` agents.
    pub fn new(num_agents: usize) -> Self {
        EntryTable {
            stacks: (0..num_agents).map(|_| VecDeque::new()).collect(),
            instances: HashMap::new(),
            observers: HashMap::new(),
            occupied: BTreeSet::new(),
            live: 0,
        }
    }

    /// Total live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no entry is live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Live entries of `agent`, oldest first.
    pub fn stack(&self, agent: AgentId) -> impl Iterator<Item = &SpecEntry<P>> {
        self.stacks[agent.index()].iter()
    }

    /// Number of live entries of `agent`.
    pub fn stack_len(&self, agent: AgentId) -> usize {
        self.stacks[agent.index()].len()
    }

    /// The oldest live entry of `agent`.
    pub fn front(&self, agent: AgentId) -> Option<&SpecEntry<P>> {
        self.stacks[agent.index()].front()
    }

    /// Whether `agent`'s state after `step` is still speculative, i.e. a
    /// live entry for `step` exists.
    pub fn has_step(&self, agent: AgentId, step: Step) -> bool {
        let stack = &self.stacks[agent.index()];
        match (stack.front(), stack.back()) {
            (Some(f), Some(b)) => f.step <= step && step <= b.step,
            _ => false,
        }
    }

    /// Iterates every live entry (agents in id order, steps ascending).
    pub fn iter_live(&self) -> impl Iterator<Item = &SpecEntry<P>> {
        self.occupied
            .iter()
            .flat_map(|a| self.stacks[*a as usize].iter())
    }

    /// Agents with at least one live entry, in id order.
    pub fn occupied(&self) -> impl Iterator<Item = AgentId> + '_ {
        self.occupied.iter().map(|a| AgentId(*a))
    }

    /// Records a committed cluster execution: one entry per member.
    ///
    /// # Panics
    ///
    /// Panics if a member's new entry does not directly follow its stack
    /// (live steps must stay contiguous) or `members` disagrees with
    /// `entries`.
    pub(crate) fn push_instance(
        &mut self,
        seq: u64,
        step: Step,
        entries: Vec<SpecEntry<P>>,
        observed: Vec<(AgentId, Step)>,
    ) {
        debug_assert!(!entries.is_empty());
        let members: Vec<AgentId> = entries.iter().map(|e| e.agent).collect();
        for entry in entries {
            debug_assert_eq!(entry.step, step);
            debug_assert_eq!(entry.instance, seq);
            let stack = &mut self.stacks[entry.agent.index()];
            if let Some(back) = stack.back() {
                assert_eq!(
                    back.step.next(),
                    step,
                    "{} entry for {step} must follow {}",
                    entry.agent,
                    back.step
                );
            }
            self.occupied.insert(entry.agent.0);
            stack.push_back(entry);
            self.live += 1;
        }
        for (obs, at) in &observed {
            self.observers.entry(obs.0).or_default().push((at.0, seq));
        }
        let prev = self.instances.insert(
            seq,
            Instance {
                step,
                members,
                observed,
            },
        );
        debug_assert!(prev.is_none(), "instance {seq} recorded twice");
    }

    /// The instance record for `seq`, if its entries are still live.
    pub(crate) fn instance(&self, seq: u64) -> Option<&Instance> {
        self.instances.get(&seq)
    }

    /// Drops `agent`'s entries at steps `>= step` (newest first),
    /// returning them oldest-first.
    ///
    /// Instance records are *not* removed: the squash cascade needs their
    /// member lists to roll cluster partners back, and removes each record
    /// once via `remove_instance`.
    pub fn squash_from(&mut self, agent: AgentId, step: Step) -> Vec<SpecEntry<P>> {
        let stack = &mut self.stacks[agent.index()];
        let mut dropped = Vec::new();
        while stack.back().is_some_and(|e| e.step >= step) {
            let entry = stack.pop_back().expect("checked non-empty");
            self.live -= 1;
            dropped.push(entry);
        }
        if stack.is_empty() {
            self.occupied.remove(&agent.0);
        }
        dropped.reverse();
        dropped
    }

    /// Retires the oldest entry of `agent`.
    ///
    /// The caller (the retirement pass) must retire whole instances: it
    /// removes the instance record once via `remove_instance` and pops
    /// each member's front entry with this method.
    ///
    /// # Panics
    ///
    /// Panics if `agent` has no live entries.
    pub fn retire_front(&mut self, agent: AgentId) -> SpecEntry<P> {
        let stack = &mut self.stacks[agent.index()];
        let entry = stack
            .pop_front()
            .unwrap_or_else(|| panic!("{agent} has no live entries"));
        self.live -= 1;
        if stack.is_empty() {
            self.occupied.remove(&agent.0);
        }
        entry
    }

    /// Removes an instance record (used by retirement; squash removes
    /// records as it drops entries).
    pub(crate) fn remove_instance(&mut self, seq: u64) -> Option<Instance> {
        self.instances.remove(&seq)
    }

    /// Live instances that observed `agent` at a step strictly greater
    /// than `step` — their reads consumed state that a squash of `agent`
    /// back to `step` discards.
    pub fn observers_above(&mut self, agent: AgentId, step: Step) -> Vec<u64> {
        let Some(list) = self.observers.get_mut(&agent.0) else {
            return Vec::new();
        };
        // Lazily drop edges whose instance is gone.
        list.retain(|(_, seq)| self.instances.contains_key(seq));
        let out: Vec<u64> = list
            .iter()
            .filter(|(at, _)| Step(*at) > step)
            .map(|(_, seq)| *seq)
            .collect();
        if list.is_empty() {
            self.observers.remove(&agent.0);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Point;

    fn entry(agent: u32, step: u32, x: i32, instance: u64) -> SpecEntry<Point> {
        SpecEntry {
            agent: AgentId(agent),
            step: Step(step),
            start_pos: Point::new(x, 0),
            end_pos: Point::new(x + 1, 0),
            instance,
        }
    }

    #[test]
    fn push_and_query_stack() {
        let mut t = EntryTable::new(3);
        assert!(t.is_empty());
        t.push_instance(0, Step(0), vec![entry(1, 0, 5, 0)], vec![]);
        t.push_instance(1, Step(1), vec![entry(1, 1, 6, 1)], vec![]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.stack_len(AgentId(1)), 2);
        assert_eq!(t.stack_len(AgentId(0)), 0);
        assert_eq!(t.front(AgentId(1)).unwrap().step, Step(0));
        assert!(t.has_step(AgentId(1), Step(0)));
        assert!(t.has_step(AgentId(1), Step(1)));
        assert!(!t.has_step(AgentId(1), Step(2)));
        assert!(!t.has_step(AgentId(0), Step(0)));
        assert_eq!(t.iter_live().count(), 2);
    }

    #[test]
    fn push_joint_instance_records_members() {
        let mut t = EntryTable::new(3);
        t.push_instance(
            7,
            Step(2),
            vec![entry(0, 2, 0, 7), entry(2, 2, 3, 7)],
            vec![],
        );
        let inst = t.instance(7).unwrap();
        assert_eq!(inst.step, Step(2));
        assert_eq!(inst.members, vec![AgentId(0), AgentId(2)]);
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "must follow")]
    fn non_contiguous_push_panics() {
        let mut t = EntryTable::new(1);
        t.push_instance(0, Step(0), vec![entry(0, 0, 0, 0)], vec![]);
        t.push_instance(1, Step(2), vec![entry(0, 2, 0, 1)], vec![]);
    }

    #[test]
    fn squash_drops_newest_first_and_instances() {
        let mut t = EntryTable::new(1);
        for s in 0..4 {
            t.push_instance(
                s as u64,
                Step(s),
                vec![entry(0, s, s as i32, s as u64)],
                vec![],
            );
        }
        let dropped = t.squash_from(AgentId(0), Step(2));
        assert_eq!(dropped.len(), 2);
        assert_eq!(dropped[0].step, Step(2), "returned oldest-first");
        assert_eq!(dropped[1].step, Step(3));
        assert_eq!(t.stack_len(AgentId(0)), 2);
        // Records stay until the cascade removes them explicitly.
        assert!(t.instance(2).is_some());
        for e in &dropped {
            t.remove_instance(e.instance);
        }
        assert!(t.instance(2).is_none());
        assert!(t.instance(3).is_none());
        assert!(t.instance(1).is_some());
        // Squashing below everything empties the stack.
        let rest = t.squash_from(AgentId(0), Step(0));
        assert_eq!(rest.len(), 2);
        assert!(t.is_empty());
        assert_eq!(t.iter_live().count(), 0);
    }

    #[test]
    fn squash_from_future_step_is_noop() {
        let mut t = EntryTable::new(1);
        t.push_instance(0, Step(0), vec![entry(0, 0, 0, 0)], vec![]);
        assert!(t.squash_from(AgentId(0), Step(5)).is_empty());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn retire_pops_oldest() {
        let mut t = EntryTable::new(1);
        t.push_instance(0, Step(3), vec![entry(0, 3, 0, 0)], vec![]);
        t.push_instance(1, Step(4), vec![entry(0, 4, 1, 1)], vec![]);
        let retired = t.retire_front(AgentId(0));
        assert_eq!(retired.step, Step(3));
        assert_eq!(t.front(AgentId(0)).unwrap().step, Step(4));
        t.remove_instance(0);
        assert!(t.instance(0).is_none());
    }

    #[test]
    fn observers_filter_by_step_and_liveness() {
        let mut t = EntryTable::new(3);
        // Instance 0 observed agent 2 at step 3; instance 1 at step 5.
        t.push_instance(
            0,
            Step(6),
            vec![entry(0, 6, 0, 0)],
            vec![(AgentId(2), Step(3))],
        );
        t.push_instance(
            1,
            Step(6),
            vec![entry(1, 6, 50, 1)],
            vec![(AgentId(2), Step(5))],
        );
        // Squash of agent 2 back to step 4 invalidates only instance 1.
        assert_eq!(t.observers_above(AgentId(2), Step(4)), vec![1]);
        // Squash to step 2 invalidates both.
        let mut both = t.observers_above(AgentId(2), Step(2));
        both.sort_unstable();
        assert_eq!(both, vec![0, 1]);
        // Dead instances are skipped (and cleaned).
        for e in t.squash_from(AgentId(1), Step(6)) {
            t.remove_instance(e.instance);
        }
        assert_eq!(t.observers_above(AgentId(2), Step(2)), vec![0]);
    }

    #[test]
    fn observers_of_unobserved_agent_is_empty() {
        let mut t = EntryTable::<Point>::new(2);
        assert!(t.observers_above(AgentId(0), Step(0)).is_empty());
    }

    #[test]
    fn contiguity_after_squash_then_push() {
        let mut t = EntryTable::new(1);
        t.push_instance(0, Step(0), vec![entry(0, 0, 0, 0)], vec![]);
        t.push_instance(1, Step(1), vec![entry(0, 1, 1, 1)], vec![]);
        t.squash_from(AgentId(0), Step(1));
        // Re-execution of step 1 pushes again at the back.
        t.push_instance(2, Step(1), vec![entry(0, 1, 9, 2)], vec![]);
        assert_eq!(t.stack_len(AgentId(0)), 2);
        assert_eq!(t.front(AgentId(0)).unwrap().step, Step(0));
    }
}
