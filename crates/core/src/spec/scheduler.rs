//! The optimistic scheduler: conservative §3.2 scheduling with bounded
//! run-ahead, race detection, cascading squash, and retirement.
//!
//! See the [module docs](crate::spec) for the protocol. The interface
//! mirrors [`crate::scheduler::Scheduler`] — callers pull
//! [`ready_clusters`](SpecScheduler::ready_clusters) and report
//! [`complete`](SpecScheduler::complete) — with three differences: both
//! calls can perform store writes (squash rollbacks), `complete` returns
//! a [`CommitOutcome`] saying whether the execution was accepted, and
//! discarded work is reported through
//! [`drain_squashed`](SpecScheduler::drain_squashed) so the caller can
//! account its LLM calls as waste.
//!
//! # Safety nets, from first line of defense to last
//!
//! 1. **Emission vetting** (in `ready_clusters`): before a cluster at
//!    step `s` starts, run-ahead entries whose state overlaps its
//!    read/write region are squashed out (nobody reads future state);
//!    a *certain race* — a lagging agent already inside the combined
//!    read+write radius, whose very next commit must collide — denies
//!    speculation outright; and a same-step cluster in flight within
//!    coupling range defers emission (the agents belong together).
//! 2. **Commit-time checks** (in `complete`): a committing write poisons
//!    overlapping *in-flight* executions and squashes overlapping
//!    entries that were created while it ran. With the GenAgent geometry
//!    (write radius = movement radius = `max_vel`) emission vetting
//!    provably prevents most of these; they remain as load-bearing
//!    checks for overlapping flights and as defense-in-depth elsewhere.
//! 3. **Observation edges**: each emission records which speculative
//!    states fell inside its perception region; the squash cascade
//!    invalidates observers transitively. Under the standard radii this
//!    set is empty by construction (vetting keeps speculative state out
//!    of read regions) — it is a backstop for exotic `Space` geometries.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::Arc;

use aim_store::{Db, StoreError};

use crate::depgraph::DepGraph;
use crate::ids::{AgentId, ClusterId, Step};
use crate::rules::RuleParams;
use crate::scheduler::Cluster;
use crate::space::Space;
use crate::spec::table::{EntryTable, SpecEntry};
use crate::spec::{SpecParams, SpecStats};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AgentState {
    Waiting,
    InFlight,
    Finished,
}

struct Inflight<P> {
    cluster: Cluster,
    /// Member start positions at emission, aligned with `cluster.members`.
    starts: Vec<P>,
    /// Speculative states within perception range at emission.
    observed: Vec<(AgentId, Step)>,
    /// Hit by a squash while executing: discard the result on completion.
    poisoned: bool,
}

/// What happened when a cluster execution was reported complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct CommitOutcome {
    /// `true`: the execution was accepted and the agents advanced.
    /// `false`: the execution read stale or since-discarded state and was
    /// dropped; its members re-emit from their rolled-back steps.
    pub committed: bool,
}

/// The speculative out-of-order scheduler (paper §6's future-work design).
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use aim_core::prelude::*;
/// use aim_core::spec::{SpecParams, SpecScheduler};
/// use aim_store::Db;
///
/// # fn main() -> Result<(), aim_store::StoreError> {
/// let mut sched = SpecScheduler::new(
///     Arc::new(GridSpace::new(100, 140)),
///     RuleParams::genagent(),
///     SpecParams::new(2),
///     Arc::new(Db::new()),
///     &[Point::new(0, 0), Point::new(60, 60)],
///     Step(2),
/// )?;
/// while !sched.is_done() {
///     let ready = sched.ready_clusters()?;
///     for c in ready {
///         let pos: Vec<_> =
///             c.members.iter().map(|m| (*m, sched.graph().pos(*m))).collect();
///         sched.complete(&c.id, &pos)?;
///     }
/// }
/// assert_eq!(sched.stats().retired_steps, 4);
/// # Ok(())
/// # }
/// ```
pub struct SpecScheduler<S: Space> {
    graph: DepGraph<S>,
    params: RuleParams,
    spec: SpecParams,
    target_step: Step,
    state: Vec<AgentState>,
    /// `(step, agent)` entries needing readiness evaluation.
    dirty: BTreeSet<(u32, u32)>,
    /// agent → agents to re-dirty when it completes or advances.
    watchers: HashMap<u32, Vec<u32>>,
    inflight: HashMap<ClusterId, Inflight<S::Pos>>,
    inflight_by_step: HashMap<u32, Vec<ClusterId>>,
    inflight_of: Vec<Option<ClusterId>>,
    table: EntryTable<S::Pos>,
    /// `(step, instance)` retirement candidates.
    retire_dirty: BTreeSet<(u32, u64)>,
    /// clearance-blocking agent → instances to re-check when it moves.
    retire_watch: HashMap<u32, Vec<u64>>,
    /// Discarded `(agent, step)` executions awaiting caller pickup.
    squash_log: Vec<(AgentId, Step)>,
    next_cluster: u64,
    finished: usize,
    stats: SpecStats,
}

impl<S: Space> std::fmt::Debug for SpecScheduler<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpecScheduler")
            .field("agents", &self.graph.len())
            .field("target_step", &self.target_step)
            .field("max_runahead", &self.spec.max_runahead)
            .field("live_entries", &self.table.len())
            .field("finished", &self.finished)
            .finish()
    }
}

impl<S: Space> SpecScheduler<S> {
    /// Creates a speculative scheduler with all agents at step 0.
    ///
    /// # Errors
    ///
    /// Propagates store errors from the initial graph population.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is empty or `target_step` is zero.
    pub fn new(
        space: Arc<S>,
        params: RuleParams,
        spec: SpecParams,
        db: Arc<Db>,
        initial: &[S::Pos],
        target_step: Step,
    ) -> Result<Self, StoreError> {
        assert!(!initial.is_empty(), "at least one agent is required");
        assert!(target_step > Step::ZERO, "target_step must be positive");
        let graph = DepGraph::new(space, params, db, initial)?;
        let n = initial.len();
        Ok(SpecScheduler {
            graph,
            params,
            spec,
            target_step,
            state: vec![AgentState::Waiting; n],
            dirty: (0..n as u32).map(|a| (0u32, a)).collect(),
            watchers: HashMap::new(),
            inflight: HashMap::new(),
            inflight_by_step: HashMap::new(),
            inflight_of: vec![None; n],
            table: EntryTable::new(n),
            retire_dirty: BTreeSet::new(),
            retire_watch: HashMap::new(),
            squash_log: Vec::new(),
            next_cluster: 0,
            finished: 0,
            stats: SpecStats::default(),
        })
    }

    /// The dependency graph (positions, steps).
    pub fn graph(&self) -> &DepGraph<S> {
        &self.graph
    }

    /// The speculation parameters in force.
    pub fn spec_params(&self) -> SpecParams {
        self.spec
    }

    /// The step at which agents finish.
    pub fn target_step(&self) -> Step {
        self.target_step
    }

    /// Counters for reporting.
    pub fn stats(&self) -> SpecStats {
        self.stats
    }

    /// Live (unretired) speculative entries.
    pub fn live_entries(&self) -> usize {
        self.table.len()
    }

    /// Clusters currently handed out and not yet completed.
    pub fn inflight_len(&self) -> usize {
        self.inflight.len()
    }

    /// Discarded `(agent, step)` executions since the last call — the
    /// caller re-executes them implicitly (the agents re-emit) and should
    /// account their LLM calls as wasted work.
    pub fn drain_squashed(&mut self) -> Vec<(AgentId, Step)> {
        std::mem::take(&mut self.squash_log)
    }

    /// Every agent has *retired* at the target step: all executions are
    /// validated final — no squash can rewind the simulation anymore.
    pub fn is_done(&self) -> bool {
        self.finished == self.state.len() && self.table.is_empty() && self.inflight.is_empty()
    }

    /// Current step skew: max step − min step over all agents.
    pub fn current_skew(&self) -> u32 {
        self.graph.max_step().0 - self.graph.min_step().0
    }

    fn space(&self) -> &S {
        self.graph.space().as_ref()
    }

    /// Computes and returns every cluster that may execute now, marking
    /// members in-flight. Blocked clusters with remaining run-ahead
    /// budget (and no certain race) are emitted optimistically.
    ///
    /// # Errors
    ///
    /// Propagates store errors from squash rollbacks performed while
    /// clearing run-ahead state out of a forming cluster's read region.
    pub fn ready_clusters(&mut self) -> Result<Vec<Cluster>, StoreError> {
        let mut out = Vec::new();
        while let Some(&(s, a)) = self.dirty.iter().next() {
            self.dirty.remove(&(s, a));
            if self.state[a as usize] != AgentState::Waiting || self.graph.step(AgentId(a)).0 != s {
                continue; // stale entry
            }
            // Grow the coupled cluster over waiting same-step agents,
            // straight off the graph's maintained coupling adjacency.
            let mut members = vec![AgentId(a)];
            let mut seen: BTreeSet<u32> = BTreeSet::from([a]);
            let mut frontier = vec![AgentId(a)];
            while let Some(x) = frontier.pop() {
                for &nb in self.graph.coupled_of(x) {
                    if self.state[nb.index()] == AgentState::Waiting && seen.insert(nb.0) {
                        members.push(nb);
                        frontier.push(nb);
                    }
                }
            }
            members.sort_unstable();
            let starts: Vec<S::Pos> = members.iter().map(|m| self.graph.pos(*m)).collect();

            // Safety net 1a: run-ahead state overlapping this cluster's
            // combined read/write region is about to become stale —
            // squash it *before* executing (nobody reads future state),
            // then re-evaluate: membership may change.
            let coupling = self.params.coupling_units();
            let mut seeds: Vec<(AgentId, Step)> = Vec::new();
            for e in self.table.iter_live() {
                if e.step.0 >= s
                    && !members.contains(&e.agent)
                    && starts
                        .iter()
                        .any(|p| self.space().within_units(e.start_pos, *p, coupling))
                {
                    seeds.push((e.agent, e.step));
                }
            }
            if !seeds.is_empty() {
                self.cascade(seeds)?;
                self.dirty.insert((s, a));
                continue;
            }

            // Safety net 1b: a same-step cluster already executing within
            // coupling range means these agents belong together — wait
            // for it rather than executing a conflicting write.
            if let Some(defer_on) = self.same_step_inflight_nearby(s, &starts) {
                self.stats.deferrals += 1;
                let list = self.watchers.entry(defer_on.0).or_default();
                for m in &members {
                    if !list.contains(&m.0) {
                        list.push(m.0);
                    }
                    self.dirty.remove(&(s, m.0));
                }
                continue;
            }

            // Conservative blocking check; blocked clusters may run ahead
            // within budget unless the race is already certain.
            let mut blocker = None;
            for m in &members {
                if let Some(b) = self.graph.first_blocker(*m) {
                    blocker = Some(b);
                    break;
                }
            }
            let speculative = match blocker {
                None => false,
                Some(b) => {
                    let budget_ok = self.spec.speculation_enabled()
                        && members
                            .iter()
                            .all(|m| (self.table.stack_len(*m) as u32) < self.spec.max_runahead);
                    // Safety net 1c: a laggard already within the
                    // combined read+write radius collides on its very
                    // next commit — speculating is guaranteed waste.
                    let hopeless = budget_ok && self.certain_race(Step(s), &starts);
                    if !budget_ok || hopeless {
                        if self.spec.speculation_enabled() {
                            self.stats.spec_denied += 1;
                        }
                        let list = self.watchers.entry(b.0).or_default();
                        for m in &members {
                            if !list.contains(&m.0) {
                                list.push(m.0);
                            }
                            self.dirty.remove(&(s, m.0));
                        }
                        continue;
                    }
                    true
                }
            };

            // Safety net 3: record which speculative states this
            // execution can perceive — if any squashes, this execution
            // is invalidated with it.
            let radius = self.params.radius_p as u64;
            let mut observed = Vec::new();
            let occupied: Vec<AgentId> = self.table.occupied().collect();
            for y in occupied {
                if members.contains(&y) {
                    continue;
                }
                let ypos = self.graph.pos(y);
                if starts
                    .iter()
                    .any(|p| self.space().within_units(ypos, *p, radius))
                {
                    observed.push((y, self.graph.step(y)));
                }
            }

            out.push(self.emit(Step(s), members, starts, observed, speculative));
        }
        Ok(out)
    }

    /// Is some agent at a step below `s` close enough that its next
    /// commit's write region must overlap this cluster's read region?
    fn certain_race(&self, s: Step, starts: &[S::Pos]) -> bool {
        let coupling = self.params.coupling_units();
        for (_, b) in self.graph.agents_at_or_below(Step(s.0.saturating_sub(1))) {
            let bpos = self.graph.pos(b);
            if starts
                .iter()
                .any(|p| self.space().within_units(bpos, *p, coupling))
            {
                return true;
            }
        }
        false
    }

    fn same_step_inflight_nearby(&self, step: u32, starts: &[S::Pos]) -> Option<AgentId> {
        let coupling = self.params.coupling_units();
        let cids = self.inflight_by_step.get(&step)?;
        for cid in cids {
            let rec = &self.inflight[cid];
            for st in &rec.starts {
                if starts
                    .iter()
                    .any(|p| self.space().within_units(*st, *p, coupling))
                {
                    return Some(rec.cluster.members[0]);
                }
            }
        }
        None
    }

    fn emit(
        &mut self,
        step: Step,
        members: Vec<AgentId>,
        starts: Vec<S::Pos>,
        observed: Vec<(AgentId, Step)>,
        speculative: bool,
    ) -> Cluster {
        debug_assert!(!members.is_empty());
        for m in &members {
            debug_assert_eq!(self.state[m.index()], AgentState::Waiting);
            self.state[m.index()] = AgentState::InFlight;
            self.dirty.remove(&(step.0, m.0));
        }
        let id = ClusterId(self.next_cluster);
        self.next_cluster += 1;
        if speculative {
            self.stats.emitted_spec += 1;
        } else {
            self.stats.emitted_firm += 1;
        }
        self.stats.agent_steps += members.len() as u64;
        self.stats.max_cluster_size = self.stats.max_cluster_size.max(members.len() as u32);
        let cluster = Cluster { id, step, members };
        self.inflight_by_step.entry(step.0).or_default().push(id);
        for m in &cluster.members {
            self.inflight_of[m.index()] = Some(id);
        }
        self.inflight.insert(
            id,
            Inflight {
                cluster: cluster.clone(),
                starts,
                observed,
                poisoned: false,
            },
        );
        cluster
    }

    /// Reports a cluster execution finished at the recorded positions.
    ///
    /// Runs race detection against live run-ahead state, cascades any
    /// squashes, then either accepts the execution (agents advance, an
    /// entry is recorded, retirement runs) or discards it (stale reads).
    ///
    /// # Errors
    ///
    /// Propagates store errors from graph advancement or rollback.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is not in flight or `new_pos` does not match
    /// its members.
    pub fn complete(
        &mut self,
        cluster: &ClusterId,
        new_pos: &[(AgentId, S::Pos)],
    ) -> Result<CommitOutcome, StoreError> {
        let rec = self
            .inflight
            .remove(cluster)
            .unwrap_or_else(|| panic!("{cluster} is not in flight"));
        if let Some(list) = self.inflight_by_step.get_mut(&rec.cluster.step.0) {
            list.retain(|c| c != cluster);
            if list.is_empty() {
                self.inflight_by_step.remove(&rec.cluster.step.0);
            }
        }
        for m in &rec.cluster.members {
            self.inflight_of[m.index()] = None;
        }
        assert_eq!(
            new_pos.len(),
            rec.cluster.members.len(),
            "positions must cover all members"
        );
        for (a, _) in new_pos {
            assert!(
                rec.cluster.members.contains(a),
                "{a} is not a member of {}",
                rec.cluster.id
            );
            assert_eq!(self.state[a.index()], AgentState::InFlight);
        }

        if rec.poisoned {
            return Ok(self.discard(&rec));
        }

        let s = rec.cluster.step;
        let coupling = self.params.coupling_units();

        // Safety net 2a: this commit writes ball(start, max_vel) at step
        // s; any live entry at step >= s whose read ball overlaps was
        // created while this cluster flew and read stale state.
        let mut seeds: Vec<(AgentId, Step)> = Vec::new();
        for e in self.table.iter_live() {
            if e.step >= s
                && !rec.cluster.members.contains(&e.agent)
                && rec
                    .starts
                    .iter()
                    .any(|p| self.space().within_units(e.start_pos, *p, coupling))
            {
                seeds.push((e.agent, e.step));
            }
        }
        // Safety net 2b: the same hazard for executions still in flight —
        // poison them so their results are dropped on completion (no
        // preemption mid-inference, matching §3.5).
        let mut poison: Vec<ClusterId> = Vec::new();
        for (cid2, rec2) in &self.inflight {
            if rec2.poisoned || rec2.cluster.step < s {
                continue;
            }
            let hit = rec2.starts.iter().any(|st2| {
                rec.starts
                    .iter()
                    .any(|st| self.space().within_units(*st2, *st, coupling))
            });
            if hit {
                poison.push(*cid2);
            }
        }
        for cid2 in poison {
            self.inflight
                .get_mut(&cid2)
                .expect("collected above")
                .poisoned = true;
        }

        self.cascade(seeds)?;

        // The cascade may have rolled back this very cluster's members
        // (their earlier steps were invalidated) — then this execution
        // read discarded state and must be dropped too.
        let valid = rec
            .cluster
            .members
            .iter()
            .all(|m| self.graph.step(*m) == s && self.state[m.index()] == AgentState::InFlight);
        if !valid {
            return Ok(self.discard(&rec));
        }

        // Accept: advance the graph, record the entry, retire eagerly.
        self.graph.advance(new_pos)?;
        let end_of = |m: &AgentId| {
            new_pos
                .iter()
                .find(|(a, _)| a == m)
                .map(|(_, p)| *p)
                .expect("validated above")
        };
        let entries: Vec<SpecEntry<S::Pos>> = rec
            .cluster
            .members
            .iter()
            .zip(&rec.starts)
            .map(|(m, start)| SpecEntry {
                agent: *m,
                step: s,
                start_pos: *start,
                end_pos: end_of(m),
                instance: cluster.0,
            })
            .collect();
        self.table
            .push_instance(cluster.0, s, entries, rec.observed.clone());
        self.stats.max_live_entries = self.stats.max_live_entries.max(self.table.len() as u32);
        self.retire_dirty.insert((s.0, cluster.0));

        for m in &rec.cluster.members {
            let step = self.graph.step(*m);
            if step >= self.target_step {
                self.state[m.index()] = AgentState::Finished;
                self.finished += 1;
            } else {
                self.state[m.index()] = AgentState::Waiting;
                self.dirty.insert((step.0, m.0));
            }
        }
        self.wake_watchers(&rec.cluster.members);
        for m in &rec.cluster.members {
            self.wake_retire_watch(*m);
        }
        self.run_retirement();
        let skew = self.current_skew();
        self.stats.max_step_skew = self.stats.max_step_skew.max(skew);
        Ok(CommitOutcome { committed: true })
    }

    /// Drops a poisoned or invalidated execution: members return to
    /// Waiting at their (possibly rolled back) current steps.
    fn discard(&mut self, rec: &Inflight<S::Pos>) -> CommitOutcome {
        for m in &rec.cluster.members {
            self.state[m.index()] = AgentState::Waiting;
            self.dirty.insert((self.graph.step(*m).0, m.0));
        }
        self.stats.poisoned_clusters += 1;
        self.stats.poisoned_steps += rec.cluster.members.len() as u64;
        self.wake_watchers(&rec.cluster.members);
        self.run_retirement();
        CommitOutcome { committed: false }
    }

    fn wake_watchers(&mut self, members: &[AgentId]) {
        for m in members {
            if let Some(watchers) = self.watchers.remove(&m.0) {
                for w in watchers {
                    if self.state[w as usize] == AgentState::Waiting {
                        self.dirty.insert((self.graph.step(AgentId(w)).0, w));
                    }
                }
            }
        }
    }

    fn wake_retire_watch(&mut self, agent: AgentId) {
        if let Some(list) = self.retire_watch.remove(&agent.0) {
            for seq in list {
                if let Some(inst) = self.table.instance(seq) {
                    self.retire_dirty.insert((inst.step.0, seq));
                }
            }
        }
    }

    /// The anti-message cascade: discards entries at or above the seed
    /// steps, rolls the graph back, and transitively invalidates cluster
    /// partners and executions that observed discarded state.
    fn cascade(&mut self, seeds: Vec<(AgentId, Step)>) -> Result<(), StoreError> {
        let mut work: VecDeque<(AgentId, Step)> = seeds.into();
        let mut rollback: HashMap<u32, (Step, S::Pos)> = HashMap::new();
        let mut touched: BTreeSet<u32> = BTreeSet::new();
        while let Some((x, u)) = work.pop_front() {
            // An execution in flight at or above the squash point is
            // reading discarded state: poison it.
            if let Some(cid) = self.inflight_of[x.index()] {
                let rec = self
                    .inflight
                    .get_mut(&cid)
                    .expect("inflight_of is consistent");
                if rec.cluster.step >= u {
                    rec.poisoned = true;
                }
            }
            let dropped = self.table.squash_from(x, u);
            if dropped.is_empty() {
                continue;
            }
            touched.insert(x.0);
            let low = dropped[0];
            match rollback.get(&x.0) {
                Some((prev, _)) if *prev <= low.step => {}
                _ => {
                    rollback.insert(x.0, (low.step, low.start_pos));
                }
            }
            for e in &dropped {
                self.squash_log.push((e.agent, e.step));
                self.stats.squashed_steps += 1;
                if let Some(inst) = self.table.remove_instance(e.instance) {
                    for p in inst.members {
                        if p != x {
                            work.push_back((p, e.step));
                        }
                    }
                }
            }
            // Executions that observed any of the discarded states.
            let new_step = rollback[&x.0].0;
            for seq in self.table.observers_above(x, new_step) {
                if let Some(inst) = self.table.instance(seq) {
                    let step = inst.step;
                    for p in inst.members.clone() {
                        work.push_back((p, step));
                    }
                }
            }
        }
        if !rollback.is_empty() {
            let mut batch: Vec<(AgentId, Step, S::Pos)> = rollback
                .iter()
                .map(|(a, (s, p))| (AgentId(*a), *s, *p))
                .collect();
            batch.sort_unstable_by_key(|(a, _, _)| a.0);
            self.graph.rollback(&batch)?;
        }
        for a in touched {
            if self.inflight_of[a as usize].is_some() {
                continue; // requeued when the poisoned completion arrives
            }
            if self.state[a as usize] == AgentState::Finished {
                self.finished -= 1;
            }
            self.state[a as usize] = AgentState::Waiting;
            self.dirty.insert((self.graph.step(AgentId(a)).0, a));
        }
        Ok(())
    }

    /// Retires every instance whose reads can no longer be invalidated.
    fn run_retirement(&mut self) {
        while let Some(&(step, seq)) = self.retire_dirty.iter().next() {
            self.retire_dirty.remove(&(step, seq));
            self.try_retire_instance(seq);
        }
    }

    fn try_retire_instance(&mut self, seq: u64) {
        let Some(inst) = self.table.instance(seq) else {
            return; // squashed since it was queued
        };
        let members = inst.members.clone();
        let observed = inst.observed.clone();
        // Entries retire oldest-first: every member's front entry must be
        // this instance (predecessors retired). Re-queued when the
        // predecessor's instance retires.
        for m in &members {
            match self.table.front(*m) {
                Some(e) if e.instance == seq => {}
                _ => return,
            }
        }
        // Everything this execution read must itself be final. Re-queued
        // when the observed entry retires (or squashed along with it).
        for (y, q) in &observed {
            if q.0 > 0 && self.table.has_step(*y, Step(q.0 - 1)) {
                return;
            }
        }
        // Clearance: no agent may still write into the read region —
        // including by rolling back and re-executing, so agents with live
        // entries are assessed from their rollback floor (their oldest
        // entry), not their current state.
        for m in &members {
            let e = *self.table.front(*m).expect("front checked above");
            if let Some(b) = self.clearance_blocker(&members, e.start_pos, e.step) {
                self.retire_watch.entry(b.0).or_default().push(seq);
                return;
            }
        }
        // Retire the whole instance atomically.
        self.table.remove_instance(seq);
        for m in &members {
            let retired = self.table.retire_front(*m);
            debug_assert_eq!(retired.instance, seq);
            self.stats.retired_steps += 1;
            if let Some(next) = self.table.front(*m) {
                self.retire_dirty.insert((next.step.0, next.instance));
            }
            for obs in self.table.observers_above(*m, retired.step) {
                if let Some(i2) = self.table.instance(obs) {
                    self.retire_dirty.insert((i2.step.0, obs));
                }
            }
            self.wake_retire_watch(*m);
        }
    }

    /// First agent that could still write into `ball(start, radius_p)` at
    /// step `step` — the §3.2 blocking rule evaluated from each agent's
    /// deepest possible rollback state.
    fn clearance_blocker(&self, members: &[AgentId], start: S::Pos, step: Step) -> Option<AgentId> {
        // Agents without live entries: assessed at their current state.
        for (tb, b) in self.graph.agents_at_or_below(step) {
            if members.contains(&b) || self.table.stack_len(b) > 0 {
                continue; // co-members retire together; entry-holders below
            }
            let units = self.params.blocking_units(step.0 - tb.0);
            if self.space().within_units(start, self.graph.pos(b), units) {
                return Some(b);
            }
        }
        // Agents with live entries could squash back to their oldest
        // entry and re-execute from there.
        for b in self.table.occupied() {
            if members.contains(&b) {
                continue;
            }
            let front = self.table.front(b).expect("occupied agents have entries");
            if front.step > step {
                continue;
            }
            let units = self.params.blocking_units(step.0 - front.step.0);
            if self.space().within_units(start, front.start_pos, units) {
                return Some(b);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{GridSpace, Point};

    const A: AgentId = AgentId(0);
    const B: AgentId = AgentId(1);
    const C: AgentId = AgentId(2);

    fn sched(points: &[(i32, i32)], runahead: u32, target: u32) -> SpecScheduler<GridSpace> {
        let space = Arc::new(GridSpace::new(400, 400));
        let initial: Vec<Point> = points.iter().map(|&(x, y)| Point::new(x, y)).collect();
        SpecScheduler::new(
            space,
            RuleParams::genagent(),
            SpecParams::new(runahead),
            Arc::new(Db::new()),
            &initial,
            Step(target),
        )
        .unwrap()
    }

    /// Completes `c` in place (agents stay put).
    fn finish(s: &mut SpecScheduler<GridSpace>, c: &Cluster) -> CommitOutcome {
        let pos: Vec<(AgentId, Point)> =
            c.members.iter().map(|m| (*m, s.graph().pos(*m))).collect();
        s.complete(&c.id, &pos).unwrap()
    }

    /// Completes `c` moving `mover` to `to` (others stay put).
    fn finish_moving(
        s: &mut SpecScheduler<GridSpace>,
        c: &Cluster,
        mover: AgentId,
        to: Point,
    ) -> CommitOutcome {
        let pos: Vec<(AgentId, Point)> = c
            .members
            .iter()
            .map(|m| (*m, if *m == mover { to } else { s.graph().pos(*m) }))
            .collect();
        s.complete(&c.id, &pos).unwrap()
    }

    /// Runs `agent`'s singleton clusters to exhaustion (stationary),
    /// returning how many executions committed.
    fn run_solo(s: &mut SpecScheduler<GridSpace>, agent: AgentId) -> u32 {
        let mut advanced = 0;
        loop {
            let ready = s.ready_clusters().unwrap();
            let Some(c) = ready.iter().find(|c| c.members == vec![agent]) else {
                assert!(ready.is_empty(), "unexpected clusters: {ready:?}");
                return advanced;
            };
            let c = c.clone();
            if finish(s, &c).committed {
                advanced += 1;
            }
        }
    }

    /// Drives the scheduler to completion with stationary agents.
    fn drain(s: &mut SpecScheduler<GridSpace>) {
        let mut safety = 0;
        while !s.is_done() {
            let ready = s.ready_clusters().unwrap();
            assert!(
                !ready.is_empty() || s.inflight_len() > 0,
                "no ready clusters and nothing in flight: deadlock"
            );
            for c in ready {
                finish(s, &c);
            }
            safety += 1;
            assert!(safety < 10_000, "failed to converge");
        }
    }

    #[test]
    fn conservative_mode_matches_blocking_rule() {
        // Agents 10 apart; with runahead 0 agent B stops exactly where the
        // conservative scheduler stops: blocked at gap 5 (10 <= (5+1)+4).
        let mut s = sched(&[(0, 0), (10, 0)], 0, 20);
        let ready = s.ready_clusters().unwrap();
        assert_eq!(ready.len(), 2);
        finish(&mut s, &ready[1]);
        let advanced = 1 + run_solo(&mut s, B);
        assert_eq!(advanced, 5);
        assert_eq!(s.stats().emitted_spec, 0);
        assert_eq!(
            s.stats().spec_denied,
            0,
            "disabled speculation is not 'denied'"
        );
        assert_eq!(
            s.live_entries(),
            0,
            "conservative executions retire eagerly"
        );
    }

    #[test]
    fn speculation_runs_past_conservative_block() {
        let mut s = sched(&[(0, 0), (10, 0)], 3, 20);
        let ready = s.ready_clusters().unwrap();
        finish(&mut s, &ready[1]);
        let advanced = 1 + run_solo(&mut s, B);
        assert_eq!(advanced, 8, "5 conservative + 3 speculative");
        assert_eq!(s.stats().emitted_spec, 3);
        assert_eq!(s.live_entries(), 3, "speculative entries await validation");
        assert!(s.stats().spec_denied >= 1, "budget exhaustion recorded");
    }

    #[test]
    fn distant_laggard_commit_retires_runahead() {
        let mut s = sched(&[(0, 0), (10, 0)], 3, 20);
        let ready = s.ready_clusters().unwrap();
        let c0 = ready[0].clone();
        finish(&mut s, &ready[1]);
        run_solo(&mut s, B);
        assert_eq!(s.live_entries(), 3);
        // The laggard commits step 0 in place: no overlap (distance 10 >
        // coupling 5), and its advance retires the now-cleared entry.
        let out = finish(&mut s, &c0);
        assert!(out.committed);
        assert!(s.drain_squashed().is_empty());
        assert_eq!(s.live_entries(), 2, "entry at gap-cleared step retired");
        assert_eq!(s.stats().squashed_steps, 0);
    }

    #[test]
    fn emission_squash_rolls_back_overlapping_runahead() {
        // B speculates two steps while A's step 0 is in flight; A then
        // advances next to B's read region: emission of A's step-1
        // cluster squashes B's stale entries, and the two agents couple.
        let mut s = sched(&[(0, 0), (6, 0)], 2, 20);
        let ready = s.ready_clusters().unwrap();
        let c_a = ready[0].clone();
        finish(&mut s, &ready[1]);
        let advanced = 1 + run_solo(&mut s, B);
        assert_eq!(advanced, 3, "1 firm + 2 speculative");
        assert_eq!(s.live_entries(), 2);
        // A commits step 0 one cell toward B: its *start* (0,0) is 6 away
        // from B's entries, so the commit itself does not race...
        let out = finish_moving(&mut s, &c_a, A, Point::new(1, 0));
        assert!(out.committed);
        assert!(s.drain_squashed().is_empty());
        // ...but A's next emission from (1,0) is 5 away: squash, then
        // couple.
        let ready = s.ready_clusters().unwrap();
        assert_eq!(s.drain_squashed(), vec![(B, Step(1)), (B, Step(2))]);
        assert_eq!(
            s.graph().step(B),
            Step(1),
            "rolled back to first stale step"
        );
        assert_eq!(ready.len(), 1);
        assert_eq!(ready[0].members, vec![A, B], "squashed agent re-couples");
        assert_eq!(ready[0].step, Step(1));
        finish(&mut s, &ready[0]);
        drain(&mut s);
        assert!(s.is_done());
        assert_eq!(s.graph().step(A), Step(20));
        assert_eq!(s.graph().step(B), Step(20));
    }

    #[test]
    fn inflight_speculation_is_poisoned_not_preempted() {
        let mut s = sched(&[(0, 0), (6, 0)], 2, 20);
        let ready = s.ready_clusters().unwrap();
        let c_a = ready[0].clone();
        finish(&mut s, &ready[1]); // B step 0 (firm, retires)
        let c_b1 = s.ready_clusters().unwrap()[0].clone();
        finish(&mut s, &c_b1); // B step 1 (speculative, entry lives)
        assert_eq!(s.live_entries(), 1);
        let c_b2 = s.ready_clusters().unwrap()[0].clone();
        assert_eq!(c_b2.step, Step(2));
        // Hold B's step-2 speculation in flight; A commits toward B.
        let out = finish_moving(&mut s, &c_a, A, Point::new(1, 0));
        assert!(out.committed);
        // A's step-1 emission squashes B's entry AND poisons the flight.
        let ready = s.ready_clusters().unwrap();
        assert_eq!(s.drain_squashed(), vec![(B, Step(1))]);
        assert_eq!(ready.len(), 1, "A executes alone; B is still in flight");
        assert_eq!(ready[0].members, vec![A]);
        let poisoned = finish(&mut s, &c_b2);
        assert!(
            !poisoned.committed,
            "poisoned in-flight result must be dropped"
        );
        assert_eq!(s.stats().poisoned_clusters, 1);
        assert_eq!(
            s.graph().step(B),
            Step(1),
            "B re-executes from the squash point"
        );
        finish(&mut s, &ready[0]);
        drain(&mut s);
        assert!(s.is_done());
    }

    #[test]
    fn certain_race_speculation_is_denied() {
        // B walks adjacent to the unexecuted laggard: any further
        // speculation is guaranteed to be squashed, so it is denied.
        let mut s = sched(&[(0, 0), (6, 0)], 4, 20);
        let ready = s.ready_clusters().unwrap();
        finish(&mut s, &ready[1]); // firm step 0
        let c_b1 = s.ready_clusters().unwrap()[0].clone();
        finish_moving(&mut s, &c_b1, B, Point::new(5, 0)); // spec step 1
        assert_eq!(s.live_entries(), 1);
        let denied_at = s.stats().spec_denied;
        assert!(
            s.ready_clusters().unwrap().is_empty(),
            "B must not run further"
        );
        assert_eq!(s.stats().spec_denied, denied_at + 1);
        assert_eq!(s.live_entries(), 1, "no new speculative work");
    }

    #[test]
    fn same_step_inflight_defers_emission() {
        // B's speculative step 2 is in flight when A arrives at step 2
        // within coupling range: A defers, B's stale result is then
        // squashed, and the two couple.
        let mut s = sched(&[(0, 0), (7, 0)], 2, 20);
        let ready = s.ready_clusters().unwrap();
        let c_a0 = ready[0].clone();
        finish(&mut s, &ready[1]); // B step 0 firm
        let c_b1 = s.ready_clusters().unwrap()[0].clone();
        finish(&mut s, &c_b1); // B step 1 firm (7 > blocking 6)
        let c_b2 = s.ready_clusters().unwrap()[0].clone();
        assert_eq!(c_b2.step, Step(2), "B blocked at step 2 → speculative");
        // Hold c_b2 in flight. A walks two steps to (2,0).
        finish_moving(&mut s, &c_a0, A, Point::new(1, 0));
        let c_a1 = s.ready_clusters().unwrap()[0].clone();
        finish_moving(&mut s, &c_a1, A, Point::new(2, 0));
        // A's step-2 cluster would sit within coupling of in-flight B@2.
        assert!(s.ready_clusters().unwrap().is_empty(), "A must defer");
        assert_eq!(s.stats().deferrals, 1);
        // B's completion wakes A; its entry is then squashed at A's
        // emission and the agents couple at step 2.
        finish(&mut s, &c_b2);
        let ready = s.ready_clusters().unwrap();
        assert_eq!(s.drain_squashed(), vec![(B, Step(2))]);
        assert_eq!(ready.len(), 1);
        assert_eq!(ready[0].members, vec![A, B]);
        assert_eq!(ready[0].step, Step(2));
        finish(&mut s, &ready[0]);
        drain(&mut s);
        assert!(s.is_done());
    }

    #[test]
    fn coupled_speculation_squashes_partners_together() {
        // B and C are permanently coupled; both speculate past A. A race
        // against B's entries must take partner C's executions down too.
        let mut s = sched(&[(0, 0), (6, 0), (8, 0)], 2, 20);
        let ready = s.ready_clusters().unwrap();
        assert_eq!(ready.len(), 2);
        let c_a = ready[0].clone();
        assert_eq!(ready[1].members, vec![B, C]);
        let mut c_bc = ready[1].clone();
        loop {
            finish(&mut s, &c_bc);
            let next = s.ready_clusters().unwrap();
            let Some(c) = next.first() else { break };
            c_bc = c.clone();
        }
        assert_eq!(s.live_entries(), 4, "two speculative joint steps");
        finish_moving(&mut s, &c_a, A, Point::new(1, 0));
        let ready = s.ready_clusters().unwrap();
        let squashed = s.drain_squashed();
        assert!(squashed.contains(&(B, Step(1))));
        assert!(
            squashed.contains(&(C, Step(1))),
            "partner rolled back: {squashed:?}"
        );
        assert_eq!(squashed.len(), 4);
        assert_eq!(s.graph().step(C), Step(1));
        assert_eq!(ready.len(), 1);
        assert_eq!(
            ready[0].members,
            vec![A, B, C],
            "all three couple after the squash"
        );
        finish(&mut s, &ready[0]);
        drain(&mut s);
        assert!(s.is_done());
    }

    #[test]
    fn successful_speculation_validates_after_laggard_passes() {
        // B finishes the whole run speculatively; once A (far enough to
        // never interact) catches up, everything retires with zero waste.
        let mut s = sched(&[(0, 0), (6, 0)], 4, 3);
        let ready = s.ready_clusters().unwrap();
        let c_a = ready[0].clone();
        finish(&mut s, &ready[1]);
        run_solo(&mut s, B);
        assert_eq!(
            s.graph().step(B),
            Step(3),
            "B reached the target speculatively"
        );
        assert!(!s.is_done(), "unvalidated speculation is not done");
        assert_eq!(s.live_entries(), 2);
        finish(&mut s, &c_a);
        drain(&mut s);
        assert!(s.is_done());
        assert_eq!(
            s.stats().squashed_steps,
            0,
            "no waste when speculation wins"
        );
        assert_eq!(s.stats().emitted_spec, 2);
        assert_eq!(s.stats().retired_steps, 6);
    }

    #[test]
    fn single_agent_trivially_completes() {
        let mut s = sched(&[(5, 5)], 4, 10);
        drain(&mut s);
        assert!(s.is_done());
        assert_eq!(s.stats().retired_steps, 10);
        assert_eq!(s.stats().emitted_spec, 0);
    }

    #[test]
    fn distant_agents_never_speculate() {
        let mut s = sched(&[(0, 0), (200, 200)], 4, 3);
        drain(&mut s);
        let st = s.stats();
        assert_eq!(st.emitted_spec, 0);
        assert_eq!(st.emitted_firm, 6);
        assert_eq!(st.retired_steps, 6);
        assert_eq!(st.waste_ratio(), 0.0);
    }

    #[test]
    fn completion_validation_panics_on_bad_cluster() {
        let mut s = sched(&[(0, 0)], 0, 2);
        let _ready = s.ready_clusters().unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.complete(&ClusterId(999), &[]).unwrap();
        }));
        assert!(result.is_err());
    }

    #[test]
    fn skew_is_tracked() {
        let mut s = sched(&[(0, 0), (100, 100)], 2, 4);
        let ready = s.ready_clusters().unwrap();
        finish(&mut s, &ready[1]);
        run_solo(&mut s, B);
        assert_eq!(s.current_skew(), 4);
        assert!(s.stats().max_step_skew >= 4);
    }
}
