//! Engine-level checkpoint capture and resume over `AIMSNAP v1`
//! snapshots ([`aim_store::snapshot`]).
//!
//! A run snapshot is the store image (authoritative dependency-graph
//! records, per-step history, counters, watermarks) plus two named
//! sections:
//!
//! * [`SECTION_META`] — a [`CheckpointMeta`] describing how to rebuild
//!   the scheduler: agent count, space dimensions, rule parameters,
//!   target, and the world-step offset;
//! * [`SECTION_WORLD`] — opaque world-state bytes supplied by the caller
//!   (e.g. `aim_world`'s `Village::capture_state`), absent for replayed
//!   trace workloads whose world lives in the trace.
//!
//! [`snapshot_run`] builds the capture from a **quiesced** scheduler (the
//! threaded runtime's checkpoint barrier guarantees this); [`resume`]
//! inverts it: restore the store, rebuild the scheduler via
//! [`Scheduler::recover`], and hand back the metadata so the caller can
//! restore its world and continue the run.
//!
//! This module is deliberately [`GridSpace`]-specific: the metadata
//! section must name the space to rebuild, and every executor-facing
//! workload in this repository runs on the grid. Other spaces can reuse
//! the section mechanism with their own metadata.

use std::sync::Arc;

use bytes::{Bytes, BytesMut};

use aim_store::{codec, Snapshot, SnapshotBuilder, StoreError};

use crate::depgraph::GraphOptions;
use crate::error::EngineError;
use crate::ids::Step;
use crate::policy::DependencyPolicy;
use crate::rules::RuleParams;
use crate::scheduler::Scheduler;
use crate::shard::{ShardedDepGraph, StripShardMap};
use crate::space::GridSpace;

/// Snapshot section holding the encoded [`CheckpointMeta`].
pub const SECTION_META: &str = "meta";

/// Snapshot section holding opaque world state (e.g. a serialized
/// village).
pub const SECTION_WORLD: &str = "world";

/// Name prefix of the per-shard membership sections written by
/// [`snapshot_sharded_run`]: section `shard/<i>` holds shard `i`'s
/// member agent ids (a [`codec`] `u32` list). Membership is *derived*
/// state — the authoritative records are shard-agnostic — recorded so
/// [`resume_sharded`] rebuilds ownership without rescanning every
/// agent's position.
pub const SECTION_SHARD_PREFIX: &str = "shard/";

/// Version tag leading the encoded metadata section. Version 2 appends
/// the shard count (version-1 snapshots decode as unsharded).
const META_VERSION: u32 = 2;

/// Serializable identity of the [`DependencyPolicy`] a run was scheduled
/// under — recorded in the snapshot so [`resume`] rebuilds the scheduler
/// with the *same* semantics (edge maintenance, barrier shape) instead of
/// requiring the operator to remember them, and so validators know
/// whether the §3.2 validity condition is expected to hold at all
/// (a no-dependency ablation run legitimately violates it).
///
/// [`PolicyTag::Oracle`] carries no graph (the mined
/// [`crate::policy::OracleGraph`] is not serialized); resuming an oracle
/// run requires passing the graph back in as an explicit override.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyTag {
    /// [`DependencyPolicy::GlobalSync`].
    GlobalSync,
    /// [`DependencyPolicy::Spatiotemporal`].
    Spatiotemporal,
    /// [`DependencyPolicy::Oracle`] (graph not recorded).
    Oracle,
    /// [`DependencyPolicy::NoDependency`].
    NoDependency,
}

impl PolicyTag {
    /// The tag of a live policy.
    pub fn of(policy: &DependencyPolicy) -> Self {
        match policy {
            DependencyPolicy::GlobalSync => PolicyTag::GlobalSync,
            DependencyPolicy::Spatiotemporal => PolicyTag::Spatiotemporal,
            DependencyPolicy::Oracle(_) => PolicyTag::Oracle,
            DependencyPolicy::NoDependency => PolicyTag::NoDependency,
        }
    }

    /// The policy this tag fully determines, or `None` for
    /// [`PolicyTag::Oracle`] (whose graph is not in the snapshot).
    pub fn to_policy(self) -> Option<DependencyPolicy> {
        match self {
            PolicyTag::GlobalSync => Some(DependencyPolicy::GlobalSync),
            PolicyTag::Spatiotemporal => Some(DependencyPolicy::Spatiotemporal),
            PolicyTag::NoDependency => Some(DependencyPolicy::NoDependency),
            PolicyTag::Oracle => None,
        }
    }

    fn code(self) -> u32 {
        match self {
            PolicyTag::GlobalSync => 0,
            PolicyTag::Spatiotemporal => 1,
            PolicyTag::Oracle => 2,
            PolicyTag::NoDependency => 3,
        }
    }

    fn from_code(code: u32) -> Result<Self, StoreError> {
        Ok(match code {
            0 => PolicyTag::GlobalSync,
            1 => PolicyTag::Spatiotemporal,
            2 => PolicyTag::Oracle,
            3 => PolicyTag::NoDependency,
            _ => return Err(StoreError::Codec(format!("unknown policy tag code {code}"))),
        })
    }
}

/// Everything needed to rebuild a [`Scheduler<GridSpace>`] from a
/// restored store, plus run bookkeeping for resuming drivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct CheckpointMeta {
    /// Number of agents (= authoritative `dagt` records in the store).
    pub num_agents: u32,
    /// Grid width of the space the run was scheduled on.
    pub width: u32,
    /// Grid height of the space the run was scheduled on.
    pub height: u32,
    /// Rule perception radius.
    pub radius_p: u32,
    /// Rule maximum velocity.
    pub max_vel: u32,
    /// The run's target step (scheduler-relative).
    pub target_step: u32,
    /// World step corresponding to scheduler step 0 (pre-warmed worlds).
    pub step_offset: u32,
    /// Lowest agent step at capture time (the fully-committed floor).
    pub min_step: u32,
    /// Highest agent step at capture time.
    pub max_step: u32,
    /// Whether the run records per-step history.
    pub history: bool,
    /// The dependency policy the run was scheduled under.
    pub policy: PolicyTag,
    /// Number of spatial shards the dependency tracker was partitioned
    /// into (`0` = the single-shard [`crate::depgraph::DepGraph`]; `n ≥ 1`
    /// = a [`ShardedDepGraph`] over [`StripShardMap::new(width, n)`],
    /// with per-shard membership in the [`SECTION_SHARD_PREFIX`]
    /// sections).
    pub shards: u32,
}

impl CheckpointMeta {
    /// Reads the metadata off a live (quiesced) scheduler.
    pub fn from_scheduler(sched: &Scheduler<GridSpace>, step_offset: u32) -> Self {
        let graph = sched.graph();
        let params = graph.params();
        let space = graph.space();
        CheckpointMeta {
            num_agents: graph.len() as u32,
            width: space.width(),
            height: space.height(),
            radius_p: params.radius_p,
            max_vel: params.max_vel,
            target_step: sched.target_step().0,
            step_offset,
            min_step: graph.min_step().0,
            max_step: graph.max_step().0,
            history: graph.history_enabled(),
            policy: PolicyTag::of(sched.policy()),
            shards: 0,
        }
    }

    /// Reads the metadata off a live (quiesced) scheduler mounted on a
    /// [`ShardedDepGraph`].
    pub fn from_sharded_scheduler(
        sched: &Scheduler<GridSpace, ShardedDepGraph<GridSpace>>,
        step_offset: u32,
    ) -> Self {
        let graph = sched.graph();
        let params = graph.params();
        let space = graph.space();
        CheckpointMeta {
            num_agents: graph.len() as u32,
            width: space.width(),
            height: space.height(),
            radius_p: params.radius_p,
            max_vel: params.max_vel,
            target_step: sched.target_step().0,
            step_offset,
            min_step: graph.min_step().0,
            max_step: graph.max_step().0,
            history: graph.history_enabled(),
            policy: PolicyTag::of(sched.policy()),
            shards: graph.num_shards() as u32,
        }
    }

    /// Encodes the metadata section body.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        codec::put_u32(&mut buf, META_VERSION);
        codec::put_u32(&mut buf, self.num_agents);
        codec::put_u32(&mut buf, self.width);
        codec::put_u32(&mut buf, self.height);
        codec::put_u32(&mut buf, self.radius_p);
        codec::put_u32(&mut buf, self.max_vel);
        codec::put_u32(&mut buf, self.target_step);
        codec::put_u32(&mut buf, self.step_offset);
        codec::put_u32(&mut buf, self.min_step);
        codec::put_u32(&mut buf, self.max_step);
        codec::put_u32(&mut buf, self.history as u32);
        codec::put_u32(&mut buf, self.policy.code());
        codec::put_u32(&mut buf, self.shards);
        buf.freeze()
    }

    /// Decodes a metadata section body (versions 1 and 2; version-1
    /// snapshots predate sharding and decode with `shards = 0`).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Codec`] on truncation or an unknown version.
    pub fn decode(mut body: Bytes) -> Result<Self, StoreError> {
        let version = codec::get_u32(&mut body)?;
        if version != 1 && version != META_VERSION {
            return Err(StoreError::Codec(format!(
                "unsupported checkpoint meta version {version} (expected ≤ {META_VERSION})"
            )));
        }
        Ok(CheckpointMeta {
            num_agents: codec::get_u32(&mut body)?,
            width: codec::get_u32(&mut body)?,
            height: codec::get_u32(&mut body)?,
            radius_p: codec::get_u32(&mut body)?,
            max_vel: codec::get_u32(&mut body)?,
            target_step: codec::get_u32(&mut body)?,
            step_offset: codec::get_u32(&mut body)?,
            min_step: codec::get_u32(&mut body)?,
            max_step: codec::get_u32(&mut body)?,
            history: codec::get_u32(&mut body)? != 0,
            policy: PolicyTag::from_code(codec::get_u32(&mut body)?)?,
            shards: if version >= 2 {
                codec::get_u32(&mut body)?
            } else {
                0
            },
        })
    }
}

/// Builds the snapshot of a quiesced run: store image, metadata section,
/// and (when given) the caller's world-state section.
///
/// The builder borrows the scheduler's store; encode or save it before
/// the next commit. Call only while nothing is in flight — the threaded
/// runtime's [`CheckpointHook`](crate::exec::threaded::CheckpointHook)
/// barrier, or any single-threaded driver between steps.
pub fn snapshot_run<'a>(
    sched: &'a Scheduler<GridSpace>,
    step_offset: u32,
    world: Option<Bytes>,
) -> SnapshotBuilder<'a> {
    let meta = CheckpointMeta::from_scheduler(sched, step_offset);
    let mut builder = SnapshotBuilder::new().section(SECTION_META, meta.encode());
    if let Some(world) = world {
        builder = builder.section(SECTION_WORLD, world);
    }
    builder.db(sched.graph().db())
}

/// [`snapshot_run`] for a scheduler mounted on a [`ShardedDepGraph`]:
/// the store image is identical (the authoritative records are
/// shard-agnostic), the metadata records the shard count, and one
/// `shard/<i>` section per shard serializes its member ids so
/// [`resume_sharded`] rebuilds ownership without a global rescan.
///
/// Call only while quiesced, as with [`snapshot_run`].
pub fn snapshot_sharded_run<'a>(
    sched: &'a Scheduler<GridSpace, ShardedDepGraph<GridSpace>>,
    step_offset: u32,
    world: Option<Bytes>,
) -> SnapshotBuilder<'a> {
    let meta = CheckpointMeta::from_sharded_scheduler(sched, step_offset);
    let mut builder = SnapshotBuilder::new().section(SECTION_META, meta.encode());
    for shard in 0..sched.graph().num_shards() {
        let mut body = BytesMut::new();
        codec::put_u32_list(&mut body, &sched.graph().members(shard));
        builder = builder.section(format!("{SECTION_SHARD_PREFIX}{shard}"), body.freeze());
    }
    if let Some(world) = world {
        builder = builder.section(SECTION_WORLD, world);
    }
    builder.db(sched.graph().db())
}

/// Rebuilds a scheduler (and returns the decoded metadata) from a parsed
/// snapshot: the store is restored record-for-record, then
/// [`Scheduler::recover`] picks every agent up at its recorded step.
///
/// The scheduler resumes under the snapshot's *recorded* policy by
/// default, which is what preserves the interrupted-equals-uninterrupted
/// guarantee; pass `policy` only to override it deliberately — and
/// always for oracle runs, whose mined graph is not serialized.
///
/// `target` overrides the snapshot's recorded target when given — the
/// interrupted-resume path passes `None` to finish the original run;
/// horizon-extension passes a larger target.
///
/// # Errors
///
/// Returns a codec error if the metadata section is missing or
/// malformed, if the restored store is missing agent records, or if the
/// snapshot records an oracle policy and no override supplies the graph.
pub fn resume(
    snap: &Snapshot,
    policy: Option<DependencyPolicy>,
    target: Option<Step>,
) -> Result<(CheckpointMeta, Scheduler<GridSpace>), EngineError> {
    let (meta, policy) = meta_and_policy(snap, policy)?;
    let db = snap.restore_db();
    let sched = Scheduler::recover(
        Arc::new(GridSpace::new(meta.width, meta.height)),
        RuleParams::new(meta.radius_p, meta.max_vel),
        policy,
        Arc::new(db),
        meta.num_agents as usize,
        target.unwrap_or(Step(meta.target_step)),
        meta.history,
    )?;
    Ok((meta, sched))
}

/// [`resume`] for a snapshot written by [`snapshot_sharded_run`]:
/// rebuilds a scheduler over a [`ShardedDepGraph`], restoring shard
/// ownership from the recorded `shard/<i>` sections instead of
/// re-deriving it from every agent's position.
///
/// The metadata records only the shard *count*, so the tracker is
/// rebuilt on [`StripShardMap::new(width, shards)`] — the map every
/// shipped writer uses. A snapshot written under a custom [`ShardMap`]
/// whose membership disagrees with that geometry is rejected with a
/// codec error (the membership/geometry cross-check in
/// [`ShardedDepGraph::recover_with_members`]); rebuild such runs
/// manually with `recover_with_members` and the original map.
///
/// [`ShardMap`]: crate::shard::ShardMap
///
/// The authoritative records are shard-agnostic, so a sharded snapshot
/// can also be resumed unsharded with plain [`resume`] (the membership
/// sections are simply ignored); the reverse is not possible — this
/// function refuses snapshots without shard metadata.
///
/// # Errors
///
/// As [`resume`], plus a codec error when the snapshot records no shards
/// or a membership section is missing or malformed.
pub fn resume_sharded(
    snap: &Snapshot,
    policy: Option<DependencyPolicy>,
    target: Option<Step>,
) -> Result<
    (
        CheckpointMeta,
        Scheduler<GridSpace, ShardedDepGraph<GridSpace>>,
    ),
    EngineError,
> {
    let (meta, policy) = meta_and_policy(snap, policy)?;
    if meta.shards == 0 {
        return Err(EngineError::Store(StoreError::Codec(
            "snapshot was taken from an unsharded run; resume it with \
             checkpoint::resume instead"
                .to_string(),
        )));
    }
    let mut members = Vec::with_capacity(meta.shards as usize);
    for shard in 0..meta.shards {
        let name = format!("{SECTION_SHARD_PREFIX}{shard}");
        let mut body = snap
            .section(&name)
            .ok_or_else(|| {
                EngineError::Store(StoreError::Codec(format!(
                    "sharded snapshot is missing its \"{name}\" section"
                )))
            })?
            .clone();
        members.push(codec::get_u32_list(&mut body).map_err(EngineError::Store)?);
    }
    let db = snap.restore_db();
    let graph = ShardedDepGraph::recover_with_members(
        Arc::new(GridSpace::new(meta.width, meta.height)),
        RuleParams::new(meta.radius_p, meta.max_vel),
        Arc::new(db),
        meta.num_agents as usize,
        Arc::new(StripShardMap::new(meta.width, meta.shards as usize)),
        GraphOptions {
            edges: crate::depgraph::EdgeMode::Maintained,
            history: meta.history,
        },
        &members,
    )?;
    let sched = Scheduler::from_graph(graph, policy, target.unwrap_or(Step(meta.target_step)));
    Ok((meta, sched))
}

/// Decodes the metadata section and resolves the resume policy (shared
/// by [`resume`] and [`resume_sharded`]).
fn meta_and_policy(
    snap: &Snapshot,
    policy: Option<DependencyPolicy>,
) -> Result<(CheckpointMeta, DependencyPolicy), EngineError> {
    let body = snap
        .section(SECTION_META)
        .ok_or_else(|| {
            EngineError::Store(StoreError::Codec(format!(
                "snapshot has no \"{SECTION_META}\" section: not a run checkpoint"
            )))
        })?
        .clone();
    let meta = CheckpointMeta::decode(body).map_err(EngineError::Store)?;
    let policy = match policy {
        Some(p) => p,
        None => meta.policy.to_policy().ok_or_else(|| {
            EngineError::Store(StoreError::Codec(
                "snapshot was taken under an oracle policy; pass the mined graph \
                 as an explicit policy override to resume"
                    .to_string(),
            ))
        })?,
    };
    Ok((meta, policy))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::AgentId;
    use crate::space::Point;
    use aim_store::Db;

    fn sched_with_history(points: &[(i32, i32)], target: u32) -> Scheduler<GridSpace> {
        let initial: Vec<Point> = points.iter().map(|&(x, y)| Point::new(x, y)).collect();
        Scheduler::new_with_history(
            Arc::new(GridSpace::new(100, 140)),
            RuleParams::genagent(),
            DependencyPolicy::Spatiotemporal,
            Arc::new(Db::new()),
            &initial,
            Step(target),
            true,
        )
        .unwrap()
    }

    #[test]
    fn meta_roundtrips() {
        let sched = sched_with_history(&[(0, 0), (50, 50)], 4);
        let meta = CheckpointMeta::from_scheduler(&sched, 17);
        assert_eq!(meta.num_agents, 2);
        assert_eq!((meta.width, meta.height), (100, 140));
        assert_eq!(meta.step_offset, 17);
        assert!(meta.history);
        assert_eq!(meta.policy, PolicyTag::Spatiotemporal);
        let decoded = CheckpointMeta::decode(meta.encode()).unwrap();
        assert_eq!(decoded, meta);
    }

    #[test]
    fn resume_follows_the_recorded_policy() {
        // A global-sync run's snapshot must resume as global-sync, not as
        // whatever the caller happens to guess.
        let sched = Scheduler::new_with_history(
            Arc::new(GridSpace::new(100, 140)),
            RuleParams::genagent(),
            DependencyPolicy::GlobalSync,
            Arc::new(Db::new()),
            &[Point::new(0, 0), Point::new(9, 9)],
            Step(3),
            false,
        )
        .unwrap();
        let snap = Snapshot::from_bytes(snapshot_run(&sched, 0, None).to_bytes().unwrap()).unwrap();
        let (meta, resumed) = resume(&snap, None, None).unwrap();
        assert_eq!(meta.policy, PolicyTag::GlobalSync);
        assert_eq!(
            PolicyTag::of(resumed.policy()),
            PolicyTag::GlobalSync,
            "resume must rebuild under the recorded policy"
        );
    }

    #[test]
    fn oracle_snapshots_require_an_explicit_override() {
        use crate::policy::OracleGraph;
        let oracle = Arc::new(OracleGraph::from_interactions(2, &[vec![], vec![]]));
        let sched = Scheduler::new_with_history(
            Arc::new(GridSpace::new(100, 140)),
            RuleParams::genagent(),
            DependencyPolicy::Oracle(Arc::clone(&oracle)),
            Arc::new(Db::new()),
            &[Point::new(0, 0), Point::new(50, 50)],
            Step(2),
            false,
        )
        .unwrap();
        let snap = Snapshot::from_bytes(snapshot_run(&sched, 0, None).to_bytes().unwrap()).unwrap();
        // The mined graph is not serialized: refusing is the only safe
        // default…
        assert!(resume(&snap, None, None).is_err());
        // …and supplying it back resumes fine.
        let (meta, _) = resume(&snap, Some(DependencyPolicy::Oracle(oracle)), None).unwrap();
        assert_eq!(meta.policy, PolicyTag::Oracle);
    }

    #[test]
    fn decode_rejects_bad_version_and_truncation() {
        let mut buf = BytesMut::new();
        codec::put_u32(&mut buf, 99);
        assert!(CheckpointMeta::decode(buf.freeze()).is_err());
        let good = CheckpointMeta::from_scheduler(&sched_with_history(&[(0, 0)], 1), 0).encode();
        assert!(CheckpointMeta::decode(good.slice(..good.len() - 2)).is_err());
    }

    #[test]
    fn snapshot_resume_restores_mid_run_state() {
        let mut sched = sched_with_history(&[(0, 0), (60, 60)], 5);
        // Drive agent 1 two steps ahead, agent 0 one (agents stay put;
        // in-flight clusters persist across ready_clusters calls, so keep
        // a pending pool).
        let mut pending = sched.ready_clusters();
        for agent in [1u32, 1, 0] {
            let at = pending
                .iter()
                .position(|c| c.members.contains(&AgentId(agent)))
                .expect("agent ready");
            let c = pending.swap_remove(at);
            let pos: Vec<(AgentId, Point)> = c
                .members
                .iter()
                .map(|m| (*m, sched.graph().pos(*m)))
                .collect();
            sched.complete(&c.id, &pos).unwrap();
            pending.extend(sched.ready_clusters());
        }
        let bytes = snapshot_run(&sched, 3, Some(Bytes::from_static(b"w")))
            .to_bytes()
            .unwrap();
        let snap = Snapshot::from_bytes(bytes).unwrap();
        assert_eq!(snap.section(SECTION_WORLD).unwrap().as_ref(), b"w");
        let (meta, resumed) = resume(&snap, None, None).unwrap();
        assert_eq!(meta.step_offset, 3);
        assert_eq!((meta.min_step, meta.max_step), (1, 2));
        assert_eq!(resumed.target_step(), Step(5));
        for a in 0..2u32 {
            assert_eq!(
                resumed.graph().step(AgentId(a)),
                sched.graph().step(AgentId(a))
            );
            assert_eq!(
                resumed.graph().pos(AgentId(a)),
                sched.graph().pos(AgentId(a))
            );
        }
        assert!(resumed.graph().history_enabled());
        assert_eq!(
            resumed.graph().history_records(),
            sched.graph().history_records()
        );
        assert!(!resumed.is_done());
        // Target override extends the horizon.
        let (_, extended) = resume(&snap, None, Some(Step(9))).unwrap();
        assert_eq!(extended.target_step(), Step(9));
    }

    #[test]
    fn sharded_snapshot_roundtrips_membership() {
        use crate::shard::{ShardedDepGraph, StripShardMap};

        let initial = vec![
            Point::new(5, 5),
            Point::new(30, 5),
            Point::new(60, 5),
            Point::new(90, 5),
        ];
        let graph = ShardedDepGraph::new_with_options(
            Arc::new(GridSpace::new(100, 140)),
            RuleParams::genagent(),
            Arc::new(aim_store::Db::new()),
            &initial,
            Arc::new(StripShardMap::new(100, 4)),
            crate::depgraph::GraphOptions {
                edges: crate::depgraph::EdgeMode::Maintained,
                history: true,
            },
        )
        .unwrap();
        let mut sched = Scheduler::from_graph(
            graph,
            crate::policy::DependencyPolicy::Spatiotemporal,
            Step(5),
        );
        // Advance agent 3 across a strip boundary so membership is
        // non-trivial, then snapshot.
        let mut pending = sched.ready_clusters();
        for _ in 0..2 {
            let at = pending
                .iter()
                .position(|c| c.members.contains(&AgentId(3)))
                .expect("agent 3 ready");
            let c = pending.swap_remove(at);
            let pos = Point::new(sched.graph().pos(AgentId(3)).x - 15, 5);
            sched.complete(&c.id, &[(AgentId(3), pos)]).unwrap();
            pending.extend(sched.ready_clusters());
        }
        assert_eq!(sched.graph().shard_of_agent(AgentId(3)), 2, "migrated");
        let bytes = snapshot_sharded_run(&sched, 7, None).to_bytes().unwrap();
        let snap = Snapshot::from_bytes(bytes).unwrap();
        assert!(snap.section("shard/0").is_some());
        let (meta, resumed) = resume_sharded(&snap, None, None).unwrap();
        assert_eq!(meta.shards, 4);
        assert_eq!(meta.step_offset, 7);
        assert_eq!(resumed.graph().num_shards(), 4);
        assert_eq!(resumed.graph().snapshot(), sched.graph().snapshot());
        assert_eq!(
            resumed.graph().members(2),
            sched.graph().members(2),
            "membership restored from the sections"
        );
        assert!(resumed.graph().history_enabled());
        // The same snapshot also resumes unsharded (records are
        // shard-agnostic)…
        let (_, unsharded) = resume(&snap, None, None).unwrap();
        assert_eq!(unsharded.graph().snapshot(), sched.graph().snapshot());
        // …but an unsharded snapshot refuses a sharded resume.
        let plain = sched_with_history(&[(0, 0)], 2);
        let psnap =
            Snapshot::from_bytes(snapshot_run(&plain, 0, None).to_bytes().unwrap()).unwrap();
        assert!(resume_sharded(&psnap, None, None).is_err());
    }

    #[test]
    fn resume_without_meta_is_an_error() {
        let db = Db::new();
        let bytes = SnapshotBuilder::new().db(&db).to_bytes().unwrap();
        let snap = Snapshot::from_bytes(bytes).unwrap();
        let r = resume(&snap, None, None);
        assert!(matches!(r, Err(EngineError::Store(StoreError::Codec(_)))));
    }
}
