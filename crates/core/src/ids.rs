use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of an agent within one simulation (dense, zero-based).
///
/// Agent ids index directly into the engine's internal tables, so they must
/// be `0..num_agents` as reported by the workload.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct AgentId(pub u32);

impl AgentId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AgentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "agent{}", self.0)
    }
}

impl From<u32> for AgentId {
    fn from(v: u32) -> Self {
        AgentId(v)
    }
}

/// A simulation time step (10 simulated seconds in GenAgent — paper §2.1).
///
/// `Step(s)` denotes the *task* of executing step `s`; an agent whose
/// current step is `s` has committed steps `0..s` and is about to (or is
/// currently) executing step `s`. Lower steps have higher scheduling
/// priority (§3.5).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Step(pub u32);

impl Step {
    /// Step zero, where every simulation starts.
    pub const ZERO: Step = Step(0);

    /// The following step.
    pub fn next(self) -> Step {
        Step(self.0 + 1)
    }

    /// This step as a `u64` priority key (lower = more urgent).
    pub fn priority(self) -> u64 {
        self.0 as u64
    }

    /// Absolute difference in steps.
    pub fn abs_diff(self, other: Step) -> u32 {
        self.0.abs_diff(other.0)
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "step{}", self.0)
    }
}

impl From<u32> for Step {
    fn from(v: u32) -> Self {
        Step(v)
    }
}

/// Identifier of a scheduled cluster instance (unique per run).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ClusterId(pub u64);

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cluster{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_arithmetic() {
        assert_eq!(Step(3).next(), Step(4));
        assert_eq!(Step(3).abs_diff(Step(7)), 4);
        assert_eq!(Step(7).abs_diff(Step(3)), 4);
        assert_eq!(Step(5).priority(), 5);
    }

    #[test]
    fn ordering_matches_numeric() {
        assert!(Step(1) < Step(2));
        assert!(AgentId(1) < AgentId(2));
    }

    #[test]
    fn displays() {
        assert_eq!(AgentId(3).to_string(), "agent3");
        assert_eq!(Step(9).to_string(), "step9");
        assert_eq!(ClusterId(2).to_string(), "cluster2");
    }

    #[test]
    fn conversions() {
        assert_eq!(AgentId::from(4u32), AgentId(4));
        assert_eq!(Step::from(4u32), Step(4));
        assert_eq!(AgentId(7).index(), 7usize);
    }
}
