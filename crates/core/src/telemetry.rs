//! Unified runtime telemetry: low-overhead span tracing and stall
//! attribution for the out-of-order engine.
//!
//! The paper's whole argument is a wall-clock decomposition — out-of-order
//! execution wins because agents stop waiting on *false* dependencies —
//! so the engine must be able to show where a run's time goes. This
//! module provides that as always-compiled, runtime-toggled
//! infrastructure:
//!
//! * [`Telemetry`] — the per-run sink. Worker threads obtain a
//!   [`TelemetryRecorder`] (one lock-free [`SpanBuf`] each); the
//!   controller and cross-thread producers (LLM backends, fleet
//!   observers) share a multi-producer buffer. When disabled, the hot
//!   path is a single relaxed atomic load.
//! * [`Span`]/[`SpanKind`] — what is recorded: cluster lifecycle
//!   (dispatch → LLM call(s) → commit), dependency-blocked waits with the
//!   blocking agent attached, intra-cluster barrier waits with the
//!   straggler attached, per-shard relink/migration work, quiesce +
//!   checkpoint barriers, and per-replica fleet call attempts
//!   (retry/hedge linked to the issuing request id).
//! * [`RunTelemetry`] — the unified report: the four existing metric
//!   structs ([`SchedStats`], [`crate::metrics::Timeline`] (derivable via
//!   [`RunTelemetry::timeline`]), [`ServerMetrics`], [`FleetMetrics`])
//!   plus per-phase log₂-bucket histograms ([`PhaseHistogram`]) and the
//!   paper-shaped [`Decomposition`] of wall time into {running LLM,
//!   blocked on dependency, controller/relink overhead, checkpoint
//!   stall}, per agent and fleet-wide, with an optional
//!   speedup-vs-critical-path ratio.
//!
//! Recording is wired through [`crate::exec::threaded::run_threaded_observed`];
//! export (Perfetto `trace.json`, JSONL, the `.telemetry` file format)
//! lives in `aim-trace`, downstream of this crate.
//!
//! # Overhead contract
//!
//! The subsystem is benchmarked (`cargo bench --bench telemetry`) and the
//! CI bench gate enforces that the *disabled* path leaves the scheduler
//! hot loop inside the existing 5% regression budget. The design rules
//! that make that hold are documented on [`SpanBuf`]: pre-allocated
//! slots, one atomic fetch-add per span, and **no allocation, lock, or
//! syscall while a span is open on the hot path**.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use aim_llm::{
    AttemptOutcome, CallKind, CallObserver, FleetMetrics, LlmBackend, LlmRequest, LlmResponse,
    ServerMetrics, VirtualTime,
};
use parking_lot::Mutex;

use crate::ids::{AgentId, Step};
use crate::metrics::{CallSpan, Timeline};
use crate::scheduler::SchedStats;

/// Default per-buffer capacity: 64Ki spans ≈ 2.5 MiB. A 10k-agent,
/// 6-step city run emits roughly `agent_steps × 3` spans across all
/// buffers, so the default absorbs it with room; overflow is counted,
/// never blocking.
pub const DEFAULT_BUFFER_SPANS: usize = 1 << 16;

/// Default flight-recorder ring capacity: the retained tail of recent
/// spans kept after the fixed buffers fill, so a crash dump always has
/// the *latest* activity even on a long overflowing run.
pub const DEFAULT_FLIGHT_SPANS: usize = 1 << 12;

/// The always-on flight recorder: a bounded ring fed with the spans the
/// fixed [`SpanBuf`]s could no longer hold, so the most recent activity
/// survives for a crash dump.
///
/// The ring sits strictly *behind* the overflow branch of
/// [`SpanBuf::push`]: the non-overflow hot path never touches it, and
/// the overflow path stays lock-free — each slot is a tiny **seqlock**
/// claimed by one CAS, so an offer costs about as much as a normal
/// buffer push. A slot another overflowing producer is mid-write on is
/// counted in [`FlightRing::missed`] and skipped, preserving invariant
/// 4 (overflow drops, never blocks).
pub struct FlightRing {
    slots: Box<[FlightSlot]>,
    next: AtomicUsize,
    missed: AtomicU64,
}

/// One seqlock slot: `seq` is even when the payload is stable (`>= 2`
/// once written), odd while a writer owns it. Readers keep a copy only
/// if `seq` was even and unchanged across the read, so a concurrent
/// overwrite invalidates rather than tears it.
struct FlightSlot {
    seq: AtomicU64,
    span: UnsafeCell<MaybeUninit<Span>>,
}

// SAFETY: slot payloads are only written by the producer that won the
// seq CAS (odd = owned), and readers discard any copy whose sequence
// word changed across the read — see the seqlock protocol on `offer`
// and `tail`.
unsafe impl Sync for FlightRing {}
unsafe impl Send for FlightRing {}

impl std::fmt::Debug for FlightRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRing")
            .field("capacity", &self.slots.len())
            .field("missed", &self.missed.load(Ordering::Relaxed))
            .finish()
    }
}

impl FlightRing {
    /// A ring retaining the most recent `capacity` overflow spans.
    fn new(capacity: usize) -> FlightRing {
        let slots = (0..capacity.max(1))
            .map(|_| FlightSlot {
                seq: AtomicU64::new(0),
                span: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        FlightRing {
            slots,
            next: AtomicUsize::new(0),
            missed: AtomicU64::new(0),
        }
    }

    /// Offers one span without ever blocking: one fetch-add to pick the
    /// slot, one CAS to own it. A slot another producer is mid-write on
    /// counts the span as missed and discards it.
    fn offer(&self, span: Span) {
        let idx = self.next.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        let slot = &self.slots[idx];
        let seq = slot.seq.load(Ordering::Relaxed);
        if seq & 1 != 0
            || slot
                .seq
                .compare_exchange(seq, seq + 1, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
        {
            self.missed.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // SAFETY: the CAS above made `seq` odd, so this producer owns
        // the payload until the Release store below republishes it.
        unsafe {
            (*slot.span.get()).write(span);
        }
        slot.seq.store(seq + 2, Ordering::Release);
    }

    /// Copies the retained spans (unordered; [`Telemetry::flight_tail`]
    /// sorts by start time). Safe against concurrent offers: a slot
    /// whose sequence word moved mid-read is dropped, never torn.
    fn tail(&self) -> Vec<Span> {
        let mut out = Vec::new();
        for slot in self.slots.iter() {
            let before = slot.seq.load(Ordering::Acquire);
            if before == 0 || before & 1 != 0 {
                continue;
            }
            // SAFETY: seqlock read — the volatile copy is kept only if
            // the sequence word is unchanged (and even) afterwards, so
            // a concurrent writer invalidates the copy instead of
            // tearing it.
            let span = unsafe { std::ptr::read_volatile(slot.span.get()).assume_init() };
            if slot.seq.load(Ordering::Acquire) == before {
                out.push(span);
            }
        }
        out
    }

    /// Overflow spans the ring itself could not retain because the slot
    /// was contended at offer time.
    pub fn missed(&self) -> u64 {
        self.missed.load(Ordering::Relaxed)
    }
}

/// Why an agent was waiting instead of executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockReason {
    /// The scheduler's blocked predicate held: a lagging agent (the
    /// span's `blocker`) was close enough to causally affect this one
    /// (paper §3.2).
    Dependency,
    /// Intra-cluster barrier: this member finished its step and waited
    /// for the cluster's straggler (the span's `blocker`) before commit.
    /// Under lock-step scheduling this is where the whole synchronization
    /// cost of the run appears.
    Barrier,
}

impl BlockReason {
    /// Stable lowercase name (used by exporters).
    pub fn as_str(self) -> &'static str {
        match self {
            BlockReason::Dependency => "dependency",
            BlockReason::Barrier => "barrier",
        }
    }
}

/// Which side of the worker message boundary a [`SpanKind::Boundary`]
/// span measured (the `dist` controller/worker protocol).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoundaryOp {
    /// Controller-side: encoding + enqueueing a request to a worker.
    Send,
    /// Controller-side: blocked waiting for a worker's reply.
    Wait,
    /// Worker-side: decoding + applying a request against local state.
    Apply,
}

impl BoundaryOp {
    /// Stable lowercase name (used by exporters).
    pub fn as_str(self) -> &'static str {
        match self {
            BoundaryOp::Send => "send",
            BoundaryOp::Wait => "wait",
            BoundaryOp::Apply => "apply",
        }
    }

    /// Inverse of [`BoundaryOp::as_str`].
    pub fn from_str(name: &str) -> Option<BoundaryOp> {
        match name {
            "send" => Some(BoundaryOp::Send),
            "wait" => Some(BoundaryOp::Wait),
            "apply" => Some(BoundaryOp::Apply),
            _ => None,
        }
    }
}

/// What a [`Span`] measured. All payloads are small `Copy` data — ids and
/// counts only — so recording never touches the heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// One cluster's full lifetime on a worker: dispatch → member agent
    /// steps (each an [`SpanKind::LlmCall`] child) → commit → ack.
    Cluster {
        /// Cluster instance id.
        cluster: u64,
        /// Step every member executed.
        step: u32,
        /// Member count.
        members: u32,
    },
    /// One blocking LLM call, attributed to the issuing agent.
    LlmCall {
        /// Issuing agent.
        agent: u32,
        /// Simulation step of the call.
        step: u32,
        /// Request id (links fleet attempts to this call).
        request: u64,
        /// Agent function.
        kind: CallKind,
    },
    /// World-commit section of a cluster (under the program's world
    /// lock).
    Commit {
        /// Cluster instance id.
        cluster: u64,
        /// Step committed.
        step: u32,
        /// Member count.
        members: u32,
    },
    /// An agent waiting instead of executing; `blocker` names the agent
    /// it waited on (`u32::MAX` when unknown).
    Blocked {
        /// The waiting agent.
        agent: u32,
        /// The agent it waited on (the paper's "blocking agent").
        blocker: u32,
        /// The step the waiting agent wanted to execute.
        step: u32,
        /// Which wait this was (scheduling rule vs. barrier join).
        reason: BlockReason,
    },
    /// One sharded-tracker relink batch (possibly parallel).
    Relink {
        /// Agents relinked in the batch.
        agents: u32,
        /// Parallel workers used (1 = serial path).
        workers: u32,
    },
    /// Shard-membership migration pass for one commit batch.
    Migrate {
        /// Agents examined.
        agents: u32,
        /// Agents that changed owning shard.
        crossings: u32,
    },
    /// Quiesce + checkpoint barrier: from the moment the controller began
    /// deferring ready work to the completion of the checkpoint hook.
    Checkpoint {
        /// Minimum agent step at the barrier (the checkpoint's step).
        step: u32,
    },
    /// One claimed per-replica attempt inside the serving fleet
    /// (primary, retry, or hedge backup), linked to its parent
    /// [`SpanKind::LlmCall`] by `request`.
    FleetAttempt {
        /// Request id of the parent call.
        request: u64,
        /// Replica the attempt landed on.
        replica: u32,
        /// Whether this attempt served a hedge backup.
        hedge: bool,
        /// How the attempt resolved.
        outcome: AttemptOutcome,
    },
    /// Controller bookkeeping for one completed cluster: graph advance,
    /// watcher wakes, readiness re-evaluation, ready-queue push.
    Control {
        /// Cluster instance id completed.
        cluster: u64,
        /// Member count.
        members: u32,
    },
    /// Time spent at the distributed-shard message boundary (the `dist`
    /// controller/worker protocol): one send, reply-wait, or apply
    /// interval, attributed to the worker involved.
    Boundary {
        /// Worker (shard) index the messages crossed to or from.
        worker: u32,
        /// Which side of the boundary was measured.
        op: BoundaryOp,
        /// Protocol messages covered by the interval.
        messages: u32,
    },
}

/// Coarse grouping of [`SpanKind`]s for per-phase histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Phase {
    /// Cluster lifetime on a worker.
    Cluster,
    /// LLM calls.
    Llm,
    /// World commits.
    Commit,
    /// Blocked waits (both reasons).
    Blocked,
    /// Relink batches.
    Relink,
    /// Shard migrations.
    Migrate,
    /// Checkpoint barriers.
    Checkpoint,
    /// Fleet call attempts.
    Attempt,
    /// Controller bookkeeping.
    Control,
    /// Distributed-shard message-boundary time (send/wait/apply).
    Boundary,
}

impl Phase {
    /// Every phase, in display order.
    pub const ALL: [Phase; 10] = [
        Phase::Cluster,
        Phase::Llm,
        Phase::Commit,
        Phase::Blocked,
        Phase::Relink,
        Phase::Migrate,
        Phase::Checkpoint,
        Phase::Attempt,
        Phase::Control,
        Phase::Boundary,
    ];

    /// Stable lowercase name (used by exporters).
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Cluster => "cluster",
            Phase::Llm => "llm",
            Phase::Commit => "commit",
            Phase::Blocked => "blocked",
            Phase::Relink => "relink",
            Phase::Migrate => "migrate",
            Phase::Checkpoint => "checkpoint",
            Phase::Attempt => "attempt",
            Phase::Control => "control",
            Phase::Boundary => "boundary",
        }
    }
}

impl SpanKind {
    /// The histogram phase this span belongs to.
    pub fn phase(&self) -> Phase {
        match self {
            SpanKind::Cluster { .. } => Phase::Cluster,
            SpanKind::LlmCall { .. } => Phase::Llm,
            SpanKind::Commit { .. } => Phase::Commit,
            SpanKind::Blocked { .. } => Phase::Blocked,
            SpanKind::Relink { .. } => Phase::Relink,
            SpanKind::Migrate { .. } => Phase::Migrate,
            SpanKind::Checkpoint { .. } => Phase::Checkpoint,
            SpanKind::FleetAttempt { .. } => Phase::Attempt,
            SpanKind::Control { .. } => Phase::Control,
            SpanKind::Boundary { .. } => Phase::Boundary,
        }
    }
}

/// One recorded interval on the run's shared clock (µs since the
/// telemetry epoch; [`Telemetry::finish`] rebases onto the run start).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Start, µs.
    pub start_us: u64,
    /// End, µs (`>= start_us`).
    pub end_us: u64,
    /// Producer track: 0 is the shared (controller + backend) buffer,
    /// `1..` are per-worker recorders in registration order.
    pub track: u32,
    /// What was measured.
    pub kind: SpanKind,
}

impl Span {
    /// Span duration, µs.
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

/// A fixed-capacity, lock-free, multi-producer span buffer.
///
/// # Invariants (the hot-path contract)
///
/// These are what keep recording cheap enough to leave on in production
/// runs, and they are relied on by the bench gate:
///
/// 1. **All storage is pre-allocated at construction.** `push` performs
///    **no allocation while a span is open on the hot path** — a span is
///    "opened" by reading the clock ([`Telemetry::start`]) and "closed"
///    by `push`; between and during those there is no heap activity, no
///    lock, and no syscall.
/// 2. **Slots are claimed by one atomic `fetch_add`.** Each producer gets
///    a unique index, so concurrent producers never contend on anything
///    but that one cache line; there is no CAS loop and no mutex.
/// 3. **Publication is per-slot Release/Acquire.** The payload write
///    happens-before the `ready` flag's `Release` store; readers only
///    dereference slots whose flag they observed with `Acquire`. A drain
///    running concurrently with producers (e.g. a detached hedge thread
///    finishing after the run) sees either a complete span or none.
/// 4. **Overflow drops, never blocks.** When the buffer is full the span
///    is counted in [`SpanBuf::dropped`] and discarded — backpressure
///    must never change the timing being measured. A dropped span is
///    first *offered* to the owning [`FlightRing`]'s lock-free seqlock
///    slots, which likewise never block.
pub struct SpanBuf {
    track: u32,
    slots: Box<[SpanSlot]>,
    next: AtomicUsize,
    dropped: AtomicU64,
    flight: Option<Arc<FlightRing>>,
}

struct SpanSlot {
    ready: AtomicBool,
    span: UnsafeCell<MaybeUninit<Span>>,
}

// SAFETY: slots are claimed exclusively via `next.fetch_add`, payload
// writes are published with a Release store of `ready`, and readers
// gate on an Acquire load — see the struct-level invariants.
unsafe impl Sync for SpanBuf {}
unsafe impl Send for SpanBuf {}

impl std::fmt::Debug for SpanBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanBuf")
            .field("track", &self.track)
            .field("capacity", &self.slots.len())
            .field(
                "used",
                &self.next.load(Ordering::Relaxed).min(self.slots.len()),
            )
            .field("dropped", &self.dropped.load(Ordering::Relaxed))
            .finish()
    }
}

impl SpanBuf {
    fn new(track: u32, capacity: usize, flight: Option<Arc<FlightRing>>) -> SpanBuf {
        assert!(capacity > 0, "span buffer needs at least one slot");
        let slots = (0..capacity)
            .map(|_| SpanSlot {
                ready: AtomicBool::new(false),
                span: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        SpanBuf {
            track,
            slots,
            next: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            flight,
        }
    }

    /// Records one span (invariants above: one fetch-add, one Release
    /// store, no allocation). Full buffers count the span as dropped
    /// after offering it to the flight recorder (invariant 4).
    pub fn push(&self, mut span: Span) {
        span.track = self.track;
        let idx = self.next.fetch_add(1, Ordering::Relaxed);
        if idx >= self.slots.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            if let Some(flight) = &self.flight {
                flight.offer(span);
            }
            return;
        }
        let slot = &self.slots[idx];
        // SAFETY: `idx` was claimed exclusively by the fetch_add above;
        // no other thread writes this slot, and readers wait for `ready`.
        unsafe {
            (*slot.span.get()).write(span);
        }
        slot.ready.store(true, Ordering::Release);
    }

    /// Spans dropped because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Slot capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Copies every published span into `out`. Safe to run concurrently
    /// with producers: unpublished slots are skipped (invariant 3).
    fn drain_into(&self, out: &mut Vec<Span>) {
        let used = self.next.load(Ordering::Relaxed).min(self.slots.len());
        for slot in &self.slots[..used] {
            if slot.ready.load(Ordering::Acquire) {
                // SAFETY: the Acquire load synchronizes with the
                // producer's Release store, so the payload is fully
                // written and never touched again.
                out.push(unsafe { (*slot.span.get()).assume_init() });
            }
        }
    }

    /// Copies published spans from slot `from` on into `out`, stopping at
    /// the first unpublished slot — an incremental reader must never skip
    /// a slot it will not revisit. Returns the new watermark. With a
    /// single producer (a `dist` worker records only on its message
    /// thread) every claimed slot below `next` is already published, so
    /// the watermark always reaches the full used count.
    fn drain_range_into(&self, from: usize, out: &mut Vec<Span>) -> usize {
        let used = self.next.load(Ordering::Relaxed).min(self.slots.len());
        let mut pos = from.min(used);
        while pos < used {
            let slot = &self.slots[pos];
            if !slot.ready.load(Ordering::Acquire) {
                break;
            }
            // SAFETY: the Acquire load synchronizes with the producer's
            // Release store (invariant 3).
            out.push(unsafe { (*slot.span.get()).assume_init() });
            pos += 1;
        }
        pos
    }
}

/// Named monotonic counters recorded alongside spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Counter {
    /// LLM calls issued through the observed backend.
    LlmCalls,
    /// Per-replica fleet attempts claimed (served + refused).
    FleetAttempts,
    /// Fleet attempts made on behalf of hedge backups.
    FleetHedges,
    /// Sharded-tracker relink batches.
    RelinkBatches,
    /// Agents that changed owning shard.
    ShardMigrations,
    /// Quiesce + checkpoint barriers taken.
    CheckpointBarriers,
    /// Protocol messages crossing the distributed-shard boundary.
    BoundaryMessages,
}

impl Counter {
    /// Every counter, in display order.
    pub const ALL: [Counter; 7] = [
        Counter::LlmCalls,
        Counter::FleetAttempts,
        Counter::FleetHedges,
        Counter::RelinkBatches,
        Counter::ShardMigrations,
        Counter::CheckpointBarriers,
        Counter::BoundaryMessages,
    ];

    /// Stable snake_case name (used by exporters).
    pub fn as_str(self) -> &'static str {
        match self {
            Counter::LlmCalls => "llm_calls",
            Counter::FleetAttempts => "fleet_attempts",
            Counter::FleetHedges => "fleet_hedges",
            Counter::RelinkBatches => "relink_batches",
            Counter::ShardMigrations => "shard_migrations",
            Counter::CheckpointBarriers => "checkpoint_barriers",
            Counter::BoundaryMessages => "boundary_messages",
        }
    }

    /// Inverse of [`Counter::as_str`].
    pub fn from_str(name: &str) -> Option<Counter> {
        Counter::ALL.into_iter().find(|c| c.as_str() == name)
    }
}

/// The per-run telemetry sink: a shared clock, an enabled flag, and the
/// set of span buffers feeding one [`RunTelemetry`].
///
/// Construction does not start a run — the threaded executor rebases all
/// timestamps onto its own start when it [`finish`](Telemetry::finish)es
/// the report, so one `Telemetry` maps to one run.
///
/// When **disabled** ([`Telemetry::set_enabled`]), every entry point
/// short-circuits on one relaxed atomic load: [`Telemetry::start`]
/// returns `None` and recording helpers become no-ops. The bench gate
/// pins this path (`telemetry/disabled_start` and the `scheduler`
/// target).
pub struct Telemetry {
    enabled: AtomicBool,
    epoch: Instant,
    capacity: usize,
    shared: Arc<SpanBuf>,
    /// The always-on flight recorder fed by every buffer's overflow
    /// branch; crash dumps read its tail via
    /// [`flight_tail`](Telemetry::flight_tail).
    flight: Arc<FlightRing>,
    /// Commit watermark gauges for the stall watchdog: total commits
    /// seen, plus the end timestamp and step of the latest one.
    commits: AtomicU64,
    last_commit_us: AtomicU64,
    last_commit_step: AtomicU64,
    /// All buffers, `shared` first; recorders append under the lock
    /// (registration only — never on the span hot path).
    buffers: Mutex<Vec<Arc<SpanBuf>>>,
    /// Named tracks fed by harvested remote producers (`dist` workers in
    /// other threads or processes); their buffers are also in `buffers`
    /// so drains and drop accounting see them uniformly.
    remote: Mutex<Vec<RemoteTrack>>,
    counters: [AtomicU64; Counter::ALL.len()],
}

/// One remote producer merged into this sink: the Perfetto track name
/// plus the worker-reported drop count (spans its *local* buffer
/// overflowed before they ever reached the wire — distinct from drops in
/// `buf`, which mean the controller-side ingest buffer overflowed).
#[derive(Debug)]
struct RemoteTrack {
    track: u32,
    name: String,
    reported_dropped: u64,
    buf: Arc<SpanBuf>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .field("buffers", &self.buffers.lock().len())
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl Telemetry {
    /// An enabled sink with [`DEFAULT_BUFFER_SPANS`] slots per buffer.
    pub fn new() -> Telemetry {
        Telemetry::with_capacity(DEFAULT_BUFFER_SPANS)
    }

    /// An enabled sink with `capacity` span slots per buffer.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Telemetry {
        let flight = Arc::new(FlightRing::new(DEFAULT_FLIGHT_SPANS));
        let shared = Arc::new(SpanBuf::new(0, capacity, Some(Arc::clone(&flight))));
        Telemetry {
            enabled: AtomicBool::new(true),
            epoch: Instant::now(),
            capacity,
            buffers: Mutex::new(vec![Arc::clone(&shared)]),
            shared,
            flight,
            commits: AtomicU64::new(0),
            last_commit_us: AtomicU64::new(0),
            last_commit_step: AtomicU64::new(0),
            remote: Mutex::new(Vec::new()),
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Updates the commit watermark when `kind` is a commit span. Called
    /// from every record path (sink-level and per-thread recorders) so
    /// the stall watchdog sees progress regardless of which buffer the
    /// span landed in — two relaxed stores, nothing else.
    fn note(&self, kind: &SpanKind, end_us: u64) {
        if let SpanKind::Commit { step, .. } = kind {
            self.commits.fetch_add(1, Ordering::Relaxed);
            self.last_commit_us.fetch_max(end_us, Ordering::Relaxed);
            self.last_commit_step
                .fetch_max(*step as u64, Ordering::Relaxed);
        }
    }

    /// The commit watermark: `(end_us, step)` of the latest commit span
    /// recorded through this sink, or `None` when no agent has committed
    /// yet. The watchdog treats `None` as "stalled since the epoch".
    pub fn last_commit(&self) -> Option<(u64, u32)> {
        if self.commits.load(Ordering::Relaxed) == 0 {
            return None;
        }
        Some((
            self.last_commit_us.load(Ordering::Relaxed),
            self.last_commit_step.load(Ordering::Relaxed) as u32,
        ))
    }

    /// Overflow spans the flight recorder could not retain because its
    /// ring was contended at offer time.
    pub fn flight_missed(&self) -> u64 {
        self.flight.missed()
    }

    /// The retained tail of recent spans: everything still held in the
    /// buffers plus the flight ring's overflow tail, sorted by start
    /// time, truncated to the *last* `limit` spans. This is the crash
    /// dump's source — even after long overflow the latest activity is
    /// here.
    pub fn flight_tail(&self, limit: usize) -> Vec<Span> {
        let mut spans = Vec::new();
        for buf in self.buffers.lock().iter() {
            buf.drain_into(&mut spans);
        }
        spans.extend(self.flight.tail());
        spans.sort_by_key(|s| (s.start_us, s.end_us));
        if spans.len() > limit {
            spans.drain(..spans.len() - limit);
        }
        spans
    }

    /// Builds a best-effort [`RunTelemetry`] from the flight tail for a
    /// crash dump: timestamps are rebased to the earliest retained span
    /// and the wall clock is the retained extent. Never panics — an
    /// empty tail yields an empty report.
    pub fn flight_report(&self, agents: u32) -> RunTelemetry {
        let spans = self.flight_tail(usize::MAX);
        let base = spans.iter().map(|s| s.start_us).min().unwrap_or(0);
        let end = spans.iter().map(|s| s.end_us).max().unwrap_or(base);
        let spans: Vec<Span> = spans
            .into_iter()
            .map(|s| Span {
                start_us: s.start_us - base,
                end_us: s.end_us - base,
                ..s
            })
            .collect();
        let counters = Counter::ALL
            .iter()
            .map(|&c| (c, self.counter(c)))
            .filter(|&(_, n)| n > 0)
            .collect();
        RunTelemetry::from_spans(
            spans,
            end.saturating_sub(base),
            agents,
            self.dropped(),
            counters,
            SchedStats::default(),
            None,
        )
    }

    /// Toggles recording at runtime. Spans already recorded are kept.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// µs since this sink's epoch (the shared clock all spans use).
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Opens a span: returns the current clock when enabled, `None`
    /// when disabled (the caller then skips its matching
    /// [`record`](Telemetry::record) entirely).
    pub fn start(&self) -> Option<u64> {
        if self.is_enabled() {
            Some(self.now_us())
        } else {
            None
        }
    }

    /// Closes a span opened at `start_us` into the shared buffer, ending
    /// now. Multi-producer safe; intended for the controller and for
    /// cross-thread producers without a recorder of their own.
    pub fn record(&self, start_us: u64, kind: SpanKind) {
        if !self.is_enabled() {
            return;
        }
        let end_us = self.now_us();
        self.note(&kind, end_us);
        self.shared.push(Span {
            start_us,
            end_us,
            track: 0,
            kind,
        });
    }

    /// Records a span with explicit endpoints into the shared buffer.
    pub fn record_at(&self, start_us: u64, end_us: u64, kind: SpanKind) {
        if !self.is_enabled() {
            return;
        }
        let end_us = end_us.max(start_us);
        self.note(&kind, end_us);
        self.shared.push(Span {
            start_us,
            end_us,
            track: 0,
            kind,
        });
    }

    /// Bumps a counter by `n` (no-op when disabled).
    pub fn counter_add(&self, counter: Counter, n: u64) {
        if self.is_enabled() {
            self.counters[counter as usize].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value of `counter`.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter as usize].load(Ordering::Relaxed)
    }

    /// Registers a new per-thread buffer and returns its recorder. Call
    /// once per worker at thread start (registration locks; recording
    /// never does).
    pub fn recorder(self: &Arc<Self>) -> TelemetryRecorder {
        let mut buffers = self.buffers.lock();
        let buf = Arc::new(SpanBuf::new(
            buffers.len() as u32,
            self.capacity,
            Some(Arc::clone(&self.flight)),
        ));
        buffers.push(Arc::clone(&buf));
        TelemetryRecorder {
            telemetry: Arc::clone(self),
            buf,
        }
    }

    /// Registers (or looks up) a named track for spans harvested from a
    /// remote producer — a `dist` worker in another thread or OS
    /// process. Idempotent by name, so harvesting the same worker
    /// repeatedly keeps appending to one track. Registration locks;
    /// never call it on a span hot path.
    pub fn remote_track(&self, name: &str) -> u32 {
        let mut remote = self.remote.lock();
        if let Some(r) = remote.iter().find(|r| r.name == name) {
            return r.track;
        }
        let mut buffers = self.buffers.lock();
        let buf = Arc::new(SpanBuf::new(
            buffers.len() as u32,
            self.capacity,
            Some(Arc::clone(&self.flight)),
        ));
        buffers.push(Arc::clone(&buf));
        let track = buf.track;
        remote.push(RemoteTrack {
            track,
            name: name.to_string(),
            reported_dropped: 0,
            buf,
        });
        track
    }

    /// Merges spans harvested from the remote producer registered as
    /// `track`, rebasing each timestamp from the remote clock onto this
    /// sink's by `offset_us` (`local ≈ remote + offset`; see the
    /// harvest handshake in `dist::DistTracker` for how the offset is
    /// estimated). Unknown tracks are ignored; overflow is counted in
    /// the track's buffer, never silent.
    pub fn ingest(&self, track: u32, spans: &[Span], offset_us: i64) {
        let Some(buf) = self
            .remote
            .lock()
            .iter()
            .find(|r| r.track == track)
            .map(|r| Arc::clone(&r.buf))
        else {
            return;
        };
        let rebase = |us: u64| -> u64 { (us as i64).saturating_add(offset_us).max(0) as u64 };
        for s in spans {
            let start_us = rebase(s.start_us);
            buf.push(Span {
                start_us,
                end_us: rebase(s.end_us).max(start_us),
                track,
                kind: s.kind,
            });
        }
    }

    /// Records the drop count a remote producer reported for its own
    /// local buffer. The count is absolute (a running total on the
    /// worker side), so repeated harvests keep the maximum.
    pub fn set_remote_dropped(&self, track: u32, dropped: u64) {
        let mut remote = self.remote.lock();
        if let Some(r) = remote.iter_mut().find(|r| r.track == track) {
            r.reported_dropped = r.reported_dropped.max(dropped);
        }
    }

    /// Spans dropped to overflow across all buffers so far, plus every
    /// drop a remote producer reported for its own local buffer.
    pub fn dropped(&self) -> u64 {
        let local: u64 = self.buffers.lock().iter().map(|b| b.dropped()).sum();
        let remote: u64 = self.remote.lock().iter().map(|r| r.reported_dropped).sum();
        local + remote
    }

    /// Copies every published span out of every buffer, sorted by start
    /// time. Non-destructive; safe concurrently with producers.
    pub fn drain_spans(&self) -> Vec<Span> {
        let buffers = self.buffers.lock().clone();
        let mut out = Vec::new();
        for buf in &buffers {
            buf.drain_into(&mut out);
        }
        out.sort_unstable_by_key(|s| (s.start_us, s.end_us, s.track));
        out
    }

    /// Incremental drain for harvests: copies only spans recorded since
    /// the previous call with the same `cursor` (one watermark per
    /// buffer; start from an empty vec). A slot still being written is
    /// left for the next harvest rather than skipped, so no span is ever
    /// lost between harvests. Spans come back sorted by start time.
    pub fn drain_new_spans(&self, cursor: &mut Vec<usize>) -> Vec<Span> {
        let buffers = self.buffers.lock().clone();
        cursor.resize(buffers.len(), 0);
        let mut out = Vec::new();
        for (i, buf) in buffers.iter().enumerate() {
            cursor[i] = buf.drain_range_into(cursor[i], &mut out);
        }
        out.sort_unstable_by_key(|s| (s.start_us, s.end_us, s.track));
        out
    }

    /// Snapshot of all counters in display order.
    pub fn counters(&self) -> Vec<(Counter, u64)> {
        Counter::ALL
            .into_iter()
            .map(|c| (c, self.counter(c)))
            .collect()
    }

    /// A cheap point-in-time sample for live surfaces
    /// (`repro --live-stats`, Prometheus exposition): counts only — no
    /// span copying, no quiesce — safe to take from any thread mid-run.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let (spans, dropped, buffers) = {
            let bufs = self.buffers.lock();
            let spans = bufs
                .iter()
                .map(|b| b.next.load(Ordering::Relaxed).min(b.slots.len()) as u64)
                .sum();
            let dropped = bufs.iter().map(|b| b.dropped()).sum();
            (spans, dropped, bufs.len() as u32)
        };
        MetricsSnapshot {
            at_us: self.now_us(),
            spans,
            dropped,
            buffers,
            counters: self.counters(),
        }
    }

    /// Assembles the unified report for a run spanning
    /// `[run_start_us, run_end_us]` on this sink's clock (both from
    /// [`Telemetry::now_us`]). Span timestamps are rebased so the run
    /// starts at 0; spans recorded by stragglers after this call (e.g.
    /// losing hedge attempts) are not included.
    pub fn finish(
        &self,
        run_start_us: u64,
        run_end_us: u64,
        agents: u32,
        sched: SchedStats,
        fleet: Option<FleetMetrics>,
    ) -> RunTelemetry {
        let wall_us = run_end_us.saturating_sub(run_start_us).max(1);
        let spans: Vec<Span> = self
            .drain_spans()
            .into_iter()
            .map(|mut s| {
                s.start_us = s.start_us.saturating_sub(run_start_us);
                s.end_us = s.end_us.saturating_sub(run_start_us);
                s
            })
            .collect();
        let worker_tracks: Vec<WorkerTrack> = self
            .remote
            .lock()
            .iter()
            .map(|r| WorkerTrack {
                track: r.track,
                name: r.name.clone(),
                dropped: r.reported_dropped + r.buf.dropped(),
            })
            .collect();
        let mut rt = RunTelemetry::from_spans(
            spans,
            wall_us,
            agents,
            self.dropped(),
            self.counters(),
            sched,
            fleet,
        );
        rt.worker_tracks = worker_tracks;
        rt
    }
}

/// A cheap statistics sample taken mid-run without quiescing — the live
/// metrics surface behind `repro --live-stats` and the Prometheus-style
/// exposition in `aim-trace`. Everything here is a counter read; taking
/// one never copies spans or perturbs producers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Sample time, µs on the sink's clock.
    pub at_us: u64,
    /// Spans published across all buffers so far.
    pub spans: u64,
    /// Spans dropped to buffer overflow so far.
    pub dropped: u64,
    /// Buffers registered (shared + per-worker + remote tracks).
    pub buffers: u32,
    /// Counter snapshot, display order.
    pub counters: Vec<(Counter, u64)>,
}

impl MetricsSnapshot {
    /// Value of `counter` (0 when never bumped).
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters
            .iter()
            .find(|(c, _)| *c == counter)
            .map_or(0, |(_, n)| *n)
    }
}

/// One named per-worker track in a merged report: which Perfetto track a
/// harvested worker's spans landed on, and how many of its spans were
/// lost before reaching the report (worker-local buffer overflow plus
/// controller-side ingest overflow).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerTrack {
    /// Track id carried by this worker's spans.
    pub track: u32,
    /// Display name for the track (becomes the Perfetto thread name).
    pub name: String,
    /// Spans lost before reaching this report.
    pub dropped: u64,
}

/// A per-thread handle: one lock-free [`SpanBuf`] plus the shared sink.
/// Cheap to clone the `Arc`s it holds; create via [`Telemetry::recorder`].
pub struct TelemetryRecorder {
    telemetry: Arc<Telemetry>,
    buf: Arc<SpanBuf>,
}

impl std::fmt::Debug for TelemetryRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryRecorder")
            .field("track", &self.buf.track)
            .finish()
    }
}

impl TelemetryRecorder {
    /// Opens a span (see [`Telemetry::start`]).
    pub fn start(&self) -> Option<u64> {
        self.telemetry.start()
    }

    /// µs since the sink's epoch.
    pub fn now_us(&self) -> u64 {
        self.telemetry.now_us()
    }

    /// Closes a span opened at `start_us` into this thread's buffer,
    /// ending now. Lock-free (see [`SpanBuf`] invariants).
    pub fn record(&self, start_us: u64, kind: SpanKind) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let end_us = self.telemetry.now_us();
        self.telemetry.note(&kind, end_us);
        self.buf.push(Span {
            start_us,
            end_us,
            track: self.buf.track,
            kind,
        });
    }

    /// Records a span with explicit endpoints into this thread's buffer.
    pub fn record_at(&self, start_us: u64, end_us: u64, kind: SpanKind) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let end_us = end_us.max(start_us);
        self.telemetry.note(&kind, end_us);
        self.buf.push(Span {
            start_us,
            end_us,
            track: self.buf.track,
            kind,
        });
    }

    /// The owning sink.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }
}

/// A latency histogram over log₂ buckets (same idiom as the fleet's
/// per-replica p99): bucket `b` holds durations in `[2^(b-1), 2^b)` µs,
/// with bucket 0 holding sub-µs durations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseHistogram {
    /// Spans recorded.
    pub count: u64,
    /// Summed duration, µs.
    pub total_us: u64,
    /// Longest single span, µs.
    pub max_us: u64,
    /// Log₂ duration buckets.
    pub buckets: [u64; PhaseHistogram::BUCKETS],
}

impl Default for PhaseHistogram {
    fn default() -> Self {
        PhaseHistogram {
            count: 0,
            total_us: 0,
            max_us: 0,
            buckets: [0; PhaseHistogram::BUCKETS],
        }
    }
}

impl PhaseHistogram {
    /// Number of log₂ buckets (covers durations beyond 2³⁹ µs ≈ 6 days).
    pub const BUCKETS: usize = 40;

    /// Records one duration.
    pub fn record(&mut self, us: u64) {
        let b = if us == 0 {
            0
        } else {
            (64 - us.leading_zeros() as usize).min(Self::BUCKETS - 1)
        };
        self.buckets[b] += 1;
        self.count += 1;
        self.total_us += us;
        self.max_us = self.max_us.max(us);
    }

    /// Mean duration, µs (0 when empty).
    pub fn mean_us(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.total_us / self.count
        }
    }

    /// Upper bound (µs) of the bucket holding the `p`-th percentile
    /// (`0 < p <= 100`); 0 when empty.
    pub fn percentile_us(&self, p: u32) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (self.count * u64::from(p.clamp(1, 100))).div_ceil(100);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return 1u64 << b;
            }
        }
        1u64 << (Self::BUCKETS - 1)
    }

    /// Upper bound (µs) of the bucket holding the 99th percentile.
    pub fn p99_us(&self) -> u64 {
        self.percentile_us(99)
    }
}

/// The paper-shaped wall-clock decomposition (§2, Fig. 1): where agent
/// time went, aggregated over `agents` agents each observed for
/// `wall_us`.
///
/// `llm_us`, `blocked_us`, and `checkpoint_us` are measured from spans
/// (checkpoint barriers stall every agent, so each barrier is charged to
/// all agents); `overhead_us` is the **residual** — time an agent was
/// neither running an LLM call, waiting on a dependency/barrier, nor
/// stalled behind a checkpoint, which in this engine is by construction
/// controller bookkeeping, relink/migration, and dispatch latency. The
/// four categories therefore always cover the full wall budget (the
/// measured sub-components are still available in
/// [`RunTelemetry::phases`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Decomposition {
    /// Agents aggregated over.
    pub agents: u32,
    /// Per-agent observation window, µs (the run's wall time).
    pub wall_us: u64,
    /// Time inside LLM calls, summed over agents, µs.
    pub llm_us: u64,
    /// Time blocked on dependencies or cluster barriers, summed, µs.
    pub blocked_us: u64,
    /// Controller/relink overhead (residual), summed, µs.
    pub overhead_us: u64,
    /// Time stalled behind quiesce+checkpoint barriers, summed, µs.
    pub checkpoint_us: u64,
}

impl Decomposition {
    /// Total budget: `agents × wall_us`.
    pub fn budget_us(&self) -> u64 {
        u64::from(self.agents) * self.wall_us
    }

    /// Sum of the four categories.
    pub fn total_us(&self) -> u64 {
        self.llm_us + self.blocked_us + self.overhead_us + self.checkpoint_us
    }

    /// Fraction of the wall budget the four categories cover, in
    /// `[0, 1]` — the acceptance gate asks for ≥ 0.95.
    pub fn coverage(&self) -> f64 {
        if self.budget_us() == 0 {
            return 0.0;
        }
        self.total_us() as f64 / self.budget_us() as f64
    }

    fn frac(&self, part: u64) -> f64 {
        if self.budget_us() == 0 {
            0.0
        } else {
            part as f64 / self.budget_us() as f64
        }
    }

    /// Fraction of agent time running LLM calls.
    pub fn llm_frac(&self) -> f64 {
        self.frac(self.llm_us)
    }

    /// Fraction of agent time blocked on dependencies/barriers.
    pub fn blocked_frac(&self) -> f64 {
        self.frac(self.blocked_us)
    }

    /// Fraction of agent time in controller/relink overhead.
    pub fn overhead_frac(&self) -> f64 {
        self.frac(self.overhead_us)
    }

    /// Fraction of agent time stalled behind checkpoints.
    pub fn checkpoint_frac(&self) -> f64 {
        self.frac(self.checkpoint_us)
    }
}

impl std::fmt::Display for Decomposition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "llm {:.1}% · blocked {:.1}% · overhead {:.1}% · checkpoint {:.1}%",
            100.0 * self.llm_frac(),
            100.0 * self.blocked_frac(),
            100.0 * self.overhead_frac(),
            100.0 * self.checkpoint_frac(),
        )
    }
}

/// One aggregated blocking edge: `agent` spent `total_us` (over `count`
/// waits) waiting on `blocker`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallEdge {
    /// The agent that waited (`u32::MAX` aggregates checkpoint stalls).
    pub agent: u32,
    /// The agent waited on (`u32::MAX` when unknown).
    pub blocker: u32,
    /// Which kind of wait.
    pub reason: BlockReason,
    /// Number of waits on this edge.
    pub count: u64,
    /// Summed wait, µs.
    pub total_us: u64,
}

/// The unified run report: spans, counters, the four pre-existing metric
/// structs, per-phase histograms, and the wall-clock [`Decomposition`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct RunTelemetry {
    /// Run wall time, µs (span timestamps are relative to run start).
    pub wall_us: u64,
    /// Agents in the run.
    pub agents: u32,
    /// Spans dropped to buffer overflow.
    pub dropped: u64,
    /// Counter snapshot.
    pub counters: Vec<(Counter, u64)>,
    /// Scheduler counters.
    pub sched: SchedStats,
    /// Fleet counters, when the backend was a fleet.
    pub fleet: Option<FleetMetrics>,
    /// Serving-engine counters, when a simulated engine was observable.
    pub server: Option<ServerMetrics>,
    /// The wall-clock decomposition, fleet-wide.
    pub decomposition: Decomposition,
    /// Per-phase duration histograms (phases with at least one span).
    pub phases: Vec<(Phase, PhaseHistogram)>,
    /// Critical-path lower bound (µs) from `aim-trace::critical`, when
    /// the workload has a trace to derive it from.
    pub critical_path_us: Option<u64>,
    /// Named per-worker tracks with drop accounting, for merged
    /// distributed runs (empty when every producer was in-process).
    pub worker_tracks: Vec<WorkerTrack>,
    /// Every recorded span, sorted by start time.
    pub spans: Vec<Span>,
}

impl RunTelemetry {
    /// Builds the report from raw parts, computing the decomposition and
    /// per-phase histograms. `spans` must already be rebased to run-start
    /// = 0 (see [`Telemetry::finish`]).
    pub fn from_spans(
        mut spans: Vec<Span>,
        wall_us: u64,
        agents: u32,
        dropped: u64,
        counters: Vec<(Counter, u64)>,
        sched: SchedStats,
        fleet: Option<FleetMetrics>,
    ) -> RunTelemetry {
        spans.sort_unstable_by_key(|s| (s.start_us, s.end_us, s.track));
        let wall_us = wall_us.max(1);
        let mut phases: Vec<(Phase, PhaseHistogram)> = Vec::new();
        for span in &spans {
            let phase = span.kind.phase();
            let hist = match phases.iter_mut().find(|(p, _)| *p == phase) {
                Some((_, h)) => h,
                None => {
                    phases.push((phase, PhaseHistogram::default()));
                    &mut phases.last_mut().expect("just pushed").1
                }
            };
            hist.record(span.duration_us());
        }
        phases.sort_unstable_by_key(|(p, _)| *p);
        let decomposition = decompose(&spans, wall_us, agents);
        RunTelemetry {
            wall_us,
            agents,
            dropped,
            counters,
            sched,
            fleet,
            server: None,
            decomposition,
            phases,
            critical_path_us: None,
            worker_tracks: Vec::new(),
            spans,
        }
    }

    /// Attaches per-worker track names and drop accounting (merged
    /// distributed runs; see [`WorkerTrack`]).
    pub fn set_worker_tracks(&mut self, tracks: Vec<WorkerTrack>) {
        self.worker_tracks = tracks;
    }

    /// The registered name of `track`, when a worker track matches.
    pub fn track_name(&self, track: u32) -> Option<&str> {
        self.worker_tracks
            .iter()
            .find(|t| t.track == track)
            .map(|t| t.name.as_str())
    }

    /// The histogram for `phase`, if any span fell in it.
    pub fn phase(&self, phase: Phase) -> Option<&PhaseHistogram> {
        self.phases
            .iter()
            .find(|(p, _)| *p == phase)
            .map(|(_, h)| h)
    }

    /// Value of `counter` (0 when never bumped).
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters
            .iter()
            .find(|(c, _)| *c == counter)
            .map_or(0, |(_, n)| *n)
    }

    /// Per-agent decompositions, indexed by agent id. Checkpoint stalls
    /// are global and charged to every agent.
    pub fn per_agent(&self) -> Vec<Decomposition> {
        per_agent_slices(&self.spans, self.wall_us, self.agents)
            .into_iter()
            .map(|s| s.into_decomposition(self.wall_us))
            .collect()
    }

    /// The top-`k` blocking edges by total wait time — who stalled whom,
    /// and for how long.
    pub fn stall_edges(&self, k: usize) -> Vec<StallEdge> {
        let mut edges: Vec<StallEdge> = Vec::new();
        for span in &self.spans {
            if let SpanKind::Blocked {
                agent,
                blocker,
                reason,
                ..
            } = span.kind
            {
                let dur = span.duration_us();
                match edges
                    .iter_mut()
                    .find(|e| e.agent == agent && e.blocker == blocker && e.reason == reason)
                {
                    Some(e) => {
                        e.count += 1;
                        e.total_us += dur;
                    }
                    None => edges.push(StallEdge {
                        agent,
                        blocker,
                        reason,
                        count: 1,
                        total_us: dur,
                    }),
                }
            }
        }
        edges.sort_unstable_by(|a, b| {
            b.total_us
                .cmp(&a.total_us)
                .then(b.count.cmp(&a.count))
                .then(a.agent.cmp(&b.agent))
        });
        edges.truncate(k);
        edges
    }

    /// Derives the classic [`Timeline`] (Fig. 1) from the LLM-call and
    /// commit spans, timestamps on the run's wall clock.
    pub fn timeline(&self) -> Timeline {
        let mut spans = Vec::new();
        let mut commits = Vec::new();
        for span in &self.spans {
            match span.kind {
                SpanKind::LlmCall {
                    agent, step, kind, ..
                } => spans.push(CallSpan {
                    agent: AgentId(agent),
                    step: Step(step),
                    kind,
                    start: VirtualTime::from_micros(span.start_us),
                    end: VirtualTime::from_micros(span.end_us),
                }),
                SpanKind::Commit { step, .. } => {
                    commits.push((Step(step), VirtualTime::from_micros(span.end_us)));
                }
                _ => {}
            }
        }
        spans.sort_unstable_by_key(|s| s.end);
        commits.sort_unstable();
        Timeline { spans, commits }
    }

    /// A span-derived serial lower bound, µs: the largest per-agent sum
    /// of LLM-call time. No schedule can finish faster than its busiest
    /// agent's serial LLM work — a weaker floor than the trace-derived
    /// critical path, but available for every observed run.
    pub fn llm_floor_us(&self) -> u64 {
        let mut per_agent: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
        for span in &self.spans {
            if let SpanKind::LlmCall { agent, .. } = span.kind {
                *per_agent.entry(agent).or_insert(0) += span.duration_us();
            }
        }
        per_agent.into_values().max().unwrap_or(0)
    }

    /// Attaches the trace-derived critical-path lower bound (µs).
    pub fn set_critical_path(&mut self, us: u64) {
        self.critical_path_us = Some(us);
    }

    /// Wall time over the best available lower bound — how close the
    /// schedule ran to the fastest causally possible execution (1.0 is
    /// optimal). Uses [`RunTelemetry::critical_path_us`] when attached,
    /// else the span-derived [`RunTelemetry::llm_floor_us`]; `None` when
    /// no bound is available.
    pub fn slowdown_vs_critical(&self) -> Option<f64> {
        let bound = self.critical_path_us.unwrap_or_else(|| self.llm_floor_us());
        if bound == 0 {
            None
        } else {
            Some(self.wall_us as f64 / bound as f64)
        }
    }
}

/// Per-agent span totals (µs), before residual computation.
#[derive(Debug, Clone, Copy, Default)]
struct AgentSlice {
    llm_us: u64,
    blocked_us: u64,
    checkpoint_us: u64,
}

impl AgentSlice {
    fn into_decomposition(self, wall_us: u64) -> Decomposition {
        let measured = self.llm_us + self.blocked_us + self.checkpoint_us;
        Decomposition {
            agents: 1,
            wall_us,
            llm_us: self.llm_us,
            blocked_us: self.blocked_us,
            checkpoint_us: self.checkpoint_us,
            overhead_us: wall_us.saturating_sub(measured),
        }
    }
}

fn per_agent_slices(spans: &[Span], wall_us: u64, agents: u32) -> Vec<AgentSlice> {
    let mut slices = vec![AgentSlice::default(); agents as usize];
    let mut checkpoint_us = 0u64;
    let clamp = |span: &Span| -> u64 {
        span.end_us
            .min(wall_us)
            .saturating_sub(span.start_us.min(wall_us))
    };
    for span in spans {
        match span.kind {
            SpanKind::LlmCall { agent, .. } => {
                if let Some(s) = slices.get_mut(agent as usize) {
                    s.llm_us += clamp(span);
                }
            }
            SpanKind::Blocked { agent, .. } => {
                if let Some(s) = slices.get_mut(agent as usize) {
                    s.blocked_us += clamp(span);
                }
            }
            SpanKind::Checkpoint { .. } => checkpoint_us += clamp(span),
            _ => {}
        }
    }
    for s in &mut slices {
        s.checkpoint_us = checkpoint_us;
        // Overlap double-counting is possible only across categories
        // (e.g. an agent dependency-blocked across a checkpoint); cap at
        // the wall so the residual stays meaningful.
        let measured = s.llm_us + s.blocked_us + s.checkpoint_us;
        if measured > wall_us {
            let excess = measured - wall_us;
            s.blocked_us = s.blocked_us.saturating_sub(excess);
        }
    }
    slices
}

fn decompose(spans: &[Span], wall_us: u64, agents: u32) -> Decomposition {
    let mut total = Decomposition {
        agents,
        wall_us,
        ..Decomposition::default()
    };
    for s in per_agent_slices(spans, wall_us, agents) {
        let d = s.into_decomposition(wall_us);
        total.llm_us += d.llm_us;
        total.blocked_us += d.blocked_us;
        total.checkpoint_us += d.checkpoint_us;
        total.overhead_us += d.overhead_us;
    }
    total
}

/// An [`LlmBackend`] wrapper that records every call as an
/// [`SpanKind::LlmCall`] span, attributed to the issuing agent and step
/// straight off the request. Transparent otherwise: `describe`,
/// `fleet_metrics`, and `install_observer` all delegate.
pub struct TelemetryBackend {
    inner: Arc<dyn LlmBackend>,
    telemetry: Arc<Telemetry>,
}

impl std::fmt::Debug for TelemetryBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryBackend")
            .field("inner", &self.inner.describe())
            .finish()
    }
}

impl TelemetryBackend {
    /// Wraps `inner`, recording into `telemetry`'s shared buffer.
    pub fn new(inner: Arc<dyn LlmBackend>, telemetry: Arc<Telemetry>) -> TelemetryBackend {
        TelemetryBackend { inner, telemetry }
    }
}

impl LlmBackend for TelemetryBackend {
    fn call(&self, req: &LlmRequest) -> LlmResponse {
        let t0 = self.telemetry.start();
        let resp = self.inner.call(req);
        if let Some(t0) = t0 {
            self.telemetry.counter_add(Counter::LlmCalls, 1);
            self.telemetry.record(
                t0,
                SpanKind::LlmCall {
                    agent: req.agent,
                    step: req.step as u32,
                    request: req.id.0,
                    kind: req.kind,
                },
            );
        }
        resp
    }

    fn describe(&self) -> String {
        self.inner.describe()
    }

    fn fleet_metrics(&self) -> Option<FleetMetrics> {
        self.inner.fleet_metrics()
    }

    fn install_observer(&self, observer: Arc<dyn CallObserver>) -> bool {
        self.inner.install_observer(observer)
    }
}

/// The [`CallObserver`] bridging the fleet's attempt hooks into
/// [`SpanKind::FleetAttempt`] spans — how retries and hedge backups show
/// up on the trace, linked to their parent LLM-call span by request id.
pub struct TelemetryObserver {
    telemetry: Arc<Telemetry>,
}

impl std::fmt::Debug for TelemetryObserver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryObserver").finish()
    }
}

impl TelemetryObserver {
    /// An observer recording into `telemetry`'s shared buffer.
    pub fn new(telemetry: Arc<Telemetry>) -> TelemetryObserver {
        TelemetryObserver { telemetry }
    }
}

impl CallObserver for TelemetryObserver {
    fn begin_attempt(&self, _req: &LlmRequest, _replica: u32, _hedge: bool) -> u64 {
        self.telemetry.start().unwrap_or(u64::MAX)
    }

    fn end_attempt(
        &self,
        token: u64,
        req: &LlmRequest,
        replica: u32,
        hedge: bool,
        outcome: AttemptOutcome,
    ) {
        if token == u64::MAX {
            return; // opened while disabled
        }
        self.telemetry.counter_add(Counter::FleetAttempts, 1);
        if hedge {
            self.telemetry.counter_add(Counter::FleetHedges, 1);
        }
        self.telemetry.record(
            token,
            SpanKind::FleetAttempt {
                request: req.id.0,
                replica,
                hedge,
                outcome,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aim_llm::{InstantBackend, RequestId};

    fn span(start: u64, end: u64, kind: SpanKind) -> Span {
        Span {
            start_us: start,
            end_us: end,
            track: 0,
            kind,
        }
    }

    fn llm(agent: u32, start: u64, end: u64) -> Span {
        span(
            start,
            end,
            SpanKind::LlmCall {
                agent,
                step: 0,
                request: 0,
                kind: CallKind::Plan,
            },
        )
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let tel = Arc::new(Telemetry::new());
        tel.set_enabled(false);
        assert_eq!(tel.start(), None);
        tel.record(0, SpanKind::Checkpoint { step: 0 });
        tel.counter_add(Counter::LlmCalls, 5);
        let rec = tel.recorder();
        assert_eq!(rec.start(), None);
        rec.record(0, SpanKind::Checkpoint { step: 0 });
        assert!(tel.drain_spans().is_empty());
        assert_eq!(tel.counter(Counter::LlmCalls), 0);
    }

    #[test]
    fn spans_record_and_drain_sorted() {
        let tel = Arc::new(Telemetry::new());
        let rec = tel.recorder();
        tel.record_at(10, 20, SpanKind::Checkpoint { step: 1 });
        rec.record_at(
            0,
            5,
            SpanKind::Relink {
                agents: 3,
                workers: 1,
            },
        );
        let spans = tel.drain_spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].start_us, 0);
        assert_eq!(spans[0].track, 1, "recorder writes its own track");
        assert_eq!(spans[1].track, 0, "shared buffer is track 0");
        assert_eq!(tel.dropped(), 0);
    }

    #[test]
    fn overflow_drops_and_counts() {
        let tel = Arc::new(Telemetry::with_capacity(2));
        for i in 0..5 {
            tel.record_at(i, i + 1, SpanKind::Checkpoint { step: 0 });
        }
        assert_eq!(tel.drain_spans().len(), 2);
        assert_eq!(tel.dropped(), 3);
    }

    #[test]
    fn flight_ring_retains_overflow_tail() {
        let tel = Arc::new(Telemetry::with_capacity(2));
        for i in 0..10u64 {
            tel.record_at(i * 10, i * 10 + 5, SpanKind::Checkpoint { step: i as u32 });
        }
        assert_eq!(tel.dropped(), 8);
        assert_eq!(tel.flight_missed(), 0);
        // Buffered head plus every overflow span is retained.
        assert_eq!(tel.flight_tail(usize::MAX).len(), 10);
        // The limit keeps the *latest* spans, not the earliest.
        let tail = tel.flight_tail(3);
        assert_eq!(tail.len(), 3);
        assert_eq!(tail[0].start_us, 70);
        assert_eq!(tail[2].start_us, 90);
        // The crash report rebases to the earliest retained span.
        let report = tel.flight_report(4);
        assert_eq!(report.spans.len(), 10);
        assert_eq!(report.spans[0].start_us, 0);
        assert_eq!(report.agents, 4);
        assert_eq!(report.dropped, 8);
    }

    #[test]
    fn flight_ring_is_bounded_to_latest() {
        let tel = Arc::new(Telemetry::with_capacity(1));
        for i in 0..(DEFAULT_FLIGHT_SPANS as u64 + 100) {
            tel.record_at(i, i + 1, SpanKind::Checkpoint { step: 0 });
        }
        let tail = tel.flight_tail(usize::MAX);
        // 1 buffered + a full ring of the most recent overflow spans.
        assert_eq!(tail.len(), 1 + DEFAULT_FLIGHT_SPANS);
        assert_eq!(
            tail.last().unwrap().start_us,
            DEFAULT_FLIGHT_SPANS as u64 + 99
        );
    }

    #[test]
    fn commit_watermark_tracks_every_record_path() {
        let tel = Arc::new(Telemetry::new());
        assert_eq!(tel.last_commit(), None);
        tel.record_at(
            5,
            9,
            SpanKind::Commit {
                cluster: 1,
                step: 3,
                members: 2,
            },
        );
        assert_eq!(tel.last_commit(), Some((9, 3)));
        // Commits flow through per-thread recorders in the threaded
        // executor — the watermark must see those too.
        let rec = tel.recorder();
        rec.record_at(
            10,
            20,
            SpanKind::Commit {
                cluster: 2,
                step: 7,
                members: 1,
            },
        );
        assert_eq!(tel.last_commit(), Some((20, 7)));
        // Non-commit spans never move the watermark.
        tel.record_at(30, 40, SpanKind::Checkpoint { step: 9 });
        assert_eq!(tel.last_commit(), Some((20, 7)));
    }

    #[test]
    fn overflow_accounting_is_consistent_across_harvests() {
        // Worker side: a small local buffer harvested incrementally.
        let worker = Arc::new(Telemetry::with_capacity(4));
        let mut cursor = Vec::new();
        for i in 0..3u64 {
            worker.record_at(i, i + 1, SpanKind::Checkpoint { step: 0 });
        }
        let first = worker.drain_new_spans(&mut cursor);
        assert_eq!(first.len(), 3);
        assert_eq!(worker.dropped(), 0);
        // Overflow between harvests: one more slot fits, three drop.
        for i in 3..7u64 {
            worker.record_at(i, i + 1, SpanKind::Checkpoint { step: 0 });
        }
        let second = worker.drain_new_spans(&mut cursor);
        assert_eq!(second.len(), 1, "incremental drain never re-ships");
        assert_eq!(worker.dropped(), 3, "dropped is an absolute total");
        let third = worker.drain_new_spans(&mut cursor);
        assert!(third.is_empty());
        assert_eq!(worker.dropped(), 3, "absolute total is monotone");

        // Controller side: repeated absolute reports never double-count.
        let ctrl = Arc::new(Telemetry::new());
        let track = ctrl.remote_track("worker 0 (remote)");
        ctrl.ingest(track, &first, 0);
        ctrl.set_remote_dropped(track, 0);
        ctrl.ingest(track, &second, 0);
        ctrl.set_remote_dropped(track, 3);
        ctrl.set_remote_dropped(track, 3); // next harvest, unchanged
        assert_eq!(ctrl.dropped(), 3);
        assert_eq!(ctrl.drain_spans().len(), 4);
    }

    #[test]
    fn concurrent_producers_lose_nothing_within_capacity() {
        let tel = Arc::new(Telemetry::with_capacity(1 << 12));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let tel = Arc::clone(&tel);
                std::thread::spawn(move || {
                    for i in 0..256u64 {
                        tel.record_at(
                            i,
                            i + 1,
                            SpanKind::LlmCall {
                                agent: t,
                                step: 0,
                                request: i,
                                kind: CallKind::Plan,
                            },
                        );
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(tel.drain_spans().len(), 8 * 256);
        assert_eq!(tel.dropped(), 0);
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        let mut h = PhaseHistogram::default();
        for us in [1, 2, 4, 1000] {
            h.record(us);
        }
        assert_eq!(h.count, 4);
        assert_eq!(h.total_us, 1007);
        assert_eq!(h.max_us, 1000);
        assert_eq!(h.mean_us(), 251);
        assert!(h.p99_us() >= 1000);
        assert_eq!(h.percentile_us(25), 2, "1µs lands in bucket [1,2)");
    }

    #[test]
    fn decomposition_covers_full_budget() {
        // Agent 0: 40µs llm + 30µs blocked; agent 1: 20µs llm.
        // 10µs checkpoint charged to both. Wall 100µs.
        let spans = vec![
            llm(0, 0, 40),
            span(
                40,
                70,
                SpanKind::Blocked {
                    agent: 0,
                    blocker: 1,
                    step: 0,
                    reason: BlockReason::Dependency,
                },
            ),
            llm(1, 0, 20),
            span(80, 90, SpanKind::Checkpoint { step: 1 }),
        ];
        let rt =
            RunTelemetry::from_spans(spans, 100, 2, 0, Vec::new(), SchedStats::default(), None);
        let d = rt.decomposition;
        assert_eq!(d.llm_us, 60);
        assert_eq!(d.blocked_us, 30);
        assert_eq!(d.checkpoint_us, 20, "charged to every agent");
        assert_eq!(d.overhead_us, 200 - 60 - 30 - 20);
        assert!((d.coverage() - 1.0).abs() < 1e-9);
        let per = rt.per_agent();
        assert_eq!(per[0].llm_us, 40);
        assert_eq!(per[1].overhead_us, 100 - 20 - 10);
    }

    #[test]
    fn stall_edges_aggregate_and_rank() {
        let blocked = |agent, blocker, start, end| {
            span(
                start,
                end,
                SpanKind::Blocked {
                    agent,
                    blocker,
                    step: 0,
                    reason: BlockReason::Dependency,
                },
            )
        };
        let rt = RunTelemetry::from_spans(
            vec![
                blocked(1, 0, 0, 10),
                blocked(1, 0, 20, 50),
                blocked(2, 0, 0, 5),
            ],
            100,
            3,
            0,
            Vec::new(),
            SchedStats::default(),
            None,
        );
        let edges = rt.stall_edges(10);
        assert_eq!(edges.len(), 2);
        assert_eq!((edges[0].agent, edges[0].blocker), (1, 0));
        assert_eq!(edges[0].count, 2);
        assert_eq!(edges[0].total_us, 40);
        assert_eq!(rt.stall_edges(1).len(), 1);
    }

    #[test]
    fn timeline_derives_from_llm_spans() {
        let rt = RunTelemetry::from_spans(
            vec![
                llm(3, 5, 25),
                span(
                    25,
                    30,
                    SpanKind::Commit {
                        cluster: 0,
                        step: 0,
                        members: 1,
                    },
                ),
            ],
            100,
            4,
            0,
            Vec::new(),
            SchedStats::default(),
            None,
        );
        let tl = rt.timeline();
        assert_eq!(tl.spans.len(), 1);
        assert_eq!(tl.spans[0].agent, AgentId(3));
        assert_eq!(tl.spans[0].end, VirtualTime::from_micros(25));
        assert_eq!(tl.commits, vec![(Step(0), VirtualTime::from_micros(30))]);
    }

    #[test]
    fn llm_floor_and_slowdown() {
        let rt = RunTelemetry::from_spans(
            vec![llm(0, 0, 30), llm(0, 40, 70), llm(1, 0, 50)],
            120,
            2,
            0,
            Vec::new(),
            SchedStats::default(),
            None,
        );
        assert_eq!(rt.llm_floor_us(), 60, "agent 0's serial llm time");
        assert!((rt.slowdown_vs_critical().unwrap() - 2.0).abs() < 1e-9);
        let mut rt = rt;
        rt.set_critical_path(40);
        assert!((rt.slowdown_vs_critical().unwrap() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn telemetry_backend_records_calls_transparently() {
        let tel = Arc::new(Telemetry::new());
        let inner = Arc::new(InstantBackend::new());
        let backend = TelemetryBackend::new(inner.clone(), Arc::clone(&tel));
        let req = LlmRequest::new(RequestId(7), 3, 2, 64, 8, CallKind::Reflect);
        let resp = backend.call(&req);
        assert_eq!(resp.output_tokens, 8);
        assert_eq!(backend.describe(), "instant");
        assert_eq!(inner.calls(), 1);
        assert_eq!(tel.counter(Counter::LlmCalls), 1);
        let spans = tel.drain_spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(
            spans[0].kind,
            SpanKind::LlmCall {
                agent: 3,
                step: 2,
                request: 7,
                kind: CallKind::Reflect
            }
        );
    }

    #[test]
    fn remote_tracks_merge_rebased_and_account_drops() {
        let tel = Arc::new(Telemetry::new());
        let track = tel.remote_track("worker 7 (remote)");
        assert!(track > 0, "remote tracks never alias the shared buffer");
        assert_eq!(
            tel.remote_track("worker 7 (remote)"),
            track,
            "idempotent by name"
        );
        // Remote clock runs 50µs behind: offset +50 lands it on ours.
        tel.ingest(track, &[span(10, 30, SpanKind::Checkpoint { step: 2 })], 50);
        // A negative offset that would underflow clamps to 0.
        tel.ingest(
            track,
            &[span(10, 30, SpanKind::Checkpoint { step: 3 })],
            -20,
        );
        tel.set_remote_dropped(track, 4);
        tel.set_remote_dropped(track, 2); // absolute: keeps the max
        let spans = tel.drain_spans();
        assert_eq!(spans.len(), 2);
        assert_eq!((spans[0].start_us, spans[0].end_us), (0, 10));
        assert_eq!((spans[1].start_us, spans[1].end_us), (60, 80));
        assert!(spans.iter().all(|s| s.track == track));
        assert_eq!(tel.dropped(), 4, "worker-reported drops are counted");
        let rt = tel.finish(0, 100, 1, SchedStats::default(), None);
        assert_eq!(rt.dropped, 4);
        assert_eq!(
            rt.worker_tracks,
            vec![WorkerTrack {
                track,
                name: "worker 7 (remote)".to_string(),
                dropped: 4,
            }]
        );
        assert_eq!(rt.track_name(track), Some("worker 7 (remote)"));
        assert_eq!(rt.track_name(0), None);
    }

    #[test]
    fn ingest_unknown_track_is_ignored() {
        let tel = Arc::new(Telemetry::new());
        tel.ingest(9, &[span(0, 1, SpanKind::Checkpoint { step: 0 })], 0);
        tel.set_remote_dropped(9, 100);
        assert!(tel.drain_spans().is_empty());
        assert_eq!(tel.dropped(), 0);
    }

    #[test]
    fn drain_new_spans_is_incremental() {
        let tel = Arc::new(Telemetry::new());
        let rec = tel.recorder();
        let mut cursor = Vec::new();
        tel.record_at(0, 1, SpanKind::Checkpoint { step: 0 });
        rec.record_at(2, 3, SpanKind::Checkpoint { step: 1 });
        assert_eq!(tel.drain_new_spans(&mut cursor).len(), 2);
        assert_eq!(tel.drain_new_spans(&mut cursor).len(), 0, "nothing new");
        tel.record_at(4, 5, SpanKind::Checkpoint { step: 2 });
        let fresh = tel.drain_new_spans(&mut cursor);
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].kind, SpanKind::Checkpoint { step: 2 });
        // The full drain still sees everything (non-destructive).
        assert_eq!(tel.drain_spans().len(), 3);
    }

    #[test]
    fn snapshot_samples_counts_without_spans() {
        let tel = Arc::new(Telemetry::new());
        tel.record_at(0, 1, SpanKind::Checkpoint { step: 0 });
        tel.counter_add(Counter::LlmCalls, 3);
        let snap = tel.snapshot();
        assert_eq!(snap.spans, 1);
        assert_eq!(snap.dropped, 0);
        assert_eq!(snap.buffers, 1);
        assert_eq!(snap.counter(Counter::LlmCalls), 3);
        assert_eq!(snap.counter(Counter::FleetHedges), 0);
        assert!(snap.at_us >= 1 || snap.at_us == 0);
    }

    #[test]
    fn finish_rebases_onto_run_window() {
        let tel = Arc::new(Telemetry::new());
        let start = tel.now_us();
        tel.record_at(start + 10, start + 20, SpanKind::Checkpoint { step: 0 });
        let rt = tel.finish(start, start + 100, 1, SchedStats::default(), None);
        assert_eq!(rt.wall_us, 100);
        assert_eq!(rt.spans[0].start_us, 10);
        assert_eq!(rt.spans[0].end_us, 20);
        assert_eq!(rt.decomposition.checkpoint_us, 10);
        assert!(rt.phase(Phase::Checkpoint).is_some());
        assert_eq!(rt.phase(Phase::Llm), None);
    }
}
