use std::error::Error;
use std::fmt;

use aim_store::StoreError;

/// Errors surfaced by the engine's execution drivers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EngineError {
    /// A dependency-graph database operation failed.
    Store(StoreError),
    /// The scheduler stalled with unfinished agents — by construction this
    /// indicates a bug (the rules guarantee the minimum-step cluster is
    /// always eventually ready), so it is reported loudly rather than
    /// swallowed.
    Deadlock {
        /// Diagnostic description of the stalled state.
        detail: String,
    },
    /// Invalid engine configuration.
    Config(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Store(e) => write!(f, "dependency store error: {e}"),
            EngineError::Deadlock { detail } => write!(f, "scheduler deadlock: {detail}"),
            EngineError::Config(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl Error for EngineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EngineError::Store(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<StoreError> for EngineError {
    fn from(e: StoreError) -> Self {
        EngineError::Store(e)
    }
}

/// Checkpoint hooks do snapshot file I/O; route those failures through
/// the store's error type so `?` works inside the hook.
impl From<std::io::Error> for EngineError {
    fn from(e: std::io::Error) -> Self {
        EngineError::Store(StoreError::from(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = EngineError::from(StoreError::TxnConflict { attempts: 2 });
        assert!(e.to_string().contains("dependency store error"));
        assert!(e.source().is_some());
        let d = EngineError::Deadlock { detail: "x".into() };
        assert!(d.to_string().contains("deadlock"));
        assert!(d.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<EngineError>();
    }
}
