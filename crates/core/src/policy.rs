//! Dependency-management policies — the experiment arms of §4.2.
//!
//! * [`DependencyPolicy::GlobalSync`] — Algorithm 1: one global barrier per
//!   step (the paper's `parallel-sync`; with serialized agents it is also
//!   the `single-thread` baseline).
//! * [`DependencyPolicy::Spatiotemporal`] — AI Metropolis itself: the
//!   conservative coupling/blocking rules of §3.2.
//! * [`DependencyPolicy::Oracle`] — ground-truth dependencies mined from a
//!   finished trace (§4.2): agents synchronize only around steps where they
//!   *actually* appeared in each other's observation space. Unattainable
//!   online; an upper bound on dependency management.
//! * [`DependencyPolicy::NoDependency`] — all agents fully independent
//!   (§4.3's scaling lower bound; ignores causality).

use std::fmt;
use std::sync::Arc;

use crate::cluster::DisjointSets;
use crate::ids::{AgentId, Step};

/// Ground-truth per-step interaction structure extracted from a trace.
///
/// `OracleGraph` stores, for every step `s`, the connected components of
/// the *actual interaction graph* (pairs of agents within observation
/// range of each other during `s`). Under the oracle policy a component is
/// the unit of execution for step `s`: its members barrier with each other
/// before and after the step, and with nobody else.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleGraph {
    num_agents: usize,
    /// `components[s]` = clusters (sorted member lists) for step `s`.
    components: Vec<Vec<Vec<u32>>>,
    /// `lookup[s][agent]` = index into `components[s]`.
    lookup: Vec<Vec<u32>>,
    /// Interaction degree sums for `avg_dependencies`.
    total_degree: u64,
}

impl OracleGraph {
    /// Builds the oracle from per-step interaction pairs.
    ///
    /// `per_step_pairs[s]` lists unordered agent pairs that interacted
    /// during step `s` (the miner uses "within perception radius", matching
    /// §4.2's "appear in each other's observation space").
    ///
    /// # Panics
    ///
    /// Panics if a pair references an agent `>= num_agents`.
    pub fn from_interactions(num_agents: usize, per_step_pairs: &[Vec<(u32, u32)>]) -> Self {
        let mut components = Vec::with_capacity(per_step_pairs.len());
        let mut lookup = Vec::with_capacity(per_step_pairs.len());
        let mut total_degree = 0u64;
        for pairs in per_step_pairs {
            let mut ds = DisjointSets::new(num_agents);
            for &(a, b) in pairs {
                assert!(
                    (a as usize) < num_agents && (b as usize) < num_agents,
                    "interaction pair ({a},{b}) out of range"
                );
                ds.union(a as usize, b as usize);
                total_degree += 2;
            }
            let groups = ds.groups();
            let mut look = vec![0u32; num_agents];
            let mut comps = Vec::with_capacity(groups.len());
            for (ci, g) in groups.into_iter().enumerate() {
                for &m in &g {
                    look[m] = ci as u32;
                }
                comps.push(g.into_iter().map(|m| m as u32).collect());
            }
            components.push(comps);
            lookup.push(look);
        }
        OracleGraph {
            num_agents,
            components,
            lookup,
            total_degree,
        }
    }

    /// Number of agents the oracle covers.
    pub fn num_agents(&self) -> usize {
        self.num_agents
    }

    /// Number of steps the oracle covers.
    pub fn num_steps(&self) -> usize {
        self.components.len()
    }

    /// Members of `agent`'s component for `step` (sorted). Agents beyond
    /// the mined horizon act as singletons.
    pub fn component_of(&self, step: Step, agent: AgentId) -> Vec<u32> {
        match self.components.get(step.0 as usize) {
            Some(comps) => comps[self.lookup[step.0 as usize][agent.index()] as usize].clone(),
            None => vec![agent.0],
        }
    }

    /// All components at `step`.
    pub fn components_at(&self, step: Step) -> &[Vec<u32>] {
        self.components
            .get(step.0 as usize)
            .map(|c| c.as_slice())
            .unwrap_or(&[])
    }

    /// The paper's §2.2 statistic: average number of prior-step agents each
    /// agent depends on, **including itself** (GenAgent measures 1.85 vs
    /// the all-to-all 25).
    pub fn avg_dependencies(&self) -> f64 {
        if self.num_agents == 0 || self.components.is_empty() {
            return 1.0;
        }
        1.0 + self.total_degree as f64 / (self.num_agents as f64 * self.components.len() as f64)
    }
}

/// How the scheduler decides which agents may advance (see module docs).
#[derive(Clone)]
pub enum DependencyPolicy {
    /// Global step barrier over all agents (Algorithm 1).
    GlobalSync,
    /// AI Metropolis out-of-order rules (§3.2–3.4).
    Spatiotemporal,
    /// Ground-truth dependencies from a mined [`OracleGraph`].
    Oracle(Arc<OracleGraph>),
    /// No dependencies at all: every agent advances freely.
    NoDependency,
}

impl DependencyPolicy {
    /// Short identifier used in reports (matches the paper's legends).
    pub fn label(&self) -> &'static str {
        match self {
            DependencyPolicy::GlobalSync => "parallel-sync",
            DependencyPolicy::Spatiotemporal => "metropolis",
            DependencyPolicy::Oracle(_) => "oracle",
            DependencyPolicy::NoDependency => "no-dependency",
        }
    }
}

impl fmt::Debug for DependencyPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DependencyPolicy::{}", self.label())
    }
}

impl PartialEq for DependencyPolicy {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (DependencyPolicy::GlobalSync, DependencyPolicy::GlobalSync)
            | (DependencyPolicy::Spatiotemporal, DependencyPolicy::Spatiotemporal)
            | (DependencyPolicy::NoDependency, DependencyPolicy::NoDependency) => true,
            (DependencyPolicy::Oracle(a), DependencyPolicy::Oracle(b)) => a == b,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_components_and_lookup() {
        // Step 0: 0-1 interact, 2 alone. Step 1: 1-2 interact, 0 alone.
        let o = OracleGraph::from_interactions(3, &[vec![(0, 1)], vec![(1, 2)]]);
        assert_eq!(o.num_steps(), 2);
        assert_eq!(o.component_of(Step(0), AgentId(0)), vec![0, 1]);
        assert_eq!(o.component_of(Step(0), AgentId(2)), vec![2]);
        assert_eq!(o.component_of(Step(1), AgentId(0)), vec![0]);
        assert_eq!(o.component_of(Step(1), AgentId(2)), vec![1, 2]);
        // Beyond horizon: singleton.
        assert_eq!(o.component_of(Step(5), AgentId(1)), vec![1]);
    }

    #[test]
    fn oracle_transitive_components() {
        let o = OracleGraph::from_interactions(4, &[vec![(0, 1), (1, 2)]]);
        assert_eq!(o.component_of(Step(0), AgentId(2)), vec![0, 1, 2]);
        assert_eq!(o.components_at(Step(0)).len(), 2);
    }

    #[test]
    fn avg_dependencies_counts_self() {
        // 3 agents, 2 steps, one pair per step: degree sum = 4 over 6
        // agent-steps → 1 + 4/6.
        let o = OracleGraph::from_interactions(3, &[vec![(0, 1)], vec![(1, 2)]]);
        assert!((o.avg_dependencies() - (1.0 + 4.0 / 6.0)).abs() < 1e-12);
        // No interactions at all → exactly 1 (self).
        let lonely = OracleGraph::from_interactions(3, &[vec![], vec![]]);
        assert_eq!(lonely.avg_dependencies(), 1.0);
    }

    #[test]
    fn policy_labels() {
        assert_eq!(DependencyPolicy::GlobalSync.label(), "parallel-sync");
        assert_eq!(DependencyPolicy::Spatiotemporal.label(), "metropolis");
        assert_eq!(DependencyPolicy::NoDependency.label(), "no-dependency");
        let o = Arc::new(OracleGraph::from_interactions(1, &[]));
        assert_eq!(DependencyPolicy::Oracle(o).label(), "oracle");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_pair_rejected() {
        OracleGraph::from_interactions(2, &[vec![(0, 5)]]);
    }
}
