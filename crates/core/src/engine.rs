//! The high-level engine facade: configure once, run replays.

use std::sync::Arc;

use aim_llm::{ServerConfig, SimServer};
use aim_store::Db;

use crate::error::EngineError;
use crate::exec::sim::{run_sim, SimConfig};
use crate::ids::AgentId;
use crate::metrics::RunReport;
use crate::policy::DependencyPolicy;
use crate::rules::RuleParams;
use crate::scheduler::Scheduler;
use crate::space::Space;
use crate::workload::Workload;

/// A configured simulation engine over space `S`.
///
/// `Engine` bundles the pieces a benchmark run needs — space, rule
/// parameters, dependency policy, serving deployment, and executor knobs —
/// and exposes [`Engine::run_replay`], which executes a recorded workload
/// and returns the measured [`RunReport`]. Each run is hermetic: a fresh
/// dependency store and serving simulator are created per call, so engines
/// can be reused across workloads and runs are reproducible.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use aim_core::prelude::*;
/// use aim_llm::{presets, ServerConfig};
///
/// # use aim_core::workload::CallSpec;
/// # struct Nothing;
/// # impl Workload<Point> for Nothing {
/// #     fn num_agents(&self) -> usize { 2 }
/// #     fn target_step(&self) -> Step { Step(2) }
/// #     fn initial_pos(&self, a: AgentId) -> Point { Point::new(a.0 as i32 * 50, 0) }
/// #     fn calls(&self, _: AgentId, _: Step) -> Vec<CallSpec> { Vec::new() }
/// #     fn pos_after(&self, a: AgentId, _: Step) -> Point { self.initial_pos(a) }
/// # }
/// # fn main() -> Result<(), EngineError> {
/// let engine = Engine::builder(GridSpace::new(100, 140))
///     .rules(RuleParams::genagent())
///     .policy(DependencyPolicy::Spatiotemporal)
///     .server(ServerConfig::from_preset(presets::tiny_test(), 1, true))
///     .build();
/// let report = engine.run_replay(&Nothing)?;
/// assert_eq!(report.mode, "metropolis");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Engine<S: Space> {
    space: Arc<S>,
    params: RuleParams,
    policy: DependencyPolicy,
    server: ServerConfig,
    sim: SimConfig,
    speculation: Option<crate::spec::SpecParams>,
}

impl<S: Space> Engine<S> {
    /// Starts building an engine over `space`.
    pub fn builder(space: S) -> EngineBuilder<S> {
        EngineBuilder {
            space: Arc::new(space),
            params: RuleParams::genagent(),
            policy: DependencyPolicy::Spatiotemporal,
            server: None,
            sim: SimConfig::default(),
            speculation: None,
        }
    }

    /// The rule parameters in force.
    pub fn params(&self) -> RuleParams {
        self.params
    }

    /// The dependency policy in force.
    pub fn policy(&self) -> &DependencyPolicy {
        &self.policy
    }

    /// Executes `workload` to completion in virtual time.
    ///
    /// # Errors
    ///
    /// Propagates [`EngineError`] from the scheduler or store.
    pub fn run_replay<W>(&self, workload: &W) -> Result<RunReport, EngineError>
    where
        W: Workload<S::Pos> + ?Sized,
    {
        let initial: Vec<S::Pos> = (0..workload.num_agents() as u32)
            .map(|a| workload.initial_pos(AgentId(a)))
            .collect();
        let mut server = SimServer::new(self.server.clone());
        if let Some(spec) = self.speculation {
            let mut scheduler = crate::spec::SpecScheduler::new(
                Arc::clone(&self.space),
                self.params,
                spec,
                Arc::new(Db::new()),
                &initial,
                workload.target_step(),
            )?;
            return crate::spec::run_spec_sim(&mut scheduler, workload, &mut server, &self.sim);
        }
        let mut scheduler = Scheduler::new(
            Arc::clone(&self.space),
            self.params,
            self.policy.clone(),
            Arc::new(Db::new()),
            &initial,
            workload.target_step(),
        )?;
        run_sim(&mut scheduler, workload, &mut server, &self.sim)
    }
}

/// Builder for [`Engine`] (see [`Engine::builder`]).
#[derive(Debug)]
pub struct EngineBuilder<S: Space> {
    space: Arc<S>,
    params: RuleParams,
    policy: DependencyPolicy,
    server: Option<ServerConfig>,
    sim: SimConfig,
    speculation: Option<crate::spec::SpecParams>,
}

impl<S: Space> EngineBuilder<S> {
    /// Sets the rule parameters (default: [`RuleParams::genagent`]).
    pub fn rules(mut self, params: RuleParams) -> Self {
        self.params = params;
        self
    }

    /// Sets the dependency policy (default: spatiotemporal OOO).
    pub fn policy(mut self, policy: DependencyPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the serving deployment (required).
    pub fn server(mut self, server: ServerConfig) -> Self {
        self.server = Some(server);
        self
    }

    /// Sets executor knobs (default: [`SimConfig::default`]).
    pub fn sim(mut self, sim: SimConfig) -> Self {
        self.sim = sim;
        self
    }

    /// Runs replays under the *speculative* engine (paper §6, see
    /// [`crate::spec`]) instead of the conservative policy. The policy
    /// set via [`EngineBuilder::policy`] is ignored for speculative runs
    /// (speculation always starts from the spatiotemporal rules).
    pub fn speculation(mut self, spec: crate::spec::SpecParams) -> Self {
        self.speculation = Some(spec);
        self
    }

    /// Builds the engine.
    ///
    /// # Panics
    ///
    /// Panics if no server configuration was provided.
    pub fn build(self) -> Engine<S> {
        Engine {
            space: self.space,
            params: self.params,
            policy: self.policy,
            server: self.server.expect("EngineBuilder::server is required"),
            sim: self.sim,
            speculation: self.speculation,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{GridSpace, Point};
    use crate::workload::testutil::TableWorkload;
    use crate::workload::CallSpec;
    use aim_llm::{presets, CallKind};

    fn engine(policy: DependencyPolicy) -> Engine<GridSpace> {
        Engine::builder(GridSpace::new(100, 140))
            .policy(policy)
            .server(ServerConfig::from_preset(presets::tiny_test(), 2, true))
            .build()
    }

    #[test]
    fn engine_runs_and_is_reusable() {
        let w = TableWorkload::stationary(vec![Point::new(0, 0), Point::new(90, 90)], 2).with_call(
            0,
            0,
            CallSpec::new(100, 10, CallKind::Plan),
        );
        let e = engine(DependencyPolicy::Spatiotemporal);
        let r1 = e.run_replay(&w).unwrap();
        let r2 = e.run_replay(&w).unwrap();
        assert_eq!(r1.makespan, r2.makespan, "hermetic runs must be identical");
        assert_eq!(r1.total_calls, 1);
        assert_eq!(r1.mode, "metropolis");
    }

    #[test]
    fn policies_report_their_labels() {
        let w = TableWorkload::stationary(vec![Point::new(0, 0)], 1);
        for (policy, label) in [
            (DependencyPolicy::GlobalSync, "parallel-sync"),
            (DependencyPolicy::NoDependency, "no-dependency"),
        ] {
            let r = engine(policy).run_replay(&w).unwrap();
            assert_eq!(r.mode, label);
        }
    }

    #[test]
    fn target_step_comes_from_workload() {
        let w = TableWorkload::stationary(vec![Point::new(0, 0)], 5);
        let r = engine(DependencyPolicy::NoDependency)
            .run_replay(&w)
            .unwrap();
        assert_eq!(r.sched.agent_steps, 5);
    }

    #[test]
    #[should_panic(expected = "server is required")]
    fn missing_server_panics() {
        let _ = Engine::builder(GridSpace::new(10, 10)).build();
    }

    #[test]
    fn speculative_engine_reports_spec_stats() {
        let w = TableWorkload::stationary(vec![Point::new(0, 0), Point::new(10, 0)], 8)
            .with_call(0, 0, CallSpec::new(400, 200, CallKind::Plan))
            .with_call(1, 6, CallSpec::new(50, 5, CallKind::Plan));
        let conservative = engine(DependencyPolicy::Spatiotemporal)
            .run_replay(&w)
            .unwrap();
        assert!(conservative.spec.is_none());
        let speculative = Engine::builder(GridSpace::new(100, 140))
            .server(ServerConfig::from_preset(presets::tiny_test(), 2, true))
            .speculation(crate::spec::SpecParams::new(4))
            .build()
            .run_replay(&w)
            .unwrap();
        let sr = speculative.spec.expect("speculative runs report stats");
        assert_eq!(sr.stats.retired_steps, 16);
        assert!(speculative.mode.starts_with("metropolis-spec"));
        assert!(speculative.makespan <= conservative.makespan);
    }
}
