//! Run reports: the measurements the paper's evaluation is built from.

use aim_llm::{CallKind, ServerMetrics, VirtualTime};
use serde::{Deserialize, Serialize};

use crate::ids::{AgentId, Step};
use crate::scheduler::SchedStats;

/// One LLM call's lifetime on the timeline (Fig. 1's colored bars).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CallSpan {
    /// Issuing agent.
    pub agent: AgentId,
    /// Step the call belongs to.
    pub step: Step,
    /// Agent function.
    pub kind: CallKind,
    /// Submission time.
    pub start: VirtualTime,
    /// Completion time.
    pub end: VirtualTime,
}

/// Optional recording of every call span plus step-commit marks.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    /// All call spans, in completion order.
    pub spans: Vec<CallSpan>,
    /// `(step, commit time)` of every cluster commit.
    pub commits: Vec<(Step, VirtualTime)>,
}

impl Timeline {
    /// Renders an ASCII approximation of the paper's Fig. 1: one row per
    /// agent, colored by call kind (here: a letter per kind), over
    /// `columns` buckets of the run.
    pub fn render_ascii(&self, num_agents: usize, columns: usize) -> String {
        let end = self
            .spans
            .iter()
            .map(|s| s.end)
            .max()
            .unwrap_or(VirtualTime::ZERO)
            .as_micros()
            .max(1);
        let mut rows = vec![vec![b' '; columns]; num_agents];
        for span in &self.spans {
            let a = span.agent.index();
            if a >= num_agents {
                continue;
            }
            // A span ending exactly at the run end maps to bucket
            // `columns`, one past the last column — clamp both endpoints
            // so edge spans land in the final column instead of
            // disappearing (or indexing out of range).
            let last = columns - 1;
            let c0 = ((span.start.as_micros() * columns as u64 / end) as usize).min(last);
            let c1 = ((span.end.as_micros() * columns as u64 / end) as usize).min(last);
            let glyph = span.kind.as_str().as_bytes()[0].to_ascii_uppercase();
            for c in c0..=c1 {
                rows[a][c] = glyph;
            }
        }
        let mut out = String::new();
        for (a, row) in rows.iter().enumerate() {
            out.push_str(&format!("agent{a:>4} |"));
            out.push_str(std::str::from_utf8(row).expect("ascii"));
            out.push_str("|\n");
        }
        out
    }
}

/// The result of executing one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct RunReport {
    /// Policy label (`parallel-sync`, `metropolis`, …).
    pub mode: String,
    /// Completion time of the whole simulation.
    pub makespan: VirtualTime,
    /// Number of LLM calls issued.
    pub total_calls: u64,
    /// Sum of prompt tokens.
    pub total_input_tokens: u64,
    /// Sum of generated tokens.
    pub total_output_tokens: u64,
    /// The paper's achieved parallelism: average outstanding LLM requests
    /// over the execution (§4.2 reports 0.95 / 1.94 / 3.46 for
    /// single-thread / parallel-sync / metropolis at 25 agents, 8 GPUs).
    pub achieved_parallelism: f64,
    /// Average replica busy fraction.
    pub gpu_utilization: f64,
    /// Scheduler counters.
    pub sched: SchedStats,
    /// Serving-engine counters.
    pub server: Option<ServerMetrics>,
    /// Speculation accounting (present for speculative runs, §6).
    pub spec: Option<crate::spec::SpecReport>,
    /// Optional per-call timeline (Fig. 1).
    pub timeline: Option<Timeline>,
}

impl RunReport {
    /// Speedup of this run over `other` (by makespan).
    pub fn speedup_over(&self, other: &RunReport) -> f64 {
        other.makespan.as_secs_f64() / self.makespan.as_secs_f64().max(f64::MIN_POSITIVE)
    }

    /// This run's completion time as a fraction of `faster`'s
    /// (e.g. "74.7% of oracle performance" compares makespans).
    pub fn fraction_of(&self, faster: &RunReport) -> f64 {
        faster.makespan.as_secs_f64() / self.makespan.as_secs_f64().max(f64::MIN_POSITIVE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(makespan_us: u64) -> RunReport {
        RunReport {
            mode: "test".into(),
            makespan: VirtualTime::from_micros(makespan_us),
            total_calls: 0,
            total_input_tokens: 0,
            total_output_tokens: 0,
            achieved_parallelism: 0.0,
            gpu_utilization: 0.0,
            sched: SchedStats::default(),
            server: None,
            spec: None,
            timeline: None,
        }
    }

    #[test]
    fn speedup_and_fraction() {
        let fast = report(50);
        let slow = report(100);
        assert_eq!(fast.speedup_over(&slow), 2.0);
        assert_eq!(slow.fraction_of(&fast), 0.5);
    }

    #[test]
    fn timeline_ascii_shape() {
        let tl = Timeline {
            spans: vec![
                CallSpan {
                    agent: AgentId(0),
                    step: Step(0),
                    kind: CallKind::Plan,
                    start: VirtualTime::ZERO,
                    end: VirtualTime::from_micros(50),
                },
                CallSpan {
                    agent: AgentId(1),
                    step: Step(0),
                    kind: CallKind::Converse,
                    start: VirtualTime::from_micros(50),
                    end: VirtualTime::from_micros(100),
                },
            ],
            commits: vec![],
        };
        let art = tl.render_ascii(2, 20);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains('P'));
        assert!(lines[1].contains('C'));
        // Agent 0's bar occupies the left half, agent 1's the right.
        assert!(lines[0].find('P').unwrap() < lines[1].find('C').unwrap());
    }

    #[test]
    fn empty_timeline_renders() {
        let tl = Timeline::default();
        let art = tl.render_ascii(1, 10);
        assert!(art.contains("agent"));
    }

    #[test]
    fn span_ending_at_run_end_fills_last_column() {
        // Regression: `end == run_end` used to compute a bucket one past
        // the last column; the span must render through the final column.
        let tl = Timeline {
            spans: vec![CallSpan {
                agent: AgentId(0),
                step: Step(0),
                kind: CallKind::Plan,
                start: VirtualTime::from_micros(90),
                end: VirtualTime::from_micros(100),
            }],
            commits: vec![],
        };
        let art = tl.render_ascii(1, 10);
        let row = art.lines().next().unwrap();
        let bar = &row[row.find('|').unwrap() + 1..row.rfind('|').unwrap()];
        assert_eq!(bar.len(), 10);
        assert_eq!(bar.as_bytes()[9], b'P', "last column must be filled");
    }

    #[test]
    fn zero_width_span_at_run_end_still_renders() {
        // The degenerate edge case: a span whose start *and* end both sit
        // at the run end maps to an empty (previously out-of-range) bucket
        // range; after clamping it renders as one glyph in the last column.
        let tl = Timeline {
            spans: vec![
                CallSpan {
                    agent: AgentId(0),
                    step: Step(0),
                    kind: CallKind::Plan,
                    start: VirtualTime::ZERO,
                    end: VirtualTime::from_micros(100),
                },
                CallSpan {
                    agent: AgentId(1),
                    step: Step(1),
                    kind: CallKind::Converse,
                    start: VirtualTime::from_micros(100),
                    end: VirtualTime::from_micros(100),
                },
            ],
            commits: vec![],
        };
        let art = tl.render_ascii(2, 8);
        let lines: Vec<&str> = art.lines().collect();
        assert!(lines[1].contains('C'), "edge span must not vanish");
        assert_eq!(lines[1].find('C').unwrap(), lines[1].rfind('C').unwrap());
    }
}
