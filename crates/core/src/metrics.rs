//! Run reports: the measurements the paper's evaluation is built from.

use aim_llm::{CallKind, ServerMetrics, VirtualTime};
use serde::{Deserialize, Serialize};

use crate::ids::{AgentId, Step};
use crate::scheduler::SchedStats;

/// One LLM call's lifetime on the timeline (Fig. 1's colored bars).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CallSpan {
    /// Issuing agent.
    pub agent: AgentId,
    /// Step the call belongs to.
    pub step: Step,
    /// Agent function.
    pub kind: CallKind,
    /// Submission time.
    pub start: VirtualTime,
    /// Completion time.
    pub end: VirtualTime,
}

/// Optional recording of every call span plus step-commit marks.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    /// All call spans, in completion order.
    pub spans: Vec<CallSpan>,
    /// `(step, commit time)` of every cluster commit.
    pub commits: Vec<(Step, VirtualTime)>,
}

impl Timeline {
    /// Renders an ASCII approximation of the paper's Fig. 1: one row per
    /// agent, colored by call kind (here: a letter per kind), over
    /// `columns` buckets of the run.
    pub fn render_ascii(&self, num_agents: usize, columns: usize) -> String {
        let end = self
            .spans
            .iter()
            .map(|s| s.end)
            .max()
            .unwrap_or(VirtualTime::ZERO)
            .as_micros()
            .max(1);
        let mut rows = vec![vec![b' '; columns]; num_agents];
        for span in &self.spans {
            let a = span.agent.index();
            if a >= num_agents {
                continue;
            }
            let c0 = (span.start.as_micros() * columns as u64 / end) as usize;
            let c1 = (span.end.as_micros() * columns as u64 / end) as usize;
            let glyph = span.kind.as_str().as_bytes()[0].to_ascii_uppercase();
            for c in c0..=c1.min(columns - 1) {
                rows[a][c] = glyph;
            }
        }
        let mut out = String::new();
        for (a, row) in rows.iter().enumerate() {
            out.push_str(&format!("agent{a:>4} |"));
            out.push_str(std::str::from_utf8(row).expect("ascii"));
            out.push_str("|\n");
        }
        out
    }
}

/// The result of executing one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct RunReport {
    /// Policy label (`parallel-sync`, `metropolis`, …).
    pub mode: String,
    /// Completion time of the whole simulation.
    pub makespan: VirtualTime,
    /// Number of LLM calls issued.
    pub total_calls: u64,
    /// Sum of prompt tokens.
    pub total_input_tokens: u64,
    /// Sum of generated tokens.
    pub total_output_tokens: u64,
    /// The paper's achieved parallelism: average outstanding LLM requests
    /// over the execution (§4.2 reports 0.95 / 1.94 / 3.46 for
    /// single-thread / parallel-sync / metropolis at 25 agents, 8 GPUs).
    pub achieved_parallelism: f64,
    /// Average replica busy fraction.
    pub gpu_utilization: f64,
    /// Scheduler counters.
    pub sched: SchedStats,
    /// Serving-engine counters.
    pub server: Option<ServerMetrics>,
    /// Speculation accounting (present for speculative runs, §6).
    pub spec: Option<crate::spec::SpecReport>,
    /// Optional per-call timeline (Fig. 1).
    pub timeline: Option<Timeline>,
}

impl RunReport {
    /// Speedup of this run over `other` (by makespan).
    pub fn speedup_over(&self, other: &RunReport) -> f64 {
        other.makespan.as_secs_f64() / self.makespan.as_secs_f64().max(f64::MIN_POSITIVE)
    }

    /// This run's completion time as a fraction of `faster`'s
    /// (e.g. "74.7% of oracle performance" compares makespans).
    pub fn fraction_of(&self, faster: &RunReport) -> f64 {
        faster.makespan.as_secs_f64() / self.makespan.as_secs_f64().max(f64::MIN_POSITIVE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(makespan_us: u64) -> RunReport {
        RunReport {
            mode: "test".into(),
            makespan: VirtualTime::from_micros(makespan_us),
            total_calls: 0,
            total_input_tokens: 0,
            total_output_tokens: 0,
            achieved_parallelism: 0.0,
            gpu_utilization: 0.0,
            sched: SchedStats::default(),
            server: None,
            spec: None,
            timeline: None,
        }
    }

    #[test]
    fn speedup_and_fraction() {
        let fast = report(50);
        let slow = report(100);
        assert_eq!(fast.speedup_over(&slow), 2.0);
        assert_eq!(slow.fraction_of(&fast), 0.5);
    }

    #[test]
    fn timeline_ascii_shape() {
        let tl = Timeline {
            spans: vec![
                CallSpan {
                    agent: AgentId(0),
                    step: Step(0),
                    kind: CallKind::Plan,
                    start: VirtualTime::ZERO,
                    end: VirtualTime::from_micros(50),
                },
                CallSpan {
                    agent: AgentId(1),
                    step: Step(0),
                    kind: CallKind::Converse,
                    start: VirtualTime::from_micros(50),
                    end: VirtualTime::from_micros(100),
                },
            ],
            commits: vec![],
        };
        let art = tl.render_ascii(2, 20);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains('P'));
        assert!(lines[1].contains('C'));
        // Agent 0's bar occupies the left half, agent 1's the right.
        assert!(lines[0].find('P').unwrap() < lines[1].find('C').unwrap());
    }

    #[test]
    fn empty_timeline_renders() {
        let tl = Timeline::default();
        let art = tl.render_ascii(1, 10);
        assert!(art.contains("agent"));
    }
}
