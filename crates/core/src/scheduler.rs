//! The out-of-order scheduler state machine (paper §3.1, Algorithm 3).
//!
//! [`Scheduler`] is the controller's brain, factored as a pure state
//! machine so the same logic drives both the discrete-event executor
//! ([`crate::exec::sim`]) and the threaded runtime
//! ([`crate::exec::threaded`]): callers repeatedly take [`ready
//! clusters`](Scheduler::ready_clusters), execute them (issuing LLM calls
//! however they like), and report [`completions`](Scheduler::complete).
//!
//! Internally the scheduler keeps a *dirty set* of agents whose readiness
//! must be (re)evaluated and a *watcher table* mapping a blocking agent to
//! the agents waiting on it, so each commit touches only the affected
//! neighborhood instead of rescanning the world — the scoreboard analogy
//! of the paper's out-of-order execution.

use std::collections::BTreeSet;
use std::sync::Arc;

use aim_store::{Db, StoreError};
use serde::{Deserialize, Serialize};

use crate::depgraph::{DepGraph, DepTracker};
use crate::ids::{AgentId, ClusterId, Step};
use crate::policy::DependencyPolicy;
use crate::rules::RuleParams;
use crate::space::Space;

/// A group of coupled agents scheduled to execute one step together
/// (§3.4); the minimal synchronization unit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cluster {
    /// Unique id of this cluster instance.
    pub id: ClusterId,
    /// The step every member executes.
    pub step: Step,
    /// Sorted member agents.
    pub members: Vec<AgentId>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AgentState {
    /// Not executing; readiness subject to the policy.
    Waiting,
    /// Handed out in a ready cluster, not yet completed.
    InFlight,
    /// Reached the target step.
    Finished,
}

/// Counters describing a scheduler run (see [`Scheduler::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct SchedStats {
    /// Clusters emitted as ready.
    pub clusters_emitted: u64,
    /// Total members across emitted clusters (= agent-steps executed).
    pub agent_steps: u64,
    /// Times a watcher wake caused re-evaluation.
    pub watcher_wakes: u64,
    /// Blocked verdicts during readiness evaluation.
    pub blocked_evals: u64,
    /// Maximum observed step skew (max step − min step over agents).
    pub max_step_skew: u32,
    /// Largest cluster emitted.
    pub max_cluster_size: u32,
}

/// The AI Metropolis scheduler: tracks real dependencies and hands out
/// maximally parallel, causality-safe work.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use aim_core::prelude::*;
/// use aim_store::Db;
///
/// # fn main() -> Result<(), aim_store::StoreError> {
/// let space = Arc::new(GridSpace::new(100, 140));
/// let initial = vec![Point::new(0, 0), Point::new(50, 50)];
/// let mut sched = Scheduler::new(
///     space,
///     RuleParams::genagent(),
///     DependencyPolicy::Spatiotemporal,
///     Arc::new(Db::new()),
///     &initial,
///     Step(2),
/// )?;
/// // Far apart: both agents are immediately ready, in separate clusters.
/// let ready = sched.ready_clusters();
/// assert_eq!(ready.len(), 2);
/// for c in &ready {
///     let pos = sched.graph().pos(c.members[0]);
///     sched.complete(&c.id.clone(), &[(c.members[0], pos)])?;
/// }
/// # Ok(())
/// # }
/// ```
/// The scheduler is generic over its dependency tracker `G` — the
/// single-shard [`DepGraph`] by default, or a
/// [`ShardedDepGraph`](crate::shard::ShardedDepGraph) for 10k+-agent
/// worlds (built via [`Scheduler::from_graph`]); the state machine is
/// identical either way.
pub struct Scheduler<S: Space, G: DepTracker<S> = DepGraph<S>> {
    graph: G,
    policy: DependencyPolicy,
    target_step: Step,
    state: Vec<AgentState>,
    /// `(step, agent)` entries needing readiness evaluation.
    dirty: BTreeSet<(u32, u32)>,
    /// blocker agent → agents to re-dirty when it advances (dense, one
    /// slot per agent — ids index directly, no hashing).
    watchers: Vec<Vec<u32>>,
    inflight: std::collections::HashMap<ClusterId, Cluster>,
    next_cluster: u64,
    finished: usize,
    stats: SchedStats,
    /// Cluster-growth scratch: `stamp[a] == epoch` marks `a` as already
    /// collected into the cluster being grown (reset-free visited set).
    stamp: Vec<u64>,
    epoch: u64,
    /// Reused BFS frontier for cluster growth.
    frontier: Vec<AgentId>,
    /// Telemetry sink; when set, dependency-blocked waits are recorded
    /// as spans (opened at the blocked verdict, closed at emission).
    telemetry: Option<Arc<crate::telemetry::Telemetry>>,
    /// Per-agent open blocked-wait marks (`since_us == u64::MAX` means
    /// not blocked). Only populated when telemetry is attached.
    block_mark: Vec<BlockMark>,
    _space: std::marker::PhantomData<fn() -> S>,
}

/// An open dependency-blocked wait: when it began and who blocked it.
#[derive(Debug, Clone, Copy)]
struct BlockMark {
    since_us: u64,
    blocker: u32,
}

const UNMARKED: BlockMark = BlockMark {
    since_us: u64::MAX,
    blocker: u32::MAX,
};

impl<S: Space, G: DepTracker<S>> std::fmt::Debug for Scheduler<S, G> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("policy", &self.policy)
            .field("agents", &self.graph.len())
            .field("target_step", &self.target_step)
            .field("finished", &self.finished)
            .finish()
    }
}

impl<S: Space> Scheduler<S> {
    /// Creates a scheduler with all agents at step 0.
    ///
    /// Only the spatiotemporal policy needs the graph's derived
    /// blocked/coupled edges, so for every other policy the underlying
    /// [`DepGraph`] is built with
    /// [`EdgeMode::Off`](crate::depgraph::EdgeMode) and **edge queries on
    /// [`Scheduler::graph`] panic** (node queries — positions, steps,
    /// `validate` — always work). Build a standalone [`DepGraph`] if you
    /// need edge introspection alongside an ablation policy.
    ///
    /// # Errors
    ///
    /// Propagates store errors from the initial graph population.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is empty or `target_step` is zero.
    pub fn new(
        space: Arc<S>,
        params: RuleParams,
        policy: DependencyPolicy,
        db: Arc<Db>,
        initial: &[S::Pos],
        target_step: Step,
    ) -> Result<Self, StoreError> {
        Self::new_with_history(space, params, policy, db, initial, target_step, false)
    }

    /// [`Scheduler::new`] with per-step history recording enabled when
    /// `history` is set (see [`crate::depgraph::GraphOptions`]) — the
    /// construction checkpointed long-horizon runs use, paired with
    /// periodic [`Scheduler::evict_history`] calls.
    ///
    /// # Errors
    ///
    /// Propagates store errors from the initial graph population.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is empty or `target_step` is zero.
    pub fn new_with_history(
        space: Arc<S>,
        params: RuleParams,
        policy: DependencyPolicy,
        db: Arc<Db>,
        initial: &[S::Pos],
        target_step: Step,
        history: bool,
    ) -> Result<Self, StoreError> {
        assert!(!initial.is_empty(), "at least one agent is required");
        assert!(target_step > Step::ZERO, "target_step must be positive");
        let graph = DepGraph::new_with_options(
            space,
            params,
            db,
            initial,
            crate::depgraph::GraphOptions {
                edges: Self::edge_mode_for(&policy),
                history,
            },
        )?;
        Ok(Self::around_graph(graph, policy, target_step))
    }

    /// Rebuilds a scheduler from the authoritative records already in
    /// `db` — the resume path of checkpoint/restore. Each agent picks up
    /// at its recorded step: agents at or past `target_step` start
    /// finished, everyone else is immediately evaluable.
    ///
    /// The caller chooses `target_step` for the *resumed* run, which may
    /// exceed the target the snapshot was taken under (extending a
    /// finished run is legal).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Codec`] if an agent record is missing or
    /// malformed.
    ///
    /// # Panics
    ///
    /// Panics if `num_agents` is zero or `target_step` is zero.
    pub fn recover(
        space: Arc<S>,
        params: RuleParams,
        policy: DependencyPolicy,
        db: Arc<Db>,
        num_agents: usize,
        target_step: Step,
        history: bool,
    ) -> Result<Self, StoreError> {
        assert!(num_agents > 0, "at least one agent is required");
        assert!(target_step > Step::ZERO, "target_step must be positive");
        let graph = DepGraph::recover_with_options(
            space,
            params,
            db,
            num_agents,
            crate::depgraph::GraphOptions {
                edges: Self::edge_mode_for(&policy),
                history,
            },
        )?;
        Ok(Self::around_graph(graph, policy, target_step))
    }

    /// Only the spatiotemporal policy consults the graph's derived
    /// edges; the ablation policies schedule without them and skip the
    /// per-commit maintenance cost.
    fn edge_mode_for(policy: &DependencyPolicy) -> crate::depgraph::EdgeMode {
        match policy {
            DependencyPolicy::Spatiotemporal => crate::depgraph::EdgeMode::Maintained,
            _ => crate::depgraph::EdgeMode::Off,
        }
    }
}

impl<S: Space, G: DepTracker<S>> Scheduler<S, G> {
    /// Builds the scheduler state machine around an already-assembled
    /// dependency tracker, deriving agent states from its (possibly
    /// recovered) steps — how a scheduler is mounted on a
    /// [`ShardedDepGraph`](crate::shard::ShardedDepGraph) (or any custom
    /// [`DepTracker`]).
    ///
    /// The tracker must answer the edge queries the `policy` will ask:
    /// under [`DependencyPolicy::Spatiotemporal`] that means maintained
    /// blocked/coupled adjacency.
    ///
    /// # Panics
    ///
    /// Panics if the tracker is empty or `target_step` is zero.
    pub fn from_graph(graph: G, policy: DependencyPolicy, target_step: Step) -> Self {
        assert!(graph.len() > 0, "at least one agent is required");
        assert!(target_step > Step::ZERO, "target_step must be positive");
        Self::around_graph(graph, policy, target_step)
    }

    /// Builds the scheduler state machine around an assembled graph,
    /// deriving agent states from the graph's (possibly recovered) steps.
    fn around_graph(graph: G, policy: DependencyPolicy, target_step: Step) -> Self {
        let n = graph.len();
        let mut state = vec![AgentState::Waiting; n];
        let mut dirty = BTreeSet::new();
        let mut finished = 0;
        for a in 0..n as u32 {
            let step = graph.step(AgentId(a));
            if step >= target_step {
                state[a as usize] = AgentState::Finished;
                finished += 1;
            } else {
                dirty.insert((step.0, a));
            }
        }
        Scheduler {
            graph,
            policy,
            target_step,
            state,
            dirty,
            watchers: vec![Vec::new(); n],
            inflight: std::collections::HashMap::new(),
            next_cluster: 0,
            finished,
            stats: SchedStats::default(),
            stamp: vec![0; n],
            epoch: 0,
            frontier: Vec::new(),
            telemetry: None,
            block_mark: Vec::new(),
            _space: std::marker::PhantomData,
        }
    }

    /// Attaches a telemetry sink: dependency-blocked waits become
    /// [`crate::telemetry::SpanKind::Blocked`] spans with the blocking
    /// agent attached, and the dependency tracker is given the same sink
    /// for relink/migration spans (via
    /// [`DepTracker::set_telemetry`]).
    pub fn set_telemetry(&mut self, telemetry: Arc<crate::telemetry::Telemetry>) {
        self.block_mark = vec![UNMARKED; self.state.len()];
        self.graph.set_telemetry(Arc::clone(&telemetry));
        self.telemetry = Some(telemetry);
    }

    /// The dependency tracker (positions, steps, edge queries).
    ///
    /// Edge queries (`first_blocker`, `coupled_of`, `blockers_of`,
    /// `snapshot`) are only available under
    /// [`DependencyPolicy::Spatiotemporal`] — see [`Scheduler::new`].
    pub fn graph(&self) -> &G {
        &self.graph
    }

    /// Mutable access to the dependency tracker, for maintenance
    /// operations between scheduling rounds that need `&mut` on the
    /// tracker itself — e.g. the distributed tracker's quiesce-based
    /// invariant check or worker kill/respawn during fault-injection
    /// tests. Scheduling state (ready sets, in-flight clusters) is not
    /// touched, so callers must not advance or roll back agents through
    /// this handle while clusters are in flight.
    pub fn graph_mut(&mut self) -> &mut G {
        &mut self.graph
    }

    /// The policy in force.
    pub fn policy(&self) -> &DependencyPolicy {
        &self.policy
    }

    /// The step at which agents finish.
    pub fn target_step(&self) -> Step {
        self.target_step
    }

    /// All agents have reached the target step.
    pub fn is_done(&self) -> bool {
        self.finished == self.state.len()
    }

    /// Counters for reporting.
    pub fn stats(&self) -> SchedStats {
        self.stats
    }

    /// Clusters currently handed out and not yet completed.
    pub fn inflight_len(&self) -> usize {
        self.inflight.len()
    }

    /// Computes and returns every cluster that is ready to execute, marking
    /// its members in-flight. Returns an empty vector when nothing new can
    /// start (callers then wait for a completion).
    pub fn ready_clusters(&mut self) -> Vec<Cluster> {
        match &self.policy {
            DependencyPolicy::GlobalSync => self.ready_global_sync(),
            DependencyPolicy::NoDependency => self.ready_no_dependency(),
            DependencyPolicy::Oracle(_) => self.ready_oracle(),
            DependencyPolicy::Spatiotemporal => self.ready_spatiotemporal(),
        }
    }

    /// Reports a cluster finished: members' steps advance to the recorded
    /// positions, newly unblocked agents become evaluable.
    ///
    /// `new_pos` must contain exactly the cluster's members.
    ///
    /// # Errors
    ///
    /// Propagates store errors from the graph-update transaction.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is not in flight or `new_pos` does not match its
    /// members.
    pub fn complete(
        &mut self,
        cluster: &ClusterId,
        new_pos: &[(AgentId, S::Pos)],
    ) -> Result<(), StoreError> {
        let cluster = self
            .inflight
            .remove(cluster)
            .unwrap_or_else(|| panic!("{cluster} is not in flight"));
        assert_eq!(
            new_pos.len(),
            cluster.members.len(),
            "positions must cover all members"
        );
        for (a, _) in new_pos {
            assert!(
                cluster.members.contains(a),
                "{a} is not a member of {}",
                cluster.id
            );
            assert_eq!(self.state[a.index()], AgentState::InFlight);
        }
        self.graph.advance(new_pos)?;
        for (a, _) in new_pos {
            let step = self.graph.step(*a);
            if step >= self.target_step {
                self.state[a.index()] = AgentState::Finished;
                self.finished += 1;
            } else {
                self.state[a.index()] = AgentState::Waiting;
                self.dirty.insert((step.0, a.0));
            }
            // Wake agents that were blocked on this member.
            for w in std::mem::take(&mut self.watchers[a.index()]) {
                if self.state[w as usize] == AgentState::Waiting {
                    self.stats.watcher_wakes += 1;
                    self.dirty.insert((self.graph.step(AgentId(w)).0, w));
                }
            }
        }
        let skew = self.current_skew();
        self.stats.max_step_skew = self.stats.max_step_skew.max(skew);
        Ok(())
    }

    /// Current step skew: max step − min step over all agents, read from
    /// the graph's step index in O(log n).
    pub fn current_skew(&self) -> u32 {
        self.graph.max_step().0 - self.graph.min_step().0
    }

    /// Compacts dependency-graph history below the deepest legal rollback
    /// (see [`DepGraph::evict_history`]); returns the records evicted.
    /// No-op unless the scheduler was built with history recording.
    ///
    /// Call while quiesced — the threaded executor's checkpoint barrier
    /// is the natural site.
    ///
    /// # Errors
    ///
    /// Propagates store errors.
    pub fn evict_history(&mut self) -> Result<u64, StoreError> {
        self.graph.evict_history()
    }

    /// Closes every member's open blocked-wait mark: the cluster is
    /// executing again, so the dependency wait that kept it parked ends
    /// now. Out of line so the telemetry-free emit loop keeps its shape.
    #[cold]
    #[inline(never)]
    fn close_block_marks(&mut self, step: Step, members: &[AgentId]) {
        let Some(t) = &self.telemetry else { return };
        for m in members {
            let mark = std::mem::replace(&mut self.block_mark[m.index()], UNMARKED);
            if mark.since_us != u64::MAX {
                t.record(
                    mark.since_us,
                    crate::telemetry::SpanKind::Blocked {
                        agent: m.0,
                        blocker: mark.blocker,
                        step: step.0,
                        reason: crate::telemetry::BlockReason::Dependency,
                    },
                );
            }
        }
    }

    /// Opens a blocked-wait mark on every member that does not already
    /// hold one (first verdict wins — re-evaluations that stay blocked
    /// extend the same wait rather than splitting it). Out of line for
    /// the same reason as [`Scheduler::close_block_marks`].
    #[cold]
    #[inline(never)]
    fn open_block_marks(&mut self, members: &[AgentId], blocker: AgentId) {
        let Some(now) = self.telemetry.as_ref().and_then(|t| t.start()) else {
            return;
        };
        for m in members {
            if self.block_mark[m.index()].since_us == u64::MAX {
                self.block_mark[m.index()] = BlockMark {
                    since_us: now,
                    blocker: blocker.0,
                };
            }
        }
    }

    fn emit(&mut self, step: Step, members: Vec<AgentId>) -> Cluster {
        debug_assert!(!members.is_empty());
        for m in &members {
            debug_assert_eq!(self.state[m.index()], AgentState::Waiting);
            self.state[m.index()] = AgentState::InFlight;
            self.dirty.remove(&(step.0, m.0));
        }
        // Close open blocked waits: the agents are executing again.
        if self.telemetry.is_some() {
            self.close_block_marks(step, &members);
        }
        let id = ClusterId(self.next_cluster);
        self.next_cluster += 1;
        self.stats.clusters_emitted += 1;
        self.stats.agent_steps += members.len() as u64;
        self.stats.max_cluster_size = self.stats.max_cluster_size.max(members.len() as u32);
        let cluster = Cluster { id, step, members };
        self.inflight.insert(id, cluster.clone());
        cluster
    }

    fn ready_global_sync(&mut self) -> Vec<Cluster> {
        // One barriered cluster containing every unfinished agent; it can
        // only form when nothing is in flight.
        if !self.inflight.is_empty() {
            self.dirty.clear();
            return Vec::new();
        }
        let members: Vec<AgentId> = (0..self.state.len() as u32)
            .map(AgentId)
            .filter(|a| self.state[a.index()] == AgentState::Waiting)
            .collect();
        self.dirty.clear();
        if members.is_empty() {
            return Vec::new();
        }
        let step = self.graph.step(members[0]);
        debug_assert!(
            members.iter().all(|m| self.graph.step(*m) == step),
            "global sync keeps all agents in lock step"
        );
        vec![self.emit(step, members)]
    }

    fn ready_no_dependency(&mut self) -> Vec<Cluster> {
        let mut out = Vec::new();
        while let Some(&(s, a)) = self.dirty.iter().next() {
            self.dirty.remove(&(s, a));
            if self.state[a as usize] != AgentState::Waiting || self.graph.step(AgentId(a)).0 != s {
                continue;
            }
            out.push(self.emit(Step(s), vec![AgentId(a)]));
        }
        out
    }

    fn ready_oracle(&mut self) -> Vec<Cluster> {
        let DependencyPolicy::Oracle(oracle) = self.policy.clone() else {
            unreachable!()
        };
        let mut out = Vec::new();
        while let Some(&(s, a)) = self.dirty.iter().next() {
            self.dirty.remove(&(s, a));
            if self.state[a as usize] != AgentState::Waiting || self.graph.step(AgentId(a)).0 != s {
                continue;
            }
            let comp = oracle.component_of(Step(s), AgentId(a));
            let all_arrived = comp.iter().all(|&m| {
                self.state[m as usize] == AgentState::Waiting && self.graph.step(AgentId(m)).0 == s
            });
            if all_arrived {
                let members: Vec<AgentId> = comp.iter().map(|&m| AgentId(m)).collect();
                out.push(self.emit(Step(s), members));
            }
            // Otherwise: the last member to arrive re-triggers via its own
            // dirty entry — no watcher needed.
        }
        out
    }

    fn ready_spatiotemporal(&mut self) -> Vec<Cluster> {
        let mut out = Vec::new();
        while let Some(&(s, a)) = self.dirty.iter().next() {
            self.dirty.remove(&(s, a));
            if self.state[a as usize] != AgentState::Waiting || self.graph.step(AgentId(a)).0 != s {
                continue; // stale entry
            }
            // Grow the coupled cluster from `a` over waiting same-step
            // agents (transitive closure of the coupling relation). The
            // coupling edges come straight off the graph's maintained
            // adjacency; the visited set is an epoch stamp, so the whole
            // growth allocates nothing beyond the emitted member list.
            self.epoch += 1;
            self.stamp[a as usize] = self.epoch;
            let mut members = vec![AgentId(a)];
            self.frontier.clear();
            self.frontier.push(AgentId(a));
            while let Some(x) = self.frontier.pop() {
                for &nb in self.graph.coupled_of(x) {
                    if self.state[nb.index()] == AgentState::Waiting
                        && self.stamp[nb.index()] != self.epoch
                    {
                        self.stamp[nb.index()] = self.epoch;
                        members.push(nb);
                        self.frontier.push(nb);
                    }
                }
            }
            members.sort_unstable();
            // A cluster may advance only if no member is blocked by a
            // lagging agent (§3.2).
            let mut blocker = None;
            for m in &members {
                if let Some(b) = self.graph.first_blocker(*m) {
                    blocker = Some(b);
                    break;
                }
            }
            match blocker {
                Some(b) => {
                    self.stats.blocked_evals += 1;
                    let list = &mut self.watchers[b.index()];
                    for m in &members {
                        if !list.contains(&m.0) {
                            list.push(m.0);
                        }
                        // The whole cluster was evaluated; drop stale
                        // entries so it is not rescanned until woken.
                        self.dirty.remove(&(s, m.0));
                    }
                    if self.telemetry.is_some() {
                        self.open_block_marks(&members, b);
                    }
                }
                None => {
                    out.push(self.emit(Step(s), members));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::OracleGraph;
    use crate::space::{GridSpace, Point};

    fn sched(points: &[(i32, i32)], policy: DependencyPolicy, target: u32) -> Scheduler<GridSpace> {
        let space = Arc::new(GridSpace::new(200, 200));
        let initial: Vec<Point> = points.iter().map(|&(x, y)| Point::new(x, y)).collect();
        Scheduler::new(
            space,
            RuleParams::genagent(),
            policy,
            Arc::new(Db::new()),
            &initial,
            Step(target),
        )
        .unwrap()
    }

    /// Completes `c` in place (agents stay put).
    fn finish(s: &mut Scheduler<GridSpace>, c: &Cluster) {
        let pos: Vec<(AgentId, Point)> =
            c.members.iter().map(|m| (*m, s.graph().pos(*m))).collect();
        s.complete(&c.id, &pos).unwrap();
    }

    #[test]
    fn global_sync_lockstep() {
        let mut s = sched(&[(0, 0), (100, 100)], DependencyPolicy::GlobalSync, 3);
        for step in 0..3u32 {
            let ready = s.ready_clusters();
            assert_eq!(ready.len(), 1, "one barriered cluster per step");
            assert_eq!(ready[0].step, Step(step));
            assert_eq!(ready[0].members.len(), 2);
            assert!(
                s.ready_clusters().is_empty(),
                "no work while the barrier is open"
            );
            finish(&mut s, &ready[0]);
        }
        assert!(s.is_done());
        assert_eq!(s.stats().max_step_skew, 0);
    }

    #[test]
    fn no_dependency_runs_everyone_freely() {
        let mut s = sched(&[(0, 0), (1, 0)], DependencyPolicy::NoDependency, 2);
        let ready = s.ready_clusters();
        assert_eq!(ready.len(), 2, "adjacent agents still independent");
        // Finish agent 0 for both steps before agent 1 moves at all.
        finish(&mut s, &ready[0]);
        let more = s.ready_clusters();
        assert_eq!(more.len(), 1);
        finish(&mut s, &more[0]);
        assert!(s.ready_clusters().is_empty()); // agent 0 finished
        finish(&mut s, &ready[1]);
        let last = s.ready_clusters();
        finish(&mut s, &last[0]);
        assert!(s.is_done());
        assert_eq!(s.stats().max_step_skew, 2);
    }

    #[test]
    fn spatiotemporal_couples_adjacent_agents() {
        let mut s = sched(
            &[(0, 0), (5, 0), (100, 100)],
            DependencyPolicy::Spatiotemporal,
            2,
        );
        let ready = s.ready_clusters();
        assert_eq!(ready.len(), 2);
        assert_eq!(ready[0].members, vec![AgentId(0), AgentId(1)]);
        assert_eq!(ready[1].members, vec![AgentId(2)]);
    }

    #[test]
    fn spatiotemporal_blocks_runahead_near_lagging_agent() {
        // Agents 10 apart: decoupled (10 > 5) but within blocking radius
        // once the gap grows: blocked at gap d if 10 <= (d+1)*1+4 → d >= 5.
        let mut s = sched(&[(0, 0), (10, 0)], DependencyPolicy::Spatiotemporal, 20);
        let mut steps_done = [0u32; 2];
        // Run agent 1 ahead as far as the scheduler allows while agent 0
        // never completes its first emitted cluster... we must keep agent 0
        // in flight. Pop initial ready (both singletons).
        let ready = s.ready_clusters();
        assert_eq!(ready.len(), 2);
        let c0 = ready[0].clone();
        let mut c1 = ready[1].clone();
        assert_eq!(c1.members, vec![AgentId(1)]);
        // Advance agent 1 repeatedly; agent 0 stays in flight at step 0.
        loop {
            finish(&mut s, &c1);
            steps_done[1] += 1;
            let next = s.ready_clusters();
            if next.is_empty() {
                break;
            }
            assert_eq!(next.len(), 1);
            c1 = next[0].clone();
        }
        // Blocked when executing step d requires (d+1)+4 >= 10 → d = 5, so
        // steps 0..=4 complete (5 commits).
        assert_eq!(steps_done[1], 5);
        // Completing agent 0's step 0 unblocks agent 1 for exactly 1 more.
        finish(&mut s, &c0);
        let next = s.ready_clusters();
        assert_eq!(next.len(), 2, "agent0 re-ready and agent1 woken: {next:?}");
        assert_eq!(s.stats().watcher_wakes, 1);
    }

    #[test]
    fn spatiotemporal_min_step_never_deadlocks() {
        let mut s = sched(
            &[(0, 0), (3, 0), (8, 0), (30, 30)],
            DependencyPolicy::Spatiotemporal,
            5,
        );
        let mut safety = 0;
        while !s.is_done() {
            let ready = s.ready_clusters();
            assert!(
                !ready.is_empty() || s.inflight_len() > 0,
                "no ready clusters and nothing in flight: deadlock"
            );
            for c in ready {
                finish(&mut s, &c);
            }
            safety += 1;
            assert!(safety < 1000, "failed to converge");
        }
        assert!(s.graph().validate().is_ok());
    }

    #[test]
    fn oracle_waits_for_component_partners() {
        // Oracle says agents 0 and 1 interact at step 1 (and only then).
        let oracle = Arc::new(OracleGraph::from_interactions(
            2,
            &[vec![], vec![(0, 1)], vec![]],
        ));
        let mut s = sched(&[(0, 0), (50, 50)], DependencyPolicy::Oracle(oracle), 3);
        let ready = s.ready_clusters();
        assert_eq!(ready.len(), 2, "step 0 components are singletons");
        // Finish agent 0's step 0; its step-1 component needs agent 1.
        finish(&mut s, &ready[0]);
        assert!(
            s.ready_clusters().is_empty(),
            "agent0 must wait for agent1 at step 1"
        );
        finish(&mut s, &ready[1]);
        let joint = s.ready_clusters();
        assert_eq!(joint.len(), 1);
        assert_eq!(joint[0].members, vec![AgentId(0), AgentId(1)]);
        assert_eq!(joint[0].step, Step(1));
        finish(&mut s, &joint[0]);
        // Step 2: independent again.
        assert_eq!(s.ready_clusters().len(), 2);
    }

    #[test]
    fn completion_validation_panics_on_bad_input() {
        let mut s = sched(&[(0, 0)], DependencyPolicy::NoDependency, 2);
        let ready = s.ready_clusters();
        let c = &ready[0];
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut s2 = sched(&[(0, 0)], DependencyPolicy::NoDependency, 2);
            s2.ready_clusters();
            // Wrong cluster id entirely.
            s2.complete(&ClusterId(999), &[]).unwrap();
        }));
        assert!(result.is_err());
        finish(&mut s, c);
    }

    #[test]
    fn stats_accumulate() {
        let mut s = sched(&[(0, 0), (100, 100)], DependencyPolicy::NoDependency, 2);
        while !s.is_done() {
            for c in s.ready_clusters() {
                finish(&mut s, &c);
            }
        }
        let st = s.stats();
        assert_eq!(st.agent_steps, 4);
        assert_eq!(st.clusters_emitted, 4);
        assert_eq!(st.max_cluster_size, 1);
    }

    #[test]
    fn movement_is_respected_on_complete() {
        let mut s = sched(&[(0, 0)], DependencyPolicy::NoDependency, 1);
        let ready = s.ready_clusters();
        s.complete(&ready[0].id, &[(AgentId(0), Point::new(1, 1))])
            .unwrap();
        assert_eq!(s.graph().pos(AgentId(0)), Point::new(1, 1));
        assert!(s.is_done());
    }
}
