//! # aim-core
//!
//! The AI Metropolis engine: **out-of-order execution scheduling for
//! LLM-powered multi-agent simulation** (MLSys 2025 reproduction).
//!
//! Traditional agent simulations advance in lock step: every agent's step
//! must finish before anyone starts the next (Algorithm 1 of the paper),
//! which creates *false dependencies* between agents that could not
//! possibly observe each other, starving the LLM serving engine of
//! concurrent requests. AI Metropolis removes those false dependencies by
//! tracking agents' *spatiotemporal* relationships at runtime — like a
//! scoreboard in an out-of-order processor — and letting sufficiently
//! isolated agents run ahead in simulation time without ever violating
//! temporal causality.
//!
//! The crate is organized around five mechanisms, each mapping to a paper
//! section:
//!
//! | module | paper | provides |
//! |---|---|---|
//! | [`rules`] | §3.2, App. A | the coupled/blocked predicates and validity condition |
//! | [`depgraph`] | §3.3 | store-backed spatiotemporal dependency graph |
//! | [`shard`] | scale-out | spatially sharded dependency tracking for 10k+ agents |
//! | [`cluster`] | §3.4 | geo-clustering of coupled agents (union-find) |
//! | [`scheduler`] | §3.1 | the controller state machine emitting ready clusters |
//! | [`exec`] | §3.5–3.6 | discrete-event (replay) and threaded (live) drivers |
//!
//! plus [`policy`] (the evaluation's baselines: `parallel-sync`, `oracle`,
//! `no-dependency`), [`space`] (grid and social-network metrics),
//! [`workload`] (trace replay interface), [`metrics`] (run reports),
//! [`spec`] (the §6 future-work design: speculative execution with race
//! detection and rollback), and [`engine`] (a one-stop facade).
//!
//! # Scaling past 1k agents
//!
//! The dependency-tracking loop stays sub-quadratic through two
//! structures documented in their modules: the uniform-grid spatial
//! index of [`space`] (`pairs_within` over sorted cell keys plus the
//! dynamic [`space::SpatialIndex`]) and the incremental blocked/coupled
//! edge maintenance of [`depgraph`] (only edges incident to agents that
//! moved are repaired per commit; queries serve from adjacency without
//! allocating). Both preserve *exactness* — every index candidate is
//! re-checked with [`space::Space::within_units`], so spatial indexing
//! can never flip a scheduling decision, only make it cheaper.
//!
//! Past 10k agents, [`shard`] partitions the tracker itself:
//! [`shard::ShardedDepGraph`] owns agents by spatial region (strips,
//! rebalanced on migration), keeps per-shard indexes and *step bounds*,
//! prunes relink queries with them — a spatially local straggler no
//! longer inflates every query radius on the map — and relinks large
//! batches in parallel across shards. The [`scheduler::Scheduler`] is
//! generic over its [`depgraph::DepTracker`], so both trackers drive
//! the same state machine and executors unchanged.
//!
//! # Quick start
//!
//! ```
//! use aim_core::prelude::*;
//! use aim_llm::{presets, ServerConfig};
//! use aim_core::workload::CallSpec;
//! use aim_llm::CallKind;
//!
//! // A trivial replayable workload: two far-apart agents, two steps, one
//! // call each step.
//! struct Demo;
//! impl Workload<Point> for Demo {
//!     fn num_agents(&self) -> usize { 2 }
//!     fn target_step(&self) -> Step { Step(2) }
//!     fn initial_pos(&self, a: AgentId) -> Point { Point::new(a.0 as i32 * 60, 0) }
//!     fn calls(&self, _: AgentId, _: Step) -> Vec<CallSpec> {
//!         vec![CallSpec::new(128, 16, CallKind::Plan)]
//!     }
//!     fn pos_after(&self, a: AgentId, _: Step) -> Point { self.initial_pos(a) }
//! }
//!
//! # fn main() -> Result<(), EngineError> {
//! let engine = Engine::builder(GridSpace::new(100, 140))
//!     .policy(DependencyPolicy::Spatiotemporal)
//!     .server(ServerConfig::from_preset(presets::tiny_test(), 1, true))
//!     .build();
//! let report = engine.run_replay(&Demo)?;
//! assert_eq!(report.total_calls, 4);
//! println!("finished in {} with parallelism {:.2}",
//!          report.makespan, report.achieved_parallelism);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod checkpoint;
pub mod cluster;
pub mod depgraph;
pub mod dist;
pub mod engine;
mod error;
pub mod exec;
pub mod health;
mod ids;
pub mod metrics;
pub mod policy;
pub mod rules;
pub mod scheduler;
pub mod shard;
pub mod space;
pub mod spec;
pub mod telemetry;
pub mod workload;

pub use engine::{Engine, EngineBuilder};
pub use error::EngineError;
pub use ids::{AgentId, ClusterId, Step};

/// The commonly used names, for glob import in examples and tests.
pub mod prelude {
    pub use crate::checkpoint::CheckpointMeta;
    pub use crate::depgraph::DepTracker;
    pub use crate::dist::{DistTracker, ShardWorker};
    pub use crate::engine::{Engine, EngineBuilder};
    pub use crate::error::EngineError;
    pub use crate::exec::hybrid::{run_hybrid_sim, InteractiveLoad, InteractiveReport};
    pub use crate::exec::sim::{run_sim, SimConfig};
    pub use crate::exec::threaded::{
        run_threaded, run_threaded_observed, run_threaded_with_checkpoints, CheckpointHook,
        ClusterProgram, ThreadedConfig, ThreadedReport,
    };
    pub use crate::health::{HealthBoard, StallReport, Watchdog, WorkerHealth};
    pub use crate::ids::{AgentId, ClusterId, Step};
    pub use crate::metrics::{RunReport, Timeline};
    pub use crate::policy::{DependencyPolicy, OracleGraph};
    pub use crate::rules::RuleParams;
    pub use crate::scheduler::{Cluster, Scheduler};
    pub use crate::shard::{ShardMap, ShardedDepGraph, StripShardMap};
    pub use crate::space::{GridSpace, NodeId, Point, SocialSpace, Space};
    pub use crate::spec::{run_spec_sim, SpecParams, SpecReport, SpecScheduler, SpecStats};
    pub use crate::telemetry::{
        Decomposition, Phase, PhaseHistogram, RunTelemetry, Span, SpanKind, StallEdge, Telemetry,
    };
    pub use crate::workload::Workload;
}
