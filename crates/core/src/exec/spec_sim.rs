//! Discrete-event (virtual-time) execution of a replayed workload under
//! the *speculative* scheduler (paper §6, [`crate::spec`]).
//!
//! The driver mirrors [`crate::exec::sim::run_sim`] with the optimistic
//! twists: poisoned in-flight executions run to completion (no
//! preemption) and their results are dropped; squashed committed steps
//! re-execute when their agents re-emit; and every discarded execution's
//! LLM calls are accounted as waste in [`RunReport::spec`]. Replayed
//! workloads are deterministic, so the simulation outcome is identical
//! to the conservative schedule — what changes is completion time
//! (higher concurrency) against wasted tokens (misspeculation).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use aim_llm::{LlmRequest, RequestId, SimServer, VirtualTime};

use crate::error::EngineError;
use crate::ids::{AgentId, ClusterId};
use crate::metrics::{CallSpan, RunReport, Timeline};
use crate::scheduler::Cluster;
use crate::space::Space;
use crate::spec::{SpecReport, SpecScheduler};
use crate::workload::{CallSpec, Workload};

pub use crate::exec::sim::SimConfig;

/// Alias kept for discoverability: the speculative driver reuses the
/// discrete-event knobs of [`SimConfig`].
pub type SpecSimConfig = SimConfig;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EvKind {
    Start(ClusterId),
    Commit(ClusterId),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Ev {
    at: VirtualTime,
    seq: u64,
    kind: EvKind,
}

impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Cost {
    calls: u64,
    input: u64,
    output: u64,
}

struct MemberChain {
    agent: AgentId,
    calls: Vec<CallSpec>,
    next: usize,
    cost: Cost,
}

struct Active {
    cluster: Cluster,
    chains: Vec<MemberChain>,
    remaining: usize,
    cursor: usize,
}

/// Drives the speculative `scheduler` over `workload` against `server`
/// until every agent has retired at the target step; returns the
/// measured [`RunReport`] with [`RunReport::spec`] populated.
///
/// Deterministic: identical inputs produce identical reports.
///
/// # Errors
///
/// Propagates store failures and reports scheduler deadlock as
/// [`EngineError::Deadlock`].
pub fn run_spec_sim<S, W>(
    scheduler: &mut SpecScheduler<S>,
    workload: &W,
    server: &mut SimServer,
    cfg: &SimConfig,
) -> Result<RunReport, EngineError>
where
    S: Space,
    W: Workload<S::Pos> + ?Sized,
{
    let mut exec = SpecExec {
        events: BinaryHeap::new(),
        backlog: BinaryHeap::new(),
        active: HashMap::new(),
        req_map: HashMap::new(),
        open_spans: HashMap::new(),
        timeline: cfg.record_timeline.then(Timeline::default),
        committed_cost: HashMap::new(),
        waste: Cost::default(),
        slots_used: 0,
        event_seq: 0,
        next_req: 0,
        backlog_seq: 0,
        now: VirtualTime::ZERO,
        total_calls: 0,
        total_in: 0,
        total_out: 0,
        cfg: cfg.clone(),
    };
    exec.pull_ready(scheduler)?;
    exec.drain_slots(exec.now);

    loop {
        let t_ev = exec.events.peek().map(|Reverse(e)| e.at);
        let t_srv = server.next_event();
        let next = match (t_ev, t_srv) {
            (None, None) => break,
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (Some(a), Some(b)) => a.min(b),
        };
        exec.now = next;
        if t_srv.is_some_and(|t| t <= next) {
            for c in server.advance(next) {
                exec.on_completion(scheduler, server, c.req, c.finished_at)?;
            }
        }
        while exec.events.peek().is_some_and(|Reverse(e)| e.at <= next) {
            let Reverse(ev) = exec.events.pop().expect("peeked");
            exec.on_event(scheduler, server, workload, ev)?;
        }
    }

    if !scheduler.is_done() {
        return Err(EngineError::Deadlock {
            detail: format!(
                "speculative simulation stalled at {}: {} clusters in flight, \
                 {} active records, {} live entries",
                exec.now,
                scheduler.inflight_len(),
                exec.active.len(),
                scheduler.live_entries()
            ),
        });
    }

    let makespan = exec.now;
    let m = server.metrics();
    let stats = scheduler.stats();
    Ok(RunReport {
        mode: format!("metropolis-spec({})", scheduler.spec_params().max_runahead),
        makespan,
        total_calls: exec.total_calls,
        total_input_tokens: exec.total_in,
        total_output_tokens: exec.total_out,
        achieved_parallelism: m.achieved_parallelism(makespan),
        gpu_utilization: m.utilization(makespan),
        sched: crate::scheduler::SchedStats {
            clusters_emitted: stats.emitted_firm + stats.emitted_spec,
            agent_steps: stats.agent_steps,
            watcher_wakes: 0,
            blocked_evals: stats.spec_denied,
            max_step_skew: stats.max_step_skew,
            max_cluster_size: stats.max_cluster_size,
        },
        server: Some(m),
        spec: Some(SpecReport {
            stats,
            wasted_calls: exec.waste.calls,
            wasted_input_tokens: exec.waste.input,
            wasted_output_tokens: exec.waste.output,
        }),
        timeline: exec.timeline,
    })
}

struct SpecExec {
    events: BinaryHeap<Reverse<Ev>>,
    backlog: BinaryHeap<Reverse<(u64, u64, ClusterId)>>,
    active: HashMap<ClusterId, Active>,
    req_map: HashMap<RequestId, (ClusterId, usize)>,
    open_spans: HashMap<RequestId, CallSpan>,
    timeline: Option<Timeline>,
    /// Cost of the most recent *accepted* execution per (agent, step);
    /// charged to waste when that execution is squashed.
    committed_cost: HashMap<(u32, u32), Cost>,
    waste: Cost,
    slots_used: usize,
    event_seq: u64,
    next_req: u64,
    backlog_seq: u64,
    now: VirtualTime,
    total_calls: u64,
    total_in: u64,
    total_out: u64,
    cfg: SimConfig,
}

impl SpecExec {
    fn schedule(&mut self, at: VirtualTime, kind: EvKind) {
        let seq = self.event_seq;
        self.event_seq += 1;
        self.events.push(Reverse(Ev { at, seq, kind }));
    }

    fn account_squashed<S: Space>(&mut self, scheduler: &mut SpecScheduler<S>) {
        for (agent, step) in scheduler.drain_squashed() {
            if let Some(cost) = self.committed_cost.remove(&(agent.0, step.0)) {
                self.waste.calls += cost.calls;
                self.waste.input += cost.input;
                self.waste.output += cost.output;
            }
        }
    }

    fn pull_ready<S: Space>(
        &mut self,
        scheduler: &mut SpecScheduler<S>,
    ) -> Result<(), EngineError> {
        let ready = scheduler.ready_clusters()?;
        self.account_squashed(scheduler);
        for cluster in ready {
            let prio = if self.cfg.priority_ready_queue {
                cluster.step.priority()
            } else {
                0
            };
            let seq = self.backlog_seq;
            self.backlog_seq += 1;
            self.active.insert(
                cluster.id,
                Active {
                    cluster: cluster.clone(),
                    chains: Vec::new(),
                    remaining: 0,
                    cursor: 0,
                },
            );
            self.backlog.push(Reverse((prio, seq, cluster.id)));
        }
        Ok(())
    }

    fn drain_slots(&mut self, now: VirtualTime) {
        let limit = self.cfg.max_concurrent_clusters.unwrap_or(usize::MAX);
        while self.slots_used < limit {
            let Some(Reverse((_, _, cid))) = self.backlog.pop() else {
                break;
            };
            self.slots_used += 1;
            self.schedule(
                now + VirtualTime::from_micros(self.cfg.step_cpu_us),
                EvKind::Start(cid),
            );
        }
    }

    fn submit_call(
        &mut self,
        server: &mut SimServer,
        cid: ClusterId,
        member_idx: usize,
        at: VirtualTime,
    ) {
        let active = self.active.get_mut(&cid).expect("active cluster");
        let chain = &mut active.chains[member_idx];
        let spec = chain.calls[chain.next];
        chain.next += 1;
        chain.cost.calls += 1;
        chain.cost.input += spec.input_tokens as u64;
        chain.cost.output += spec.output_tokens as u64;
        let id = RequestId(self.next_req);
        self.next_req += 1;
        let req = LlmRequest::new(
            id,
            chain.agent.0,
            active.cluster.step.priority(),
            spec.input_tokens,
            spec.output_tokens,
            spec.kind,
        );
        self.req_map.insert(id, (cid, member_idx));
        self.total_calls += 1;
        self.total_in += spec.input_tokens as u64;
        self.total_out += spec.output_tokens as u64;
        if self.timeline.is_some() {
            self.open_spans.insert(
                id,
                CallSpan {
                    agent: chain.agent,
                    step: active.cluster.step,
                    kind: spec.kind,
                    start: at,
                    end: at,
                },
            );
        }
        server.submit(at, req);
    }

    fn on_event<S: Space, W: Workload<S::Pos> + ?Sized>(
        &mut self,
        scheduler: &mut SpecScheduler<S>,
        server: &mut SimServer,
        workload: &W,
        ev: Ev,
    ) -> Result<(), EngineError> {
        match ev.kind {
            EvKind::Start(cid) => {
                let active = self
                    .active
                    .get_mut(&cid)
                    .expect("started cluster is active");
                let step = active.cluster.step;
                active.chains = active
                    .cluster
                    .members
                    .iter()
                    .map(|m| MemberChain {
                        agent: *m,
                        calls: workload.calls(*m, step),
                        next: 0,
                        cost: Cost::default(),
                    })
                    .collect();
                active.remaining = active.chains.iter().filter(|c| !c.calls.is_empty()).count();
                if active.remaining == 0 {
                    self.schedule(
                        ev.at + VirtualTime::from_micros(self.cfg.commit_cpu_us),
                        EvKind::Commit(cid),
                    );
                    return Ok(());
                }
                if self.cfg.serial_agents {
                    let first = self.active[&cid]
                        .chains
                        .iter()
                        .position(|c| !c.calls.is_empty());
                    if let Some(i) = first {
                        self.active.get_mut(&cid).expect("active").cursor = i;
                        self.submit_call(server, cid, i, ev.at);
                    }
                } else {
                    let idxs: Vec<usize> = self.active[&cid]
                        .chains
                        .iter()
                        .enumerate()
                        .filter(|(_, c)| !c.calls.is_empty())
                        .map(|(i, _)| i)
                        .collect();
                    for i in idxs {
                        self.submit_call(server, cid, i, ev.at);
                    }
                }
            }
            EvKind::Commit(cid) => {
                let active = self
                    .active
                    .remove(&cid)
                    .expect("committed cluster is active");
                let step = active.cluster.step;
                let new_pos: Vec<(AgentId, S::Pos)> = active
                    .cluster
                    .members
                    .iter()
                    .map(|m| (*m, workload.pos_after(*m, step)))
                    .collect();
                let outcome = scheduler.complete(&cid, &new_pos)?;
                self.account_squashed(scheduler);
                if outcome.committed {
                    for chain in &active.chains {
                        self.committed_cost
                            .insert((chain.agent.0, step.0), chain.cost);
                    }
                    if let Some(tl) = &mut self.timeline {
                        tl.commits.push((step, ev.at));
                    }
                } else {
                    // Poisoned: the issued calls are pure waste; the
                    // members re-emit from their rolled-back steps.
                    for chain in &active.chains {
                        self.waste.calls += chain.cost.calls;
                        self.waste.input += chain.cost.input;
                        self.waste.output += chain.cost.output;
                    }
                }
                self.slots_used -= 1;
                self.pull_ready(scheduler)?;
                self.drain_slots(ev.at);
            }
        }
        Ok(())
    }

    fn on_completion<S: Space>(
        &mut self,
        scheduler: &mut SpecScheduler<S>,
        server: &mut SimServer,
        req: LlmRequest,
        at: VirtualTime,
    ) -> Result<(), EngineError> {
        let _ = scheduler;
        if let Some(mut span) = self.open_spans.remove(&req.id) {
            span.end = at;
            if let Some(tl) = &mut self.timeline {
                tl.spans.push(span);
            }
        }
        let (cid, member_idx) = self
            .req_map
            .remove(&req.id)
            .expect("completion for unknown request");
        let active = self
            .active
            .get_mut(&cid)
            .expect("completion for inactive cluster");
        let chain = &active.chains[member_idx];
        if chain.next < chain.calls.len() {
            self.submit_call(server, cid, member_idx, at);
            return Ok(());
        }
        active.remaining -= 1;
        if self.cfg.serial_agents && active.remaining > 0 {
            let next = active
                .chains
                .iter()
                .enumerate()
                .skip(active.cursor + 1)
                .find(|(_, c)| !c.calls.is_empty() && c.next == 0)
                .map(|(i, _)| i);
            if let Some(i) = next {
                active.cursor = i;
                self.submit_call(server, cid, i, at);
            }
            return Ok(());
        }
        if active.remaining == 0 {
            self.schedule(
                at + VirtualTime::from_micros(self.cfg.commit_cpu_us),
                EvKind::Commit(cid),
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::sim::run_sim;
    use crate::ids::Step;
    use crate::policy::DependencyPolicy;
    use crate::rules::RuleParams;
    use crate::scheduler::Scheduler;
    use crate::space::{GridSpace, Point};
    use crate::spec::SpecParams;
    use crate::workload::testutil::TableWorkload;
    use aim_llm::{presets, CallKind, ServerConfig};
    use aim_store::Db;
    use std::sync::Arc;

    fn mk_spec_sched(initial: &[Point], runahead: u32, target: u32) -> SpecScheduler<GridSpace> {
        SpecScheduler::new(
            Arc::new(GridSpace::new(500, 500)),
            RuleParams::genagent(),
            SpecParams::new(runahead),
            Arc::new(Db::new()),
            initial,
            Step(target),
        )
        .unwrap()
    }

    fn mk_server() -> SimServer {
        SimServer::new(ServerConfig::from_preset(presets::tiny_test(), 1, true))
    }

    fn spec(input: u32, output: u32) -> CallSpec {
        CallSpec::new(input, output, CallKind::Plan)
    }

    #[test]
    fn empty_workload_completes() {
        let w = TableWorkload::stationary(vec![Point::new(0, 0)], 3);
        let mut s = mk_spec_sched(&w.initial, 4, 3);
        let mut server = mk_server();
        let r = run_spec_sim(&mut s, &w, &mut server, &SimConfig::default()).unwrap();
        assert_eq!(r.total_calls, 0);
        assert_eq!(r.makespan, VirtualTime::from_micros(3 * 3_000));
        let sr = r.spec.unwrap();
        assert_eq!(sr.wasted_calls, 0);
        assert_eq!(sr.stats.retired_steps, 3);
    }

    #[test]
    fn runahead_zero_matches_conservative_executor() {
        // The same imbalanced workload under the conservative scheduler
        // and under speculation-disabled SpecScheduler must complete in
        // exactly the same virtual time.
        let mut w = TableWorkload::stationary(
            vec![Point::new(0, 0), Point::new(10, 0), Point::new(200, 200)],
            6,
        );
        for s in 0..6u32 {
            w = w
                .with_call(0, s, spec(400, 40))
                .with_call(1, s, spec(50, 5))
                .with_call(2, s, spec(120, 12));
        }
        let conservative = {
            let mut s = Scheduler::new(
                Arc::new(GridSpace::new(500, 500)),
                RuleParams::genagent(),
                DependencyPolicy::Spatiotemporal,
                Arc::new(Db::new()),
                &w.initial,
                Step(6),
            )
            .unwrap();
            let mut server = mk_server();
            run_sim(&mut s, &w, &mut server, &SimConfig::default()).unwrap()
        };
        let speculative = {
            let mut s = mk_spec_sched(&w.initial, 0, 6);
            let mut server = mk_server();
            run_spec_sim(&mut s, &w, &mut server, &SimConfig::default()).unwrap()
        };
        assert_eq!(conservative.makespan, speculative.makespan);
        assert_eq!(conservative.total_calls, speculative.total_calls);
        assert_eq!(speculative.spec.unwrap().wasted_calls, 0);
    }

    #[test]
    fn speculation_overlaps_blocked_work() {
        // Agent 0 owns one huge call at step 0; agent 1 (10 away) has
        // steady work every step. Conservatively agent 1 stalls at gap 5
        // until the huge call commits; speculatively its remaining steps
        // overlap it, cutting completion time. Nothing is ever squashed
        // (the agents never move), so the speedup is free.
        let mut w = TableWorkload::stationary(vec![Point::new(0, 0), Point::new(10, 0)], 12);
        w = w.with_call(0, 0, spec(600, 1200));
        for s in 0..12u32 {
            w = w.with_call(1, s, spec(200, 60));
        }
        let run = |runahead: u32| {
            let mut s = mk_spec_sched(&w.initial, runahead, 12);
            let mut server = mk_server();
            run_spec_sim(&mut s, &w, &mut server, &SimConfig::default()).unwrap()
        };
        let blocked = run(0);
        let ahead = run(8);
        assert!(
            ahead.makespan < blocked.makespan,
            "speculation {} must beat conservative {}",
            ahead.makespan,
            blocked.makespan
        );
        let sr = ahead.spec.unwrap();
        assert_eq!(sr.wasted_calls, 0, "stationary agents never misspeculate");
        assert!(sr.stats.emitted_spec > 0);
        assert_eq!(sr.stats.retired_steps, 24, "all agent-steps validated");
    }

    #[test]
    fn misspeculation_is_charged_as_waste() {
        // Agent 0 walks toward agent 1 while its long step-0 call holds
        // the commit back; agent 1's speculative steps read state that
        // agent 0's arrival invalidates.
        let mut w = TableWorkload::stationary(vec![Point::new(0, 0), Point::new(6, 0)], 8);
        w = w.with_call(0, 0, spec(600, 900));
        for s in 0..8u32 {
            w = w.with_call(1, s, spec(100, 20));
            // Agent 0 walks one cell east per step.
            w = w.with_move(0, s, Point::new(s as i32 + 1, 0));
        }
        let mut s = mk_spec_sched(&w.initial, 4, 8);
        let mut server = mk_server();
        let r = run_spec_sim(&mut s, &w, &mut server, &SimConfig::default()).unwrap();
        let sr = r.spec.unwrap();
        assert!(
            sr.stats.squashed_steps > 0,
            "the approach must squash: {:?}",
            sr.stats
        );
        assert!(sr.wasted_calls > 0, "squashed steps carried calls");
        assert!(
            r.total_calls > 8 + 1,
            "re-executions are re-issued: {} calls",
            r.total_calls
        );
        assert!(sr.waste_fraction(r.total_input_tokens, r.total_output_tokens) > 0.0);
    }

    #[test]
    fn deterministic_reports() {
        let mut w = TableWorkload::stationary(
            vec![Point::new(0, 0), Point::new(8, 0), Point::new(30, 30)],
            5,
        );
        for s in 0..5u32 {
            w = w
                .with_call(0, s, spec(300, 30))
                .with_call(1, s, spec(80, 8));
            w = w.with_move(1, s, Point::new(8 - s as i32, 0));
        }
        let run = || {
            let mut s = mk_spec_sched(&w.initial, 3, 5);
            let mut server = mk_server();
            run_spec_sim(&mut s, &w, &mut server, &SimConfig::default()).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.total_calls, b.total_calls);
        assert_eq!(a.spec, b.spec);
    }

    #[test]
    fn worker_slots_respected() {
        let w = TableWorkload::stationary(vec![Point::new(0, 0), Point::new(300, 300)], 1)
            .with_call(0, 0, spec(100, 10))
            .with_call(1, 0, spec(100, 10));
        let run = |slots| {
            let mut s = mk_spec_sched(&w.initial, 4, 1);
            let mut server = mk_server();
            let cfg = SimConfig {
                max_concurrent_clusters: slots,
                ..SimConfig::default()
            };
            run_spec_sim(&mut s, &w, &mut server, &cfg).unwrap()
        };
        let free = run(None);
        let one = run(Some(1));
        assert!(one.makespan > free.makespan);
    }
}
