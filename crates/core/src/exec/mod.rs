//! Execution drivers for the scheduler state machine.
//!
//! * [`sim`] — a deterministic discrete-event executor in virtual time,
//!   paired with [`aim_llm::SimServer`]; this is the paper's replay-mode
//!   benchmark path (§4.1) and what all experiments use.
//! * [`threaded`] — a real controller/worker runtime over OS threads and
//!   blocking [`aim_llm::LlmBackend`] calls; Algorithm 3 in the flesh
//!   (workers pull ready clusters, run one thread per agent, commit,
//!   acknowledge).

//! * [`spec_sim`] — the discrete-event executor driving the *speculative*
//!   scheduler ([`crate::spec`]): poisoned results are discarded and
//!   re-executed, and the wasted LLM work is accounted in the report.
//! * [`hybrid`] — background replay plus an injected latency-critical
//!   interactive request stream on the same serving engine (§6's hybrid
//!   interactive/offline deployment).

pub mod hybrid;
pub mod sim;
pub mod spec_sim;
pub mod threaded;
