//! Discrete-event (virtual-time) execution of a replayed workload.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use aim_llm::{LlmRequest, RequestId, SimServer, VirtualTime};

use crate::depgraph::DepTracker;
use crate::error::EngineError;
use crate::ids::{AgentId, ClusterId};
use crate::metrics::{CallSpan, RunReport, Timeline};
use crate::scheduler::{Cluster, Scheduler};
use crate::space::Space;
use crate::workload::{CallSpec, Workload};

/// Knobs of the discrete-event executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimConfig {
    /// CPU time to dispatch a cluster step (controller + worker + world
    /// bookkeeping) before its first LLM call, µs.
    pub step_cpu_us: u64,
    /// CPU time to resolve conflicts, commit, and update the dependency
    /// graph after the last call, µs.
    pub commit_cpu_us: u64,
    /// Run agents *within* a cluster one after another instead of
    /// concurrently (the paper's `single-thread` baseline, combined with
    /// `max_concurrent_clusters = 1`).
    pub serial_agents: bool,
    /// Bound on clusters processed concurrently (worker-pool size);
    /// `None` = unbounded.
    pub max_concurrent_clusters: Option<usize>,
    /// Order backlog clusters by step (the paper's priority scheduling,
    /// §3.5) instead of FIFO. Only observable when the worker pool or the
    /// serving engine is saturated.
    pub priority_ready_queue: bool,
    /// Record a full per-call [`Timeline`] (costs memory on big runs).
    pub record_timeline: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            step_cpu_us: 2_000,
            commit_cpu_us: 1_000,
            serial_agents: false,
            max_concurrent_clusters: None,
            priority_ready_queue: true,
            record_timeline: false,
        }
    }
}

impl SimConfig {
    /// The paper's `single-thread` baseline: everything serialized.
    pub fn single_thread() -> Self {
        SimConfig {
            serial_agents: true,
            max_concurrent_clusters: Some(1),
            ..SimConfig::default()
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EvKind {
    Start(ClusterId),
    Commit(ClusterId),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Ev {
    at: VirtualTime,
    seq: u64,
    kind: EvKind,
}

impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct MemberChain {
    agent: AgentId,
    calls: Vec<CallSpec>,
    next: usize,
}

struct Active {
    cluster: Cluster,
    chains: Vec<MemberChain>,
    remaining: usize,
    /// Serial mode: index of the member currently issuing calls.
    cursor: usize,
}

/// Drives `scheduler` over `workload` against `server` until every agent
/// reaches the target step; returns the measured [`RunReport`].
///
/// Deterministic: identical inputs produce identical reports.
///
/// # Errors
///
/// Propagates store failures and reports scheduler deadlock (which would
/// indicate a rule-violation bug) as [`EngineError::Deadlock`].
pub fn run_sim<S, G, W>(
    scheduler: &mut Scheduler<S, G>,
    workload: &W,
    server: &mut SimServer,
    cfg: &SimConfig,
) -> Result<RunReport, EngineError>
where
    S: Space,
    G: DepTracker<S>,
    W: Workload<S::Pos> + ?Sized,
{
    let mut exec = SimExec {
        events: BinaryHeap::new(),
        backlog: BinaryHeap::new(),
        active: HashMap::new(),
        req_map: HashMap::new(),
        open_spans: HashMap::new(),
        timeline: cfg.record_timeline.then(Timeline::default),
        slots_used: 0,
        event_seq: 0,
        next_req: 0,
        backlog_seq: 0,
        now: VirtualTime::ZERO,
        total_calls: 0,
        total_in: 0,
        total_out: 0,
        cfg: cfg.clone(),
    };
    exec.pull_ready(scheduler);
    exec.drain_slots(exec.now);

    loop {
        let t_ev = exec.events.peek().map(|Reverse(e)| e.at);
        let t_srv = server.next_event();
        let next = match (t_ev, t_srv) {
            (None, None) => break,
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (Some(a), Some(b)) => a.min(b),
        };
        exec.now = next;
        // Server completions strictly at `next`.
        if t_srv.is_some_and(|t| t <= next) {
            for c in server.advance(next) {
                exec.on_completion(scheduler, server, c.req, c.finished_at)?;
            }
        }
        // Scheduler/CPU events at `next`.
        while exec.events.peek().is_some_and(|Reverse(e)| e.at <= next) {
            let Reverse(ev) = exec.events.pop().expect("peeked");
            exec.on_event(scheduler, server, workload, ev)?;
        }
    }

    if !scheduler.is_done() {
        return Err(EngineError::Deadlock {
            detail: format!(
                "simulation stalled at {}: {} clusters in flight, {} active records",
                exec.now,
                scheduler.inflight_len(),
                exec.active.len()
            ),
        });
    }

    let makespan = exec.now;
    let m = server.metrics();
    Ok(RunReport {
        mode: scheduler.policy().label().to_string(),
        makespan,
        total_calls: exec.total_calls,
        total_input_tokens: exec.total_in,
        total_output_tokens: exec.total_out,
        achieved_parallelism: m.achieved_parallelism(makespan),
        gpu_utilization: m.utilization(makespan),
        sched: scheduler.stats(),
        server: Some(m),
        spec: None,
        timeline: exec.timeline,
    })
}

struct SimExec {
    events: BinaryHeap<Reverse<Ev>>,
    /// Ready clusters waiting for a worker slot: `(priority, seq)` keyed.
    backlog: BinaryHeap<Reverse<(u64, u64, ClusterId)>>,
    active: HashMap<ClusterId, Active>,
    req_map: HashMap<RequestId, (ClusterId, usize)>,
    open_spans: HashMap<RequestId, CallSpan>,
    timeline: Option<Timeline>,
    slots_used: usize,
    event_seq: u64,
    next_req: u64,
    backlog_seq: u64,
    now: VirtualTime,
    total_calls: u64,
    total_in: u64,
    total_out: u64,
    cfg: SimConfig,
}

impl SimExec {
    fn schedule(&mut self, at: VirtualTime, kind: EvKind) {
        let seq = self.event_seq;
        self.event_seq += 1;
        self.events.push(Reverse(Ev { at, seq, kind }));
    }

    fn pull_ready<S: Space, G: DepTracker<S>>(&mut self, scheduler: &mut Scheduler<S, G>) {
        for cluster in scheduler.ready_clusters() {
            let prio = if self.cfg.priority_ready_queue {
                cluster.step.priority()
            } else {
                0
            };
            let seq = self.backlog_seq;
            self.backlog_seq += 1;
            self.active.insert(
                cluster.id,
                Active {
                    cluster: cluster.clone(),
                    chains: Vec::new(),
                    remaining: 0,
                    cursor: 0,
                },
            );
            self.backlog.push(Reverse((prio, seq, cluster.id)));
        }
    }

    fn drain_slots(&mut self, now: VirtualTime) {
        let limit = self.cfg.max_concurrent_clusters.unwrap_or(usize::MAX);
        while self.slots_used < limit {
            let Some(Reverse((_, _, cid))) = self.backlog.pop() else {
                break;
            };
            self.slots_used += 1;
            self.schedule(
                now + VirtualTime::from_micros(self.cfg.step_cpu_us),
                EvKind::Start(cid),
            );
        }
    }

    fn submit_call<S: Space, G: DepTracker<S>>(
        &mut self,
        server: &mut SimServer,
        scheduler: &Scheduler<S, G>,
        cid: ClusterId,
        member_idx: usize,
        at: VirtualTime,
    ) {
        let _ = scheduler;
        let active = self.active.get_mut(&cid).expect("active cluster");
        let chain = &mut active.chains[member_idx];
        let spec = chain.calls[chain.next];
        chain.next += 1;
        let id = RequestId(self.next_req);
        self.next_req += 1;
        let req = LlmRequest::new(
            id,
            chain.agent.0,
            active.cluster.step.priority(),
            spec.input_tokens,
            spec.output_tokens,
            spec.kind,
        );
        self.req_map.insert(id, (cid, member_idx));
        self.total_calls += 1;
        self.total_in += spec.input_tokens as u64;
        self.total_out += spec.output_tokens as u64;
        if self.timeline.is_some() {
            self.open_spans.insert(
                id,
                CallSpan {
                    agent: chain.agent,
                    step: active.cluster.step,
                    kind: spec.kind,
                    start: at,
                    end: at,
                },
            );
        }
        server.submit(at, req);
    }

    fn on_event<S: Space, G: DepTracker<S>, W: Workload<S::Pos> + ?Sized>(
        &mut self,
        scheduler: &mut Scheduler<S, G>,
        server: &mut SimServer,
        workload: &W,
        ev: Ev,
    ) -> Result<(), EngineError> {
        match ev.kind {
            EvKind::Start(cid) => {
                let active = self
                    .active
                    .get_mut(&cid)
                    .expect("started cluster is active");
                let step = active.cluster.step;
                active.chains = active
                    .cluster
                    .members
                    .iter()
                    .map(|m| MemberChain {
                        agent: *m,
                        calls: workload.calls(*m, step),
                        next: 0,
                    })
                    .collect();
                active.remaining = active.chains.iter().filter(|c| !c.calls.is_empty()).count();
                if active.remaining == 0 {
                    self.schedule(
                        ev.at + VirtualTime::from_micros(self.cfg.commit_cpu_us),
                        EvKind::Commit(cid),
                    );
                    return Ok(());
                }
                if self.cfg.serial_agents {
                    let first = self.active[&cid]
                        .chains
                        .iter()
                        .position(|c| !c.calls.is_empty());
                    if let Some(i) = first {
                        self.active.get_mut(&cid).expect("active").cursor = i;
                        self.submit_call(server, scheduler, cid, i, ev.at);
                    }
                } else {
                    let idxs: Vec<usize> = self.active[&cid]
                        .chains
                        .iter()
                        .enumerate()
                        .filter(|(_, c)| !c.calls.is_empty())
                        .map(|(i, _)| i)
                        .collect();
                    for i in idxs {
                        self.submit_call(server, scheduler, cid, i, ev.at);
                    }
                }
            }
            EvKind::Commit(cid) => {
                let active = self
                    .active
                    .remove(&cid)
                    .expect("committed cluster is active");
                let step = active.cluster.step;
                let new_pos: Vec<(AgentId, S::Pos)> = active
                    .cluster
                    .members
                    .iter()
                    .map(|m| (*m, workload.pos_after(*m, step)))
                    .collect();
                scheduler.complete(&cid, &new_pos)?;
                if let Some(tl) = &mut self.timeline {
                    tl.commits.push((step, ev.at));
                }
                self.slots_used -= 1;
                self.pull_ready(scheduler);
                self.drain_slots(ev.at);
            }
        }
        Ok(())
    }

    fn on_completion<S: Space, G: DepTracker<S>>(
        &mut self,
        scheduler: &mut Scheduler<S, G>,
        server: &mut SimServer,
        req: LlmRequest,
        at: VirtualTime,
    ) -> Result<(), EngineError> {
        if let Some(mut span) = self.open_spans.remove(&req.id) {
            span.end = at;
            if let Some(tl) = &mut self.timeline {
                tl.spans.push(span);
            }
        }
        let (cid, member_idx) = self
            .req_map
            .remove(&req.id)
            .expect("completion for unknown request");
        let active = self
            .active
            .get_mut(&cid)
            .expect("completion for inactive cluster");
        let chain = &active.chains[member_idx];
        let chain_has_more = chain.next < chain.calls.len();
        if chain_has_more {
            self.submit_call(server, scheduler, cid, member_idx, at);
            return Ok(());
        }
        // Member finished its chain.
        active.remaining -= 1;
        if self.cfg.serial_agents && active.remaining > 0 {
            // Start the next member with a non-empty chain.
            let next = active
                .chains
                .iter()
                .enumerate()
                .skip(active.cursor + 1)
                .find(|(_, c)| !c.calls.is_empty() && c.next == 0)
                .map(|(i, _)| i);
            if let Some(i) = next {
                active.cursor = i;
                self.submit_call(server, scheduler, cid, i, at);
            }
            return Ok(());
        }
        if active.remaining == 0 {
            self.schedule(
                at + VirtualTime::from_micros(self.cfg.commit_cpu_us),
                EvKind::Commit(cid),
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Step;
    use crate::policy::DependencyPolicy;
    use crate::rules::RuleParams;
    use crate::space::{GridSpace, Point};
    use crate::workload::testutil::TableWorkload;
    use aim_llm::{presets, CallKind, ServerConfig};
    use aim_store::Db;
    use std::sync::Arc;

    fn mk_sched(initial: &[Point], policy: DependencyPolicy, target: u32) -> Scheduler<GridSpace> {
        Scheduler::new(
            Arc::new(GridSpace::new(500, 500)),
            RuleParams::genagent(),
            policy,
            Arc::new(Db::new()),
            initial,
            Step(target),
        )
        .unwrap()
    }

    fn mk_server() -> SimServer {
        SimServer::new(ServerConfig::from_preset(presets::tiny_test(), 1, true))
    }

    fn spec(input: u32, output: u32) -> CallSpec {
        CallSpec::new(input, output, CallKind::Plan)
    }

    #[test]
    fn empty_workload_completes_in_cpu_time_only() {
        let w = TableWorkload::stationary(vec![Point::new(0, 0)], 3);
        let mut s = mk_sched(&w.initial, DependencyPolicy::Spatiotemporal, 3);
        let mut server = mk_server();
        let r = run_sim(&mut s, &w, &mut server, &SimConfig::default()).unwrap();
        assert_eq!(r.total_calls, 0);
        // 3 steps × (2ms dispatch + 1ms commit).
        assert_eq!(r.makespan, VirtualTime::from_micros(3 * 3_000));
    }

    #[test]
    fn calls_serialize_within_agent_step() {
        let w = TableWorkload::stationary(vec![Point::new(0, 0)], 1)
            .with_call(0, 0, spec(100, 5))
            .with_call(0, 0, spec(100, 5));
        let mut s = mk_sched(&w.initial, DependencyPolicy::Spatiotemporal, 1);
        let mut server = mk_server();
        let cfg = SimConfig {
            record_timeline: true,
            ..SimConfig::default()
        };
        let r = run_sim(&mut s, &w, &mut server, &cfg).unwrap();
        assert_eq!(r.total_calls, 2);
        let tl = r.timeline.unwrap();
        assert_eq!(tl.spans.len(), 2);
        assert!(
            tl.spans[0].end <= tl.spans[1].start,
            "chain calls must not overlap"
        );
    }

    #[test]
    fn parallel_agents_overlap_in_global_sync() {
        let w = TableWorkload::stationary(vec![Point::new(0, 0), Point::new(300, 300)], 1)
            .with_call(0, 0, spec(200, 20))
            .with_call(1, 0, spec(200, 20));
        let mut s = mk_sched(&w.initial, DependencyPolicy::GlobalSync, 1);
        let mut server = mk_server();
        let cfg = SimConfig {
            record_timeline: true,
            ..SimConfig::default()
        };
        let r = run_sim(&mut s, &w, &mut server, &cfg).unwrap();
        let tl = r.timeline.unwrap();
        assert_eq!(tl.spans.len(), 2);
        let overlap = tl.spans[0].start < tl.spans[1].end && tl.spans[1].start < tl.spans[0].end;
        assert!(
            overlap,
            "parallel-sync agents should issue concurrently: {:?}",
            tl.spans
        );
        assert!(r.achieved_parallelism > 1.0);
    }

    #[test]
    fn single_thread_serializes_everything() {
        let w = TableWorkload::stationary(vec![Point::new(0, 0), Point::new(300, 300)], 1)
            .with_call(0, 0, spec(200, 20))
            .with_call(1, 0, spec(200, 20));
        let mut s = mk_sched(&w.initial, DependencyPolicy::GlobalSync, 1);
        let mut server = mk_server();
        let cfg = SimConfig {
            record_timeline: true,
            ..SimConfig::single_thread()
        };
        let r = run_sim(&mut s, &w, &mut server, &cfg).unwrap();
        let tl = r.timeline.unwrap();
        assert!(
            tl.spans[0].end <= tl.spans[1].start,
            "single-thread must serialize agents: {:?}",
            tl.spans
        );
        assert!(r.achieved_parallelism <= 1.0 + 1e-9);
    }

    #[test]
    fn metropolis_beats_global_sync_on_imbalanced_work() {
        // The straggler alternates: agent 0 is heavy on even steps, agent 1
        // on odd steps. Global sync pays the heavy cost every step; the OOO
        // schedule overlaps the two agents' heavy phases (they are far
        // apart, hence independent).
        let heavy = |w: TableWorkload| {
            (0..4).fold(w, |w, s| {
                let (h, l) = if s % 2 == 0 { (0, 1) } else { (1, 0) };
                w.with_call(h, s, spec(400, 80))
                    .with_call(l, s, spec(20, 2))
            })
        };
        let w = heavy(TableWorkload::stationary(
            vec![Point::new(0, 0), Point::new(400, 400)],
            4,
        ));
        let run = |policy| {
            let mut s = mk_sched(&w.initial, policy, 4);
            let mut server = mk_server();
            run_sim(&mut s, &w, &mut server, &SimConfig::default()).unwrap()
        };
        let sync = run(DependencyPolicy::GlobalSync);
        let ooo = run(DependencyPolicy::Spatiotemporal);
        assert!(
            ooo.makespan < sync.makespan,
            "metropolis {} should beat parallel-sync {}",
            ooo.makespan,
            sync.makespan
        );
        assert_eq!(
            ooo.sched.max_step_skew > 0,
            true,
            "agent 1 must have run ahead"
        );
    }

    #[test]
    fn deterministic_reports() {
        let w = TableWorkload::stationary(
            vec![Point::new(0, 0), Point::new(10, 0), Point::new(200, 200)],
            3,
        )
        .with_call(0, 0, spec(100, 10))
        .with_call(1, 1, spec(300, 30))
        .with_call(2, 2, spec(50, 5));
        let run = || {
            let mut s = mk_sched(&w.initial, DependencyPolicy::Spatiotemporal, 3);
            let mut server = mk_server();
            run_sim(&mut s, &w, &mut server, &SimConfig::default()).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.total_calls, b.total_calls);
        assert_eq!(a.server, b.server);
    }

    #[test]
    fn worker_slots_throttle_concurrency() {
        // Two distant agents, one call each; with one worker slot the
        // cluster dispatches serialize.
        let w = TableWorkload::stationary(vec![Point::new(0, 0), Point::new(300, 300)], 1)
            .with_call(0, 0, spec(100, 10))
            .with_call(1, 0, spec(100, 10));
        let run = |slots| {
            let mut s = mk_sched(&w.initial, DependencyPolicy::Spatiotemporal, 1);
            let mut server = mk_server();
            let cfg = SimConfig {
                max_concurrent_clusters: slots,
                ..SimConfig::default()
            };
            run_sim(&mut s, &w, &mut server, &cfg).unwrap()
        };
        let free = run(None);
        let one = run(Some(1));
        assert!(one.makespan > free.makespan);
    }

    #[test]
    fn moves_feed_back_into_scheduler() {
        // Agent 0 walks toward agent 1; when it gets close they couple.
        let mut w = TableWorkload::stationary(vec![Point::new(0, 0), Point::new(8, 0)], 6);
        for s in 0..6 {
            w = w.with_move(0, s, Point::new(s as i32 + 1, 0));
        }
        let mut s = mk_sched(&w.initial, DependencyPolicy::Spatiotemporal, 6);
        let mut server = mk_server();
        let r = run_sim(&mut s, &w, &mut server, &SimConfig::default()).unwrap();
        assert!(
            r.sched.max_cluster_size >= 2,
            "agents must have coupled while close"
        );
        assert!(s.graph().validate().is_ok());
    }
}
