//! Controller/worker runtime over OS threads — Algorithm 3, literally.
//!
//! The controller (the calling thread) owns the [`Scheduler`]; it pushes
//! ready clusters into a shared priority `ready_queue` and consumes
//! completion confirmations from an `ack_queue`, both priority-ordered by
//! simulation step (§3.1, §3.5). Worker threads pull clusters, run **one
//! thread per member agent** (the paper maps agents to threads and workers
//! to processes — Rust has no GIL, so workers are threads too), resolve
//! and commit the step through the user's [`ClusterProgram`], and
//! acknowledge.

use std::sync::Arc;
use std::time::{Duration, Instant};

use aim_llm::LlmBackend;
use aim_store::PriorityQueue;
use serde::{Deserialize, Serialize};

use crate::depgraph::{DepGraph, DepTracker};
use crate::error::EngineError;
use crate::ids::{AgentId, Step};
use crate::scheduler::{Cluster, Scheduler};
use crate::space::Space;
use crate::telemetry::{
    BlockReason, Counter, RunTelemetry, SpanKind, Telemetry, TelemetryBackend, TelemetryObserver,
};

/// User-defined agent/world logic executed by the threaded runtime.
///
/// This is the developer-facing surface the paper describes in §2.1: the
/// engine owns scheduling and state-update plumbing, the developer supplies
/// `agent.proceed` (here [`ClusterProgram::agent_step`]) and
/// `world.resolve_conflict_and_commit` (here [`ClusterProgram::commit`]).
pub trait ClusterProgram<S: Space>: Send + Sync {
    /// Opaque per-agent action produced by a step.
    type Action: Send + 'static;

    /// Runs one agent's step: perceive, retrieve, plan — making as many
    /// blocking `llm` calls as needed — and returns the agent's intended
    /// action. Called concurrently for every member of a cluster.
    fn agent_step(&self, agent: AgentId, step: Step, llm: &dyn LlmBackend) -> Self::Action;

    /// Resolves conflicts between the cluster's actions, commits them to
    /// the world, and returns each member's new position. Called once per
    /// cluster, serialized with respect to the same world region by
    /// construction (coupled agents share a cluster).
    fn commit(
        &self,
        cluster: &Cluster,
        actions: Vec<(AgentId, Self::Action)>,
    ) -> Vec<(AgentId, S::Pos)>;
}

/// Configuration of the threaded runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadedConfig {
    /// Worker threads pulling clusters (paper: "the number of workers can
    /// be adjusted based on available CPU resources").
    pub workers: usize,
    /// Order both queues by step (§3.5) instead of FIFO.
    pub priority_enabled: bool,
}

impl Default for ThreadedConfig {
    fn default() -> Self {
        ThreadedConfig {
            workers: 4,
            priority_enabled: true,
        }
    }
}

/// Wall-clock measurements of a threaded run.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct ThreadedReport {
    /// Wall time from start to completion.
    pub wall: Duration,
    /// Clusters executed.
    pub clusters: u64,
    /// Agent-steps executed.
    pub agent_steps: u64,
    /// The serving backend's [`LlmBackend::describe`] string — with a
    /// [`aim_llm::Fleet`] backend this names every replica, so a report
    /// fully identifies the deployment that produced it.
    pub backend: String,
    /// Fleet-level per-replica counters (routing, prefix cache, faults,
    /// tail latency), when the backend is an [`aim_llm::Fleet`]; `None`
    /// for plain backends.
    pub fleet: Option<aim_llm::FleetMetrics>,
    /// The unified telemetry report (spans, histograms, wall-clock
    /// decomposition), when the run was observed via
    /// [`run_threaded_observed`]; `None` otherwise.
    pub telemetry: Option<RunTelemetry>,
}

impl std::fmt::Display for ThreadedReport {
    /// One-screen human-readable summary — what `repro` experiments print
    /// instead of hand-formatting the fields.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "threaded run: {:.3} s wall · {} clusters · {} agent-steps",
            self.wall.as_secs_f64(),
            self.clusters,
            self.agent_steps,
        )?;
        writeln!(f, "  backend: {}", self.backend)?;
        if let Some(fleet) = &self.fleet {
            let hedged: u64 = fleet.replicas.iter().map(|r| r.hedged).sum();
            writeln!(
                f,
                "  fleet: served {} · prefix hit {:.1}% · p99 {:.1} ms · failed {} · hedged {}",
                fleet.total_served(),
                100.0 * fleet.hit_rate(),
                fleet.max_p99_us() as f64 / 1000.0,
                fleet.total_failed(),
                hedged,
            )?;
        }
        if let Some(t) = &self.telemetry {
            writeln!(
                f,
                "  telemetry: {} spans ({} dropped) · skew {} · max cluster {}",
                t.spans.len(),
                t.dropped,
                t.sched.max_step_skew,
                t.sched.max_cluster_size,
            )?;
            writeln!(
                f,
                "  decomposition: {} (coverage {:.1}%)",
                t.decomposition,
                100.0 * t.decomposition.coverage(),
            )?;
            if let Some(slowdown) = t.slowdown_vs_critical() {
                let bound = if t.critical_path_us.is_some() {
                    "critical path"
                } else {
                    "llm floor"
                };
                writeln!(f, "  wall vs {bound}: {slowdown:.2}×")?;
            }
        }
        Ok(())
    }
}

/// A periodic quiesced-checkpoint driver for
/// [`run_threaded_with_checkpoints`].
///
/// Whenever the fully-committed step floor (`min_step`) reaches a
/// multiple of `every_steps`, the runtime stops handing out new clusters,
/// lets every in-flight cluster finish, and only then invokes `f` — so
/// the callback observes a consistent commit-boundary cut: the store, the
/// dependency graph, and the program's world all agree, and the
/// controller thread is the sole owner. The callback typically evicts
/// history and writes an [`aim_store::SnapshotBuilder`] through an
/// [`aim_store::Checkpointer`]; failing it aborts the run.
///
/// Work lost to the barrier is bounded: in-flight clusters drain at their
/// own pace and nothing is cancelled, the runtime merely defers *new*
/// emissions until the capture is done.
pub struct CheckpointHook<'a, S: Space, G: DepTracker<S> = DepGraph<S>> {
    /// Fire whenever `min_step` first reaches a multiple of this
    /// (must be positive).
    pub every_steps: u32,
    /// Invoked with the scheduler quiesced (no clusters in flight).
    #[allow(clippy::type_complexity)]
    pub f: &'a mut dyn FnMut(&mut Scheduler<S, G>) -> Result<(), EngineError>,
}

impl<S: Space, G: DepTracker<S>> std::fmt::Debug for CheckpointHook<'_, S, G> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckpointHook")
            .field("every_steps", &self.every_steps)
            .finish()
    }
}

/// Runs `scheduler` to completion with `cfg.workers` worker threads
/// executing `program` against `backend`.
///
/// # Errors
///
/// Returns [`EngineError::Deadlock`] if the scheduler reports no ready and
/// no in-flight work before finishing (a rule bug), and propagates store
/// errors from completions.
///
/// # Panics
///
/// Panics if a worker thread panics (the panic is resumed on the caller).
pub fn run_threaded<S, G, P>(
    scheduler: &mut Scheduler<S, G>,
    program: Arc<P>,
    backend: Arc<dyn LlmBackend>,
    cfg: ThreadedConfig,
) -> Result<ThreadedReport, EngineError>
where
    S: Space,
    G: DepTracker<S>,
    P: ClusterProgram<S> + 'static,
{
    run_threaded_with_checkpoints(scheduler, program, backend, cfg, None)
}

/// [`run_threaded`] with an optional periodic [`CheckpointHook`] (see its
/// docs for the quiesce protocol).
///
/// # Errors
///
/// As [`run_threaded`], plus any error the hook returns.
///
/// # Panics
///
/// Panics if a worker thread panics or the hook cadence is zero.
pub fn run_threaded_with_checkpoints<S, G, P>(
    scheduler: &mut Scheduler<S, G>,
    program: Arc<P>,
    backend: Arc<dyn LlmBackend>,
    cfg: ThreadedConfig,
    hook: Option<CheckpointHook<'_, S, G>>,
) -> Result<ThreadedReport, EngineError>
where
    S: Space,
    G: DepTracker<S>,
    P: ClusterProgram<S> + 'static,
{
    run_threaded_observed(scheduler, program, backend, cfg, hook, None)
}

/// [`run_threaded_with_checkpoints`] with an optional [`Telemetry`] sink.
///
/// When `telemetry` is `Some`, the runtime threads the sink through every
/// layer before running:
///
/// - the scheduler records dependency-blocked waits with the blocking
///   agent attached ([`SpanKind::Blocked`], dependency reason), and the
///   dependency tracker records relink/migration passes if it is sharded;
/// - the backend is wrapped in a [`TelemetryBackend`] so every blocking
///   LLM call becomes a [`SpanKind::LlmCall`] span, and — if the backend
///   is a serving fleet — a [`TelemetryObserver`] is installed so each
///   per-replica attempt (primary, retry, hedge) becomes a
///   [`SpanKind::FleetAttempt`] span linked to its parent call;
/// - workers record cluster lifecycle spans (dispatch → agent steps →
///   commit) plus barrier waits: in a multi-member cluster, each member
///   that finished before the straggler gets a [`SpanKind::Blocked`] span
///   (barrier reason) naming the straggler — this is where lock-step's
///   cost shows up;
/// - the controller records per-completion bookkeeping
///   ([`SpanKind::Control`]) and the full quiesce→checkpoint barrier
///   ([`SpanKind::Checkpoint`]), measured from the moment it first
///   deferred ready work.
///
/// The finished [`RunTelemetry`] lands in [`ThreadedReport::telemetry`].
/// When `telemetry` is `None` — or the sink is disabled — the hot path
/// costs one relaxed atomic load per would-be span.
///
/// # Errors
///
/// As [`run_threaded_with_checkpoints`].
///
/// # Panics
///
/// Panics if a worker thread panics or the hook cadence is zero.
pub fn run_threaded_observed<S, G, P>(
    scheduler: &mut Scheduler<S, G>,
    program: Arc<P>,
    backend: Arc<dyn LlmBackend>,
    cfg: ThreadedConfig,
    mut hook: Option<CheckpointHook<'_, S, G>>,
    telemetry: Option<Arc<Telemetry>>,
) -> Result<ThreadedReport, EngineError>
where
    S: Space,
    G: DepTracker<S>,
    P: ClusterProgram<S> + 'static,
{
    assert!(cfg.workers > 0, "at least one worker is required");
    if let Some(h) = &hook {
        assert!(h.every_steps > 0, "checkpoint cadence must be positive");
    }
    // Instrument every layer up front; the raw backend stays reachable
    // for the report's describe/fleet_metrics.
    let raw_backend = Arc::clone(&backend);
    let backend: Arc<dyn LlmBackend> = match &telemetry {
        Some(t) => {
            scheduler.set_telemetry(Arc::clone(t));
            backend.install_observer(Arc::new(TelemetryObserver::new(Arc::clone(t))));
            Arc::new(TelemetryBackend::new(backend, Arc::clone(t)))
        }
        None => backend,
    };
    let run_start_us = telemetry.as_ref().map(|t| t.now_us());
    type Ack<P2> = (crate::ids::ClusterId, Vec<(AgentId, P2)>);
    let ready: Arc<PriorityQueue<Cluster>> = Arc::new(PriorityQueue::new());
    let ack: Arc<PriorityQueue<Ack<S::Pos>>> = Arc::new(PriorityQueue::new());
    let started = Instant::now();
    let mut clusters = 0u64;
    let mut agent_steps = 0u64;

    let result = std::thread::scope(|scope| -> Result<(), EngineError> {
        // Workers: pull cluster → one thread per agent → commit → ack.
        let mut handles = Vec::new();
        for _ in 0..cfg.workers {
            let ready = Arc::clone(&ready);
            let ack = Arc::clone(&ack);
            let program = Arc::clone(&program);
            let backend = Arc::clone(&backend);
            let priority = cfg.priority_enabled;
            let telemetry = telemetry.clone();
            handles.push(scope.spawn(move || {
                let rec = telemetry.as_ref().map(|t| t.recorder());
                while let Some(cluster) = ready.pop() {
                    let cluster_t0 = rec.as_ref().and_then(|r| r.start());
                    // Per-member finish timestamps, collected only while
                    // the sink is enabled (stays empty — no allocation —
                    // on the disabled path).
                    let mut finishes: Vec<(u32, u64)> = Vec::new();
                    let actions: Vec<(AgentId, P::Action)> = std::thread::scope(|agents| {
                        let mut joins = Vec::with_capacity(cluster.members.len());
                        for &m in &cluster.members {
                            let program = Arc::clone(&program);
                            let backend = Arc::clone(&backend);
                            let step = cluster.step;
                            let tel = telemetry.as_deref().filter(|t| t.is_enabled());
                            joins.push((
                                m,
                                agents.spawn(move || {
                                    let action = program.agent_step(m, step, backend.as_ref());
                                    (action, tel.map_or(0, Telemetry::now_us))
                                }),
                            ));
                        }
                        joins
                            .into_iter()
                            .map(|(m, j)| {
                                let (action, finished_us) =
                                    j.join().expect("agent thread panicked");
                                if finished_us > 0 {
                                    finishes.push((m.0, finished_us));
                                }
                                (m, action)
                            })
                            .collect()
                    });
                    if let Some(r) = &rec {
                        // Intra-cluster barrier: everyone who finished
                        // before the straggler was blocked on it.
                        if finishes.len() > 1 {
                            let join_end = r.now_us();
                            let straggler = finishes
                                .iter()
                                .max_by_key(|&&(_, f)| f)
                                .map(|&(a, _)| a)
                                .expect("non-empty");
                            for &(a, f) in &finishes {
                                if a != straggler && join_end > f {
                                    r.record_at(
                                        f,
                                        join_end,
                                        SpanKind::Blocked {
                                            agent: a,
                                            blocker: straggler,
                                            step: cluster.step.0,
                                            reason: BlockReason::Barrier,
                                        },
                                    );
                                }
                            }
                        }
                    }
                    let commit_t0 = rec.as_ref().and_then(|r| r.start());
                    let new_pos = program.commit(&cluster, actions);
                    if let Some(r) = &rec {
                        let members = cluster.members.len() as u32;
                        if let Some(t0) = commit_t0 {
                            r.record(
                                t0,
                                SpanKind::Commit {
                                    cluster: cluster.id.0,
                                    step: cluster.step.0,
                                    members,
                                },
                            );
                        }
                        if let Some(t0) = cluster_t0 {
                            r.record(
                                t0,
                                SpanKind::Cluster {
                                    cluster: cluster.id.0,
                                    step: cluster.step.0,
                                    members,
                                },
                            );
                        }
                    }
                    let prio = if priority { cluster.step.priority() } else { 0 };
                    if ack.push(prio, (cluster.id, new_pos)).is_err() {
                        break; // controller gone
                    }
                }
            }));
        }

        // Controller loop on the calling thread.
        let ctl = telemetry.as_ref().map(|t| t.recorder());
        let push_ready = |sched: &mut Scheduler<S, G>| {
            let mut n = 0;
            for c in sched.ready_clusters() {
                let prio = if cfg.priority_enabled {
                    c.step.priority()
                } else {
                    0
                };
                ready.push(prio, c).expect("ready queue closed prematurely");
                n += 1;
            }
            n
        };
        // Next committed-step multiple at which the checkpoint hook fires;
        // computed from the *current* floor so resumed runs do not
        // re-checkpoint their restore point.
        let next_multiple = |step: u32, every: u32| step - step % every + every;
        let mut next_due = hook
            .as_ref()
            .map(|h| next_multiple(scheduler.graph().min_step().0, h.every_steps));
        let due = |sched: &Scheduler<S, G>, next_due: &Option<u32>| matches!(next_due, Some(d) if sched.graph().min_step().0 >= *d);
        // Opens when the controller first defers ready work for a due
        // checkpoint; the Checkpoint span covers drain + hook.
        let mut stall_start: Option<u64> = None;
        // Run the controller to an explicit result, then close the queues
        // unconditionally so workers always exit (even on the error path)
        // before the scope joins them.
        let mut run = |scheduler: &mut Scheduler<S, G>| -> Result<(), EngineError> {
            push_ready(scheduler);
            while !scheduler.is_done() {
                if due(scheduler, &next_due) && scheduler.inflight_len() == 0 {
                    // Quiesced: every emitted cluster has committed, so
                    // store, graph, and world agree on one cut and this
                    // thread is the sole writer.
                    let barrier_t0 = stall_start
                        .take()
                        .or_else(|| ctl.as_ref().and_then(|r| r.start()));
                    let step = scheduler.graph().min_step().0;
                    let h = hook.as_mut().expect("due implies a hook");
                    (h.f)(scheduler)?;
                    if let (Some(r), Some(t0)) = (&ctl, barrier_t0) {
                        r.telemetry().counter_add(Counter::CheckpointBarriers, 1);
                        r.record(t0, SpanKind::Checkpoint { step });
                    }
                    next_due = Some(next_multiple(scheduler.graph().min_step().0, h.every_steps));
                    push_ready(scheduler);
                    continue;
                }
                if scheduler.inflight_len() == 0 {
                    return Err(EngineError::Deadlock {
                        detail: "no in-flight clusters and none ready".to_string(),
                    });
                }
                let Some((cid, new_pos)) = ack.pop() else {
                    return Err(EngineError::Deadlock {
                        detail: "ack queue closed with work outstanding".to_string(),
                    });
                };
                clusters += 1;
                agent_steps += new_pos.len() as u64;
                let ctl_t0 = ctl.as_ref().and_then(|r| r.start());
                scheduler.complete(&cid, &new_pos)?;
                if !due(scheduler, &next_due) {
                    push_ready(scheduler);
                } else if stall_start.is_none() {
                    // A checkpoint is due — hold new work back and let the
                    // in-flight clusters drain; the stall clock starts at
                    // the first deferred emission.
                    stall_start = ctl.as_ref().and_then(|r| r.start());
                }
                if let (Some(r), Some(t0)) = (&ctl, ctl_t0) {
                    r.record(
                        t0,
                        SpanKind::Control {
                            cluster: cid.0,
                            members: new_pos.len() as u32,
                        },
                    );
                }
            }
            Ok(())
        };
        let outcome = run(scheduler);
        ready.close();
        ack.close();
        for h in handles {
            h.join().expect("worker thread panicked");
        }
        outcome
    });
    result?;

    let telemetry = telemetry.map(|t| {
        // Final harvest: drain any telemetry the tracker's workers
        // buffered outside the sink (out-of-process shards) before the
        // report is assembled.
        scheduler.graph_mut().harvest_telemetry();
        t.finish(
            run_start_us.expect("set whenever telemetry is"),
            t.now_us(),
            scheduler.graph().len() as u32,
            scheduler.stats(),
            raw_backend.fleet_metrics(),
        )
    });
    Ok(ThreadedReport {
        wall: started.elapsed(),
        clusters,
        agent_steps,
        backend: raw_backend.describe(),
        fleet: raw_backend.fleet_metrics(),
        telemetry,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::DependencyPolicy;
    use crate::rules::RuleParams;
    use crate::space::{GridSpace, Point};
    use aim_llm::{CallKind, InstantBackend, LlmRequest, RequestId};
    use aim_store::Db;
    use parking_lot::Mutex;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Program: each agent makes one LLM call per step and random-walks +1
    /// in x; records the order of (agent, step) commits for verification.
    struct WalkProgram {
        calls: AtomicU64,
        req_ids: AtomicU64,
        positions: Mutex<HashMap<u32, Point>>,
        log: Mutex<Vec<(u32, u32)>>,
    }

    impl WalkProgram {
        fn new(initial: &[Point]) -> Self {
            WalkProgram {
                calls: AtomicU64::new(0),
                req_ids: AtomicU64::new(0),
                positions: Mutex::new(
                    initial
                        .iter()
                        .enumerate()
                        .map(|(i, p)| (i as u32, *p))
                        .collect(),
                ),
                log: Mutex::new(Vec::new()),
            }
        }
    }

    impl ClusterProgram<GridSpace> for WalkProgram {
        type Action = Point;

        fn agent_step(&self, agent: AgentId, _step: Step, llm: &dyn LlmBackend) -> Point {
            let id = RequestId(self.req_ids.fetch_add(1, Ordering::Relaxed));
            llm.call(&LlmRequest::new(id, agent.0, 0, 64, 8, CallKind::Plan));
            self.calls.fetch_add(1, Ordering::Relaxed);
            let cur = self.positions.lock()[&agent.0];
            Point::new(cur.x + 1, cur.y)
        }

        fn commit(
            &self,
            cluster: &Cluster,
            actions: Vec<(AgentId, Point)>,
        ) -> Vec<(AgentId, Point)> {
            let mut log = self.log.lock();
            let mut pos = self.positions.lock();
            for (a, p) in &actions {
                pos.insert(a.0, *p);
                log.push((a.0, cluster.step.0));
            }
            actions
        }
    }

    fn mk_sched(initial: &[Point], policy: DependencyPolicy, target: u32) -> Scheduler<GridSpace> {
        Scheduler::new(
            Arc::new(GridSpace::new(1000, 1000)),
            RuleParams::genagent(),
            policy,
            Arc::new(Db::new()),
            initial,
            Step(target),
        )
        .unwrap()
    }

    #[test]
    fn threaded_run_completes_and_counts() {
        let initial = vec![Point::new(0, 0), Point::new(100, 100), Point::new(200, 200)];
        let mut sched = mk_sched(&initial, DependencyPolicy::Spatiotemporal, 4);
        let program = Arc::new(WalkProgram::new(&initial));
        let backend: Arc<dyn LlmBackend> = Arc::new(InstantBackend::new());
        let report = run_threaded(
            &mut sched,
            Arc::clone(&program),
            backend,
            ThreadedConfig::default(),
        )
        .unwrap();
        assert!(sched.is_done());
        assert_eq!(report.agent_steps, 12);
        assert_eq!(program.calls.load(Ordering::Relaxed), 12);
        // Per-agent step order must be strictly increasing.
        let log = program.log.lock();
        let mut last: HashMap<u32, u32> = HashMap::new();
        for (a, s) in log.iter() {
            if let Some(prev) = last.get(a) {
                assert!(s > prev, "agent {a} committed step {s} after {prev}");
            }
            last.insert(*a, *s);
        }
    }

    #[test]
    fn threaded_respects_coupling() {
        // Two adjacent agents must commit each step together (same cluster),
        // so their per-step commit entries must be adjacent in the log.
        let initial = vec![Point::new(0, 0), Point::new(2, 0)];
        let mut sched = mk_sched(&initial, DependencyPolicy::Spatiotemporal, 3);
        let program = Arc::new(WalkProgram::new(&initial));
        let backend: Arc<dyn LlmBackend> = Arc::new(InstantBackend::new());
        run_threaded(
            &mut sched,
            Arc::clone(&program),
            backend,
            ThreadedConfig {
                workers: 2,
                priority_enabled: true,
            },
        )
        .unwrap();
        assert!(sched.is_done());
        assert!(sched.stats().max_cluster_size >= 2);
        assert!(sched.graph().validate().is_ok());
    }

    #[test]
    fn threaded_with_many_workers_and_agents() {
        let initial: Vec<Point> = (0..20)
            .map(|i| Point::new((i % 5) * 50, (i / 5) * 50))
            .collect();
        let mut sched = mk_sched(&initial, DependencyPolicy::Spatiotemporal, 5);
        let program = Arc::new(WalkProgram::new(&initial));
        let backend: Arc<dyn LlmBackend> = Arc::new(InstantBackend::new());
        let report = run_threaded(
            &mut sched,
            Arc::clone(&program),
            backend,
            ThreadedConfig {
                workers: 8,
                priority_enabled: true,
            },
        )
        .unwrap();
        assert!(sched.is_done());
        assert_eq!(report.agent_steps, 100);
        assert!(sched.graph().validate().is_ok());
    }

    #[test]
    fn report_identifies_the_backend() {
        let initial = vec![Point::new(0, 0)];
        let mut sched = mk_sched(&initial, DependencyPolicy::Spatiotemporal, 2);
        let program = Arc::new(WalkProgram::new(&initial));
        let backend: Arc<dyn LlmBackend> = Arc::new(InstantBackend::new());
        let report = run_threaded(&mut sched, program, backend, ThreadedConfig::default()).unwrap();
        assert_eq!(report.backend, "instant");
    }

    #[test]
    fn threaded_run_over_heterogeneous_fleet() {
        use aim_llm::{FleetConfig, LatencyProfile, ReplicaSpec, RoutePolicyKind};

        let initial: Vec<Point> = (0..8).map(|i| Point::new(i * 100, 0)).collect();
        let mut sched = mk_sched(&initial, DependencyPolicy::Spatiotemporal, 4);
        let program = Arc::new(WalkProgram::new(&initial));
        let fleet = Arc::new(
            FleetConfig::new("core-test", RoutePolicyKind::RoundRobin)
                .with_replica(ReplicaSpec::instant())
                .with_replica(ReplicaSpec::replay(
                    LatencyProfile::constant("fast", 10),
                    5,
                    None,
                ))
                .build(),
        );
        let backend: Arc<dyn LlmBackend> = Arc::clone(&fleet) as Arc<dyn LlmBackend>;
        let report = run_threaded(
            &mut sched,
            Arc::clone(&program),
            backend,
            ThreadedConfig::default(),
        )
        .unwrap();
        assert!(sched.is_done());
        assert_eq!(report.agent_steps, 32);
        let m = fleet.metrics();
        assert_eq!(
            m.total_served(),
            32,
            "every LLM call went through the fleet"
        );
        assert!(m.all_replicas_served(), "both replica types served: {m:?}");
        assert!(report.backend.starts_with("fleet(core-test, round-robin"));
        let fm = report
            .fleet
            .as_ref()
            .expect("fleet backends report metrics");
        assert_eq!(fm.total_served(), 32);
        assert_eq!(fm.replicas.len(), 2);
    }

    #[test]
    fn checkpoint_hook_fires_quiesced_on_cadence() {
        let initial: Vec<Point> = (0..6).map(|i| Point::new(i * 100, 0)).collect();
        let mut sched = mk_sched(&initial, DependencyPolicy::Spatiotemporal, 9);
        let program = Arc::new(WalkProgram::new(&initial));
        let backend: Arc<dyn LlmBackend> = Arc::new(InstantBackend::new());
        let mut fired: Vec<(u32, usize)> = Vec::new();
        let mut hook_fn = |sched: &mut Scheduler<GridSpace>| {
            fired.push((sched.graph().min_step().0, sched.inflight_len()));
            Ok(())
        };
        run_threaded_with_checkpoints(
            &mut sched,
            Arc::clone(&program),
            backend,
            ThreadedConfig::default(),
            Some(CheckpointHook {
                every_steps: 3,
                f: &mut hook_fn,
            }),
        )
        .unwrap();
        assert!(sched.is_done());
        // The hook fired at (at least) the multiples of 3 below the
        // target, always quiesced, never at step 0.
        assert!(!fired.is_empty());
        for (step, inflight) in &fired {
            assert_eq!(*inflight, 0, "hook must run with nothing in flight");
            assert!(
                *step >= 3 && *step % 3 == 0 && *step < 9,
                "bad fire at {step}"
            );
        }
        let steps: Vec<u32> = fired.iter().map(|(s, _)| *s).collect();
        assert!(steps.contains(&3) && steps.contains(&6), "fires: {steps:?}");
    }

    #[test]
    fn checkpoint_hook_error_aborts_cleanly() {
        let initial = vec![Point::new(0, 0), Point::new(300, 300)];
        let mut sched = mk_sched(&initial, DependencyPolicy::Spatiotemporal, 6);
        let program = Arc::new(WalkProgram::new(&initial));
        let backend: Arc<dyn LlmBackend> = Arc::new(InstantBackend::new());
        let mut hook_fn = |_: &mut Scheduler<GridSpace>| {
            Err(EngineError::Deadlock {
                detail: "hook says stop".to_string(),
            })
        };
        let r = run_threaded_with_checkpoints(
            &mut sched,
            program,
            backend,
            ThreadedConfig::default(),
            Some(CheckpointHook {
                every_steps: 2,
                f: &mut hook_fn,
            }),
        );
        // The error propagates and the workers shut down (no hang).
        assert!(matches!(r, Err(EngineError::Deadlock { .. })));
        assert!(!sched.is_done());
    }

    #[test]
    fn observed_run_produces_unified_telemetry() {
        use crate::telemetry::Phase;

        let initial: Vec<Point> = (0..6).map(|i| Point::new(i * 100, 0)).collect();
        let mut sched = mk_sched(&initial, DependencyPolicy::Spatiotemporal, 4);
        let program = Arc::new(WalkProgram::new(&initial));
        let backend: Arc<dyn LlmBackend> = Arc::new(InstantBackend::new());
        let telemetry = Arc::new(Telemetry::new());
        let report = run_threaded_observed(
            &mut sched,
            Arc::clone(&program),
            backend,
            ThreadedConfig::default(),
            None,
            Some(Arc::clone(&telemetry)),
        )
        .unwrap();
        let t = report.telemetry.as_ref().expect("observed run reports");
        assert_eq!(t.agents, 6);
        assert_eq!(t.dropped, 0);
        // 24 agent-steps → 24 cluster/commit/control/llm spans each
        // (singleton clusters: far-apart agents).
        for phase in [Phase::Cluster, Phase::Commit, Phase::Control, Phase::Llm] {
            let h = t.phase(phase).unwrap_or_else(|| panic!("no {phase:?}"));
            assert_eq!(h.count, 24, "{phase:?}");
        }
        assert_eq!(t.counter(crate::telemetry::Counter::LlmCalls), 24);
        // Decomposition covers the run by construction.
        assert!((t.decomposition.coverage() - 1.0).abs() < 1e-9);
        // Display renders the one-screen summary.
        let text = report.to_string();
        assert!(text.contains("threaded run:"), "{text}");
        assert!(text.contains("decomposition:"), "{text}");
    }

    #[test]
    fn observed_global_sync_records_barrier_blocking() {
        // Lock-step forces all agents into one barrier cluster per step;
        // with a deliberately slow straggler the other members must show
        // barrier-blocked spans naming it.
        use aim_llm::{FleetConfig, LatencyProfile, ReplicaSpec, RoutePolicyKind};

        let initial: Vec<Point> = (0..3).map(|i| Point::new(i * 300, 0)).collect();
        let mut sched = mk_sched(&initial, DependencyPolicy::GlobalSync, 2);
        let program = Arc::new(WalkProgram::new(&initial));
        let fleet = Arc::new(
            FleetConfig::new("barrier-test", RoutePolicyKind::RoundRobin)
                .with_replica(ReplicaSpec::replay(
                    LatencyProfile::constant("slowish", 2_000),
                    64,
                    None,
                ))
                .build(),
        );
        let telemetry = Arc::new(Telemetry::new());
        let report = run_threaded_observed(
            &mut sched,
            Arc::clone(&program),
            fleet as Arc<dyn LlmBackend>,
            ThreadedConfig::default(),
            None,
            Some(Arc::clone(&telemetry)),
        )
        .unwrap();
        let t = report.telemetry.as_ref().expect("observed run reports");
        let barrier: Vec<_> = t
            .spans
            .iter()
            .filter(|s| {
                matches!(
                    s.kind,
                    SpanKind::Blocked {
                        reason: BlockReason::Barrier,
                        ..
                    }
                )
            })
            .collect();
        assert!(!barrier.is_empty(), "lock-step must show barrier waits");
        for s in &barrier {
            let SpanKind::Blocked { agent, blocker, .. } = s.kind else {
                unreachable!()
            };
            assert_ne!(agent, blocker, "straggler never blocks on itself");
        }
        // Fleet attempts were observed and linked by request id to calls.
        assert_eq!(t.counter(crate::telemetry::Counter::FleetAttempts), 6);
        let call_reqs: std::collections::HashSet<u64> = t
            .spans
            .iter()
            .filter_map(|s| match s.kind {
                SpanKind::LlmCall { request, .. } => Some(request),
                _ => None,
            })
            .collect();
        for s in &t.spans {
            if let SpanKind::FleetAttempt { request, .. } = s.kind {
                assert!(call_reqs.contains(&request), "orphan attempt {request}");
            }
        }
    }

    #[test]
    fn global_sync_threaded_matches_lockstep() {
        let initial = vec![Point::new(0, 0), Point::new(500, 500)];
        let mut sched = mk_sched(&initial, DependencyPolicy::GlobalSync, 3);
        let program = Arc::new(WalkProgram::new(&initial));
        let backend: Arc<dyn LlmBackend> = Arc::new(InstantBackend::new());
        let report = run_threaded(&mut sched, program, backend, ThreadedConfig::default()).unwrap();
        assert_eq!(report.clusters, 3, "one barrier cluster per step");
        assert_eq!(sched.stats().max_step_skew, 0);
    }
}
