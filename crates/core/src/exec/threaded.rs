//! Controller/worker runtime over OS threads — Algorithm 3, literally.
//!
//! The controller (the calling thread) owns the [`Scheduler`]; it pushes
//! ready clusters into a shared priority `ready_queue` and consumes
//! completion confirmations from an `ack_queue`, both priority-ordered by
//! simulation step (§3.1, §3.5). Worker threads pull clusters, run **one
//! thread per member agent** (the paper maps agents to threads and workers
//! to processes — Rust has no GIL, so workers are threads too), resolve
//! and commit the step through the user's [`ClusterProgram`], and
//! acknowledge.

use std::sync::Arc;
use std::time::{Duration, Instant};

use aim_llm::LlmBackend;
use aim_store::PriorityQueue;
use serde::{Deserialize, Serialize};

use crate::depgraph::{DepGraph, DepTracker};
use crate::error::EngineError;
use crate::ids::{AgentId, Step};
use crate::scheduler::{Cluster, Scheduler};
use crate::space::Space;

/// User-defined agent/world logic executed by the threaded runtime.
///
/// This is the developer-facing surface the paper describes in §2.1: the
/// engine owns scheduling and state-update plumbing, the developer supplies
/// `agent.proceed` (here [`ClusterProgram::agent_step`]) and
/// `world.resolve_conflict_and_commit` (here [`ClusterProgram::commit`]).
pub trait ClusterProgram<S: Space>: Send + Sync {
    /// Opaque per-agent action produced by a step.
    type Action: Send + 'static;

    /// Runs one agent's step: perceive, retrieve, plan — making as many
    /// blocking `llm` calls as needed — and returns the agent's intended
    /// action. Called concurrently for every member of a cluster.
    fn agent_step(&self, agent: AgentId, step: Step, llm: &dyn LlmBackend) -> Self::Action;

    /// Resolves conflicts between the cluster's actions, commits them to
    /// the world, and returns each member's new position. Called once per
    /// cluster, serialized with respect to the same world region by
    /// construction (coupled agents share a cluster).
    fn commit(
        &self,
        cluster: &Cluster,
        actions: Vec<(AgentId, Self::Action)>,
    ) -> Vec<(AgentId, S::Pos)>;
}

/// Configuration of the threaded runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadedConfig {
    /// Worker threads pulling clusters (paper: "the number of workers can
    /// be adjusted based on available CPU resources").
    pub workers: usize,
    /// Order both queues by step (§3.5) instead of FIFO.
    pub priority_enabled: bool,
}

impl Default for ThreadedConfig {
    fn default() -> Self {
        ThreadedConfig {
            workers: 4,
            priority_enabled: true,
        }
    }
}

/// Wall-clock measurements of a threaded run.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct ThreadedReport {
    /// Wall time from start to completion.
    pub wall: Duration,
    /// Clusters executed.
    pub clusters: u64,
    /// Agent-steps executed.
    pub agent_steps: u64,
    /// The serving backend's [`LlmBackend::describe`] string — with a
    /// [`aim_llm::Fleet`] backend this names every replica, so a report
    /// fully identifies the deployment that produced it.
    pub backend: String,
    /// Fleet-level per-replica counters (routing, prefix cache, faults,
    /// tail latency), when the backend is an [`aim_llm::Fleet`]; `None`
    /// for plain backends.
    pub fleet: Option<aim_llm::FleetMetrics>,
}

/// A periodic quiesced-checkpoint driver for
/// [`run_threaded_with_checkpoints`].
///
/// Whenever the fully-committed step floor (`min_step`) reaches a
/// multiple of `every_steps`, the runtime stops handing out new clusters,
/// lets every in-flight cluster finish, and only then invokes `f` — so
/// the callback observes a consistent commit-boundary cut: the store, the
/// dependency graph, and the program's world all agree, and the
/// controller thread is the sole owner. The callback typically evicts
/// history and writes an [`aim_store::SnapshotBuilder`] through an
/// [`aim_store::Checkpointer`]; failing it aborts the run.
///
/// Work lost to the barrier is bounded: in-flight clusters drain at their
/// own pace and nothing is cancelled, the runtime merely defers *new*
/// emissions until the capture is done.
pub struct CheckpointHook<'a, S: Space, G: DepTracker<S> = DepGraph<S>> {
    /// Fire whenever `min_step` first reaches a multiple of this
    /// (must be positive).
    pub every_steps: u32,
    /// Invoked with the scheduler quiesced (no clusters in flight).
    #[allow(clippy::type_complexity)]
    pub f: &'a mut dyn FnMut(&mut Scheduler<S, G>) -> Result<(), EngineError>,
}

impl<S: Space, G: DepTracker<S>> std::fmt::Debug for CheckpointHook<'_, S, G> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckpointHook")
            .field("every_steps", &self.every_steps)
            .finish()
    }
}

/// Runs `scheduler` to completion with `cfg.workers` worker threads
/// executing `program` against `backend`.
///
/// # Errors
///
/// Returns [`EngineError::Deadlock`] if the scheduler reports no ready and
/// no in-flight work before finishing (a rule bug), and propagates store
/// errors from completions.
///
/// # Panics
///
/// Panics if a worker thread panics (the panic is resumed on the caller).
pub fn run_threaded<S, G, P>(
    scheduler: &mut Scheduler<S, G>,
    program: Arc<P>,
    backend: Arc<dyn LlmBackend>,
    cfg: ThreadedConfig,
) -> Result<ThreadedReport, EngineError>
where
    S: Space,
    G: DepTracker<S>,
    P: ClusterProgram<S> + 'static,
{
    run_threaded_with_checkpoints(scheduler, program, backend, cfg, None)
}

/// [`run_threaded`] with an optional periodic [`CheckpointHook`] (see its
/// docs for the quiesce protocol).
///
/// # Errors
///
/// As [`run_threaded`], plus any error the hook returns.
///
/// # Panics
///
/// Panics if a worker thread panics or the hook cadence is zero.
pub fn run_threaded_with_checkpoints<S, G, P>(
    scheduler: &mut Scheduler<S, G>,
    program: Arc<P>,
    backend: Arc<dyn LlmBackend>,
    cfg: ThreadedConfig,
    mut hook: Option<CheckpointHook<'_, S, G>>,
) -> Result<ThreadedReport, EngineError>
where
    S: Space,
    G: DepTracker<S>,
    P: ClusterProgram<S> + 'static,
{
    assert!(cfg.workers > 0, "at least one worker is required");
    if let Some(h) = &hook {
        assert!(h.every_steps > 0, "checkpoint cadence must be positive");
    }
    type Ack<P2> = (crate::ids::ClusterId, Vec<(AgentId, P2)>);
    let ready: Arc<PriorityQueue<Cluster>> = Arc::new(PriorityQueue::new());
    let ack: Arc<PriorityQueue<Ack<S::Pos>>> = Arc::new(PriorityQueue::new());
    let started = Instant::now();
    let mut clusters = 0u64;
    let mut agent_steps = 0u64;

    let result = std::thread::scope(|scope| -> Result<(), EngineError> {
        // Workers: pull cluster → one thread per agent → commit → ack.
        let mut handles = Vec::new();
        for _ in 0..cfg.workers {
            let ready = Arc::clone(&ready);
            let ack = Arc::clone(&ack);
            let program = Arc::clone(&program);
            let backend = Arc::clone(&backend);
            let priority = cfg.priority_enabled;
            handles.push(scope.spawn(move || {
                while let Some(cluster) = ready.pop() {
                    let actions: Vec<(AgentId, P::Action)> = std::thread::scope(|agents| {
                        let mut joins = Vec::with_capacity(cluster.members.len());
                        for &m in &cluster.members {
                            let program = Arc::clone(&program);
                            let backend = Arc::clone(&backend);
                            let step = cluster.step;
                            joins.push((
                                m,
                                agents.spawn(move || program.agent_step(m, step, backend.as_ref())),
                            ));
                        }
                        joins
                            .into_iter()
                            .map(|(m, j)| (m, j.join().expect("agent thread panicked")))
                            .collect()
                    });
                    let new_pos = program.commit(&cluster, actions);
                    let prio = if priority { cluster.step.priority() } else { 0 };
                    if ack.push(prio, (cluster.id, new_pos)).is_err() {
                        break; // controller gone
                    }
                }
            }));
        }

        // Controller loop on the calling thread.
        let push_ready = |sched: &mut Scheduler<S, G>| {
            let mut n = 0;
            for c in sched.ready_clusters() {
                let prio = if cfg.priority_enabled {
                    c.step.priority()
                } else {
                    0
                };
                ready.push(prio, c).expect("ready queue closed prematurely");
                n += 1;
            }
            n
        };
        // Next committed-step multiple at which the checkpoint hook fires;
        // computed from the *current* floor so resumed runs do not
        // re-checkpoint their restore point.
        let next_multiple = |step: u32, every: u32| step - step % every + every;
        let mut next_due = hook
            .as_ref()
            .map(|h| next_multiple(scheduler.graph().min_step().0, h.every_steps));
        let due = |sched: &Scheduler<S, G>, next_due: &Option<u32>| matches!(next_due, Some(d) if sched.graph().min_step().0 >= *d);
        // Run the controller to an explicit result, then close the queues
        // unconditionally so workers always exit (even on the error path)
        // before the scope joins them.
        let mut run = |scheduler: &mut Scheduler<S, G>| -> Result<(), EngineError> {
            push_ready(scheduler);
            while !scheduler.is_done() {
                if due(scheduler, &next_due) && scheduler.inflight_len() == 0 {
                    // Quiesced: every emitted cluster has committed, so
                    // store, graph, and world agree on one cut and this
                    // thread is the sole writer.
                    let h = hook.as_mut().expect("due implies a hook");
                    (h.f)(scheduler)?;
                    next_due = Some(next_multiple(scheduler.graph().min_step().0, h.every_steps));
                    push_ready(scheduler);
                    continue;
                }
                if scheduler.inflight_len() == 0 {
                    return Err(EngineError::Deadlock {
                        detail: "no in-flight clusters and none ready".to_string(),
                    });
                }
                let Some((cid, new_pos)) = ack.pop() else {
                    return Err(EngineError::Deadlock {
                        detail: "ack queue closed with work outstanding".to_string(),
                    });
                };
                clusters += 1;
                agent_steps += new_pos.len() as u64;
                scheduler.complete(&cid, &new_pos)?;
                if !due(scheduler, &next_due) {
                    push_ready(scheduler);
                }
                // else: a checkpoint is due — hold new work back and let
                // the in-flight clusters drain.
            }
            Ok(())
        };
        let outcome = run(scheduler);
        ready.close();
        ack.close();
        for h in handles {
            h.join().expect("worker thread panicked");
        }
        outcome
    });
    result?;

    Ok(ThreadedReport {
        wall: started.elapsed(),
        clusters,
        agent_steps,
        backend: backend.describe(),
        fleet: backend.fleet_metrics(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::DependencyPolicy;
    use crate::rules::RuleParams;
    use crate::space::{GridSpace, Point};
    use aim_llm::{CallKind, InstantBackend, LlmRequest, RequestId};
    use aim_store::Db;
    use parking_lot::Mutex;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Program: each agent makes one LLM call per step and random-walks +1
    /// in x; records the order of (agent, step) commits for verification.
    struct WalkProgram {
        calls: AtomicU64,
        req_ids: AtomicU64,
        positions: Mutex<HashMap<u32, Point>>,
        log: Mutex<Vec<(u32, u32)>>,
    }

    impl WalkProgram {
        fn new(initial: &[Point]) -> Self {
            WalkProgram {
                calls: AtomicU64::new(0),
                req_ids: AtomicU64::new(0),
                positions: Mutex::new(
                    initial
                        .iter()
                        .enumerate()
                        .map(|(i, p)| (i as u32, *p))
                        .collect(),
                ),
                log: Mutex::new(Vec::new()),
            }
        }
    }

    impl ClusterProgram<GridSpace> for WalkProgram {
        type Action = Point;

        fn agent_step(&self, agent: AgentId, _step: Step, llm: &dyn LlmBackend) -> Point {
            let id = RequestId(self.req_ids.fetch_add(1, Ordering::Relaxed));
            llm.call(&LlmRequest::new(id, agent.0, 0, 64, 8, CallKind::Plan));
            self.calls.fetch_add(1, Ordering::Relaxed);
            let cur = self.positions.lock()[&agent.0];
            Point::new(cur.x + 1, cur.y)
        }

        fn commit(
            &self,
            cluster: &Cluster,
            actions: Vec<(AgentId, Point)>,
        ) -> Vec<(AgentId, Point)> {
            let mut log = self.log.lock();
            let mut pos = self.positions.lock();
            for (a, p) in &actions {
                pos.insert(a.0, *p);
                log.push((a.0, cluster.step.0));
            }
            actions
        }
    }

    fn mk_sched(initial: &[Point], policy: DependencyPolicy, target: u32) -> Scheduler<GridSpace> {
        Scheduler::new(
            Arc::new(GridSpace::new(1000, 1000)),
            RuleParams::genagent(),
            policy,
            Arc::new(Db::new()),
            initial,
            Step(target),
        )
        .unwrap()
    }

    #[test]
    fn threaded_run_completes_and_counts() {
        let initial = vec![Point::new(0, 0), Point::new(100, 100), Point::new(200, 200)];
        let mut sched = mk_sched(&initial, DependencyPolicy::Spatiotemporal, 4);
        let program = Arc::new(WalkProgram::new(&initial));
        let backend: Arc<dyn LlmBackend> = Arc::new(InstantBackend::new());
        let report = run_threaded(
            &mut sched,
            Arc::clone(&program),
            backend,
            ThreadedConfig::default(),
        )
        .unwrap();
        assert!(sched.is_done());
        assert_eq!(report.agent_steps, 12);
        assert_eq!(program.calls.load(Ordering::Relaxed), 12);
        // Per-agent step order must be strictly increasing.
        let log = program.log.lock();
        let mut last: HashMap<u32, u32> = HashMap::new();
        for (a, s) in log.iter() {
            if let Some(prev) = last.get(a) {
                assert!(s > prev, "agent {a} committed step {s} after {prev}");
            }
            last.insert(*a, *s);
        }
    }

    #[test]
    fn threaded_respects_coupling() {
        // Two adjacent agents must commit each step together (same cluster),
        // so their per-step commit entries must be adjacent in the log.
        let initial = vec![Point::new(0, 0), Point::new(2, 0)];
        let mut sched = mk_sched(&initial, DependencyPolicy::Spatiotemporal, 3);
        let program = Arc::new(WalkProgram::new(&initial));
        let backend: Arc<dyn LlmBackend> = Arc::new(InstantBackend::new());
        run_threaded(
            &mut sched,
            Arc::clone(&program),
            backend,
            ThreadedConfig {
                workers: 2,
                priority_enabled: true,
            },
        )
        .unwrap();
        assert!(sched.is_done());
        assert!(sched.stats().max_cluster_size >= 2);
        assert!(sched.graph().validate().is_ok());
    }

    #[test]
    fn threaded_with_many_workers_and_agents() {
        let initial: Vec<Point> = (0..20)
            .map(|i| Point::new((i % 5) * 50, (i / 5) * 50))
            .collect();
        let mut sched = mk_sched(&initial, DependencyPolicy::Spatiotemporal, 5);
        let program = Arc::new(WalkProgram::new(&initial));
        let backend: Arc<dyn LlmBackend> = Arc::new(InstantBackend::new());
        let report = run_threaded(
            &mut sched,
            Arc::clone(&program),
            backend,
            ThreadedConfig {
                workers: 8,
                priority_enabled: true,
            },
        )
        .unwrap();
        assert!(sched.is_done());
        assert_eq!(report.agent_steps, 100);
        assert!(sched.graph().validate().is_ok());
    }

    #[test]
    fn report_identifies_the_backend() {
        let initial = vec![Point::new(0, 0)];
        let mut sched = mk_sched(&initial, DependencyPolicy::Spatiotemporal, 2);
        let program = Arc::new(WalkProgram::new(&initial));
        let backend: Arc<dyn LlmBackend> = Arc::new(InstantBackend::new());
        let report = run_threaded(&mut sched, program, backend, ThreadedConfig::default()).unwrap();
        assert_eq!(report.backend, "instant");
    }

    #[test]
    fn threaded_run_over_heterogeneous_fleet() {
        use aim_llm::{FleetConfig, LatencyProfile, ReplicaSpec, RoutePolicyKind};

        let initial: Vec<Point> = (0..8).map(|i| Point::new(i * 100, 0)).collect();
        let mut sched = mk_sched(&initial, DependencyPolicy::Spatiotemporal, 4);
        let program = Arc::new(WalkProgram::new(&initial));
        let fleet = Arc::new(
            FleetConfig::new("core-test", RoutePolicyKind::RoundRobin)
                .with_replica(ReplicaSpec::instant())
                .with_replica(ReplicaSpec::replay(
                    LatencyProfile::constant("fast", 10),
                    5,
                    None,
                ))
                .build(),
        );
        let backend: Arc<dyn LlmBackend> = Arc::clone(&fleet) as Arc<dyn LlmBackend>;
        let report = run_threaded(
            &mut sched,
            Arc::clone(&program),
            backend,
            ThreadedConfig::default(),
        )
        .unwrap();
        assert!(sched.is_done());
        assert_eq!(report.agent_steps, 32);
        let m = fleet.metrics();
        assert_eq!(
            m.total_served(),
            32,
            "every LLM call went through the fleet"
        );
        assert!(m.all_replicas_served(), "both replica types served: {m:?}");
        assert!(report.backend.starts_with("fleet(core-test, round-robin"));
        let fm = report
            .fleet
            .as_ref()
            .expect("fleet backends report metrics");
        assert_eq!(fm.total_served(), 32);
        assert_eq!(fm.replicas.len(), 2);
    }

    #[test]
    fn checkpoint_hook_fires_quiesced_on_cadence() {
        let initial: Vec<Point> = (0..6).map(|i| Point::new(i * 100, 0)).collect();
        let mut sched = mk_sched(&initial, DependencyPolicy::Spatiotemporal, 9);
        let program = Arc::new(WalkProgram::new(&initial));
        let backend: Arc<dyn LlmBackend> = Arc::new(InstantBackend::new());
        let mut fired: Vec<(u32, usize)> = Vec::new();
        let mut hook_fn = |sched: &mut Scheduler<GridSpace>| {
            fired.push((sched.graph().min_step().0, sched.inflight_len()));
            Ok(())
        };
        run_threaded_with_checkpoints(
            &mut sched,
            Arc::clone(&program),
            backend,
            ThreadedConfig::default(),
            Some(CheckpointHook {
                every_steps: 3,
                f: &mut hook_fn,
            }),
        )
        .unwrap();
        assert!(sched.is_done());
        // The hook fired at (at least) the multiples of 3 below the
        // target, always quiesced, never at step 0.
        assert!(!fired.is_empty());
        for (step, inflight) in &fired {
            assert_eq!(*inflight, 0, "hook must run with nothing in flight");
            assert!(
                *step >= 3 && *step % 3 == 0 && *step < 9,
                "bad fire at {step}"
            );
        }
        let steps: Vec<u32> = fired.iter().map(|(s, _)| *s).collect();
        assert!(steps.contains(&3) && steps.contains(&6), "fires: {steps:?}");
    }

    #[test]
    fn checkpoint_hook_error_aborts_cleanly() {
        let initial = vec![Point::new(0, 0), Point::new(300, 300)];
        let mut sched = mk_sched(&initial, DependencyPolicy::Spatiotemporal, 6);
        let program = Arc::new(WalkProgram::new(&initial));
        let backend: Arc<dyn LlmBackend> = Arc::new(InstantBackend::new());
        let mut hook_fn = |_: &mut Scheduler<GridSpace>| {
            Err(EngineError::Deadlock {
                detail: "hook says stop".to_string(),
            })
        };
        let r = run_threaded_with_checkpoints(
            &mut sched,
            program,
            backend,
            ThreadedConfig::default(),
            Some(CheckpointHook {
                every_steps: 2,
                f: &mut hook_fn,
            }),
        );
        // The error propagates and the workers shut down (no hang).
        assert!(matches!(r, Err(EngineError::Deadlock { .. })));
        assert!(!sched.is_done());
    }

    #[test]
    fn global_sync_threaded_matches_lockstep() {
        let initial = vec![Point::new(0, 0), Point::new(500, 500)];
        let mut sched = mk_sched(&initial, DependencyPolicy::GlobalSync, 3);
        let program = Arc::new(WalkProgram::new(&initial));
        let backend: Arc<dyn LlmBackend> = Arc::new(InstantBackend::new());
        let report = run_threaded(&mut sched, program, backend, ThreadedConfig::default()).unwrap();
        assert_eq!(report.clusters, 3, "one barrier cluster per step");
        assert_eq!(sched.stats().max_step_skew, 0);
    }
}
