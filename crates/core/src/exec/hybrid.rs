//! Hybrid interactive + offline execution (paper §6 "Offline and
//! Interactive").
//!
//! The paper frames games like The Sims as hybrids: the part the player
//! talks to needs *latency*, while background agents should run as an
//! offline simulation optimized for *throughput*. This driver replays a
//! background simulation exactly like [`crate::exec::sim::run_sim`] while
//! injecting an open-loop stream of latency-critical chat requests
//! ([`InteractiveLoad`]) into the same serving engine, and reports both
//! sides of the trade: the simulation's completion time and the
//! interactive stream's latency distribution.
//!
//! Pair it with [`aim_llm::ServerConfig::with_interactive_lane`] to give
//! the interactive lane admission priority and reserved batch slots, or
//! run it against a FIFO/priority-only server to measure what the player
//! experiences without QoS.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use aim_llm::{CallKind, LlmRequest, RequestId, SimServer, VirtualTime};
use serde::{Deserialize, Serialize};

use crate::error::EngineError;
use crate::exec::sim::SimConfig;
use crate::ids::{AgentId, ClusterId};
use crate::metrics::RunReport;
use crate::scheduler::{Cluster, Scheduler};
use crate::space::Space;
use crate::workload::{CallSpec, Workload};

/// Deterministic open-loop interactive traffic: `count` chat-style
/// requests with pseudo-exponential interarrival times.
///
/// # Example
///
/// ```
/// use aim_core::exec::hybrid::InteractiveLoad;
///
/// let load = InteractiveLoad::chat(2_000_000, 100, 7); // ~2s apart
/// let arrivals = load.arrivals();
/// assert_eq!(arrivals.len(), 100);
/// assert!(arrivals.windows(2).all(|w| w[0] < w[1]));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InteractiveLoad {
    /// Mean interarrival time, µs (virtual time).
    pub mean_interarrival_us: u64,
    /// Prompt tokens per request.
    pub input_tokens: u32,
    /// Generated tokens per request.
    pub output_tokens: u32,
    /// Number of requests to inject.
    pub count: u32,
    /// Seed for the deterministic arrival process.
    pub seed: u64,
}

impl InteractiveLoad {
    /// A chat-like load: 250 prompt / 80 generated tokens per turn.
    pub fn chat(mean_interarrival_us: u64, count: u32, seed: u64) -> Self {
        InteractiveLoad {
            mean_interarrival_us,
            input_tokens: 250,
            output_tokens: 80,
            count,
            seed,
        }
    }

    /// The deterministic arrival times (strictly increasing).
    pub fn arrivals(&self) -> Vec<VirtualTime> {
        let mut out = Vec::with_capacity(self.count as usize);
        let mut at = 0u64;
        let mut state = self.seed | 1;
        for _ in 0..self.count {
            // splitmix-style hash → uniform in (0,1) → exponential.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let u = ((z >> 11) as f64 / (1u64 << 53) as f64).max(1e-12);
            let dt = (-(u.ln()) * self.mean_interarrival_us as f64) as u64;
            at += dt.max(1);
            out.push(VirtualTime::from_micros(at));
        }
        out
    }
}

/// Latency distribution of the interactive stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct InteractiveReport {
    /// Requests injected.
    pub count: u64,
    /// Mean end-to-end latency, µs.
    pub mean_us: f64,
    /// Median latency, µs.
    pub p50_us: u64,
    /// 95th-percentile latency, µs.
    pub p95_us: u64,
    /// 99th-percentile latency, µs.
    pub p99_us: u64,
    /// Worst observed latency, µs.
    pub max_us: u64,
}

impl InteractiveReport {
    fn from_latencies(mut lat: Vec<u64>) -> Self {
        lat.sort_unstable();
        let count = lat.len() as u64;
        let mean = if lat.is_empty() {
            0.0
        } else {
            lat.iter().sum::<u64>() as f64 / lat.len() as f64
        };
        let pct = |q: f64| -> u64 {
            if lat.is_empty() {
                return 0;
            }
            let idx = ((lat.len() as f64 - 1.0) * q).round() as usize;
            lat[idx]
        };
        InteractiveReport {
            count,
            mean_us: mean,
            p50_us: pct(0.50),
            p95_us: pct(0.95),
            p99_us: pct(0.99),
            max_us: lat.last().copied().unwrap_or(0),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EvKind {
    Start(ClusterId),
    Commit(ClusterId),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Ev {
    at: VirtualTime,
    seq: u64,
    kind: EvKind,
}

impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct MemberChain {
    agent: AgentId,
    calls: Vec<CallSpec>,
    next: usize,
}

struct Active {
    cluster: Cluster,
    chains: Vec<MemberChain>,
    remaining: usize,
}

/// Runs the background simulation to completion while serving `load`'s
/// interactive stream on the same engine; returns the simulation report
/// (makespan measured at the last cluster commit) and the interactive
/// latency distribution.
///
/// # Errors
///
/// Propagates store failures and reports scheduler deadlock as
/// [`EngineError::Deadlock`].
///
/// # Panics
///
/// Panics if `cfg.serial_agents` is set — the hybrid driver models the
/// deployment shape of §6, which is inherently concurrent.
pub fn run_hybrid_sim<S, W>(
    scheduler: &mut Scheduler<S>,
    workload: &W,
    server: &mut SimServer,
    load: &InteractiveLoad,
    cfg: &SimConfig,
) -> Result<(RunReport, InteractiveReport), EngineError>
where
    S: Space,
    W: Workload<S::Pos> + ?Sized,
{
    assert!(!cfg.serial_agents, "hybrid runs are inherently concurrent");
    // Interactive request ids live in a disjoint namespace so completions
    // can be told apart from simulation calls.
    const INTERACTIVE_BASE: u64 = 1 << 40;
    let arrivals = load.arrivals();
    let mut next_arrival = 0usize;
    let mut latencies: Vec<u64> = Vec::with_capacity(arrivals.len());

    let mut events: BinaryHeap<Reverse<Ev>> = BinaryHeap::new();
    let mut backlog: BinaryHeap<Reverse<(u64, u64, ClusterId)>> = BinaryHeap::new();
    let mut active: HashMap<ClusterId, Active> = HashMap::new();
    let mut req_map: HashMap<RequestId, (ClusterId, usize)> = HashMap::new();
    let mut slots_used = 0usize;
    let mut event_seq = 0u64;
    let mut next_req = 0u64;
    let mut backlog_seq = 0u64;
    let mut now = VirtualTime::ZERO;
    let mut total_calls = 0u64;
    let mut total_in = 0u64;
    let mut total_out = 0u64;
    let mut sim_done_at: Option<VirtualTime> = None;
    let limit = cfg.max_concurrent_clusters.unwrap_or(usize::MAX);

    macro_rules! schedule {
        ($at:expr, $kind:expr) => {{
            events.push(Reverse(Ev {
                at: $at,
                seq: event_seq,
                kind: $kind,
            }));
            event_seq += 1;
        }};
    }
    macro_rules! pull_ready {
        () => {
            for cluster in scheduler.ready_clusters() {
                let prio = if cfg.priority_ready_queue {
                    cluster.step.priority()
                } else {
                    0
                };
                active.insert(
                    cluster.id,
                    Active {
                        cluster: cluster.clone(),
                        chains: Vec::new(),
                        remaining: 0,
                    },
                );
                backlog.push(Reverse((prio, backlog_seq, cluster.id)));
                backlog_seq += 1;
            }
        };
    }
    macro_rules! drain_slots {
        ($now:expr) => {
            while slots_used < limit {
                let Some(Reverse((_, _, cid))) = backlog.pop() else {
                    break;
                };
                slots_used += 1;
                schedule!(
                    $now + VirtualTime::from_micros(cfg.step_cpu_us),
                    EvKind::Start(cid)
                );
            }
        };
    }
    macro_rules! submit_call {
        ($cid:expr, $member:expr, $at:expr) => {{
            let a = active.get_mut(&$cid).expect("active cluster");
            let chain = &mut a.chains[$member];
            let spec = chain.calls[chain.next];
            chain.next += 1;
            let id = RequestId(next_req);
            next_req += 1;
            req_map.insert(id, ($cid, $member));
            total_calls += 1;
            total_in += spec.input_tokens as u64;
            total_out += spec.output_tokens as u64;
            server.submit(
                $at,
                LlmRequest::new(
                    id,
                    chain.agent.0,
                    a.cluster.step.priority(),
                    spec.input_tokens,
                    spec.output_tokens,
                    spec.kind,
                ),
            );
        }};
    }

    pull_ready!();
    drain_slots!(now);

    loop {
        let t_ev = events.peek().map(|Reverse(e)| e.at);
        let t_srv = server.next_event();
        let t_arr = arrivals.get(next_arrival).copied();
        let next = [t_ev, t_srv, t_arr].into_iter().flatten().min();
        let Some(next) = next else { break };
        now = next;

        if t_arr.is_some_and(|t| t <= next) {
            // Inject every interactive request due now.
            while arrivals.get(next_arrival).is_some_and(|t| *t <= next) {
                let at = arrivals[next_arrival];
                let id = RequestId(INTERACTIVE_BASE + next_arrival as u64);
                let req = LlmRequest::new(
                    id,
                    u32::MAX,
                    0,
                    load.input_tokens,
                    load.output_tokens,
                    CallKind::Converse,
                )
                .interactive();
                server.submit(at, req);
                next_arrival += 1;
            }
        }
        if t_srv.is_some_and(|t| t <= next) {
            for c in server.advance(next) {
                if c.req.id.0 >= INTERACTIVE_BASE {
                    latencies.push(c.latency().as_micros());
                    continue;
                }
                let (cid, member) = req_map
                    .remove(&c.req.id)
                    .expect("completion for unknown request");
                let a = active
                    .get_mut(&cid)
                    .expect("completion for inactive cluster");
                let chain = &a.chains[member];
                if chain.next < chain.calls.len() {
                    submit_call!(cid, member, c.finished_at);
                    continue;
                }
                a.remaining -= 1;
                if a.remaining == 0 {
                    schedule!(
                        c.finished_at + VirtualTime::from_micros(cfg.commit_cpu_us),
                        EvKind::Commit(cid)
                    );
                }
            }
        }
        while events.peek().is_some_and(|Reverse(e)| e.at <= next) {
            let Reverse(ev) = events.pop().expect("peeked");
            match ev.kind {
                EvKind::Start(cid) => {
                    let a = active.get_mut(&cid).expect("started cluster is active");
                    let step = a.cluster.step;
                    a.chains = a
                        .cluster
                        .members
                        .iter()
                        .map(|m| MemberChain {
                            agent: *m,
                            calls: workload.calls(*m, step),
                            next: 0,
                        })
                        .collect();
                    a.remaining = a.chains.iter().filter(|c| !c.calls.is_empty()).count();
                    if a.remaining == 0 {
                        schedule!(
                            ev.at + VirtualTime::from_micros(cfg.commit_cpu_us),
                            EvKind::Commit(cid)
                        );
                        continue;
                    }
                    let idxs: Vec<usize> = active[&cid]
                        .chains
                        .iter()
                        .enumerate()
                        .filter(|(_, c)| !c.calls.is_empty())
                        .map(|(i, _)| i)
                        .collect();
                    for i in idxs {
                        submit_call!(cid, i, ev.at);
                    }
                }
                EvKind::Commit(cid) => {
                    let a = active.remove(&cid).expect("committed cluster is active");
                    let step = a.cluster.step;
                    let new_pos: Vec<(AgentId, S::Pos)> = a
                        .cluster
                        .members
                        .iter()
                        .map(|m| (*m, workload.pos_after(*m, step)))
                        .collect();
                    scheduler.complete(&cid, &new_pos)?;
                    slots_used -= 1;
                    pull_ready!();
                    drain_slots!(ev.at);
                    if scheduler.is_done() && sim_done_at.is_none() {
                        sim_done_at = Some(ev.at);
                    }
                }
            }
        }
    }

    if !scheduler.is_done() {
        return Err(EngineError::Deadlock {
            detail: format!(
                "hybrid simulation stalled at {now}: {} clusters in flight, {} active",
                scheduler.inflight_len(),
                active.len()
            ),
        });
    }

    let makespan = sim_done_at.unwrap_or(now);
    let m = server.metrics();
    let report = RunReport {
        mode: "hybrid".to_string(),
        makespan,
        total_calls,
        total_input_tokens: total_in,
        total_output_tokens: total_out,
        achieved_parallelism: m.achieved_parallelism(makespan),
        gpu_utilization: m.utilization(makespan),
        sched: scheduler.stats(),
        server: Some(m),
        spec: None,
        timeline: None,
    };
    Ok((report, InteractiveReport::from_latencies(latencies)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Step;
    use crate::policy::DependencyPolicy;
    use crate::rules::RuleParams;
    use crate::space::{GridSpace, Point};
    use crate::workload::testutil::TableWorkload;
    use aim_llm::{presets, ServerConfig};
    use aim_store::Db;
    use std::sync::Arc;

    fn mk_sched(initial: &[Point], target: u32) -> Scheduler<GridSpace> {
        Scheduler::new(
            Arc::new(GridSpace::new(500, 500)),
            RuleParams::genagent(),
            DependencyPolicy::Spatiotemporal,
            Arc::new(Db::new()),
            initial,
            Step(target),
        )
        .unwrap()
    }

    fn busy_workload(steps: u32) -> TableWorkload {
        let mut w = TableWorkload::stationary(
            vec![Point::new(0, 0), Point::new(200, 200), Point::new(400, 0)],
            steps,
        );
        for s in 0..steps {
            for a in 0..3 {
                w = w.with_call(a, s, CallSpec::new(300, 60, CallKind::Plan));
            }
        }
        w
    }

    fn run(server_cfg: ServerConfig, load: InteractiveLoad) -> (RunReport, InteractiveReport) {
        let w = busy_workload(6);
        let mut sched = mk_sched(&w.initial, 6);
        let mut server = SimServer::new(server_cfg);
        run_hybrid_sim(&mut sched, &w, &mut server, &load, &SimConfig::default()).unwrap()
    }

    #[test]
    fn empty_load_reports_zeros() {
        let cfg = ServerConfig::from_preset(presets::tiny_test(), 1, true);
        let load = InteractiveLoad::chat(1, 0, 1);
        assert!(load.arrivals().is_empty());
        let (report, ir) = run(cfg, load);
        assert_eq!(ir.count, 0);
        assert_eq!(ir.p99_us, 0);
        assert_eq!(ir.mean_us, 0.0);
        assert!(
            report.makespan > VirtualTime::ZERO,
            "the simulation still runs"
        );
    }

    #[test]
    fn arrivals_are_deterministic_and_increasing() {
        let load = InteractiveLoad::chat(50_000, 200, 42);
        let a = load.arrivals();
        let b = load.arrivals();
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
        // Mean interarrival lands in the right ballpark (±50%).
        let mean = a.last().unwrap().as_micros() as f64 / a.len() as f64;
        assert!((25_000.0..75_000.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn all_interactive_requests_are_served() {
        let cfg = ServerConfig::from_preset(presets::tiny_test(), 1, true);
        let load = InteractiveLoad::chat(20_000, 50, 7);
        let (report, ir) = run(cfg, load);
        assert_eq!(ir.count, 50);
        assert!(ir.p50_us <= ir.p95_us && ir.p95_us <= ir.p99_us && ir.p99_us <= ir.max_us);
        assert!(ir.mean_us > 0.0);
        assert!(report.makespan > VirtualTime::ZERO);
        assert_eq!(
            report.total_calls, 18,
            "3 agents x 6 steps, interactive not counted"
        );
    }

    #[test]
    fn lane_qos_cuts_interactive_tail_latency() {
        // Saturate a single small replica with background work and a
        // steady interactive stream; the lane-aware server with reserved
        // slots must deliver a far better interactive p95.
        let load = InteractiveLoad::chat(15_000, 60, 11);
        let fifo = ServerConfig::from_preset(presets::tiny_test(), 1, false);
        let lane =
            ServerConfig::from_preset(presets::tiny_test(), 1, true).with_interactive_lane(2);
        let (_, ir_fifo) = run(fifo, load);
        let (_, ir_lane) = run(lane, load);
        assert!(
            ir_lane.p95_us < ir_fifo.p95_us,
            "lane QoS must cut tail latency: {} vs {}",
            ir_lane.p95_us,
            ir_fifo.p95_us
        );
    }

    #[test]
    fn background_pays_a_bounded_price_for_qos() {
        let load = InteractiveLoad::chat(15_000, 60, 11);
        let plain = ServerConfig::from_preset(presets::tiny_test(), 1, true);
        let lane =
            ServerConfig::from_preset(presets::tiny_test(), 1, true).with_interactive_lane(2);
        let (bg_plain, _) = run(plain, load);
        let (bg_lane, _) = run(lane, load);
        // QoS may slow the simulation, but not catastrophically (< 2x).
        assert!(
            bg_lane.makespan.as_secs_f64() < bg_plain.makespan.as_secs_f64() * 2.0,
            "{} vs {}",
            bg_lane.makespan,
            bg_plain.makespan
        );
    }

    #[test]
    fn deterministic_hybrid_runs() {
        let cfg = ServerConfig::from_preset(presets::tiny_test(), 2, true).with_interactive_lane(1);
        let load = InteractiveLoad::chat(10_000, 40, 3);
        let (r1, i1) = run(cfg.clone(), load);
        let (r2, i2) = run(cfg, load);
        assert_eq!(r1.makespan, r2.makespan);
        assert_eq!(i1, i2);
    }

    #[test]
    fn interactive_stream_outliving_simulation_is_drained() {
        // Sparse arrivals stretching far past the short simulation.
        let cfg = ServerConfig::from_preset(presets::tiny_test(), 1, true);
        let load = InteractiveLoad::chat(2_000_000, 10, 5);
        let (report, ir) = run(cfg, load);
        assert_eq!(ir.count, 10, "post-simulation arrivals still served");
        assert!(report.makespan > VirtualTime::ZERO);
    }
}
