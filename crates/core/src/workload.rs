//! Workload abstraction: what each agent does at each step.
//!
//! The paper benchmarks in *replay mode* (§4.1): recorded traces fix every
//! agent's LLM calls (with token counts) and movement, so different
//! schedulers can be compared on identical work. [`Workload`] is that
//! replay interface; `aim-trace` implements it for recorded/synthesized
//! traces, and tests implement it inline with closures or tables.

use aim_llm::CallKind;
use serde::{Deserialize, Serialize};

use crate::ids::{AgentId, Step};

/// One LLM call an agent makes during a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CallSpec {
    /// Prompt tokens.
    pub input_tokens: u32,
    /// Generation tokens (replayed with `ignore_eos` semantics).
    pub output_tokens: u32,
    /// Which agent function issued it.
    pub kind: CallKind,
}

impl CallSpec {
    /// Creates a call spec.
    pub fn new(input_tokens: u32, output_tokens: u32, kind: CallKind) -> Self {
        CallSpec {
            input_tokens,
            output_tokens,
            kind,
        }
    }
}

/// A replayable workload over positions of type `P`.
///
/// Implementations must be deterministic: the executor may query the same
/// `(agent, step)` multiple times.
pub trait Workload<P>: Send + Sync {
    /// Number of agents (ids are `0..num_agents`).
    fn num_agents(&self) -> usize;

    /// Steps to execute (agents run steps `0..target_step`).
    fn target_step(&self) -> Step;

    /// Where `agent` starts (before step 0).
    fn initial_pos(&self, agent: AgentId) -> P;

    /// The LLM calls `agent` performs during `step`, in issue order
    /// (each call waits for the previous one's response — Algorithm 2's
    /// perceive → retrieve → plan chain).
    fn calls(&self, agent: AgentId, step: Step) -> Vec<CallSpec>;

    /// Where `agent` is after committing `step`.
    fn pos_after(&self, agent: AgentId, step: Step) -> P;

    /// Total LLM calls in the whole workload (for reporting); the default
    /// sums [`Workload::calls`] over all agent-steps.
    fn total_calls(&self) -> u64 {
        let mut n = 0u64;
        for a in 0..self.num_agents() {
            for s in 0..self.target_step().0 {
                n += self.calls(AgentId(a as u32), Step(s)).len() as u64;
            }
        }
        n
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Small table-driven workloads shared by executor tests.

    use super::*;
    use crate::space::Point;
    use std::collections::HashMap;

    /// A workload defined by explicit tables; agents default to staying at
    /// their initial position issuing no calls.
    #[derive(Debug, Clone)]
    pub struct TableWorkload {
        pub n: usize,
        pub target: Step,
        pub initial: Vec<Point>,
        pub calls: HashMap<(u32, u32), Vec<CallSpec>>,
        pub moves: HashMap<(u32, u32), Point>,
    }

    impl TableWorkload {
        pub fn stationary(initial: Vec<Point>, target: u32) -> Self {
            TableWorkload {
                n: initial.len(),
                target: Step(target),
                initial,
                calls: HashMap::new(),
                moves: HashMap::new(),
            }
        }

        pub fn with_call(mut self, agent: u32, step: u32, spec: CallSpec) -> Self {
            self.calls.entry((agent, step)).or_default().push(spec);
            self
        }

        pub fn with_move(mut self, agent: u32, step: u32, to: Point) -> Self {
            self.moves.insert((agent, step), to);
            self
        }
    }

    impl Workload<Point> for TableWorkload {
        fn num_agents(&self) -> usize {
            self.n
        }
        fn target_step(&self) -> Step {
            self.target
        }
        fn initial_pos(&self, agent: AgentId) -> Point {
            self.initial[agent.index()]
        }
        fn calls(&self, agent: AgentId, step: Step) -> Vec<CallSpec> {
            self.calls
                .get(&(agent.0, step.0))
                .cloned()
                .unwrap_or_default()
        }
        fn pos_after(&self, agent: AgentId, step: Step) -> Point {
            // Last explicit move at or before `step`, else initial.
            (0..=step.0)
                .rev()
                .find_map(|s| self.moves.get(&(agent.0, s)))
                .copied()
                .unwrap_or(self.initial[agent.index()])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::TableWorkload;
    use super::*;
    use crate::space::Point;

    #[test]
    fn table_workload_defaults() {
        let w = TableWorkload::stationary(vec![Point::new(1, 1)], 3);
        assert_eq!(w.num_agents(), 1);
        assert_eq!(w.target_step(), Step(3));
        assert!(w.calls(AgentId(0), Step(0)).is_empty());
        assert_eq!(w.pos_after(AgentId(0), Step(2)), Point::new(1, 1));
        assert_eq!(w.total_calls(), 0);
    }

    #[test]
    fn table_workload_with_entries() {
        let w = TableWorkload::stationary(vec![Point::new(0, 0)], 3)
            .with_call(0, 1, CallSpec::new(100, 10, CallKind::Plan))
            .with_call(0, 1, CallSpec::new(50, 5, CallKind::Reflect))
            .with_move(0, 1, Point::new(1, 0));
        assert_eq!(w.calls(AgentId(0), Step(1)).len(), 2);
        assert_eq!(w.total_calls(), 2);
        assert_eq!(w.pos_after(AgentId(0), Step(0)), Point::new(0, 0));
        assert_eq!(w.pos_after(AgentId(0), Step(1)), Point::new(1, 0));
        assert_eq!(
            w.pos_after(AgentId(0), Step(2)),
            Point::new(1, 0),
            "moves persist"
        );
    }
}
