//! Sharded dependency tracking for massive-agent worlds (10k+ agents).
//!
//! The single-shard [`DepGraph`] keeps one spatial index and derives every
//! relink query radius from the **global** step skew
//! (`DepGraph`'s `query_units`): one spatially-local straggler cluster
//! lagging `K` steps behind inflates *every* agent's candidate query to
//! the `blocking_units(K)` radius, even on the far side of the map. At
//! OpenCity scale that is the dominant cost of edge maintenance — the
//! stragglers of paper Fig. 1 are spatially local, but the unsharded
//! tracker pays for them globally.
//!
//! [`ShardedDepGraph`] partitions agents across N spatial shards (a
//! [`ShardMap`] — grid-region ownership, rebalanced when an agent
//! migrates across a boundary). Each shard owns:
//!
//! * a spatial index over exactly the agents it owns, and
//! * a `(step, agent)` ordered set of its members, giving per-shard
//!   `min`/`max` step bounds.
//!
//! A relink query for agent `a` then visits shard `j` only if `j`'s
//! region is within `blocking_units(gap_j)` of `a`, where `gap_j` is the
//! **largest step gap between `a` and any member of `j`** (from the
//! shard's step bounds). Shards in step with `a` are queried at the tight
//! coupling radius; distant lagging shards are pruned entirely. With one
//! shard the bounds are global and the behavior (and cost) degenerates to
//! exactly the unsharded algorithm — which is what the `shard/*` benches
//! compare against.
//!
//! # Boundary-edge protocol (why exactness holds)
//!
//! Derived edges are stored symmetrically: an edge `{a, b}` appears in
//! both endpoints' adjacency lists, and each endpoint's list is owned by
//! the endpoint's current shard. A *boundary edge* (endpoints in
//! different shards) is therefore materialized twice — once per owning
//! shard — and both copies are repaired by whichever endpoint relinks.
//! Exactness rests on three invariants:
//!
//! 1. **Ownership is total and current**: every agent belongs to exactly
//!    one shard, decided by [`ShardMap::shard_of`] on its *committed*
//!    position; [`ShardedDepGraph::advance`]/[`ShardedDepGraph::rollback`]
//!    migrate ownership (index + step bounds) *before* relinking, so a
//!    query never misses an agent because it is mid-migration.
//! 2. **Pruning is conservative**: shard `j` is skipped only when
//!    [`ShardMap::min_distance`] (a *lower bound* on the distance from
//!    the query position to any position `j` can own) exceeds the
//!    pair-gap radius `blocking_units(gap_j)` (an *upper bound*, from the
//!    shard's step extremes, on any `a`–`b` rule radius with `b ∈ j`).
//!    A lower bound above an upper bound proves no rule edge can exist,
//!    so nothing exact is lost.
//! 3. **Candidates are re-checked**: every candidate an index returns
//!    goes through the exact [`Space::within_units`] rule predicates,
//!    identical to [`DepGraph`] — sharding changes which index answers
//!    the candidate query, never the decision.
//!
//! Together 1–3 give: the sharded adjacency equals the single-shard
//! adjacency equals the pairwise §3.2 rules — pinned down by the
//! `prop_shard` property tests, which drive both trackers through random
//! advance/rollback/evict/migration churn (including agents crossing
//! shard boundaries mid-cluster) and compare edge-for-edge.
//!
//! # Parallel relink
//!
//! Because relink candidate generation is read-only (node table, shard
//! indexes, step bounds), large batches — cluster commits, recovery
//! rebuilds — compute their edge sets in parallel, one task per shard,
//! and apply the mutations serially.
//! On single-core machines (or with one shard) the path stays serial;
//! the speedups quoted in `BENCH_shard.json` on such machines come from
//! the step-bound pruning alone.
//!
//! The authoritative node records in the store are **identical** to the
//! unsharded layout (`dagt ‖ agent`), so snapshots interoperate: shard
//! membership is derived state, serialized as per-shard sections by
//! [`crate::checkpoint::snapshot_sharded_run`] purely so recovery can
//! rebuild ownership without a global rescan.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use aim_store::{Db, StoreError};

use crate::depgraph::{DepGraph, DepTracker, EdgeMode, GraphOptions, GraphSnapshot};
use crate::ids::{AgentId, Step};
use crate::rules::RuleParams;
use crate::space::{Point, Space, SpatialIndex};

/// Batch size at or above which [`ShardedDepGraph`] relinks in parallel
/// across shards (when more than one shard and more than one CPU exist).
const PARALLEL_RELINK_THRESHOLD: usize = 64;

/// Assigns positions to spatial shards and bounds distances to shard
/// regions — the geometry half of [`ShardedDepGraph`].
///
/// Implementations must keep [`ShardMap::min_distance`] a **lower bound**
/// on the true distance from a position to anything the shard can own;
/// the sharded tracker prunes a shard only when that lower bound exceeds
/// the pair-rule radius, so an over-estimate would silently drop edges
/// (see the [module docs](self) for the full exactness argument).
pub trait ShardMap<P>: Send + Sync + fmt::Debug {
    /// Number of shards (≥ 1).
    fn num_shards(&self) -> usize;

    /// The shard owning `pos`. Must be `< num_shards()` for every
    /// representable position.
    fn shard_of(&self, pos: P) -> usize;

    /// A lower bound on `dist(pos, q)` over every position `q` with
    /// `shard_of(q) == shard`; `0` when `pos` lies in (or the bound
    /// cannot exclude) the shard's region.
    fn min_distance(&self, pos: P, shard: usize) -> u64;
}

/// Vertical-strip sharding of the 2-D grid: shard `j` owns the
/// half-open x-band `[j·strip, (j+1)·strip)` (the last strip extends to
/// +∞, the first to −∞, so every `i32` position is owned).
///
/// Strips suit street-grid cities whose extent grows east (concatenated
/// villes, district columns); the x-distance to a strip is an exact lower
/// bound on the Euclidean distance to anything inside it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripShardMap {
    /// Strip width in grid units (≥ 1).
    strip: i64,
    /// Number of strips (≥ 1).
    shards: usize,
}

impl StripShardMap {
    /// Divides a world `width` columns wide into `shards` equal strips
    /// (the last strip absorbs the remainder and everything beyond the
    /// advisory width).
    ///
    /// The effective shard count is clamped to `max(width, 1)`: with
    /// more shards than columns, strips would degenerate to width 1 and
    /// every shard at index `>= width` would own an empty half-open
    /// band that [`StripShardMap::shard_of`]'s clamp can never assign —
    /// yet [`StripShardMap::min_distance`] would keep bounding distances
    /// to those phantom regions as if they were real, and every consumer
    /// sizing per-shard state off [`ShardMap::num_shards`] (the sharded
    /// tracker, checkpoint member sections, the distributed workers)
    /// would carry permanently empty shards. Clamping keeps
    /// `num_shards()` the single source of truth: every reported shard
    /// owns a non-empty strip of at least one column.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(width: u32, shards: usize) -> Self {
        assert!(shards > 0, "at least one shard is required");
        let shards = shards.min(width.max(1) as usize);
        let strip = (width as i64 / shards as i64).max(1);
        StripShardMap { strip, shards }
    }

    /// Strip width in grid units.
    pub fn strip_width(&self) -> u32 {
        self.strip as u32
    }
}

impl ShardMap<Point> for StripShardMap {
    fn num_shards(&self) -> usize {
        self.shards
    }

    fn shard_of(&self, pos: Point) -> usize {
        ((pos.x as i64).div_euclid(self.strip)).clamp(0, self.shards as i64 - 1) as usize
    }

    fn min_distance(&self, pos: Point, shard: usize) -> u64 {
        let x = pos.x as i64;
        // Strip j owns [lo, hi) — except that the first strip extends to
        // −∞ and the last to +∞ (every position is owned), so only the
        // boundaries facing *other* strips bound the distance. A 1-shard
        // map therefore owns everything and the bound is always 0.
        let lo = shard as i64 * self.strip;
        let hi = lo + self.strip;
        let below = if shard == 0 { 0 } else { (lo - x).max(0) };
        let above = if shard == self.shards - 1 {
            0
        } else {
            (x - hi + 1).max(0)
        };
        below.max(above) as u64
    }
}

/// Per-shard derived state: the agents a shard owns, indexed spatially
/// and ordered by step.
struct Shard<S: Space> {
    /// Spatial index over owned agents (`None` for spaces without one —
    /// the tracker then falls back to scanning the shard's members).
    index: Option<Box<dyn SpatialIndex<S::Pos>>>,
    /// `(step, agent)` of every owned agent — the shard's step bounds.
    steps: BTreeSet<(u32, u32)>,
}

impl<S: Space> Shard<S> {
    fn min_step(&self) -> Option<u32> {
        self.steps.iter().next().map(|&(s, _)| s)
    }

    fn max_step(&self) -> Option<u32> {
        self.steps.iter().next_back().map(|&(s, _)| s)
    }
}

/// One computed edge, produced by the (possibly parallel) relink phase
/// and applied serially: `Coupled(a, b)` or `Blocked(lo, hi)` (`lo`
/// blocks `hi`).
#[derive(Debug, Clone, Copy)]
enum Edge {
    Coupled(AgentId, AgentId),
    Blocked(AgentId, AgentId),
}

/// The sharded dependency tracker (see the [module docs](self)).
///
/// Wraps an edge-off [`DepGraph`] for everything sharding does not
/// change — the authoritative store records, the transactional
/// advance/rollback write path, per-step history and eviction — and adds
/// the partitioned derived state: shard ownership, per-shard spatial
/// indexes and step bounds, and the global adjacency lists the scheduler
/// queries.
pub struct ShardedDepGraph<S: Space> {
    /// Node table, store transactions, history — everything but edges.
    base: DepGraph<S>,
    map: Arc<dyn ShardMap<S::Pos>>,
    shards: Vec<Shard<S>>,
    /// Current owning shard per agent.
    owner: Vec<u32>,
    /// Same-step coupling partners per agent, ascending by id.
    coupled: Vec<Vec<AgentId>>,
    /// Agents currently blocking each agent, ascending by id.
    blockers: Vec<Vec<AgentId>>,
    /// Reverse of `blockers`.
    blockees: Vec<Vec<AgentId>>,
    /// Worker tasks for parallel relink (0 = auto from the machine).
    relink_threads: usize,
    /// Reused `(agent, pre-commit position, pre-commit step)` buffer for
    /// migrations.
    moved: Vec<(AgentId, S::Pos, u32)>,
    /// Reused candidate buffer for serial relinks.
    scratch: Vec<u32>,
    /// Reused edge buffer for serial relinks.
    edges_out: Vec<Edge>,
    /// Telemetry sink; when set, migration passes and relink batches are
    /// recorded as spans (the "controller/relink overhead" the paper's
    /// decomposition charges to the tracker).
    telemetry: Option<Arc<crate::telemetry::Telemetry>>,
}

impl<S: Space> fmt::Debug for ShardedDepGraph<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedDepGraph")
            .field("agents", &self.base.len())
            .field("shards", &self.shards.len())
            .field("min_step", &self.base.min_step())
            .finish()
    }
}

impl<S: Space> ShardedDepGraph<S> {
    /// Creates the sharded graph with every agent at [`Step::ZERO`],
    /// writing the same initial store records as [`DepGraph::new`].
    ///
    /// # Errors
    ///
    /// Propagates database errors from the initial population
    /// transaction.
    pub fn new(
        space: Arc<S>,
        params: RuleParams,
        db: Arc<Db>,
        initial: &[S::Pos],
        map: Arc<dyn ShardMap<S::Pos>>,
    ) -> Result<Self, StoreError> {
        Self::new_with_options(space, params, db, initial, map, GraphOptions::default())
    }

    /// [`ShardedDepGraph::new`] with history recording control. The
    /// `edges` field of `options` is ignored — the sharded tracker always
    /// maintains its partitioned adjacency (that is its entire point).
    ///
    /// # Errors
    ///
    /// Propagates database errors from the initial population
    /// transaction.
    pub fn new_with_options(
        space: Arc<S>,
        params: RuleParams,
        db: Arc<Db>,
        initial: &[S::Pos],
        map: Arc<dyn ShardMap<S::Pos>>,
        options: GraphOptions,
    ) -> Result<Self, StoreError> {
        let base = DepGraph::new_with_options(
            space,
            params,
            db,
            initial,
            GraphOptions {
                edges: EdgeMode::Off,
                history: options.history,
            },
        )?;
        Ok(Self::around_base(base, map))
    }

    /// Rebuilds the sharded tracker from the authoritative records
    /// already in `db` — ownership recomputed from positions, adjacency
    /// relinked (in parallel across shards where the machine allows).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Codec`] if a record is missing or
    /// malformed.
    pub fn recover(
        space: Arc<S>,
        params: RuleParams,
        db: Arc<Db>,
        num_agents: usize,
        map: Arc<dyn ShardMap<S::Pos>>,
        options: GraphOptions,
    ) -> Result<Self, StoreError> {
        let base = DepGraph::recover_with_options(
            space,
            params,
            db,
            num_agents,
            GraphOptions {
                edges: EdgeMode::Off,
                history: options.history,
            },
        )?;
        Ok(Self::around_base(base, map))
    }

    /// [`ShardedDepGraph::recover`] seeded with per-shard member lists
    /// (as serialized in a sharded checkpoint's `shard/<i>` sections),
    /// skipping the ownership rescan. Membership is verified against the
    /// shard map's geometry (a mismatch — e.g. resuming under a
    /// different [`ShardMap`] than the snapshot was written with — is a
    /// codec error, not silent pruning unsoundness).
    ///
    /// # Errors
    ///
    /// As [`ShardedDepGraph::recover`], plus [`StoreError::Codec`] if the
    /// member lists do not cover every agent exactly once or name a shard
    /// out of range.
    pub fn recover_with_members(
        space: Arc<S>,
        params: RuleParams,
        db: Arc<Db>,
        num_agents: usize,
        map: Arc<dyn ShardMap<S::Pos>>,
        options: GraphOptions,
        members: &[Vec<u32>],
    ) -> Result<Self, StoreError> {
        if members.len() != map.num_shards() {
            return Err(StoreError::Codec(format!(
                "{} member sections for a {}-shard map",
                members.len(),
                map.num_shards()
            )));
        }
        let mut owner = vec![u32::MAX; num_agents];
        for (j, list) in members.iter().enumerate() {
            for &a in list {
                let slot = owner.get_mut(a as usize).ok_or_else(|| {
                    StoreError::Codec(format!("shard {j} names out-of-range agent {a}"))
                })?;
                if *slot != u32::MAX {
                    return Err(StoreError::Codec(format!(
                        "agent {a} owned by shards {} and {j}",
                        *slot
                    )));
                }
                *slot = j as u32;
            }
        }
        if let Some(a) = owner.iter().position(|&o| o == u32::MAX) {
            return Err(StoreError::Codec(format!("agent {a} owned by no shard")));
        }
        let base = DepGraph::recover_with_options(
            space,
            params,
            db,
            num_agents,
            GraphOptions {
                edges: EdgeMode::Off,
                history: options.history,
            },
        )?;
        // Checked in release builds too: membership that disagrees with
        // the shard map's geometry would make the distance lower bound
        // unsound for the misplaced agents, silently dropping edges — a
        // hard error (e.g. resuming a snapshot under a different
        // ShardMap than it was written with) is the only safe outcome.
        if let Some(a) = (0..num_agents)
            .find(|&a| map.shard_of(base.pos(AgentId(a as u32))) != owner[a] as usize)
        {
            return Err(StoreError::Codec(format!(
                "recorded shard membership disagrees with the shard map: \
                 agent {a} at {:?} is owned by shard {} but the map places \
                 it in shard {} — was the snapshot written under a \
                 different ShardMap?",
                base.pos(AgentId(a as u32)),
                owner[a],
                map.shard_of(base.pos(AgentId(a as u32)))
            )));
        }
        Ok(Self::assemble(base, map, owner))
    }

    /// Derives ownership from positions and assembles the mirror.
    fn around_base(base: DepGraph<S>, map: Arc<dyn ShardMap<S::Pos>>) -> Self {
        let owner: Vec<u32> = (0..base.len() as u32)
            .map(|a| map.shard_of(base.pos(AgentId(a))) as u32)
            .collect();
        Self::assemble(base, map, owner)
    }

    /// Builds shard indexes, step bounds, and adjacency around decided
    /// ownership.
    fn assemble(base: DepGraph<S>, map: Arc<dyn ShardMap<S::Pos>>, owner: Vec<u32>) -> Self {
        let n = base.len();
        let units = base.params().coupling_units();
        let mut shards: Vec<Shard<S>> = (0..map.num_shards())
            .map(|_| Shard {
                index: base.space().make_index(units),
                steps: BTreeSet::new(),
            })
            .collect();
        for a in 0..n as u32 {
            let shard = &mut shards[owner[a as usize] as usize];
            if let Some(idx) = shard.index.as_mut() {
                idx.insert(a, base.pos(AgentId(a)));
            }
            shard.steps.insert((base.step(AgentId(a)).0, a));
        }
        let mut graph = ShardedDepGraph {
            base,
            map,
            shards,
            owner,
            coupled: vec![Vec::new(); n],
            blockers: vec![Vec::new(); n],
            blockees: vec![Vec::new(); n],
            relink_threads: 0,
            moved: Vec::new(),
            scratch: Vec::new(),
            edges_out: Vec::new(),
            telemetry: None,
        };
        graph.refresh_edges();
        graph
    }

    /// Overrides the worker-task count for parallel relink (`0` = decide
    /// from [`std::thread::available_parallelism`]). Mostly for tests and
    /// benches; the default is right for production.
    pub fn set_relink_threads(&mut self, threads: usize) {
        self.relink_threads = threads;
    }

    /// Attaches a telemetry sink: every migration pass and relink batch
    /// on the advance/rollback path is recorded as a span (with agent and
    /// shard-crossing counts attached) plus the matching counters.
    pub fn set_telemetry(&mut self, telemetry: Arc<crate::telemetry::Telemetry>) {
        self.telemetry = Some(telemetry);
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard currently owning `a`.
    pub fn shard_of_agent(&self, a: AgentId) -> usize {
        self.owner[a.index()] as usize
    }

    /// Member agents of `shard`, ascending by id.
    pub fn members(&self, shard: usize) -> Vec<u32> {
        let mut out: Vec<u32> = self.shards[shard].steps.iter().map(|&(_, a)| a).collect();
        out.sort_unstable();
        out
    }

    /// Number of agents.
    pub fn len(&self) -> usize {
        self.base.len()
    }

    /// Whether the graph tracks no agents.
    pub fn is_empty(&self) -> bool {
        self.base.is_empty()
    }

    /// The rule parameters in force.
    pub fn params(&self) -> RuleParams {
        self.base.params()
    }

    /// The space agents live in.
    pub fn space(&self) -> &Arc<S> {
        self.base.space()
    }

    /// The backing store holding the authoritative node records.
    pub fn db(&self) -> &Arc<Db> {
        self.base.db()
    }

    /// Current position of `a`.
    pub fn pos(&self, a: AgentId) -> S::Pos {
        self.base.pos(a)
    }

    /// Current (next-to-execute) step of `a`.
    pub fn step(&self, a: AgentId) -> Step {
        self.base.step(a)
    }

    /// The lowest step any agent is at.
    pub fn min_step(&self) -> Step {
        self.base.min_step()
    }

    /// The highest step any agent is at.
    pub fn max_step(&self) -> Step {
        self.base.max_step()
    }

    /// Cluster advancements committed so far (read from the store).
    pub fn commits(&self) -> i64 {
        self.base.commits()
    }

    /// Whether per-step history records are written.
    pub fn history_enabled(&self) -> bool {
        self.base.history_enabled()
    }

    /// Number of resident history records (diagnostics).
    pub fn history_records(&self) -> u64 {
        self.base.history_records()
    }

    /// The history-eviction watermark (see [`DepGraph::history_floor`]).
    pub fn history_floor(&self) -> Step {
        self.base.history_floor()
    }

    /// Compacts history below the deepest legal rollback (see
    /// [`DepGraph::evict_history`] — the invariant is untouched by
    /// sharding, since eviction only consults the global `min_step`).
    ///
    /// # Errors
    ///
    /// Propagates store errors.
    pub fn evict_history(&mut self) -> Result<u64, StoreError> {
        self.base.evict_history()
    }

    /// First agent (in `(step, id)` order) that blocks `a`, if any.
    pub fn first_blocker(&self, a: AgentId) -> Option<AgentId> {
        self.blockers[a.index()]
            .iter()
            .copied()
            .min_by_key(|b| (self.base.step(*b).0, b.0))
    }

    /// All agents that block `a`, in `(step, id)` order.
    pub fn blockers_of(&self, a: AgentId) -> Vec<AgentId> {
        let mut out = self.blockers[a.index()].clone();
        out.sort_unstable_by_key(|b| (self.base.step(*b).0, b.0));
        out
    }

    /// Same-step coupling partners of `a`, ascending by id.
    pub fn coupled_of(&self, a: AgentId) -> &[AgentId] {
        &self.coupled[a.index()]
    }

    /// Verifies the §3.2 validity condition over the whole graph.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violating pair.
    pub fn validate(&self) -> Result<(), String> {
        self.base.validate()
    }

    /// Dumps nodes and edges in the same shape as
    /// [`DepGraph::snapshot`], so the two trackers compare directly.
    pub fn snapshot(&self) -> GraphSnapshot {
        let mut blocked = Vec::new();
        let mut coupled = Vec::new();
        for i in 0..self.len() {
            let a = AgentId(i as u32);
            for b in self.blockers_of(a) {
                blocked.push((b, a));
            }
            for &b in self.coupled_of(a) {
                if a.0 < b.0 {
                    coupled.push((a, b));
                }
            }
        }
        GraphSnapshot {
            nodes: (0..self.len() as u32)
                .map(|a| {
                    let a = AgentId(a);
                    (a, self.step(a), format!("{:?}", self.pos(a)))
                })
                .collect(),
            blocked,
            coupled,
        }
    }

    /// Advances every `(agent, new_position)` one step as a single store
    /// transaction, then migrates ownership and repairs the affected
    /// edges (in parallel across shards for large batches).
    ///
    /// # Errors
    ///
    /// Propagates transaction failures; the mirror is only updated after
    /// the transaction commits.
    ///
    /// # Panics
    ///
    /// Panics if an agent id is out of range.
    pub fn advance(&mut self, updates: &[(AgentId, S::Pos)]) -> Result<(), StoreError> {
        let mut moved = std::mem::take(&mut self.moved);
        moved.clear();
        moved.extend(
            updates
                .iter()
                .map(|&(a, _)| (a, self.base.pos(a), self.base.step(a).0)),
        );
        self.base.advance(updates)?;
        let migrate_t0 = self.telemetry.as_ref().and_then(|t| t.start());
        let mut crossings = 0u32;
        for &(a, old, old_step) in &moved {
            crossings += u32::from(self.migrate(a, old, old_step));
        }
        self.record_migrate(migrate_t0, moved.len() as u32, crossings);
        moved.clear();
        self.moved = moved;
        let relink_t0 = self.telemetry.as_ref().and_then(|t| t.start());
        let workers = self.relink_batch(updates.iter().map(|&(a, _)| a));
        self.record_relink(relink_t0, updates.len() as u32, workers);
        Ok(())
    }

    /// Rolls every `(agent, step, position)` back — the speculative
    /// squash path — with the same migration + relink repair as
    /// [`ShardedDepGraph::advance`].
    ///
    /// # Errors
    ///
    /// Propagates transaction failures.
    ///
    /// # Panics
    ///
    /// Panics if an agent id is out of range or a target step is ahead of
    /// the agent's current step.
    pub fn rollback(&mut self, updates: &[(AgentId, Step, S::Pos)]) -> Result<(), StoreError> {
        let mut moved = std::mem::take(&mut self.moved);
        moved.clear();
        moved.extend(
            updates
                .iter()
                .map(|&(a, _, _)| (a, self.base.pos(a), self.base.step(a).0)),
        );
        self.base.rollback(updates)?;
        let migrate_t0 = self.telemetry.as_ref().and_then(|t| t.start());
        let mut crossings = 0u32;
        for &(a, old, old_step) in &moved {
            crossings += u32::from(self.migrate(a, old, old_step));
        }
        self.record_migrate(migrate_t0, moved.len() as u32, crossings);
        moved.clear();
        self.moved = moved;
        let relink_t0 = self.telemetry.as_ref().and_then(|t| t.start());
        let workers = self.relink_batch(updates.iter().map(|&(a, _, _)| a));
        self.record_relink(relink_t0, updates.len() as u32, workers);
        Ok(())
    }

    fn record_migrate(&self, t0: Option<u64>, agents: u32, crossings: u32) {
        if let (Some(t), Some(t0)) = (&self.telemetry, t0) {
            t.counter_add(
                crate::telemetry::Counter::ShardMigrations,
                u64::from(crossings),
            );
            t.record(
                t0,
                crate::telemetry::SpanKind::Migrate { agents, crossings },
            );
        }
    }

    fn record_relink(&self, t0: Option<u64>, agents: u32, workers: usize) {
        if let (Some(t), Some(t0)) = (&self.telemetry, t0) {
            t.counter_add(crate::telemetry::Counter::RelinkBatches, 1);
            t.record(
                t0,
                crate::telemetry::SpanKind::Relink {
                    agents,
                    workers: workers as u32,
                },
            );
        }
    }

    /// Moves `a`'s derived shard state (ownership, index entry, step
    /// bound) to match its just-committed node state; `old`/`old_step`
    /// are its pre-commit position and step. Returns whether the agent
    /// crossed into a different shard.
    fn migrate(&mut self, a: AgentId, old: S::Pos, old_step: u32) -> bool {
        let new_pos = self.base.pos(a);
        let from = self.owner[a.index()] as usize;
        let to = self.map.shard_of(new_pos);
        // The step-bound entry always moves (the step changed).
        let removed = self.shards[from].steps.remove(&(old_step, a.0));
        debug_assert!(removed, "agent {a} missing from shard {from} step set");
        self.shards[to].steps.insert((self.base.step(a).0, a.0));
        if from == to {
            if let Some(idx) = self.shards[from].index.as_mut() {
                idx.update(a.0, old, new_pos);
            }
            false
        } else {
            if let Some(idx) = self.shards[from].index.as_mut() {
                idx.remove(a.0, old);
            }
            if let Some(idx) = self.shards[to].index.as_mut() {
                idx.insert(a.0, new_pos);
            }
            self.owner[a.index()] = to as u32;
            true
        }
    }

    /// Detaches every edge incident to `a` (both directions).
    fn detach(&mut self, a: AgentId) {
        for b in std::mem::take(&mut self.coupled[a.index()]) {
            remove_sorted(&mut self.coupled[b.index()], a);
        }
        for b in std::mem::take(&mut self.blockers[a.index()]) {
            remove_sorted(&mut self.blockees[b.index()], a);
        }
        for b in std::mem::take(&mut self.blockees[a.index()]) {
            remove_sorted(&mut self.blockers[b.index()], a);
        }
    }

    /// Computes the edges incident to `a` into `out`, consulting only the
    /// shards the step-bound/distance test cannot prune. With
    /// `forward_only`, only neighbors with a larger id are emitted (full
    /// rebuilds visit every agent, so each unordered pair must be emitted
    /// exactly once).
    fn collect_edges(
        &self,
        a: AgentId,
        forward_only: bool,
        scratch: &mut Vec<u32>,
        out: &mut Vec<Edge>,
    ) {
        let pos = self.base.pos(a);
        let step = self.base.step(a);
        let params = self.base.params();
        let space = self.base.space();
        for (j, shard) in self.shards.iter().enumerate() {
            let (Some(lo), Some(hi)) = (shard.min_step(), shard.max_step()) else {
                continue; // empty shard
            };
            // Largest step gap between `a` and any member of shard `j`
            // bounds every pair rule radius for candidates in `j`.
            let gap = (step.0.abs_diff(lo)).max(step.0.abs_diff(hi));
            let units = params.blocking_units(gap);
            if self.map.min_distance(pos, j) > units {
                continue; // provably out of range of every member
            }
            scratch.clear();
            let candidates: &[u32] = match shard.index.as_ref() {
                Some(idx) => {
                    idx.query(pos, units, scratch);
                    scratch
                }
                None => {
                    scratch.extend(shard.steps.iter().map(|&(_, a)| a));
                    scratch
                }
            };
            for &c in candidates {
                if c == a.0 || (forward_only && c < a.0) {
                    continue;
                }
                let b = AgentId(c);
                let (bpos, bstep) = (self.base.pos(b), self.base.step(b));
                if bstep == step {
                    if space.within_units(pos, bpos, params.coupling_units()) {
                        out.push(Edge::Coupled(a, b));
                    }
                } else {
                    let (lo_a, hi_a) = if step < bstep { (a, b) } else { (b, a) };
                    let gap = step.abs_diff(bstep);
                    if space.within_units(pos, bpos, params.blocking_units(gap)) {
                        out.push(Edge::Blocked(lo_a, hi_a));
                    }
                }
            }
        }
    }

    /// Applies a computed edge to the adjacency lists (idempotent, so
    /// both endpoints of an intra-batch edge may emit it).
    fn apply_edge(&mut self, e: Edge) {
        match e {
            Edge::Coupled(a, b) => {
                insert_sorted(&mut self.coupled[a.index()], b);
                insert_sorted(&mut self.coupled[b.index()], a);
            }
            Edge::Blocked(lo, hi) => {
                insert_sorted(&mut self.blockers[hi.index()], lo);
                insert_sorted(&mut self.blockees[lo.index()], hi);
            }
        }
    }

    /// Detaches and relinks a batch of agents whose node states already
    /// moved. Large batches compute their edge sets in parallel, one task
    /// per shard-partition of the batch; mutations apply serially.
    /// Returns the worker-task count used (1 = serial path).
    fn relink_batch(&mut self, agents: impl Iterator<Item = AgentId> + Clone) -> usize {
        for a in agents.clone() {
            self.detach(a);
        }
        let batch: Vec<AgentId> = agents.collect();
        let threads = self.worker_count(batch.len());
        if threads <= 1 {
            let mut scratch = std::mem::take(&mut self.scratch);
            let mut out = std::mem::take(&mut self.edges_out);
            out.clear();
            for &a in &batch {
                self.collect_edges(a, false, &mut scratch, &mut out);
            }
            for i in 0..out.len() {
                self.apply_edge(out[i]);
            }
            out.clear();
            self.scratch = scratch;
            self.edges_out = out;
            return 1;
        }
        // Parallel phase A: partition the batch by owning shard so each
        // task reads a coherent slice of the world, then chunk the
        // partitions across `threads` scoped workers. Phase A only reads
        // (`collect_edges` takes `&self`); phase B applies serially.
        let mut by_shard: Vec<Vec<AgentId>> = vec![Vec::new(); self.shards.len()];
        for &a in &batch {
            by_shard[self.owner[a.index()] as usize].push(a);
        }
        let mut buckets: Vec<Vec<AgentId>> = vec![Vec::new(); threads];
        let mut load: Vec<usize> = vec![0; threads];
        for part in by_shard {
            if part.is_empty() {
                continue;
            }
            let t = (0..threads).min_by_key(|&t| load[t]).expect("threads > 0");
            load[t] += part.len();
            buckets[t].extend(part);
        }
        let this = &*self;
        let produced: Vec<Vec<Edge>> = std::thread::scope(|scope| {
            let handles: Vec<_> = buckets
                .iter()
                .filter(|b| !b.is_empty())
                .map(|bucket| {
                    scope.spawn(move || {
                        let mut scratch = Vec::new();
                        let mut out = Vec::new();
                        for &a in bucket {
                            this.collect_edges(a, false, &mut scratch, &mut out);
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("relink worker panicked"))
                .collect()
        });
        for out in produced {
            for e in out {
                self.apply_edge(e);
            }
        }
        threads
    }

    /// Rebuilds every derived edge from the current node states —
    /// initialisation and recovery (steady-state maintenance is
    /// incremental). Parallel across shards on multi-core machines.
    pub fn refresh_edges(&mut self) {
        for list in self
            .coupled
            .iter_mut()
            .chain(self.blockers.iter_mut())
            .chain(self.blockees.iter_mut())
        {
            list.clear();
        }
        let n = self.len();
        let threads = self.worker_count(n);
        if threads <= 1 {
            let mut scratch = std::mem::take(&mut self.scratch);
            let mut out = std::mem::take(&mut self.edges_out);
            out.clear();
            for a in 0..n as u32 {
                self.collect_edges(AgentId(a), true, &mut scratch, &mut out);
            }
            for i in 0..out.len() {
                self.apply_edge(out[i]);
            }
            out.clear();
            self.scratch = scratch;
            self.edges_out = out;
            return;
        }
        let this = &*self;
        let chunk = n.div_ceil(threads);
        let produced: Vec<Vec<Edge>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    scope.spawn(move || {
                        let mut scratch = Vec::new();
                        let mut out = Vec::new();
                        let lo = t * chunk;
                        let hi = ((t + 1) * chunk).min(n);
                        for a in lo..hi {
                            this.collect_edges(AgentId(a as u32), true, &mut scratch, &mut out);
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("relink worker panicked"))
                .collect()
        });
        for out in produced {
            for e in out {
                self.apply_edge(e);
            }
        }
    }

    /// How many parallel relink workers a batch of `batch_len` agents
    /// warrants.
    fn worker_count(&self, batch_len: usize) -> usize {
        if batch_len < PARALLEL_RELINK_THRESHOLD || self.shards.len() < 2 {
            return 1;
        }
        let hw = if self.relink_threads > 0 {
            self.relink_threads
        } else {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        };
        hw.min(self.shards.len())
    }

    /// Debug cross-check of the derived shard state against first
    /// principles: ownership matches the shard map, step bounds match the
    /// node table. Used by the property tests.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let mut total = 0;
        for (j, shard) in self.shards.iter().enumerate() {
            total += shard.steps.len();
            for &(s, a) in &shard.steps {
                assert_eq!(self.owner[a as usize] as usize, j, "ownership drift");
                assert_eq!(self.base.step(AgentId(a)).0, s, "stale shard step bound");
                assert_eq!(
                    self.map.shard_of(self.base.pos(AgentId(a))),
                    j,
                    "agent {a} owned by the wrong shard"
                );
            }
        }
        assert_eq!(total, self.len(), "shard membership must partition agents");
    }
}

impl<S: Space> DepTracker<S> for ShardedDepGraph<S> {
    #[inline]
    fn len(&self) -> usize {
        ShardedDepGraph::len(self)
    }

    #[inline]
    fn step(&self, a: AgentId) -> Step {
        ShardedDepGraph::step(self, a)
    }

    #[inline]
    fn pos(&self, a: AgentId) -> S::Pos {
        ShardedDepGraph::pos(self, a)
    }

    #[inline]
    fn min_step(&self) -> Step {
        ShardedDepGraph::min_step(self)
    }

    #[inline]
    fn max_step(&self) -> Step {
        ShardedDepGraph::max_step(self)
    }

    #[inline]
    fn advance(&mut self, updates: &[(AgentId, S::Pos)]) -> Result<(), StoreError> {
        ShardedDepGraph::advance(self, updates)
    }

    #[inline]
    fn first_blocker(&self, a: AgentId) -> Option<AgentId> {
        ShardedDepGraph::first_blocker(self, a)
    }

    #[inline]
    fn coupled_of(&self, a: AgentId) -> &[AgentId] {
        ShardedDepGraph::coupled_of(self, a)
    }

    #[inline]
    fn evict_history(&mut self) -> Result<u64, StoreError> {
        ShardedDepGraph::evict_history(self)
    }

    #[inline]
    fn validate(&self) -> Result<(), String> {
        ShardedDepGraph::validate(self)
    }

    #[inline]
    fn set_telemetry(&mut self, telemetry: Arc<crate::telemetry::Telemetry>) {
        ShardedDepGraph::set_telemetry(self, telemetry)
    }
}

/// Inserts `x` into an id-sorted adjacency list (idempotent).
fn insert_sorted(list: &mut Vec<AgentId>, x: AgentId) {
    if let Err(at) = list.binary_search(&x) {
        list.insert(at, x);
    }
}

/// Removes `x` from an id-sorted adjacency list if present.
fn remove_sorted(list: &mut Vec<AgentId>, x: AgentId) {
    if let Ok(at) = list.binary_search(&x) {
        list.remove(at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::GridSpace;

    fn strip_graph(points: &[(i32, i32)], shards: usize) -> ShardedDepGraph<GridSpace> {
        let space = Arc::new(GridSpace::new(100, 140));
        let db = Arc::new(Db::new());
        let initial: Vec<Point> = points.iter().map(|&(x, y)| Point::new(x, y)).collect();
        ShardedDepGraph::new(
            space,
            RuleParams::genagent(),
            db,
            &initial,
            Arc::new(StripShardMap::new(100, shards)),
        )
        .unwrap()
    }

    #[test]
    fn strip_map_assigns_and_bounds_distance() {
        let m = StripShardMap::new(100, 4);
        assert_eq!(m.num_shards(), 4);
        assert_eq!(m.strip_width(), 25);
        assert_eq!(m.shard_of(Point::new(0, 0)), 0);
        assert_eq!(m.shard_of(Point::new(24, 50)), 0);
        assert_eq!(m.shard_of(Point::new(25, 0)), 1);
        assert_eq!(m.shard_of(Point::new(99, 0)), 3);
        // Out-of-bound positions clamp to the edge strips.
        assert_eq!(m.shard_of(Point::new(-10, 0)), 0);
        assert_eq!(m.shard_of(Point::new(500, 0)), 3);
        // Distance lower bounds: exact along x, zero inside.
        assert_eq!(m.min_distance(Point::new(10, 0), 0), 0);
        assert_eq!(m.min_distance(Point::new(10, 0), 1), 15);
        assert_eq!(m.min_distance(Point::new(10, 0), 3), 65);
        assert_eq!(m.min_distance(Point::new(30, 0), 0), 6);
        // Edge strips own the half-planes beyond the advisory width.
        assert_eq!(m.min_distance(Point::new(500, 0), 3), 0);
        assert_eq!(m.min_distance(Point::new(-50, 0), 0), 0);
        // A 1-shard map owns the whole plane: the bound is 0 everywhere,
        // even far outside the advisory width (the unsharded-degeneracy
        // contract).
        let one = StripShardMap::new(100, 1);
        for x in [-500, 0, 50, 99, 150, 100_000] {
            assert_eq!(one.shard_of(Point::new(x, 0)), 0);
            assert_eq!(one.min_distance(Point::new(x, 0), 0), 0, "x={x}");
        }
    }

    #[test]
    fn oversharded_map_clamps_to_width_and_owns_no_phantom_regions() {
        // Regression: `shards > width` used to leave high-index shards
        // owning empty regions that `shard_of` could never assign while
        // `min_distance` still treated them as real, so per-shard state
        // sized off `num_shards()` carried phantom shards forever.
        let m = StripShardMap::new(4, 16);
        assert_eq!(m.num_shards(), 4, "effective shard count clamps to width");
        assert_eq!(m.strip_width(), 1);
        // Every reported shard is reachable through shard_of.
        let mut seen = vec![false; m.num_shards()];
        for x in -5i32..10 {
            seen[m.shard_of(Point::new(x, 0))] = true;
        }
        assert!(seen.iter().all(|&s| s), "all shards own real positions");
        // The lower bound stays sound for every (position, shard) pair.
        for x in -5i32..10 {
            let p = Point::new(x, 3);
            for j in 0..m.num_shards() {
                for q in -5i32..10 {
                    let qp = Point::new(q, -2);
                    if m.shard_of(qp) == j {
                        assert!(m.min_distance(p, j) as f64 <= p.dist(qp) + 1e-9);
                    }
                }
            }
        }
        // A zero-width world still yields a usable single-shard map.
        let degenerate = StripShardMap::new(0, 8);
        assert_eq!(degenerate.num_shards(), 1);
        assert_eq!(degenerate.shard_of(Point::new(-100, 0)), 0);
        assert_eq!(degenerate.min_distance(Point::new(7, 7), 0), 0);
        // And the sharded tracker built over an oversharded map stays
        // exact against the unsharded graph.
        let pts = [(0, 0), (1, 0), (3, 2), (2, 1)];
        let mut sharded = {
            let space = Arc::new(GridSpace::new(4, 140));
            let initial: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
            ShardedDepGraph::new(
                space,
                RuleParams::genagent(),
                Arc::new(Db::new()),
                &initial,
                Arc::new(StripShardMap::new(4, 16)),
            )
            .unwrap()
        };
        let mut single = {
            let space = Arc::new(GridSpace::new(4, 140));
            let initial: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
            DepGraph::new(space, RuleParams::genagent(), Arc::new(Db::new()), &initial).unwrap()
        };
        assert_eq!(sharded.num_shards(), 4);
        assert_eq!(sharded.snapshot(), single.snapshot());
        for (a, x, y) in [(0u32, 1, 0), (2, 3, 1), (1, 0, 0)] {
            let to = Point::new(x, y);
            sharded.advance(&[(AgentId(a), to)]).unwrap();
            single.advance(&[(AgentId(a), to)]).unwrap();
            sharded.check_invariants();
            assert_eq!(sharded.snapshot(), single.snapshot());
        }
    }

    #[test]
    fn min_distance_is_a_true_lower_bound() {
        let m = StripShardMap::new(100, 5);
        for x in -150i32..250 {
            let p = Point::new(x, 7);
            for q in -150i32..250 {
                let qp = Point::new(q, -3);
                let j = m.shard_of(qp);
                assert!(
                    m.min_distance(p, j) as f64 <= p.dist(qp) + 1e-9,
                    "bound violated: p={p} q={qp} shard={j}"
                );
            }
        }
    }

    #[test]
    fn sharded_edges_match_single_shard() {
        // Agents straddling strip boundaries: coupling and blocking edges
        // must be identical to the unsharded graph.
        let pts = [(24, 0), (26, 0), (50, 50), (74, 10), (76, 10), (0, 0)];
        let mut sharded = strip_graph(&pts, 4);
        let mut single = {
            let space = Arc::new(GridSpace::new(100, 140));
            let initial: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
            DepGraph::new(space, RuleParams::genagent(), Arc::new(Db::new()), &initial).unwrap()
        };
        assert_eq!(sharded.snapshot(), single.snapshot());
        // Drive a few commits (including a boundary crossing) in both.
        let moves: [(u32, i32, i32); 4] = [(0, 26, 0), (1, 27, 1), (3, 75, 10), (5, 1, 0)];
        for (a, x, y) in moves {
            let to = Point::new(x, y);
            sharded.advance(&[(AgentId(a), to)]).unwrap();
            single.advance(&[(AgentId(a), to)]).unwrap();
            sharded.check_invariants();
            assert_eq!(sharded.snapshot(), single.snapshot());
        }
        assert_eq!(sharded.shard_of_agent(AgentId(0)), 1, "agent 0 migrated");
    }

    #[test]
    fn migration_moves_ownership_and_index() {
        let mut g = strip_graph(&[(10, 10), (90, 90)], 4);
        assert_eq!(g.shard_of_agent(AgentId(0)), 0);
        assert_eq!(g.members(0), vec![0]);
        g.advance(&[(AgentId(0), Point::new(60, 10))]).unwrap();
        assert_eq!(g.shard_of_agent(AgentId(0)), 2);
        assert!(g.members(0).is_empty());
        assert_eq!(g.members(2), vec![0]);
        g.check_invariants();
    }

    #[test]
    fn rollback_repairs_sharded_edges() {
        let mut g = strip_graph(&[(24, 0), (26, 0)], 2);
        assert_eq!(g.coupled_of(AgentId(0)), &[AgentId(1)]);
        g.advance(&[(AgentId(1), Point::new(27, 0))]).unwrap();
        assert!(g.coupled_of(AgentId(0)).is_empty());
        assert_eq!(g.first_blocker(AgentId(1)), Some(AgentId(0)));
        g.rollback(&[(AgentId(1), Step(0), Point::new(26, 0))])
            .unwrap();
        assert_eq!(g.coupled_of(AgentId(0)), &[AgentId(1)]);
        assert_eq!(g.first_blocker(AgentId(1)), None);
        g.check_invariants();
    }

    #[test]
    fn parallel_relink_matches_serial() {
        // A batch big enough to cross the parallel threshold, forced onto
        // several workers even on a single-core machine; the result must
        // equal both the serial sharded path and the unsharded graph.
        let pts: Vec<(i32, i32)> = (0..200).map(|i| ((i * 7) % 100, (i * 13) % 140)).collect();
        let initial: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let space = Arc::new(GridSpace::new(100, 140));
        let mut par = ShardedDepGraph::new(
            Arc::clone(&space),
            RuleParams::genagent(),
            Arc::new(Db::new()),
            &initial,
            Arc::new(StripShardMap::new(100, 8)),
        )
        .unwrap();
        par.set_relink_threads(4);
        let mut ser = strip_graph(&pts, 8);
        ser.set_relink_threads(1);
        let mut single =
            DepGraph::new(space, RuleParams::genagent(), Arc::new(Db::new()), &initial).unwrap();
        let batch: Vec<(AgentId, Point)> = (0..200u32)
            .map(|a| {
                let p = single.pos(AgentId(a));
                (AgentId(a), Point::new((p.x + 1).min(99), p.y))
            })
            .collect();
        par.advance(&batch).unwrap();
        ser.advance(&batch).unwrap();
        single.advance(&batch).unwrap();
        par.check_invariants();
        assert_eq!(par.snapshot(), ser.snapshot());
        assert_eq!(par.snapshot(), single.snapshot());
    }

    #[test]
    fn recover_rebuilds_from_store() {
        let mut g = strip_graph(&[(10, 0), (14, 0), (80, 0)], 4);
        g.advance(&[(AgentId(2), Point::new(81, 0))]).unwrap();
        g.advance(&[(AgentId(0), Point::new(11, 0))]).unwrap();
        let r = ShardedDepGraph::recover(
            Arc::clone(g.space()),
            g.params(),
            Arc::clone(g.db()),
            3,
            Arc::new(StripShardMap::new(100, 4)),
            GraphOptions::default(),
        )
        .unwrap();
        assert_eq!(r.snapshot(), g.snapshot());
        r.check_invariants();
    }

    #[test]
    fn recover_with_members_skips_rescan_and_validates() {
        let g = strip_graph(&[(10, 0), (40, 0), (90, 0)], 4);
        let members: Vec<Vec<u32>> = (0..4).map(|j| g.members(j)).collect();
        let r = ShardedDepGraph::recover_with_members(
            Arc::clone(g.space()),
            g.params(),
            Arc::clone(g.db()),
            3,
            Arc::new(StripShardMap::new(100, 4)),
            GraphOptions::default(),
            &members,
        )
        .unwrap();
        assert_eq!(r.snapshot(), g.snapshot());
        // Malformed member lists are rejected.
        let missing: Vec<Vec<u32>> = vec![vec![0], vec![], vec![], vec![]];
        assert!(ShardedDepGraph::recover_with_members(
            Arc::clone(g.space()),
            g.params(),
            Arc::clone(g.db()),
            3,
            Arc::new(StripShardMap::new(100, 4)),
            GraphOptions::default(),
            &missing,
        )
        .is_err());
    }

    #[test]
    fn step_bound_pruning_skips_far_lagging_shards() {
        // A straggler far west lags; an eastern agent's relink must not
        // pay the straggler-widened radius for its own in-step shard.
        // (Correctness is what we assert here; the cost claim is the
        // shard bench's job.)
        let mut g = strip_graph(&[(5, 0), (95, 0), (90, 5)], 4);
        for _ in 0..10 {
            g.advance(&[
                (AgentId(1), Point::new(95, 0)),
                (AgentId(2), Point::new(90, 5)),
            ])
            .unwrap();
        }
        // Gap 10 blocking radius is 15 — agent 0 at x=5 is 90 away from
        // agent 1: no edge, and validity holds.
        assert_eq!(g.first_blocker(AgentId(1)), None);
        assert!(g.validate().is_ok());
        g.check_invariants();
    }
}
