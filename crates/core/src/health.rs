//! The live health plane: worker liveness gauges and the run-level
//! stall watchdog.
//!
//! Finished-run telemetry ([`crate::telemetry`]) answers "where did the
//! time go" after the fact; this module answers "is the run making
//! progress *right now*". It has two halves:
//!
//! - [`HealthBoard`] — a control-plane scoreboard of per-worker
//!   [`WorkerHealth`] gauges, fed by heartbeat replies the distributed
//!   controller polls over AIMMSG (`CtrlMsg::Heartbeat`) and by
//!   severance notifications when a link dies.
//! - [`Watchdog`] — a run-level progress check over the commit
//!   watermark [`Telemetry::last_commit`] that, when no agent commits
//!   for a configured wall budget, produces one diagnostic
//!   [`StallReport`] naming the hottest (waiter, blocker) edges seen in
//!   live telemetry.
//!
//! # Invariants
//!
//! 1. **Control plane only.** Nothing here runs on a span hot path:
//!    the board takes a mutex and the watchdog drains span buffers, so
//!    both must be driven from poll loops (checkpoint hooks, the HTTP
//!    status ticker), never from recording code.
//! 2. **The watchdog fires at most once per run** (an atomic
//!    compare-exchange guards the report) and **never panics** — a
//!    wedged run keeps running; the report is a diagnostic, not an
//!    abort.
//! 3. **Heartbeats are best-effort.** A missed or severed heartbeat
//!    marks the worker not-alive on the board; it never fails the
//!    caller. Gauges are last-writer-wins snapshots, not a log.
//! 4. **Blocked edges are retrospective.** `Blocked` spans are recorded
//!    when a wait *ends*, so a fully wedged run's report names the most
//!    recently *completed* waits — the edges that led into the stall —
//!    rather than waits still in flight.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use parking_lot::Mutex;

use crate::telemetry::{SpanKind, StallEdge, Telemetry};

/// One worker's latest heartbeat gauges (last-writer-wins).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerHealth {
    /// Worker (shard) id.
    pub worker: u32,
    /// Display name, e.g. `worker 3`.
    pub name: String,
    /// Whether the link answered the latest poll.
    pub alive: bool,
    /// Board-clock µs when this entry was last refreshed.
    pub last_seen_us: u64,
    /// Highest step the worker has applied, when it owns any agents.
    pub last_applied_step: Option<u32>,
    /// Controller-sent minus worker-handled messages at poll time
    /// (≈ 0 on a healthy lock-step link; growth means a wedged worker).
    pub queue_depth: u64,
    /// Agents currently mirrored on the worker.
    pub members: u32,
    /// Spans the worker's local telemetry buffer has overflowed
    /// (absolute running total).
    pub span_overflow: u64,
}

/// A control-plane scoreboard of per-worker liveness and lag gauges.
///
/// Shared between whatever polls heartbeats (the distributed
/// controller's checkpoint hook) and whatever renders them (the HTTP
/// `/status` endpoint). See the module invariants: updates lock, so
/// keep it off span hot paths.
#[derive(Debug)]
pub struct HealthBoard {
    epoch: Instant,
    workers: Mutex<BTreeMap<u32, WorkerHealth>>,
}

impl Default for HealthBoard {
    fn default() -> Self {
        HealthBoard::new()
    }
}

impl HealthBoard {
    /// An empty board whose clock starts now.
    pub fn new() -> HealthBoard {
        HealthBoard {
            epoch: Instant::now(),
            workers: Mutex::new(BTreeMap::new()),
        }
    }

    /// µs since the board was created (the `last_seen_us` clock).
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Records one heartbeat, replacing the worker's previous entry.
    pub fn record_heartbeat(&self, health: WorkerHealth) {
        self.workers.lock().insert(health.worker, health);
    }

    /// Marks a worker's link as severed: its entry (created if absent)
    /// goes not-alive with the severance time as `last_seen_us`.
    pub fn mark_severed(&self, worker: u32) {
        let now = self.now_us();
        let mut workers = self.workers.lock();
        let entry = workers.entry(worker).or_insert_with(|| WorkerHealth {
            worker,
            name: format!("worker {worker}"),
            alive: false,
            last_seen_us: now,
            last_applied_step: None,
            queue_depth: 0,
            members: 0,
            span_overflow: 0,
        });
        entry.alive = false;
        entry.last_seen_us = now;
    }

    /// Snapshot of every worker's latest gauges, ordered by worker id.
    pub fn workers(&self) -> Vec<WorkerHealth> {
        self.workers.lock().values().cloned().collect()
    }
}

/// How many blocking edges a [`StallReport`] retains (hottest first).
pub const STALL_REPORT_EDGES: usize = 5;

/// The diagnostic a fired [`Watchdog`] produces: how long the run has
/// gone without a commit, where it got to, and the hottest blocking
/// (waiter, blocker) edges observed so far.
#[derive(Debug, Clone)]
pub struct StallReport {
    /// µs since the last commit (or since the sink's epoch when nothing
    /// ever committed).
    pub stalled_us: u64,
    /// Step of the last commit, `None` when nothing ever committed.
    pub last_step: Option<u32>,
    /// Aggregated blocking edges, hottest (by total wait) first, at
    /// most [`STALL_REPORT_EDGES`]. May be empty when the run wedged
    /// before any wait completed (module invariant 4).
    pub edges: Vec<StallEdge>,
}

impl std::fmt::Display for StallReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.last_step {
            Some(step) => write!(
                f,
                "no commit for {} ms (last committed step {step})",
                self.stalled_us / 1000
            )?,
            None => write!(
                f,
                "no commit for {} ms (nothing committed yet)",
                self.stalled_us / 1000
            )?,
        }
        if self.edges.is_empty() {
            write!(f, "; no completed waits observed")?;
        } else {
            write!(f, "; hottest blocking edges:")?;
            for e in &self.edges {
                let agent = fmt_agent(e.agent);
                let blocker = fmt_agent(e.blocker);
                write!(
                    f,
                    " [{agent} waited on {blocker} ({:?}) ×{} for {} ms]",
                    e.reason,
                    e.count,
                    e.total_us / 1000
                )?;
            }
        }
        Ok(())
    }
}

fn fmt_agent(id: u32) -> String {
    if id == u32::MAX {
        "?".to_string()
    } else {
        format!("agent {id}")
    }
}

/// A run-level progress watchdog over the commit watermark.
///
/// `check` compares "now" against [`Telemetry::last_commit`]; once the
/// gap exceeds the budget it fires **once** (module invariant 2),
/// returning a [`StallReport`] built from the live span buffers. All
/// later calls return `None`, as do calls while the run is healthy.
#[derive(Debug)]
pub struct Watchdog {
    budget_us: u64,
    fired: AtomicBool,
}

impl Watchdog {
    /// A watchdog that fires after `budget_us` µs without a commit.
    pub fn new(budget_us: u64) -> Watchdog {
        Watchdog {
            budget_us,
            fired: AtomicBool::new(false),
        }
    }

    /// The configured wall budget, µs.
    pub fn budget_us(&self) -> u64 {
        self.budget_us
    }

    /// Whether the watchdog has already fired.
    pub fn fired(&self) -> bool {
        self.fired.load(Ordering::Relaxed)
    }

    /// Checks progress; returns the one-shot [`StallReport`] when the
    /// run has gone `budget_us` without a commit. Never panics; safe to
    /// call from any poll loop (but see module invariant 1 — it drains
    /// span buffers, so keep it off hot paths).
    pub fn check(&self, telemetry: &Telemetry) -> Option<StallReport> {
        let now = telemetry.now_us();
        let (last_us, last_step) = match telemetry.last_commit() {
            Some((us, step)) => (us, Some(step)),
            // Nothing ever committed: stalled since the sink's epoch.
            None => (0, None),
        };
        let stalled_us = now.saturating_sub(last_us);
        if stalled_us < self.budget_us {
            return None;
        }
        if self
            .fired
            .compare_exchange(false, true, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return None;
        }
        Some(StallReport {
            stalled_us,
            last_step,
            edges: hottest_edges(telemetry),
        })
    }
}

/// Aggregates completed `Blocked` spans into (waiter, blocker, reason)
/// edges and returns the hottest [`STALL_REPORT_EDGES`] by total wait.
fn hottest_edges(telemetry: &Telemetry) -> Vec<StallEdge> {
    let mut edges: BTreeMap<(u32, u32, u8), StallEdge> = BTreeMap::new();
    for span in telemetry.drain_spans() {
        if let SpanKind::Blocked {
            agent,
            blocker,
            reason,
            ..
        } = span.kind
        {
            let e = edges
                .entry((agent, blocker, reason as u8))
                .or_insert(StallEdge {
                    agent,
                    blocker,
                    reason,
                    count: 0,
                    total_us: 0,
                });
            e.count += 1;
            e.total_us += span.duration_us();
        }
    }
    let mut edges: Vec<StallEdge> = edges.into_values().collect();
    edges.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.agent.cmp(&b.agent)));
    edges.truncate(STALL_REPORT_EDGES);
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::BlockReason;

    fn blocked(t: &Telemetry, agent: u32, blocker: u32, dur_us: u64) {
        let start = t.now_us();
        t.record_at(
            start,
            start + dur_us,
            SpanKind::Blocked {
                agent,
                blocker,
                step: 1,
                reason: BlockReason::Dependency,
            },
        );
    }

    #[test]
    fn watchdog_stays_quiet_within_budget() {
        let t = Telemetry::new();
        t.record(
            t.now_us(),
            SpanKind::Commit {
                cluster: 1,
                step: 3,
                members: 1,
            },
        );
        let dog = Watchdog::new(60_000_000);
        assert!(dog.check(&t).is_none());
        assert!(!dog.fired());
    }

    #[test]
    fn watchdog_fires_once_and_names_edges() {
        let t = Telemetry::new();
        blocked(&t, 7, 9, 500);
        blocked(&t, 7, 9, 500);
        blocked(&t, 2, 4, 100);
        std::thread::sleep(std::time::Duration::from_millis(5));
        let dog = Watchdog::new(1_000);
        let report = dog.check(&t).expect("budget exceeded, must fire");
        assert_eq!(report.last_step, None);
        assert!(report.stalled_us >= 1_000);
        assert_eq!(report.edges.len(), 2);
        assert_eq!((report.edges[0].agent, report.edges[0].blocker), (7, 9));
        assert_eq!(report.edges[0].count, 2);
        assert_eq!(report.edges[0].total_us, 1000);
        // One-shot: the second check is silent even though still stalled.
        assert!(dog.check(&t).is_none());
        assert!(dog.fired());
        let text = report.to_string();
        assert!(text.contains("agent 7 waited on agent 9"), "{text}");
    }

    #[test]
    fn board_tracks_liveness_and_severance() {
        let board = HealthBoard::new();
        board.record_heartbeat(WorkerHealth {
            worker: 3,
            name: "worker 3".into(),
            alive: true,
            last_seen_us: board.now_us(),
            last_applied_step: Some(5),
            queue_depth: 0,
            members: 12,
            span_overflow: 0,
        });
        board.mark_severed(1);
        let workers = board.workers();
        assert_eq!(workers.len(), 2);
        assert_eq!(workers[0].worker, 1);
        assert!(!workers[0].alive);
        assert_eq!(workers[1].worker, 3);
        assert!(workers[1].alive);
        assert_eq!(workers[1].last_applied_step, Some(5));
    }
}
