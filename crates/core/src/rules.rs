//! The spatiotemporal dependency rules of AI Metropolis (§3.2, Appendix A).
//!
//! Temporal causality in a simulation is a set of read-after-write
//! dependencies on the shared world: at step `s` an agent reads the region
//! within its perception radius `radius_p` and writes within `max_vel` of
//! itself (it can move there or modify an adjacent object). The paper shows
//! that the following *state validity condition* suffices for causality:
//!
//! > For all agents `A`, `B` at steps `sA ≠ sB`:
//! > `dist(A, B) > radius_p + (|sA − sB| − 1) · max_vel`.
//!
//! and derives two conservative scheduling rules that preserve it:
//!
//! * **coupled** — same step and `dist ≤ radius_p + max_vel`: the agents
//!   must advance together (same cluster);
//! * **blocked** — `sA ≥ sB` and
//!   `dist ≤ (sA − sB + 1) · max_vel + radius_p`: `A` must wait for `B` to
//!   finish step `sB` first. Agents at *later* steps never block (third
//!   case of Appendix A).
//!
//! All comparisons go through [`crate::space::Space::within_units`] with
//! integer thresholds, so scheduling decisions are exact.

use serde::{Deserialize, Serialize};

use crate::ids::Step;
use crate::space::Space;

/// The two world parameters the rules depend on (paper §3.2).
///
/// In GenAgent, agents perceive a radius of 4 grid cells and move/affect at
/// most 1 cell per step, which [`RuleParams::genagent`] encodes.
///
/// # Example
///
/// ```
/// use aim_core::rules::RuleParams;
///
/// let p = RuleParams::genagent();
/// assert_eq!(p.coupling_units(), 5);          // radius_p + max_vel
/// assert_eq!(p.blocking_units(3), 8);         // (3 + 1) * 1 + 4
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RuleParams {
    /// Perception radius: how far an agent reads the world each step.
    pub radius_p: u32,
    /// Maximum speed of movement and information propagation per step.
    pub max_vel: u32,
}

impl RuleParams {
    /// Creates rule parameters.
    ///
    /// # Panics
    ///
    /// Panics if `max_vel` is zero — the derivation assumes agents can
    /// move, and a zero velocity would let arbitrarily distant agents
    /// diverge unboundedly without ever re-coupling, which is almost
    /// certainly a configuration mistake.
    pub fn new(radius_p: u32, max_vel: u32) -> Self {
        assert!(max_vel > 0, "max_vel must be positive");
        RuleParams { radius_p, max_vel }
    }

    /// GenAgent / SmallVille parameters: perception radius 4, speed 1.
    pub fn genagent() -> Self {
        RuleParams::new(4, 1)
    }

    /// Distance at or below which two same-step agents are coupled:
    /// `radius_p + max_vel`.
    pub fn coupling_units(&self) -> u64 {
        self.radius_p as u64 + self.max_vel as u64
    }

    /// Distance at or below which an agent `delta` steps ahead is blocked:
    /// `(delta + 1) · max_vel + radius_p`.
    pub fn blocking_units(&self, delta: u32) -> u64 {
        (delta as u64 + 1) * self.max_vel as u64 + self.radius_p as u64
    }

    /// Threshold of the *validity condition* for a step gap `gap ≥ 1`:
    /// states are valid iff `dist > radius_p + (gap − 1) · max_vel`.
    pub fn validity_units(&self, gap: u32) -> u64 {
        debug_assert!(gap >= 1);
        self.radius_p as u64 + (gap as u64 - 1) * self.max_vel as u64
    }
}

/// Are `a` and `b` coupled (must advance together)?
///
/// Defined only for agents at the same step; returns `false` otherwise.
pub fn coupled<S: Space>(
    space: &S,
    params: RuleParams,
    a: (S::Pos, Step),
    b: (S::Pos, Step),
) -> bool {
    a.1 == b.1 && space.within_units(a.0, b.0, params.coupling_units())
}

/// Is `a` blocked by `b` (must wait for `b` to finish its current step)?
///
/// Blocking applies when `a` is at the same or a later step than `b`
/// (`sA ≥ sB`); agents at strictly later steps never block `a`. Note that
/// at equal steps the blocking threshold coincides with the coupling
/// threshold, so a same-step "blocker" is really a coupling partner and is
/// resolved by clustering, not waiting.
pub fn blocked_by<S: Space>(
    space: &S,
    params: RuleParams,
    a: (S::Pos, Step),
    b: (S::Pos, Step),
) -> bool {
    if a.1 < b.1 {
        return false;
    }
    let delta = a.1 .0 - b.1 .0;
    space.within_units(a.0, b.0, params.blocking_units(delta))
}

/// Checks the §3.2 validity condition for a pair of agent states.
pub fn pair_valid<S: Space>(
    space: &S,
    params: RuleParams,
    a: (S::Pos, Step),
    b: (S::Pos, Step),
) -> bool {
    if a.1 == b.1 {
        return true;
    }
    let gap = a.1.abs_diff(b.1);
    !space.within_units(a.0, b.0, params.validity_units(gap))
}

/// Checks the validity condition over a whole state; returns the first
/// violating pair for diagnostics.
pub fn find_violation<S: Space>(
    space: &S,
    params: RuleParams,
    states: &[(S::Pos, Step)],
) -> Option<(usize, usize)> {
    for i in 0..states.len() {
        for j in (i + 1)..states.len() {
            if !pair_valid(space, params, states[i], states[j]) {
                return Some((i, j));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{GridSpace, Point};

    fn grid() -> GridSpace {
        GridSpace::new(100, 140)
    }

    #[test]
    fn thresholds_match_paper_formulas() {
        let p = RuleParams::new(4, 2);
        assert_eq!(p.coupling_units(), 6);
        assert_eq!(p.blocking_units(0), 6); // equal steps: same as coupling
        assert_eq!(p.blocking_units(5), 16); // (5+1)*2+4
        assert_eq!(p.validity_units(1), 4); // radius_p exactly
        assert_eq!(p.validity_units(3), 8); // 4 + 2*2
    }

    #[test]
    fn coupling_requires_same_step_and_proximity() {
        let g = grid();
        let p = RuleParams::genagent();
        let a = (Point::new(0, 0), Step(3));
        assert!(coupled(&g, p, a, (Point::new(5, 0), Step(3)))); // dist 5 = r+v
        assert!(!coupled(&g, p, a, (Point::new(6, 0), Step(3)))); // dist 6 > 5
        assert!(!coupled(&g, p, a, (Point::new(1, 0), Step(4)))); // different step
    }

    #[test]
    fn coupling_is_symmetric() {
        let g = grid();
        let p = RuleParams::genagent();
        let a = (Point::new(10, 10), Step(2));
        let b = (Point::new(13, 13), Step(2));
        assert_eq!(coupled(&g, p, a, b), coupled(&g, p, b, a));
    }

    #[test]
    fn blocking_radius_grows_with_step_gap() {
        let g = grid();
        let p = RuleParams::genagent(); // r=4, v=1
        let lagger = (Point::new(0, 0), Step(0));
        // Ahead by 3 steps: blocked within (3+1)*1+4 = 8.
        assert!(blocked_by(&g, p, (Point::new(8, 0), Step(3)), lagger));
        assert!(!blocked_by(&g, p, (Point::new(9, 0), Step(3)), lagger));
        // Ahead by 10 steps: blocked within 15.
        assert!(blocked_by(&g, p, (Point::new(15, 0), Step(10)), lagger));
        assert!(!blocked_by(&g, p, (Point::new(16, 0), Step(10)), lagger));
    }

    #[test]
    fn future_agents_never_block() {
        let g = grid();
        let p = RuleParams::genagent();
        let a = (Point::new(0, 0), Step(1));
        let future = (Point::new(0, 1), Step(5));
        assert!(!blocked_by(&g, p, a, future));
        // ... but the future agent *is* blocked by the lagging one.
        assert!(blocked_by(&g, p, future, a));
    }

    #[test]
    fn validity_condition_examples() {
        let g = grid();
        let p = RuleParams::genagent();
        // Gap 1: valid iff dist > radius_p = 4.
        assert!(pair_valid(
            &g,
            p,
            (Point::new(0, 0), Step(1)),
            (Point::new(5, 0), Step(2))
        ));
        assert!(!pair_valid(
            &g,
            p,
            (Point::new(0, 0), Step(1)),
            (Point::new(4, 0), Step(2))
        ));
        // Same step is always valid.
        assert!(pair_valid(
            &g,
            p,
            (Point::new(0, 0), Step(1)),
            (Point::new(0, 0), Step(1))
        ));
    }

    #[test]
    fn advancing_a_ready_agent_preserves_validity() {
        // The inductive heart of Appendix A: if A is neither coupled nor
        // blocked w.r.t. B, then A advancing one step (moving up to
        // max_vel) keeps the pair valid.
        let g = grid();
        let p = RuleParams::genagent();
        for sa in 0u32..4 {
            for sb in 0u32..4 {
                for x in 0i32..25 {
                    let a = (Point::new(x, 0), Step(sa));
                    let b = (Point::new(0, 0), Step(sb));
                    if !pair_valid(&g, p, a, b) {
                        continue; // start from valid states only
                    }
                    let a_coupled = coupled(&g, p, a, b);
                    let a_blocked = blocked_by(&g, p, a, b);
                    if a_coupled || a_blocked {
                        continue;
                    }
                    // A may move up to max_vel in any direction; the worst
                    // case is straight toward B.
                    for dx in -(p.max_vel as i32)..=(p.max_vel as i32) {
                        let a2 = (Point::new(x + dx, 0), Step(sa + 1));
                        assert!(
                            pair_valid(&g, p, a2, b),
                            "advancing A from {a:?} to {a2:?} against {b:?} broke validity"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn find_violation_reports_pair() {
        let g = grid();
        let p = RuleParams::genagent();
        let states = vec![
            (Point::new(0, 0), Step(0)),
            (Point::new(50, 50), Step(3)),
            (Point::new(2, 0), Step(2)), // too close to agent 0 for gap 2
        ];
        assert_eq!(find_violation(&g, p, &states), Some((0, 2)));
    }

    #[test]
    #[should_panic(expected = "max_vel must be positive")]
    fn zero_velocity_rejected() {
        RuleParams::new(4, 0);
    }
}
