//! Geo-clustering of coupled agents (paper §3.4).
//!
//! Coupled agents (same step, within `radius_p + max_vel`) must advance
//! together because they may read each other's last-step writes and their
//! own writes may conflict. A *cluster* is a connected component of the
//! coupling relation among same-step agents, computed here with a
//! [`DisjointSets`] union-find over the pairs reported by
//! [`crate::space::Space::pairs_within`].

use crate::ids::{AgentId, Step};
use crate::rules::RuleParams;
use crate::space::Space;

/// A classic union-find (disjoint-set) structure with path compression and
/// union by size.
///
/// # Example
///
/// ```
/// use aim_core::cluster::DisjointSets;
///
/// let mut ds = DisjointSets::new(4);
/// ds.union(0, 1);
/// ds.union(2, 3);
/// assert!(ds.same(0, 1));
/// assert!(!ds.same(1, 2));
/// assert_eq!(ds.set_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct DisjointSets {
    parent: Vec<u32>,
    size: Vec<u32>,
    sets: usize,
}

impl DisjointSets {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        DisjointSets {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] as usize != root {
            let next = self.parent[cur] as usize;
            self.parent[cur] = root as u32;
            cur = next;
        }
        root
    }

    /// Merges the sets containing `a` and `b`; returns `true` if they were
    /// distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big as u32;
        self.size[big] += self.size[small];
        self.sets -= 1;
        true
    }

    /// Whether `a` and `b` share a set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Current number of disjoint sets.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Groups elements by representative, each group sorted ascending;
    /// groups ordered by their smallest element.
    ///
    /// One O(n) pass: scanning elements in ascending order both discovers
    /// groups in smallest-member order and fills each group pre-sorted,
    /// so no hashing or sorting is needed (the root→group mapping is a
    /// dense scratch table indexed by representative).
    pub fn groups(&mut self) -> Vec<Vec<usize>> {
        let n = self.parent.len();
        let mut slot: Vec<u32> = vec![u32::MAX; n];
        let mut out: Vec<Vec<usize>> = Vec::with_capacity(self.sets);
        for i in 0..n {
            let r = self.find(i);
            let g = if slot[r] == u32::MAX {
                slot[r] = out.len() as u32;
                out.push(Vec::new());
                out.len() - 1
            } else {
                slot[r] as usize
            };
            out[g].push(i);
        }
        out
    }
}

/// Groups `agents` — each given with its current step and position — into
/// clusters of transitively coupled agents.
///
/// # Same-step contract
///
/// Coupling is only defined between agents at the **same** step (§3.2):
/// mixing steps here would union agents the rules forbid from advancing
/// together. Every input must therefore carry `step`; this precondition
/// is *checked* (a `debug_assert!`), not assumed — callers gathering
/// agents from a [`crate::depgraph::DepGraph`] pass the steps they
/// already hold, and release builds pay nothing.
///
/// Returns clusters as sorted member lists, ordered by smallest member id.
/// This is the `geo_clustering` routine on line 8 of Algorithm 3.
pub fn geo_cluster<S: Space>(
    space: &S,
    params: RuleParams,
    step: Step,
    agents: &[(AgentId, Step, S::Pos)],
) -> Vec<Vec<AgentId>> {
    debug_assert!(
        agents.iter().all(|(_, s, _)| *s == step),
        "geo_cluster requires every agent at {step}; got {:?}",
        agents
            .iter()
            .filter(|(_, s, _)| *s != step)
            .map(|(a, s, _)| (*a, *s))
            .collect::<Vec<_>>()
    );
    let mut ds = DisjointSets::new(agents.len());
    let pts: Vec<S::Pos> = agents.iter().map(|(_, _, p)| *p).collect();
    for (i, j) in space.pairs_within(&pts, params.coupling_units()) {
        ds.union(i, j);
    }
    ds.groups()
        .into_iter()
        .map(|g| g.into_iter().map(|i| agents[i].0).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{GridSpace, Point};

    #[test]
    fn union_find_basics() {
        let mut ds = DisjointSets::new(5);
        assert_eq!(ds.set_count(), 5);
        assert!(ds.union(0, 1));
        assert!(!ds.union(1, 0));
        ds.union(3, 4);
        assert!(ds.same(0, 1));
        assert!(!ds.same(0, 3));
        assert_eq!(ds.set_count(), 3);
        assert_eq!(ds.groups(), vec![vec![0, 1], vec![2], vec![3, 4]]);
    }

    #[test]
    fn union_by_size_keeps_depth_small() {
        let mut ds = DisjointSets::new(1000);
        for i in 1..1000 {
            ds.union(0, i);
        }
        assert_eq!(ds.set_count(), 1);
        assert!(ds.same(1, 999));
    }

    #[test]
    fn clustering_transitive_chain() {
        // Chain of agents 5 apart: each couples with its neighbor (r+v=5),
        // so the whole chain forms one cluster even though the ends are far
        // apart.
        let g = GridSpace::new(100, 100);
        let p = RuleParams::genagent();
        let agents: Vec<(AgentId, Step, Point)> = (0..5)
            .map(|i| (AgentId(i), Step(0), Point::new(i as i32 * 5, 0)))
            .collect();
        let clusters = geo_cluster(&g, p, Step(0), &agents);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].len(), 5);
    }

    #[test]
    fn clustering_separates_distant_groups() {
        let g = GridSpace::new(200, 200);
        let p = RuleParams::genagent();
        let agents = vec![
            (AgentId(0), Step(0), Point::new(0, 0)),
            (AgentId(1), Step(0), Point::new(3, 0)),
            (AgentId(2), Step(0), Point::new(100, 100)),
            (AgentId(3), Step(0), Point::new(103, 100)),
            (AgentId(4), Step(0), Point::new(50, 50)),
        ];
        let clusters = geo_cluster(&g, p, Step(0), &agents);
        assert_eq!(
            clusters,
            vec![
                vec![AgentId(0), AgentId(1)],
                vec![AgentId(2), AgentId(3)],
                vec![AgentId(4)]
            ]
        );
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let g = GridSpace::new(10, 10);
        let p = RuleParams::genagent();
        assert!(geo_cluster::<GridSpace>(&g, p, Step(0), &[]).is_empty());
        let one = vec![(AgentId(7), Step(0), Point::new(1, 1))];
        assert_eq!(geo_cluster(&g, p, Step(0), &one), vec![vec![AgentId(7)]]);
    }

    #[test]
    #[cfg(debug_assertions)]
    fn mixed_step_input_is_rejected() {
        let g = GridSpace::new(10, 10);
        let p = RuleParams::genagent();
        let agents = vec![
            (AgentId(0), Step(0), Point::new(0, 0)),
            (AgentId(1), Step(1), Point::new(1, 0)),
        ];
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            geo_cluster(&g, p, Step(0), &agents)
        }));
        assert!(result.is_err(), "same-step contract must be enforced");
    }
}
