//! The controller-side tracker driving isolated shard workers.
//!
//! [`DistTracker`] re-implements the [`crate::shard::ShardedDepGraph`]
//! API — same exactness invariants, same scheduler-facing queries — with
//! every shard replaced by a [`super::worker::ShardWorker`] behind a
//! [`super::worker::WorkerLink`]. The controller keeps a read-only
//! *mirror* of the committed world (positions, steps, ownership, the
//! derived adjacency) so scheduling queries never cross the boundary;
//! every **write** (commit, rollback, migration, history eviction) and
//! every **edge computation** happens worker-side, reached exclusively
//! through the typed [`super::msg`] protocol.
//!
//! Fan-out requests (commits, relink queries, eviction) are sent to all
//! involved workers before any reply is awaited, so workers execute
//! concurrently; replies are collected in worker order, keeping the
//! whole protocol deterministic.
//!
//! The per-worker [`Db`] handles are retained controller-side purely as
//! the stand-in for each worker's durable storage (its "disk"): they are
//! never read or written on the hot path, only used to respawn a crashed
//! worker ([`DistTracker::respawn_worker`]), to rebuild a whole tracker
//! ([`DistTracker::recover`]), and for diagnostics that would read the
//! store in a real deployment ([`DistTracker::commits`],
//! [`DistTracker::history_records`]).

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;

use aim_store::{Db, StoreError};

use crate::depgraph::{DepTracker, GraphOptions, GraphSnapshot, HIST_FLOOR_KEY, HIST_TAG};
use crate::health::{HealthBoard, WorkerHealth};
use crate::ids::{AgentId, Step};
use crate::rules::{self, RuleParams};
use crate::shard::ShardMap;
use crate::space::Space;
use crate::telemetry::{BoundaryOp, Counter, SpanKind, Telemetry};

use super::msg::{CtrlMsg, NodeRecord, Probe, ShardMsg, WireEdge};
use super::worker::{ChannelLink, SeveredLink, SharedTelemetry, WorkerLink};

/// One mirrored node: the committed state the controller schedules from.
#[derive(Debug, Clone, Copy)]
struct Node<P> {
    pos: P,
    step: Step,
}

/// The distributed dependency tracker (see the [module docs](super)).
pub struct DistTracker<S: Space> {
    space: Arc<S>,
    params: RuleParams,
    map: Arc<dyn ShardMap<S::Pos>>,
    /// One link per shard worker; a [`SeveredLink`] while a worker is
    /// down.
    links: Vec<Box<dyn WorkerLink<S::Pos>>>,
    /// Each worker's database, retained as its durable storage stand-in.
    worker_dbs: Vec<Arc<Db>>,
    history: bool,
    /// Controller mirror of every agent's committed state.
    nodes: Vec<Node<S::Pos>>,
    /// Current owning worker per agent.
    owner: Vec<u32>,
    /// Global `(step, agent)` index for min/max step queries.
    step_index: BTreeSet<(u32, u32)>,
    /// Per-worker `(step, agent)` sets — the pruning step bounds.
    shard_steps: Vec<BTreeSet<(u32, u32)>>,
    /// Same-step coupling partners per agent, ascending by id.
    coupled: Vec<Vec<AgentId>>,
    /// Agents currently blocking each agent, ascending by id.
    blockers: Vec<Vec<AgentId>>,
    /// Reverse of `blockers`.
    blockees: Vec<Vec<AgentId>>,
    /// History-eviction watermark mirror (guards redundant sweeps).
    hist_floor: u32,
    telemetry: Option<Arc<Telemetry>>,
    /// The cell worker threads read their telemetry sink from.
    shared_telemetry: SharedTelemetry,
    /// Messages sent per link since its worker (re)started; heartbeat
    /// replies subtract the worker's handled count from this to derive
    /// queue depth.
    sent: Vec<u64>,
    /// Invoked with the worker id when a link is severed
    /// ([`DistTracker::kill_worker`]) — the flight recorder's dump
    /// trigger.
    on_severed: Option<Box<dyn FnMut(u32) + Send>>,
}

impl<S: Space> fmt::Debug for DistTracker<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DistTracker")
            .field("agents", &self.nodes.len())
            .field("workers", &self.links.len())
            .field("min_step", &self.min_step())
            .finish()
    }
}

/// Converts an unexpected reply into a protocol error.
fn protocol_err<P: fmt::Debug>(wanted: &str, got: &ShardMsg<P>) -> StoreError {
    match got {
        ShardMsg::Failed { message } => StoreError::Codec(message.clone()),
        other => StoreError::Codec(format!(
            "protocol violation: expected {wanted}, got {other:?}"
        )),
    }
}

impl<S: Space> DistTracker<S> {
    /// Creates the tracker with every agent at [`Step::ZERO`]: one worker
    /// (and one fresh [`Db`]) per shard of `map`, populated through the
    /// initial [`CtrlMsg::Arrive`] hand-off. The `edges` field of
    /// `options` is ignored — the distributed tracker always maintains
    /// its mirrored adjacency.
    ///
    /// # Errors
    ///
    /// Propagates worker-side transaction failures from the initial
    /// population.
    pub fn new(
        space: Arc<S>,
        params: RuleParams,
        initial: &[S::Pos],
        map: Arc<dyn ShardMap<S::Pos>>,
        options: GraphOptions,
    ) -> Result<Self, StoreError> {
        let shards = map.num_shards();
        let shared_telemetry: SharedTelemetry = Arc::default();
        let mut worker_dbs = Vec::with_capacity(shards);
        let mut links: Vec<Box<dyn WorkerLink<S::Pos>>> = Vec::with_capacity(shards);
        for j in 0..shards {
            let db = Arc::new(Db::new());
            links.push(Box::new(ChannelLink::spawn(
                j as u32,
                Arc::clone(&space),
                params,
                Arc::clone(&db),
                options.history,
                Arc::clone(&shared_telemetry),
            )));
            worker_dbs.push(db);
        }
        let owner: Vec<u32> = initial.iter().map(|&p| map.shard_of(p) as u32).collect();
        let nodes: Vec<Node<S::Pos>> = initial
            .iter()
            .map(|&pos| Node {
                pos,
                step: Step::ZERO,
            })
            .collect();
        let n = nodes.len();
        let mut shard_steps: Vec<BTreeSet<(u32, u32)>> = vec![BTreeSet::new(); shards];
        let mut step_index = BTreeSet::new();
        for (i, &o) in owner.iter().enumerate() {
            shard_steps[o as usize].insert((0, i as u32));
            step_index.insert((0, i as u32));
        }
        let mut tracker = DistTracker {
            space,
            params,
            map,
            links,
            worker_dbs,
            history: options.history,
            nodes,
            owner,
            step_index,
            shard_steps,
            coupled: vec![Vec::new(); n],
            blockers: vec![Vec::new(); n],
            blockees: vec![Vec::new(); n],
            hist_floor: 0,
            telemetry: None,
            shared_telemetry,
            sent: vec![0; shards],
            on_severed: None,
        };
        // Initial population: hand every agent's step-0 record to its
        // owner (with its step-0 history record when history is on).
        let mut arrivals: BTreeMap<usize, Vec<NodeRecord<S::Pos>>> = BTreeMap::new();
        for (i, node) in tracker.nodes.iter().enumerate() {
            arrivals
                .entry(tracker.owner[i] as usize)
                .or_default()
                .push(NodeRecord {
                    agent: i as u32,
                    step: 0,
                    pos: node.pos,
                    history: if options.history {
                        vec![(0, node.pos)]
                    } else {
                        Vec::new()
                    },
                });
        }
        tracker.deliver_arrivals(arrivals)?;
        tracker.refresh_edges()?;
        Ok(tracker)
    }

    /// Rebuilds a tracker from the per-worker databases and member lists
    /// (e.g. after the controller itself restarted): workers are respawned
    /// over their retained stores, each [`CtrlMsg::Recover`]s its members,
    /// and the controller reassembles its mirror from the replies.
    /// Membership is verified against the shard map's geometry, exactly as
    /// [`crate::shard::ShardedDepGraph::recover_with_members`].
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Codec`] if the member lists do not cover
    /// every agent exactly once, name a shard out of range, disagree with
    /// the map's geometry, or a worker record is missing or malformed.
    pub fn recover(
        space: Arc<S>,
        params: RuleParams,
        worker_dbs: Vec<Arc<Db>>,
        map: Arc<dyn ShardMap<S::Pos>>,
        options: GraphOptions,
        members: &[Vec<u32>],
    ) -> Result<Self, StoreError> {
        let shards = map.num_shards();
        if members.len() != shards || worker_dbs.len() != shards {
            return Err(StoreError::Codec(format!(
                "{} member sections and {} worker stores for a {shards}-shard map",
                members.len(),
                worker_dbs.len()
            )));
        }
        let num_agents = members.iter().map(Vec::len).sum();
        let mut owner = vec![u32::MAX; num_agents];
        for (j, list) in members.iter().enumerate() {
            for &a in list {
                let slot = owner.get_mut(a as usize).ok_or_else(|| {
                    StoreError::Codec(format!("shard {j} names out-of-range agent {a}"))
                })?;
                if *slot != u32::MAX {
                    return Err(StoreError::Codec(format!(
                        "agent {a} owned by shards {} and {j}",
                        *slot
                    )));
                }
                *slot = j as u32;
            }
        }
        let shared_telemetry: SharedTelemetry = Arc::default();
        let mut links: Vec<Box<dyn WorkerLink<S::Pos>>> = Vec::with_capacity(shards);
        for (j, db) in worker_dbs.iter().enumerate() {
            links.push(Box::new(ChannelLink::spawn(
                j as u32,
                Arc::clone(&space),
                params,
                Arc::clone(db),
                options.history,
                Arc::clone(&shared_telemetry),
            )));
        }
        let mut tracker = DistTracker {
            space,
            params,
            map,
            links,
            worker_dbs,
            history: options.history,
            nodes: Vec::new(),
            owner,
            step_index: BTreeSet::new(),
            shard_steps: vec![BTreeSet::new(); shards],
            coupled: vec![Vec::new(); num_agents],
            blockers: vec![Vec::new(); num_agents],
            blockees: vec![Vec::new(); num_agents],
            hist_floor: 0,
            telemetry: None,
            shared_telemetry,
            sent: vec![0; shards],
            on_severed: None,
        };
        // Recover every worker (fan-out), then assemble the mirror from
        // the authoritative states they report.
        let mut states: Vec<Option<(u32, S::Pos)>> = vec![None; num_agents];
        for (j, list) in members.iter().enumerate() {
            tracker.send_to(
                j,
                CtrlMsg::Recover {
                    expected: list.clone(),
                },
            )?;
        }
        for (j, list) in members.iter().enumerate() {
            let reply = tracker.recv_from(j)?;
            let ShardMsg::Recovered {
                states: worker_states,
            } = reply
            else {
                return Err(protocol_err("Recovered", &reply));
            };
            if worker_states.len() != list.len() {
                return Err(StoreError::Codec(format!(
                    "worker {j} recovered {} of {} members",
                    worker_states.len(),
                    list.len()
                )));
            }
            for (a, step, pos) in worker_states {
                states[a as usize] = Some((step, pos));
                tracker.shard_steps[j].insert((step, a));
                tracker.step_index.insert((step, a));
            }
        }
        for (i, state) in states.iter().enumerate() {
            let &(step, pos) = state
                .as_ref()
                .ok_or_else(|| StoreError::Codec(format!("agent {i} owned by no shard")))?;
            tracker.nodes.push(Node {
                pos,
                step: Step(step),
            });
        }
        // Geometry check (release builds too): membership that disagrees
        // with the map would make the pruning lower bound unsound.
        if let Some(i) = (0..num_agents)
            .find(|&i| tracker.map.shard_of(tracker.nodes[i].pos) != tracker.owner[i] as usize)
        {
            return Err(StoreError::Codec(format!(
                "recorded shard membership disagrees with the shard map: \
                 agent {i} at {:?} is owned by worker {} but the map places \
                 it in shard {}",
                tracker.nodes[i].pos,
                tracker.owner[i],
                tracker.map.shard_of(tracker.nodes[i].pos)
            )));
        }
        if tracker.history {
            tracker.hist_floor = tracker
                .worker_dbs
                .iter()
                .map(|db| db.get_i64(HIST_FLOOR_KEY).unwrap_or(0).max(0) as u32)
                .min()
                .unwrap_or(0);
        }
        tracker.refresh_edges()?;
        Ok(tracker)
    }

    /// Number of shard workers.
    pub fn num_shards(&self) -> usize {
        self.links.len()
    }

    /// The worker currently owning `a`.
    pub fn shard_of_agent(&self, a: AgentId) -> usize {
        self.owner[a.index()] as usize
    }

    /// Member agents of worker `shard`, ascending by id.
    pub fn members(&self, shard: usize) -> Vec<u32> {
        let mut out: Vec<u32> = self.shard_steps[shard].iter().map(|&(_, a)| a).collect();
        out.sort_unstable();
        out
    }

    /// Number of agents.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tracker tracks no agents.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The rule parameters in force.
    pub fn params(&self) -> RuleParams {
        self.params
    }

    /// The space agents live in.
    pub fn space(&self) -> &Arc<S> {
        &self.space
    }

    /// Worker `shard`'s database — its durable storage stand-in. What a
    /// checkpoint of the distributed run snapshots, and what
    /// [`DistTracker::recover`] rebuilds from.
    pub fn worker_db(&self, shard: usize) -> &Arc<Db> {
        &self.worker_dbs[shard]
    }

    /// Current position of `a` (from the controller mirror).
    pub fn pos(&self, a: AgentId) -> S::Pos {
        self.nodes[a.index()].pos
    }

    /// Current (next-to-execute) step of `a`.
    pub fn step(&self, a: AgentId) -> Step {
        self.nodes[a.index()].step
    }

    /// The lowest step any agent is at.
    pub fn min_step(&self) -> Step {
        self.step_index
            .iter()
            .next()
            .map(|&(s, _)| Step(s))
            .unwrap_or(Step::ZERO)
    }

    /// The highest step any agent is at.
    pub fn max_step(&self) -> Step {
        self.step_index
            .iter()
            .next_back()
            .map(|&(s, _)| Step(s))
            .unwrap_or(Step::ZERO)
    }

    /// Cluster advancements committed so far, summed over the workers'
    /// stores (each worker bumps its own `dep:commits` transactionally,
    /// so the sum counts per-worker commit transactions).
    pub fn commits(&self) -> i64 {
        self.worker_dbs
            .iter()
            .map(|db| db.get_i64("dep:commits").unwrap_or(0))
            .sum()
    }

    /// Whether per-step history records are written.
    pub fn history_enabled(&self) -> bool {
        self.history
    }

    /// Resident history records summed over the worker stores
    /// (diagnostics).
    pub fn history_records(&self) -> u64 {
        let mut n = 0u64;
        for db in &self.worker_dbs {
            db.for_each_prefix(HIST_TAG, |_, _| {
                n += 1;
                std::ops::ControlFlow::Continue(())
            });
        }
        n
    }

    /// The history-eviction watermark.
    pub fn history_floor(&self) -> Step {
        Step(self.hist_floor)
    }

    /// First agent (in `(step, id)` order) that blocks `a`, if any.
    pub fn first_blocker(&self, a: AgentId) -> Option<AgentId> {
        self.blockers[a.index()]
            .iter()
            .copied()
            .min_by_key(|b| (self.nodes[b.index()].step.0, b.0))
    }

    /// All agents that block `a`, in `(step, id)` order.
    pub fn blockers_of(&self, a: AgentId) -> Vec<AgentId> {
        let mut out = self.blockers[a.index()].clone();
        out.sort_unstable_by_key(|b| (self.nodes[b.index()].step.0, b.0));
        out
    }

    /// Same-step coupling partners of `a`, ascending by id.
    pub fn coupled_of(&self, a: AgentId) -> &[AgentId] {
        &self.coupled[a.index()]
    }

    /// Verifies the §3.2 validity condition over the mirrored world.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violating pair.
    pub fn validate(&self) -> Result<(), String> {
        let states: Vec<(S::Pos, Step)> = self.nodes.iter().map(|n| (n.pos, n.step)).collect();
        match rules::find_violation(self.space.as_ref(), self.params, &states) {
            None => Ok(()),
            Some((i, j)) => Err(format!(
                "validity violated: agent{} at {:?}/{} vs agent{} at {:?}/{}",
                i, self.nodes[i].pos, self.nodes[i].step, j, self.nodes[j].pos, self.nodes[j].step
            )),
        }
    }

    /// Dumps nodes and edges in the same shape as
    /// [`crate::depgraph::DepGraph::snapshot`], so the trackers compare
    /// directly.
    pub fn snapshot(&self) -> GraphSnapshot {
        let mut blocked = Vec::new();
        let mut coupled = Vec::new();
        for i in 0..self.len() {
            let a = AgentId(i as u32);
            for b in self.blockers_of(a) {
                blocked.push((b, a));
            }
            for &b in self.coupled_of(a) {
                if a.0 < b.0 {
                    coupled.push((a, b));
                }
            }
        }
        GraphSnapshot {
            nodes: (0..self.len() as u32)
                .map(|a| {
                    let a = AgentId(a);
                    (a, self.step(a), format!("{:?}", self.pos(a)))
                })
                .collect(),
            blocked,
            coupled,
        }
    }

    /// Attaches a telemetry sink: the controller records every protocol
    /// send and reply-wait as [`SpanKind::Boundary`] spans (plus the
    /// [`Counter::BoundaryMessages`] counter), and workers record their
    /// apply time through the shared cell. Workers that cannot see the
    /// cell (out-of-process transports) buffer locally instead and are
    /// drained by [`DistTracker::harvest_telemetry`].
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        self.shared_telemetry.set(Some(Arc::clone(&telemetry)));
        self.telemetry = Some(telemetry);
    }

    /// Drains every worker's locally-buffered telemetry into the attached
    /// sink via the [`CtrlMsg::HarvestTelemetry`] round, returning the
    /// number of spans merged. Runs automatically after each history
    /// eviction barrier and at end of run; call it directly for an
    /// on-demand drain.
    ///
    /// Each round performs the clock-offset handshake: the worker's
    /// reply clock is assumed to land at the midpoint of the observed
    /// round trip on the controller clock, and its spans are rebased by
    /// that offset before merging. Workers sharing the in-process sink
    /// reply empty (their spans never cross the wire), and severed
    /// workers are skipped — harvest is best-effort observability and
    /// never fails a run. The raw links are used (not the recorded
    /// send/recv paths) so harvest traffic never inflates the
    /// [`SpanKind::Boundary`] accounting it exists to collect.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Codec`] only on a protocol violation (a
    /// live worker answering with something other than
    /// [`ShardMsg::Telemetry`]).
    pub fn harvest_telemetry(&mut self) -> Result<u64, StoreError> {
        let Some(t) = self.telemetry.clone() else {
            return Ok(0);
        };
        let mut merged = 0u64;
        for j in 0..self.links.len() {
            let t_send = t.now_us();
            if self.links[j]
                .send(CtrlMsg::HarvestTelemetry { now_us: t_send })
                .is_err()
            {
                continue; // severed: its buffer drains on a later round
            }
            self.sent[j] += 1;
            let reply = match self.links[j].recv() {
                Ok(reply) => reply,
                Err(_) => continue,
            };
            let t_recv = t.now_us();
            let ShardMsg::Telemetry {
                worker,
                now_us,
                spans,
                counters,
                dropped,
            } = reply
            else {
                return Err(protocol_err("Telemetry", &reply));
            };
            if spans.is_empty() && counters.is_empty() && dropped == 0 {
                continue; // shared-sink worker: nothing crossed the wire
            }
            let midpoint = t_send + (t_recv - t_send) / 2;
            let offset = midpoint as i64 - now_us as i64;
            let track = t.remote_track(&format!("worker {worker} (remote)"));
            merged += spans.len() as u64;
            t.ingest(track, &spans, offset);
            t.set_remote_dropped(track, dropped);
            for (c, n) in counters {
                t.counter_add(c, n);
            }
        }
        Ok(merged)
    }

    /// Polls every worker with a [`CtrlMsg::Heartbeat`] and records the
    /// gauges on `board`. Best-effort, like harvest: a severed or
    /// misbehaving link marks the worker not-alive instead of failing
    /// the run, and the raw links are used so liveness polling never
    /// inflates the boundary accounting. Queue depth is derived
    /// controller-side as sent-count minus the worker's handled count —
    /// ≈ 0 on a healthy lock-step link. Returns how many workers
    /// answered.
    pub fn poll_heartbeats(&mut self, board: &HealthBoard) -> usize {
        let mut live = 0;
        for j in 0..self.links.len() {
            let now_us = board.now_us();
            if self.links[j].send(CtrlMsg::Heartbeat { now_us }).is_err() {
                board.mark_severed(j as u32);
                continue;
            }
            self.sent[j] += 1;
            let Ok(ShardMsg::Heartbeat {
                worker,
                handled,
                last_step,
                members,
                dropped,
                ..
            }) = self.links[j].recv()
            else {
                board.mark_severed(j as u32);
                continue;
            };
            board.record_heartbeat(WorkerHealth {
                worker,
                name: format!("worker {worker}"),
                alive: true,
                last_seen_us: board.now_us(),
                last_applied_step: (last_step != u32::MAX).then_some(last_step),
                queue_depth: self.sent[j].saturating_sub(handled),
                members,
                span_overflow: dropped,
            });
            live += 1;
        }
        live
    }

    /// Installs the hook invoked (with the worker id) whenever a link is
    /// severed via [`DistTracker::kill_worker`] — the flight recorder
    /// dumps its tail from here.
    pub fn set_severed_hook(&mut self, hook: Box<dyn FnMut(u32) + Send>) {
        self.on_severed = Some(hook);
    }

    /// Sends one request to worker `j`, recorded as a boundary-send span.
    fn send_to(&mut self, j: usize, msg: CtrlMsg<S::Pos>) -> Result<(), StoreError> {
        let t0 = self.telemetry.as_ref().and_then(|t| t.start());
        let result = self.links[j].send(msg);
        if result.is_ok() {
            self.sent[j] += 1;
        }
        if let (Some(t), Some(t0)) = (&self.telemetry, t0) {
            t.counter_add(Counter::BoundaryMessages, 1);
            t.record(
                t0,
                SpanKind::Boundary {
                    worker: j as u32,
                    op: BoundaryOp::Send,
                    messages: 1,
                },
            );
        }
        result
    }

    /// Awaits worker `j`'s next reply, recorded as a boundary-wait span.
    fn recv_from(&mut self, j: usize) -> Result<ShardMsg<S::Pos>, StoreError> {
        let t0 = self.telemetry.as_ref().and_then(|t| t.start());
        let result = self.links[j].recv();
        if let (Some(t), Some(t0)) = (&self.telemetry, t0) {
            t.counter_add(Counter::BoundaryMessages, 1);
            t.record(
                t0,
                SpanKind::Boundary {
                    worker: j as u32,
                    op: BoundaryOp::Wait,
                    messages: 1,
                },
            );
        }
        result
    }

    /// Awaits a [`ShardMsg::Done`] from worker `j`.
    fn expect_done(&mut self, j: usize) -> Result<(), StoreError> {
        let reply = self.recv_from(j)?;
        match reply {
            ShardMsg::Done => Ok(()),
            other => Err(protocol_err("Done", &other)),
        }
    }

    /// Sends grouped [`CtrlMsg::Arrive`] batches and awaits their acks.
    fn deliver_arrivals(
        &mut self,
        arrivals: BTreeMap<usize, Vec<NodeRecord<S::Pos>>>,
    ) -> Result<(), StoreError> {
        let targets: Vec<usize> = arrivals.keys().copied().collect();
        for (to, records) in arrivals {
            self.send_to(to, CtrlMsg::Arrive { records })?;
        }
        for to in targets {
            self.expect_done(to)?;
        }
        Ok(())
    }

    /// Advances every `(agent, new_position)` one step: commits fan out
    /// to the owning workers, boundary crossings migrate through the
    /// depart/arrive handshake, then the affected edges are repaired via
    /// worker relink queries — migrations strictly before relinks, so a
    /// query never misses a mid-migration agent.
    ///
    /// # Errors
    ///
    /// Propagates worker transaction failures and severed links; the
    /// mirror is only updated after the owning workers acknowledge.
    ///
    /// # Panics
    ///
    /// Panics if an agent id is out of range.
    pub fn advance(&mut self, updates: &[(AgentId, S::Pos)]) -> Result<(), StoreError> {
        let mut commits: BTreeMap<usize, Vec<(u32, S::Pos)>> = BTreeMap::new();
        for &(a, pos) in updates {
            commits
                .entry(self.owner[a.index()] as usize)
                .or_default()
                .push((a.0, pos));
        }
        let involved: Vec<usize> = commits.keys().copied().collect();
        for (j, batch) in commits {
            self.send_to(j, CtrlMsg::Commit { updates: batch })?;
        }
        for j in involved {
            self.expect_done(j)?;
        }
        // Workers committed durably; update the mirror and migrate.
        let mut departs: BTreeMap<usize, Vec<u32>> = BTreeMap::new();
        let mut dest: HashMap<u32, usize> = HashMap::new();
        for &(a, pos) in updates {
            let old_step = self.nodes[a.index()].step.0;
            self.apply_mirror(a, old_step + 1, pos, &mut departs, &mut dest);
        }
        self.migrate(departs, dest)?;
        self.relink_batch(updates.iter().map(|&(a, _)| a))
    }

    /// Rolls every `(agent, step, position)` back — the speculative
    /// squash path — with the same migration + relink repair as
    /// [`DistTracker::advance`].
    ///
    /// # Errors
    ///
    /// Propagates worker failures (including a worker-side refusal to
    /// roll *forward*).
    ///
    /// # Panics
    ///
    /// Panics if an agent id is out of range.
    pub fn rollback(&mut self, updates: &[(AgentId, Step, S::Pos)]) -> Result<(), StoreError> {
        let mut batches: BTreeMap<usize, Vec<(u32, u32, S::Pos)>> = BTreeMap::new();
        for &(a, step, pos) in updates {
            batches
                .entry(self.owner[a.index()] as usize)
                .or_default()
                .push((a.0, step.0, pos));
        }
        let involved: Vec<usize> = batches.keys().copied().collect();
        for (j, batch) in batches {
            self.send_to(j, CtrlMsg::Rollback { updates: batch })?;
        }
        for j in involved {
            self.expect_done(j)?;
        }
        let mut departs: BTreeMap<usize, Vec<u32>> = BTreeMap::new();
        let mut dest: HashMap<u32, usize> = HashMap::new();
        for &(a, step, pos) in updates {
            self.apply_mirror(a, step.0, pos, &mut departs, &mut dest);
        }
        self.migrate(departs, dest)?;
        self.relink_batch(updates.iter().map(|&(a, _, _)| a))
    }

    /// Applies one committed `(step, pos)` to the mirror (node, step
    /// indexes, ownership), queueing a migration when the new position
    /// crosses a shard boundary.
    fn apply_mirror(
        &mut self,
        a: AgentId,
        step: u32,
        pos: S::Pos,
        departs: &mut BTreeMap<usize, Vec<u32>>,
        dest: &mut HashMap<u32, usize>,
    ) {
        let i = a.index();
        let old_step = self.nodes[i].step.0;
        let from = self.owner[i] as usize;
        let to = self.map.shard_of(pos);
        let removed = self.step_index.remove(&(old_step, a.0));
        debug_assert!(removed, "agent {a} missing from step index");
        self.step_index.insert((step, a.0));
        self.shard_steps[from].remove(&(old_step, a.0));
        self.shard_steps[to].insert((step, a.0));
        self.nodes[i] = Node {
            pos,
            step: Step(step),
        };
        if from != to {
            self.owner[i] = to as u32;
            departs.entry(from).or_default().push(a.0);
            dest.insert(a.0, to);
        }
    }

    /// Executes queued migrations: departs fan out, the returned records
    /// are regrouped by destination, arrivals fan out.
    fn migrate(
        &mut self,
        departs: BTreeMap<usize, Vec<u32>>,
        dest: HashMap<u32, usize>,
    ) -> Result<(), StoreError> {
        if departs.is_empty() {
            return Ok(());
        }
        if let Some(t) = &self.telemetry {
            t.counter_add(Counter::ShardMigrations, dest.len() as u64);
        }
        let froms: Vec<usize> = departs.keys().copied().collect();
        for (from, agents) in departs {
            self.send_to(from, CtrlMsg::Depart { agents })?;
        }
        let mut arrivals: BTreeMap<usize, Vec<NodeRecord<S::Pos>>> = BTreeMap::new();
        for from in froms {
            let reply = self.recv_from(from)?;
            let ShardMsg::Departed { records } = reply else {
                return Err(protocol_err("Departed", &reply));
            };
            for record in records {
                let to = *dest.get(&record.agent).ok_or_else(|| {
                    StoreError::Codec(format!(
                        "worker {from} departed agent {} that was not migrating",
                        record.agent
                    ))
                })?;
                arrivals.entry(to).or_default().push(record);
            }
        }
        self.deliver_arrivals(arrivals)
    }

    /// Detaches every edge incident to `a` (both directions).
    fn detach(&mut self, a: AgentId) {
        for b in std::mem::take(&mut self.coupled[a.index()]) {
            remove_sorted(&mut self.coupled[b.index()], a);
        }
        for b in std::mem::take(&mut self.blockers[a.index()]) {
            remove_sorted(&mut self.blockees[b.index()], a);
        }
        for b in std::mem::take(&mut self.blockees[a.index()]) {
            remove_sorted(&mut self.blockers[b.index()], a);
        }
    }

    /// Applies one worker-computed edge to the mirrored adjacency
    /// (idempotent — both endpoints of an intra-batch edge may emit it).
    fn apply_wire_edge(&mut self, e: WireEdge) -> Result<(), StoreError> {
        let n = self.nodes.len() as u32;
        if e.a >= n || e.b >= n || e.a == e.b {
            return Err(StoreError::Codec(format!(
                "protocol violation: edge {e:?} names invalid agents"
            )));
        }
        let (a, b) = (AgentId(e.a), AgentId(e.b));
        if e.coupled {
            insert_sorted(&mut self.coupled[a.index()], b);
            insert_sorted(&mut self.coupled[b.index()], a);
        } else {
            insert_sorted(&mut self.blockers[b.index()], a);
            insert_sorted(&mut self.blockees[a.index()], b);
        }
        Ok(())
    }

    /// Detaches and relinks a batch of agents whose mirror states already
    /// moved: probes fan out to every worker the step-bound/distance test
    /// cannot prune (the controller's conservative pruning, re-checked
    /// exactly worker-side), and the returned edges are applied serially.
    fn relink_batch(
        &mut self,
        agents: impl Iterator<Item = AgentId> + Clone,
    ) -> Result<(), StoreError> {
        for a in agents.clone() {
            self.detach(a);
        }
        let mut probes: Vec<Vec<Probe<S::Pos>>> = vec![Vec::new(); self.links.len()];
        for a in agents {
            let node = self.nodes[a.index()];
            for (j, steps) in self.shard_steps.iter().enumerate() {
                let (Some(&(lo, _)), Some(&(hi, _))) =
                    (steps.iter().next(), steps.iter().next_back())
                else {
                    continue; // empty shard
                };
                // Largest step gap between `a` and any member of `j`
                // bounds every pair rule radius for candidates in `j`.
                let gap = node.step.0.abs_diff(lo).max(node.step.0.abs_diff(hi));
                let units = self.params.blocking_units(gap);
                if self.map.min_distance(node.pos, j) > units {
                    continue; // provably out of range of every member
                }
                probes[j].push(Probe {
                    agent: a.0,
                    step: node.step.0,
                    pos: node.pos,
                });
            }
        }
        let involved: Vec<usize> = (0..probes.len())
            .filter(|&j| !probes[j].is_empty())
            .collect();
        for &j in &involved {
            let probes = std::mem::take(&mut probes[j]);
            self.send_to(j, CtrlMsg::RelinkQuery { probes })?;
        }
        for &j in &involved {
            let reply = self.recv_from(j)?;
            let ShardMsg::Edges { edges } = reply else {
                return Err(protocol_err("Edges", &reply));
            };
            for e in edges {
                self.apply_wire_edge(e)?;
            }
        }
        Ok(())
    }

    /// Rebuilds every derived edge from the mirrored node states by
    /// probing all agents (initialisation and recovery).
    ///
    /// # Errors
    ///
    /// Propagates severed links and protocol violations.
    pub fn refresh_edges(&mut self) -> Result<(), StoreError> {
        for list in self
            .coupled
            .iter_mut()
            .chain(self.blockers.iter_mut())
            .chain(self.blockees.iter_mut())
        {
            list.clear();
        }
        let n = self.len() as u32;
        self.relink_batch((0..n).map(AgentId))
    }

    /// Compacts history below the deepest legal rollback across every
    /// worker store, returning the total evicted (see
    /// [`crate::depgraph::DepGraph::evict_history`] for the invariant —
    /// untouched by distribution, since only the global `min_step` is
    /// consulted).
    ///
    /// # Errors
    ///
    /// Propagates severed links and protocol violations.
    pub fn evict_history(&mut self) -> Result<u64, StoreError> {
        if !self.history {
            return Ok(0);
        }
        let floor = self.min_step().0;
        if floor <= self.hist_floor {
            return Ok(0);
        }
        let workers = self.links.len();
        for j in 0..workers {
            self.send_to(j, CtrlMsg::EvictHistory { floor })?;
        }
        let mut total = 0u64;
        for j in 0..workers {
            let reply = self.recv_from(j)?;
            let ShardMsg::Evicted { removed } = reply else {
                return Err(protocol_err("Evicted", &reply));
            };
            total += removed;
        }
        self.hist_floor = floor;
        // Eviction is the run's natural quiesce barrier: piggyback a
        // telemetry harvest so out-of-process buffers drain steadily
        // instead of ballooning until end of run.
        self.harvest_telemetry()?;
        Ok(total)
    }

    /// Severs worker `shard`'s link without a shutdown handshake —
    /// simulating a worker crash. Subsequent operations touching that
    /// shard fail until [`DistTracker::respawn_worker`] heals it; the
    /// worker's database (its durable storage) is retained.
    pub fn kill_worker(&mut self, shard: usize) {
        self.links[shard] = Box::new(SeveredLink::new(shard as u32));
        if let Some(hook) = self.on_severed.as_mut() {
            hook(shard as u32);
        }
    }

    /// Respawns worker `shard` over its retained database and replays the
    /// [`CtrlMsg::Recover`] handshake: the fresh worker rebuilds its
    /// members, index, and step bounds from its own store, and the
    /// controller verifies the recovered states against its mirror
    /// (every acknowledged commit was durable, so they must agree).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Codec`] if the recovered states disagree
    /// with the mirror or a record is missing.
    pub fn respawn_worker(&mut self, shard: usize) -> Result<(), StoreError> {
        // The fresh worker restarts its handled count at zero, so the
        // controller-side sent counter must follow or queue depth would
        // read as permanently backed up.
        self.sent[shard] = 0;
        self.links[shard] = Box::new(ChannelLink::spawn(
            shard as u32,
            Arc::clone(&self.space),
            self.params,
            Arc::clone(&self.worker_dbs[shard]),
            self.history,
            Arc::clone(&self.shared_telemetry),
        ));
        let expected = self.members(shard);
        self.send_to(shard, CtrlMsg::Recover { expected })?;
        let reply = self.recv_from(shard)?;
        let ShardMsg::Recovered { states } = reply else {
            return Err(protocol_err("Recovered", &reply));
        };
        for (a, step, pos) in states {
            let node = self.nodes[a as usize];
            if node.step.0 != step || node.pos != pos {
                return Err(StoreError::Codec(format!(
                    "worker {shard} recovered agent {a} at {:?}/{step} but the \
                     controller mirror has {:?}/{}",
                    pos, node.pos, node.step
                )));
            }
        }
        Ok(())
    }

    /// Debug cross-check of the mirror against the workers' ground truth:
    /// quiesces every worker and verifies membership, positions, and
    /// steps agree with the controller mirror (and with the shard map's
    /// geometry). Used by the property tests.
    ///
    /// # Panics
    ///
    /// Panics on any disagreement.
    #[doc(hidden)]
    pub fn check_invariants(&mut self) {
        let workers = self.links.len();
        let mut total = 0usize;
        for j in 0..workers {
            self.send_to(j, CtrlMsg::Quiesce).expect("quiesce send");
            let reply = self.recv_from(j).expect("quiesce recv");
            let ShardMsg::Quiesced { states } = reply else {
                panic!("expected Quiesced, got {reply:?}");
            };
            assert_eq!(
                states.len(),
                self.shard_steps[j].len(),
                "worker {j} member count drifted from the mirror"
            );
            total += states.len();
            for (a, step, pos) in states {
                assert_eq!(self.owner[a as usize] as usize, j, "ownership drift");
                let node = self.nodes[a as usize];
                assert_eq!(node.step.0, step, "stale mirror step for agent {a}");
                assert_eq!(node.pos, pos, "stale mirror position for agent {a}");
                assert!(
                    self.shard_steps[j].contains(&(step, a)),
                    "agent {a} missing from shard {j} step bounds"
                );
                assert_eq!(
                    self.map.shard_of(pos),
                    j,
                    "agent {a} owned by the wrong shard"
                );
            }
        }
        assert_eq!(total, self.len(), "worker membership must partition agents");
    }
}

impl<S: Space> DepTracker<S> for DistTracker<S> {
    #[inline]
    fn len(&self) -> usize {
        DistTracker::len(self)
    }

    #[inline]
    fn step(&self, a: AgentId) -> Step {
        DistTracker::step(self, a)
    }

    #[inline]
    fn pos(&self, a: AgentId) -> S::Pos {
        DistTracker::pos(self, a)
    }

    #[inline]
    fn min_step(&self) -> Step {
        DistTracker::min_step(self)
    }

    #[inline]
    fn max_step(&self) -> Step {
        DistTracker::max_step(self)
    }

    #[inline]
    fn advance(&mut self, updates: &[(AgentId, S::Pos)]) -> Result<(), StoreError> {
        DistTracker::advance(self, updates)
    }

    #[inline]
    fn first_blocker(&self, a: AgentId) -> Option<AgentId> {
        DistTracker::first_blocker(self, a)
    }

    #[inline]
    fn coupled_of(&self, a: AgentId) -> &[AgentId] {
        DistTracker::coupled_of(self, a)
    }

    #[inline]
    fn evict_history(&mut self) -> Result<u64, StoreError> {
        DistTracker::evict_history(self)
    }

    #[inline]
    fn validate(&self) -> Result<(), String> {
        DistTracker::validate(self)
    }

    #[inline]
    fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        DistTracker::set_telemetry(self, telemetry)
    }

    #[inline]
    fn harvest_telemetry(&mut self) {
        // Best-effort by contract: a protocol violation here is surfaced
        // by the next real request, not by the harvest.
        let _ = DistTracker::harvest_telemetry(self);
    }
}

/// Inserts `x` into an id-sorted adjacency list (idempotent).
fn insert_sorted(list: &mut Vec<AgentId>, x: AgentId) {
    if let Err(at) = list.binary_search(&x) {
        list.insert(at, x);
    }
}

/// Removes `x` from an id-sorted adjacency list if present.
fn remove_sorted(list: &mut Vec<AgentId>, x: AgentId) {
    if let Ok(at) = list.binary_search(&x) {
        list.remove(at);
    }
}
