//! The shard worker: an isolated owner of one shard's agents.
//!
//! A [`ShardWorker`] holds everything a shard needs to serve the
//! [`super::msg`] protocol — its members' committed states, a spatial
//! index over exactly those members, their `(step, agent)` step bounds,
//! and **its own [`Db`] instance** holding the authoritative `dagt` /
//! `dhst` records for its members (the same layout as the single-shard
//! [`crate::depgraph::DepGraph`], so per-worker stores snapshot and
//! recover with the existing tooling). Nothing is shared with other
//! workers or with the controller: every state transfer is a protocol
//! message, which is what lets phase 2 move a worker out of process
//! behind the `dist-socket` transport without touching this file's
//! logic.
//!
//! The one deliberate exception is telemetry: a same-process worker
//! observes the controller's [`Telemetry`] sink through a
//! [`SharedTelemetry`] cell so `trace_tool stalls` can attribute apply
//! time per worker. That cell is observability-only — no simulation
//! state flows through it — and it cannot cross an OS-process boundary:
//! a socket-served worker instead records into its **own** local
//! `Telemetry` buffer (armed lazily by the first
//! [`CtrlMsg::HarvestTelemetry`]) which the controller drains over the
//! wire and merges onto its timeline.

use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;

use bytes::{Bytes, BytesMut};
use parking_lot::Mutex;

use aim_store::{codec, Db, Key, StoreError};

use crate::depgraph::{bump_commit_counter, AGENT_TAG, HIST_FLOOR_KEY, HIST_TAG};
use crate::rules::RuleParams;
use crate::space::{Space, SpatialIndex};
use crate::telemetry::{BoundaryOp, Counter, SpanKind, Telemetry};

use super::msg::{CtrlMsg, NodeRecord, Probe, ShardMsg, WireEdge};

/// A generation-counted slot for the controller's in-process telemetry
/// sink: set by [`crate::dist::DistTracker::set_telemetry`] (and cleared
/// on teardown), observed by workers. The generation counter lets a
/// worker cache the `Arc` locally and refresh with a single relaxed
/// atomic load per message — the mutex is touched only when the sink
/// actually changes, keeping the lock off the per-message hot path
/// (`dist/handle` in the bench suite pins this).
#[derive(Debug, Default)]
pub struct TelemetryCell {
    generation: AtomicU64,
    sink: Mutex<Option<Arc<Telemetry>>>,
}

impl TelemetryCell {
    /// Installs (or clears) the shared sink, bumping the generation so
    /// workers refresh their cached copy on their next message.
    pub fn set(&self, sink: Option<Arc<Telemetry>>) {
        *self.sink.lock() = sink;
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// The current generation (one relaxed-cost load; changes exactly
    /// when [`TelemetryCell::set`] is called).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Clones the current sink out of the cell (locks; workers call this
    /// only on a generation change).
    pub fn get(&self) -> Option<Arc<Telemetry>> {
        self.sink.lock().clone()
    }
}

/// The controller's telemetry sink as seen by workers: filled in by
/// [`crate::dist::DistTracker::set_telemetry`], cached per worker via the
/// cell's generation counter. Observability-only — the message protocol
/// remains the sole channel for simulation state.
pub type SharedTelemetry = Arc<TelemetryCell>;

/// One side of the message boundary: how the controller reaches a shard
/// worker. Phase 1 is the in-process [`ChannelLink`]; phase 2 adds the
/// socket transport behind the `dist-socket` feature. `send` and `recv`
/// are split so the controller can fan a batch out to every worker
/// before collecting any reply (the workers then run concurrently).
pub trait WorkerLink<P>: Send {
    /// Enqueues one request. Must not block on the worker applying it.
    ///
    /// # Errors
    ///
    /// Fails if the worker is unreachable (dead thread, severed link,
    /// closed connection).
    fn send(&mut self, msg: CtrlMsg<P>) -> Result<(), StoreError>;

    /// Blocks for the next reply, in request order.
    ///
    /// # Errors
    ///
    /// Fails if the worker is unreachable.
    fn recv(&mut self) -> Result<ShardMsg<P>, StoreError>;
}

/// Encodes one `(step, pos)` state in the authoritative record layout
/// shared with [`crate::depgraph::DepGraph`].
fn encode_state<S: Space>(space: &S, step: u32, pos: S::Pos) -> Bytes {
    let mut buf = BytesMut::new();
    codec::put_u32(&mut buf, step);
    space.encode_pos(pos, &mut buf);
    buf.freeze()
}

/// An isolated shard worker (see the [module docs](super)).
pub struct ShardWorker<S: Space> {
    id: u32,
    space: Arc<S>,
    params: RuleParams,
    db: Arc<Db>,
    history: bool,
    /// Committed `(position, step)` per member.
    members: HashMap<u32, (S::Pos, u32)>,
    /// Spatial index over the members (`None` for spaces without one —
    /// relink queries then scan the member set).
    index: Option<Box<dyn SpatialIndex<S::Pos>>>,
    /// `(step, agent)` of every member — this worker's step bounds.
    steps: BTreeSet<(u32, u32)>,
    commits_key: Key,
    telemetry: SharedTelemetry,
    /// Cached copy of the shared sink, refreshed when the cell's
    /// generation counter changes — keeps the cell's mutex off the
    /// per-message hot path.
    cached_sink: Option<Arc<Telemetry>>,
    cached_generation: u64,
    /// The worker's own recording buffer, used when no in-process sink
    /// is shared (the socket transport). Created disabled; the first
    /// [`CtrlMsg::HarvestTelemetry`] arms it.
    local: Arc<Telemetry>,
    /// Per-buffer drain watermarks: spans below these were already
    /// shipped in a previous harvest.
    harvest_cursor: Vec<usize>,
    /// Counter values as of the previous harvest (deltas go on the wire).
    harvest_counters: [u64; Counter::ALL.len()],
    /// Messages handled since the worker started (heartbeats included);
    /// reported in [`ShardMsg::Heartbeat`] so the controller can derive
    /// queue depth as sent − handled.
    handled: u64,
    /// Reused candidate buffer for relink queries.
    scratch: Vec<u32>,
}

impl<S: Space> fmt::Debug for ShardWorker<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardWorker")
            .field("id", &self.id)
            .field("members", &self.members.len())
            .field("history", &self.history)
            .finish()
    }
}

impl<S: Space> ShardWorker<S> {
    /// Creates an empty worker over its own database. Members arrive via
    /// [`CtrlMsg::Arrive`] (initial population and migrations alike) or
    /// [`CtrlMsg::Recover`] (rebuild from `db` after a crash).
    pub fn new(
        id: u32,
        space: Arc<S>,
        params: RuleParams,
        db: Arc<Db>,
        history: bool,
        telemetry: SharedTelemetry,
    ) -> Self {
        let index = space.make_index(params.coupling_units());
        let local = Arc::new(Telemetry::new());
        local.set_enabled(false); // armed by the first HarvestTelemetry
        ShardWorker {
            id,
            space,
            params,
            db,
            history,
            members: HashMap::new(),
            index,
            steps: BTreeSet::new(),
            commits_key: Key::new("dep:commits"),
            telemetry,
            cached_sink: None,
            cached_generation: 0,
            local,
            harvest_cursor: Vec::new(),
            harvest_counters: [0; Counter::ALL.len()],
            handled: 0,
            scratch: Vec::new(),
        }
    }

    /// This worker's shard id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The space this worker's positions live in (used by byte
    /// transports to encode and decode protocol frames).
    pub fn space(&self) -> &Arc<S> {
        &self.space
    }

    /// Applies one request and produces its reply. Failures are returned
    /// as [`ShardMsg::Failed`] (the worker never panics on protocol
    /// input); a failed request commits nothing.
    pub fn handle(&mut self, msg: CtrlMsg<S::Pos>) -> ShardMsg<S::Pos> {
        // One relaxed-cost atomic load per message; the cell's mutex is
        // taken only when the installed sink actually changed.
        let generation = self.telemetry.generation();
        if generation != self.cached_generation {
            self.cached_sink = self.telemetry.get();
            self.cached_generation = generation;
        }
        self.handled += 1;
        // Harvest and heartbeat replies are bookkeeping, not protocol
        // work: answer before the Apply-span bracket so neither appears
        // as (or inflates) apply time on the merged timeline.
        if matches!(msg, CtrlMsg::HarvestTelemetry { .. }) {
            return self.harvest();
        }
        if matches!(msg, CtrlMsg::Heartbeat { .. }) {
            return self.heartbeat();
        }
        let sink = self.cached_sink.as_deref().unwrap_or(&self.local);
        let t0 = sink.start();
        let reply = match self.dispatch(msg) {
            Ok(reply) => reply,
            Err(e) => ShardMsg::Failed {
                message: format!("worker {}: {e}", self.id),
            },
        };
        if let Some(t0) = t0 {
            let sink = self.cached_sink.as_deref().unwrap_or(&self.local);
            sink.record(
                t0,
                SpanKind::Boundary {
                    worker: self.id,
                    op: BoundaryOp::Apply,
                    messages: 1,
                },
            );
            if self.cached_sink.is_none() {
                // The controller counts boundary messages on its side of
                // a shared sink; only the wire-harvested local buffer
                // must count its own.
                sink.counter_add(Counter::BoundaryMessages, 1);
            }
        }
        reply
    }

    /// Drains everything recorded since the previous harvest into a
    /// [`ShardMsg::Telemetry`] reply. With a shared in-process sink the
    /// worker's spans already live in the controller's buffers, so the
    /// reply is empty (merging it would double-count); without one, the
    /// first harvest arms the local buffer and each harvest ships the
    /// increment plus the running overflow total.
    fn harvest(&mut self) -> ShardMsg<S::Pos> {
        if self.cached_sink.is_some() {
            return ShardMsg::Telemetry {
                worker: self.id,
                now_us: self.local.now_us(),
                spans: Vec::new(),
                counters: Vec::new(),
                dropped: 0,
            };
        }
        self.local.set_enabled(true);
        let spans = self.local.drain_new_spans(&mut self.harvest_cursor);
        let mut counters = Vec::new();
        for (slot, &c) in self.harvest_counters.iter_mut().zip(Counter::ALL.iter()) {
            let total = self.local.counter(c);
            let delta = total - *slot;
            if delta > 0 {
                counters.push((c, delta));
            }
            *slot = total;
        }
        ShardMsg::Telemetry {
            worker: self.id,
            now_us: self.local.now_us(),
            spans,
            counters,
            dropped: self.local.dropped(),
        }
    }

    /// Answers a liveness poll from gauges the worker maintains anyway
    /// (no database access; protocol invariant 4). `last_step` is the
    /// highest applied member step — `u32::MAX` flags an empty worker.
    fn heartbeat(&self) -> ShardMsg<S::Pos> {
        let last_step = self
            .steps
            .iter()
            .next_back()
            .map_or(u32::MAX, |&(step, _)| step);
        ShardMsg::Heartbeat {
            worker: self.id,
            now_us: self.local.now_us(),
            handled: self.handled,
            last_step,
            members: self.members.len() as u32,
            dropped: self.local.dropped(),
        }
    }

    fn dispatch(&mut self, msg: CtrlMsg<S::Pos>) -> Result<ShardMsg<S::Pos>, StoreError> {
        match msg {
            CtrlMsg::Commit { updates } => {
                self.commit(&updates)?;
                Ok(ShardMsg::Done)
            }
            CtrlMsg::Rollback { updates } => {
                self.rollback(&updates)?;
                Ok(ShardMsg::Done)
            }
            CtrlMsg::Depart { agents } => {
                let records = self.depart(&agents)?;
                Ok(ShardMsg::Departed { records })
            }
            CtrlMsg::Arrive { records } => {
                self.arrive(records)?;
                Ok(ShardMsg::Done)
            }
            CtrlMsg::RelinkQuery { probes } => {
                let edges = self.relink(&probes);
                Ok(ShardMsg::Edges { edges })
            }
            CtrlMsg::EvictHistory { floor } => {
                let removed = self.evict_history(floor);
                Ok(ShardMsg::Evicted { removed })
            }
            CtrlMsg::Quiesce => Ok(ShardMsg::Quiesced {
                states: self.states(),
            }),
            CtrlMsg::Recover { expected } => {
                let states = self.recover(&expected)?;
                Ok(ShardMsg::Recovered { states })
            }
            // Normally intercepted in `handle` (before the Apply-span
            // bracket); kept here so the match stays exhaustive.
            CtrlMsg::HarvestTelemetry { .. } => Ok(self.harvest()),
            CtrlMsg::Heartbeat { .. } => Ok(self.heartbeat()),
            CtrlMsg::Shutdown => Ok(ShardMsg::Done),
        }
    }

    /// `(agent, step, position)` of every member, ascending by agent.
    fn states(&self) -> Vec<(u32, u32, S::Pos)> {
        let mut out: Vec<(u32, u32, S::Pos)> = self
            .members
            .iter()
            .map(|(&a, &(pos, step))| (a, step, pos))
            .collect();
        out.sort_unstable_by_key(|&(a, _, _)| a);
        out
    }

    /// The member state of `a`, or a protocol error naming the worker.
    fn member(&self, a: u32) -> Result<(S::Pos, u32), StoreError> {
        self.members
            .get(&a)
            .copied()
            .ok_or_else(|| StoreError::Codec(format!("agent {a} is not a member")))
    }

    fn commit(&mut self, updates: &[(u32, S::Pos)]) -> Result<(), StoreError> {
        // Encode outside the transaction closure: retries must be
        // idempotent, and the in-memory state untouched until commit —
        // the same discipline as `DepGraph::advance`.
        let mut records = Vec::with_capacity(updates.len());
        for &(a, pos) in updates {
            let (_, step) = self.member(a)?;
            let next = step + 1;
            records.push((a, next, encode_state(&*self.space, next, pos)));
        }
        let history = self.history;
        let commits_key = &self.commits_key;
        self.db.transaction(|txn| {
            for (a, next, value) in &records {
                txn.set_key(&Key::tagged_u32(AGENT_TAG, *a), value.clone());
                if history {
                    txn.set_key(&Key::tagged_u32_pair(HIST_TAG, *next, *a), value.clone());
                }
            }
            bump_commit_counter(txn, commits_key)
        })?;
        for (&(a, pos), &(_, next, _)) in updates.iter().zip(&records) {
            self.apply_state(a, next, pos);
        }
        Ok(())
    }

    fn rollback(&mut self, updates: &[(u32, u32, S::Pos)]) -> Result<(), StoreError> {
        let mut records = Vec::with_capacity(updates.len());
        // `(key, None)` deletes of squashed future history.
        let mut doomed: Vec<Key> = Vec::new();
        for &(a, step, pos) in updates {
            let (_, current) = self.member(a)?;
            if step > current {
                return Err(StoreError::Codec(format!(
                    "rollback of agent {a} to step {step} is ahead of current {current}"
                )));
            }
            records.push((a, step, encode_state(&*self.space, step, pos)));
            if self.history {
                for squashed in (step + 1)..=current {
                    doomed.push(Key::tagged_u32_pair(HIST_TAG, squashed, a));
                }
            }
        }
        let history = self.history;
        self.db.transaction(|txn| {
            for (a, step, value) in &records {
                txn.set_key(&Key::tagged_u32(AGENT_TAG, *a), value.clone());
                if history {
                    // A squash rewrites history: the target step's record
                    // is replaced and discarded future steps vanish.
                    txn.set_key(&Key::tagged_u32_pair(HIST_TAG, *step, *a), value.clone());
                }
            }
            for key in &doomed {
                txn.del(key);
            }
            Ok(())
        })?;
        for &(a, step, pos) in updates {
            self.apply_state(a, step, pos);
        }
        Ok(())
    }

    /// Moves one member's in-memory state to its committed `(step, pos)`.
    fn apply_state(&mut self, a: u32, step: u32, pos: S::Pos) {
        let (old_pos, old_step) = self.members[&a];
        let removed = self.steps.remove(&(old_step, a));
        debug_assert!(removed, "agent {a} missing from worker step set");
        self.steps.insert((step, a));
        if let Some(idx) = self.index.as_mut() {
            idx.update(a, old_pos, pos);
        }
        self.members.insert(a, (pos, step));
    }

    fn depart(&mut self, agents: &[u32]) -> Result<Vec<NodeRecord<S::Pos>>, StoreError> {
        for &a in agents {
            self.member(a)?; // validate the whole batch before mutating
        }
        // Gather resident history in one prefix walk (migrations are rare
        // next to commits; an O(worker history) sweep per batch is fine).
        let mut history: HashMap<u32, Vec<(u32, S::Pos)>> = HashMap::new();
        let mut doomed: Vec<Key> = Vec::new();
        if self.history {
            let departing: BTreeSet<u32> = agents.iter().copied().collect();
            let space = &*self.space;
            let mut walk_err = None;
            self.db.for_each_prefix(HIST_TAG, |k, v| {
                let agent = u32::from_be_bytes(k[8..12].try_into().expect("12-byte history key"));
                if !departing.contains(&agent) {
                    return std::ops::ControlFlow::Continue(());
                }
                let step = u32::from_be_bytes(k[4..8].try_into().expect("12-byte history key"));
                let mut rd = v.clone();
                match codec::get_u32(&mut rd).and_then(|_| space.decode_pos(&mut rd)) {
                    Ok(pos) => history.entry(agent).or_default().push((step, pos)),
                    Err(e) => {
                        walk_err = Some(e);
                        return std::ops::ControlFlow::Break(());
                    }
                }
                doomed.push(Key::new(k.clone()));
                std::ops::ControlFlow::Continue(())
            });
            if let Some(e) = walk_err {
                return Err(e);
            }
        }
        let agent_keys: Vec<Key> = agents
            .iter()
            .map(|&a| Key::tagged_u32(AGENT_TAG, a))
            .collect();
        self.db.transaction(|txn| {
            for key in agent_keys.iter().chain(&doomed) {
                txn.del(key);
            }
            Ok(())
        })?;
        let mut records = Vec::with_capacity(agents.len());
        for &a in agents {
            let (pos, step) = self.members.remove(&a).expect("validated above");
            self.steps.remove(&(step, a));
            if let Some(idx) = self.index.as_mut() {
                idx.remove(a, pos);
            }
            records.push(NodeRecord {
                agent: a,
                step,
                pos,
                history: history.remove(&a).unwrap_or_default(),
            });
        }
        Ok(records)
    }

    fn arrive(&mut self, records: Vec<NodeRecord<S::Pos>>) -> Result<(), StoreError> {
        for r in &records {
            if self.members.contains_key(&r.agent) {
                return Err(StoreError::Codec(format!(
                    "agent {} arrived but is already a member",
                    r.agent
                )));
            }
        }
        let mut writes: Vec<(Key, Bytes)> = Vec::with_capacity(records.len());
        for r in &records {
            writes.push((
                Key::tagged_u32(AGENT_TAG, r.agent),
                encode_state(&*self.space, r.step, r.pos),
            ));
            for &(step, pos) in &r.history {
                writes.push((
                    Key::tagged_u32_pair(HIST_TAG, step, r.agent),
                    encode_state(&*self.space, step, pos),
                ));
            }
        }
        self.db.transaction(|txn| {
            for (key, value) in &writes {
                txn.set_key(key, value.clone());
            }
            Ok(())
        })?;
        for r in records {
            self.members.insert(r.agent, (r.pos, r.step));
            self.steps.insert((r.step, r.agent));
            if let Some(idx) = self.index.as_mut() {
                idx.insert(r.agent, r.pos);
            }
        }
        Ok(())
    }

    /// Answers relink probes with the exact rule edges between each probe
    /// and this worker's members — the same candidate enumeration and
    /// re-check as [`crate::shard::ShardedDepGraph`]'s per-shard pass,
    /// with the step bounds re-derived worker-side from its own members.
    fn relink(&mut self, probes: &[Probe<S::Pos>]) -> Vec<WireEdge> {
        let mut out = Vec::new();
        let mut scratch = std::mem::take(&mut self.scratch);
        for probe in probes {
            let (Some(&(lo, _)), Some(&(hi, _))) =
                (self.steps.iter().next(), self.steps.iter().next_back())
            else {
                break; // no members: no edges
            };
            // Largest step gap between the probe and any member bounds
            // every pair rule radius for candidates here.
            let gap = probe.step.abs_diff(lo).max(probe.step.abs_diff(hi));
            let units = self.params.blocking_units(gap);
            scratch.clear();
            let candidates: &[u32] = match self.index.as_ref() {
                Some(idx) => {
                    idx.query(probe.pos, units, &mut scratch);
                    &scratch
                }
                None => {
                    scratch.extend(self.steps.iter().map(|&(_, a)| a));
                    &scratch
                }
            };
            for &c in candidates {
                if c == probe.agent {
                    continue;
                }
                let (cpos, cstep) = self.members[&c];
                if cstep == probe.step {
                    if self
                        .space
                        .within_units(probe.pos, cpos, self.params.coupling_units())
                    {
                        out.push(WireEdge {
                            coupled: true,
                            a: probe.agent,
                            b: c,
                        });
                    }
                } else {
                    // The lower-step agent blocks the higher-step one
                    // inside the gap-widened radius.
                    let gap = probe.step.abs_diff(cstep);
                    if self
                        .space
                        .within_units(probe.pos, cpos, self.params.blocking_units(gap))
                    {
                        let (a, b) = if probe.step < cstep {
                            (probe.agent, c)
                        } else {
                            (c, probe.agent)
                        };
                        out.push(WireEdge {
                            coupled: false,
                            a,
                            b,
                        });
                    }
                }
            }
        }
        self.scratch = scratch;
        out
    }

    fn evict_history(&mut self, floor: u32) -> u64 {
        if !self.history {
            return 0;
        }
        // Keys sort step-major: stop at the first retained step.
        let mut doomed: Vec<Bytes> = Vec::new();
        self.db.for_each_prefix(HIST_TAG, |k, _| {
            let step = u32::from_be_bytes(k[4..8].try_into().expect("12-byte history key"));
            if step >= floor {
                return std::ops::ControlFlow::Break(());
            }
            doomed.push(k.clone());
            std::ops::ControlFlow::Continue(())
        });
        for k in &doomed {
            self.db.del(k);
        }
        self.db.set_i64(HIST_FLOOR_KEY, i64::from(floor));
        doomed.len() as u64
    }

    fn recover(&mut self, expected: &[u32]) -> Result<Vec<(u32, u32, S::Pos)>, StoreError> {
        self.members.clear();
        self.steps.clear();
        self.index = self.space.make_index(self.params.coupling_units());
        for &a in expected {
            let raw = self
                .db
                .get(Key::tagged_u32(AGENT_TAG, a))
                .ok_or_else(|| StoreError::Codec(format!("missing record for agent {a}")))?;
            let mut rd = raw;
            let step = codec::get_u32(&mut rd)?;
            let pos = self.space.decode_pos(&mut rd)?;
            self.members.insert(a, (pos, step));
            self.steps.insert((step, a));
            if let Some(idx) = self.index.as_mut() {
                idx.insert(a, pos);
            }
        }
        Ok(self.states())
    }
}

/// Phase-1 transport: a worker thread owning a [`ShardWorker`], driven
/// over a pair of in-process channels. The only shared memory between
/// the controller and the worker is the channel itself (plus the
/// observability-only [`SharedTelemetry`] cell) — state crosses the
/// boundary exclusively as [`CtrlMsg`] / [`ShardMsg`] values, which is
/// what the `prop_dist` equivalence tests rely on.
pub struct ChannelLink<P> {
    worker: u32,
    tx: Option<mpsc::Sender<CtrlMsg<P>>>,
    rx: mpsc::Receiver<ShardMsg<P>>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl<P> fmt::Debug for ChannelLink<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChannelLink")
            .field("worker", &self.worker)
            .field("alive", &self.tx.is_some())
            .finish()
    }
}

impl<P> ChannelLink<P> {
    /// Spawns a shard-worker thread over its own database and returns the
    /// controller's end of the link.
    pub fn spawn<S: Space<Pos = P>>(
        id: u32,
        space: Arc<S>,
        params: RuleParams,
        db: Arc<Db>,
        history: bool,
        telemetry: SharedTelemetry,
    ) -> Self
    where
        P: Send + 'static,
    {
        let (tx, worker_rx) = mpsc::channel::<CtrlMsg<P>>();
        let (worker_tx, rx) = mpsc::channel::<ShardMsg<P>>();
        let handle = std::thread::Builder::new()
            .name(format!("aim-dist-{id}"))
            .spawn(move || {
                let mut worker = ShardWorker::new(id, space, params, db, history, telemetry);
                while let Ok(msg) = worker_rx.recv() {
                    let shutdown = matches!(msg, CtrlMsg::Shutdown);
                    let reply = worker.handle(msg);
                    if worker_tx.send(reply).is_err() || shutdown {
                        break;
                    }
                }
            })
            .expect("spawn shard worker thread");
        ChannelLink {
            worker: id,
            tx: Some(tx),
            rx,
            handle: Some(handle),
        }
    }

    fn severed(&self) -> StoreError {
        StoreError::Codec(format!("shard worker {} link severed", self.worker))
    }
}

impl<P: Send> WorkerLink<P> for ChannelLink<P> {
    fn send(&mut self, msg: CtrlMsg<P>) -> Result<(), StoreError> {
        self.tx
            .as_ref()
            .ok_or_else(|| self.severed())?
            .send(msg)
            .map_err(|_| self.severed())
    }

    fn recv(&mut self) -> Result<ShardMsg<P>, StoreError> {
        self.rx.recv().map_err(|_| self.severed())
    }
}

impl<P> Drop for ChannelLink<P> {
    fn drop(&mut self) {
        // Closing the request channel stops the worker loop; its database
        // outlives it (the controller holds the other Arc), so a dropped
        // link models a crash the Recover message can heal from.
        drop(self.tx.take());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// A dead link: every operation fails. [`crate::dist::DistTracker`]
/// installs one when a worker is killed, until the worker is respawned
/// from its retained database.
#[derive(Debug)]
pub struct SeveredLink {
    worker: u32,
}

impl SeveredLink {
    /// A severed link for worker `worker`.
    pub fn new(worker: u32) -> Self {
        SeveredLink { worker }
    }
}

impl<P: Send> WorkerLink<P> for SeveredLink {
    fn send(&mut self, _msg: CtrlMsg<P>) -> Result<(), StoreError> {
        Err(StoreError::Codec(format!(
            "shard worker {} is down",
            self.worker
        )))
    }

    fn recv(&mut self) -> Result<ShardMsg<P>, StoreError> {
        Err(StoreError::Codec(format!(
            "shard worker {} is down",
            self.worker
        )))
    }
}
