//! Socket transport for the worker protocol (`dist-socket` feature).
//!
//! Carries `AIMMSG v1` frames ([`super::codec`]) over a byte stream so a
//! shard worker can live in a **separate process**: the worker process
//! binds a listener and runs [`serve_connection`] over its accepted
//! stream; the controller process connects a [`SocketLink`] and plugs it
//! in wherever a [`WorkerLink`] is expected. Both sides exchange the
//! [`PREAMBLE`] before the first frame, so a mis-wired stream fails
//! immediately instead of misparsing.
//!
//! Everything here is plain blocking `std::net` — no async runtime — and
//! I/O failures surface as [`StoreError::Io`], which the controller
//! treats exactly like a severed channel link (the worker's database
//! survives, so the [`super::msg::CtrlMsg::Recover`] handshake can heal
//! the shard).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use bytes::{Bytes, BytesMut};

use aim_store::StoreError;

use crate::space::Space;

use super::codec::{decode_ctrl, decode_shard, encode_ctrl, encode_shard, PREAMBLE};
use super::msg::{CtrlMsg, ShardMsg};
use super::worker::{ShardWorker, WorkerLink};

/// Writes one already-encoded frame to the stream.
fn write_all(stream: &mut TcpStream, frame: &BytesMut) -> Result<(), StoreError> {
    stream.write_all(frame)?;
    stream.flush()?;
    Ok(())
}

/// Reads one length-prefixed frame (prefix included) into an owned
/// buffer, or `None` on a clean EOF at a frame boundary.
fn read_frame(stream: &mut TcpStream) -> Result<Option<Bytes>, StoreError> {
    let mut len = [0u8; 4];
    let mut filled = 0;
    while filled < len.len() {
        let n = stream.read(&mut len[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None); // clean EOF between frames
            }
            return Err(StoreError::Codec(
                "stream closed inside a frame length prefix".into(),
            ));
        }
        filled += n;
    }
    let body_len = u32::from_be_bytes(len) as usize;
    let mut buf = vec![0u8; 4 + body_len];
    buf[..4].copy_from_slice(&len);
    stream
        .read_exact(&mut buf[4..])
        .map_err(|e| StoreError::Codec(format!("stream closed inside a frame body: {e}")))?;
    Ok(Some(Bytes::from(buf)))
}

/// Exchanges the protocol preamble: writes ours, requires theirs.
fn handshake(stream: &mut TcpStream) -> Result<(), StoreError> {
    stream.write_all(PREAMBLE)?;
    stream.flush()?;
    let mut got = [0u8; PREAMBLE.len()];
    stream.read_exact(&mut got)?;
    if &got != PREAMBLE {
        return Err(StoreError::Codec(format!(
            "bad protocol preamble {:?}",
            String::from_utf8_lossy(&got)
        )));
    }
    Ok(())
}

/// Runs a worker's serve loop over one controller connection: handshake,
/// then decode request → [`ShardWorker::handle`] → encode reply, until a
/// [`CtrlMsg::Shutdown`] has been acknowledged or the controller
/// disconnects at a frame boundary.
///
/// # Errors
///
/// Returns [`StoreError::Io`] on transport failure and
/// [`StoreError::Codec`] on a malformed or truncated frame. Request-level
/// failures do **not** end the loop — they are answered with
/// [`ShardMsg::Failed`] like any in-process worker.
pub fn serve_connection<S: Space>(
    mut stream: TcpStream,
    worker: &mut ShardWorker<S>,
) -> Result<(), StoreError> {
    handshake(&mut stream)?;
    let space = Arc::clone(worker.space());
    while let Some(frame) = read_frame(&mut stream)? {
        let mut rd = frame;
        let msg = decode_ctrl(space.as_ref(), &mut rd)?;
        let last = matches!(msg, CtrlMsg::Shutdown);
        let reply = worker.handle(msg);
        let mut out = BytesMut::new();
        encode_shard(space.as_ref(), &reply, &mut out);
        write_all(&mut stream, &out)?;
        if last {
            break;
        }
    }
    Ok(())
}

/// Controller-side [`WorkerLink`] over a TCP stream: each request is one
/// `AIMMSG v1` frame, each reply one frame back.
#[derive(Debug)]
pub struct SocketLink<S: Space> {
    worker: u32,
    space: Arc<S>,
    stream: TcpStream,
}

impl<S: Space> SocketLink<S> {
    /// Wraps a connected stream as the link to worker `worker`, running
    /// the preamble handshake.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on transport failure and
    /// [`StoreError::Codec`] if the peer does not speak `AIMMSG v1`.
    pub fn connect(worker: u32, space: Arc<S>, mut stream: TcpStream) -> Result<Self, StoreError> {
        handshake(&mut stream)?;
        Ok(SocketLink {
            worker,
            space,
            stream,
        })
    }
}

impl<S: Space> WorkerLink<S::Pos> for SocketLink<S> {
    fn send(&mut self, msg: CtrlMsg<S::Pos>) -> Result<(), StoreError> {
        let mut out = BytesMut::new();
        encode_ctrl(self.space.as_ref(), &msg, &mut out);
        write_all(&mut self.stream, &out)
    }

    fn recv(&mut self) -> Result<ShardMsg<S::Pos>, StoreError> {
        let frame = read_frame(&mut self.stream)?.ok_or_else(|| {
            StoreError::Codec(format!(
                "shard worker {} closed its stream mid-request",
                self.worker
            ))
        })?;
        let mut rd = frame;
        let msg = decode_shard(self.space.as_ref(), &mut rd)?;
        if rd.len() > 0 {
            return Err(StoreError::Codec(format!(
                "shard worker {} sent {} bytes past its reply frame",
                self.worker,
                rd.len()
            )));
        }
        Ok(msg)
    }
}
