//! The typed controller ↔ worker message protocol.
//!
//! These enums are the **entire** interface between the controller-side
//! [`crate::dist::DistTracker`] and a shard worker: no other state
//! crosses the boundary, which is what makes the channel transport of
//! phase 1 and the socket transport of phase 2 interchangeable. Every
//! variant is plain data (`u32` ids, raw steps, positions) so the whole
//! protocol serializes through the `AIMMSG v1` codec
//! ([`crate::dist::codec`]) without referencing in-process state.
//!
//! # Protocol invariants
//!
//! The exactness argument of [`crate::shard`]'s boundary-edge protocol
//! carries over message for message:
//!
//! 1. **Ownership is total and current.** Every agent is owned by
//!    exactly one worker. A commit ([`CtrlMsg::Commit`] /
//!    [`CtrlMsg::Rollback`]) is always sent to the agent's *current*
//!    owner (which holds its authoritative record); if the committed
//!    position crosses a shard boundary the controller then moves the
//!    agent with a [`CtrlMsg::Depart`] → [`ShardMsg::Departed`] →
//!    [`CtrlMsg::Arrive`] handshake **before** issuing any
//!    [`CtrlMsg::RelinkQuery`], so a query never misses a mid-migration
//!    agent.
//! 2. **Pruning is conservative.** The controller skips a worker
//!    entirely only when [`crate::shard::ShardMap::min_distance`] (a
//!    lower bound) exceeds the pair-gap radius derived from the
//!    worker's step bounds (an upper bound) — the same proof as the
//!    in-process sharded tracker. A worker that *is* queried
//!    re-derives its own step bounds and re-checks every candidate with
//!    the exact [`crate::space::Space::within_units`] predicates before
//!    emitting a [`WireEdge`].
//! 3. **Replies are complete.** A worker answers every request with
//!    exactly one reply, in order; [`ShardMsg::Failed`] is the only
//!    error channel, and the controller converts it into a store error
//!    rather than applying a partial result.
//! 4. **Harvest never blocks commits, and drops are counted, never
//!    silent.** [`CtrlMsg::HarvestTelemetry`] is an ordinary
//!    request–reply on the same ordered stream — it never preempts,
//!    cancels, or delays protocol work, and a worker with nothing
//!    recorded answers with an empty [`ShardMsg::Telemetry`] rather
//!    than stalling. Spans the worker's fixed-size buffer overflowed
//!    before a harvest are reported in the reply's running `dropped`
//!    total, so observability loss is always visible in the merged
//!    report. [`CtrlMsg::Heartbeat`] follows the same discipline: an
//!    ordinary in-order request answered from gauges the worker
//!    maintains anyway ([`ShardMsg::Heartbeat`]), so liveness polling
//!    is cheap, never reorders protocol work, and a severed link shows
//!    up as a poll failure on the controller's health board rather
//!    than a hang.

/// One agent's authoritative state in transit between two workers (the
/// migration payload of [`ShardMsg::Departed`] / [`CtrlMsg::Arrive`]).
///
/// Carries everything the receiving worker must write into its own
/// database: the current `dagt` record plus every resident `dhst`
/// history record, so a migrated agent remains rollback-able and
/// recoverable from its *new* owner's store alone.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeRecord<P> {
    /// Agent id.
    pub agent: u32,
    /// Current (next-to-execute) step.
    pub step: u32,
    /// Committed position.
    pub pos: P,
    /// Resident per-step history `(step, position)` records, if the run
    /// records history (empty otherwise).
    pub history: Vec<(u32, P)>,
}

/// One relink query: "which of your members have a rule edge with this
/// agent?" The worker answers from its own index with the exact
/// predicates; the probe carries the agent's committed state so the
/// worker never needs foreign lookups.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Probe<P> {
    /// The relinking agent.
    pub agent: u32,
    /// Its committed (next-to-execute) step.
    pub step: u32,
    /// Its committed position.
    pub pos: P,
}

/// One derived edge crossing the boundary in a [`ShardMsg::Edges`]
/// reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireEdge {
    /// `true` for a same-step coupling edge `{a, b}`; `false` for a
    /// blocking edge where `a` (the lower-step agent) blocks `b`.
    pub coupled: bool,
    /// First endpoint (the blocker when `coupled` is `false`).
    pub a: u32,
    /// Second endpoint (the blocked agent when `coupled` is `false`).
    pub b: u32,
}

/// Controller → worker requests. Each request receives exactly one
/// [`ShardMsg`] reply.
#[derive(Debug, Clone, PartialEq)]
pub enum CtrlMsg<P> {
    /// Advance every `(agent, new_position)` by one step as a single
    /// transaction against the worker's own database. Every agent must
    /// be a current member. Reply: [`ShardMsg::Done`].
    Commit {
        /// `(agent, new_position)` per advancing member.
        updates: Vec<(u32, P)>,
    },
    /// Rewind every `(agent, target_step, position)` — the speculative
    /// squash path. Target steps must not exceed the agents' current
    /// steps. Reply: [`ShardMsg::Done`].
    Rollback {
        /// `(agent, target_step, position)` per rewinding member.
        updates: Vec<(u32, u32, P)>,
    },
    /// Remove the agents from this worker and return their full
    /// authoritative records for re-homing. Reply:
    /// [`ShardMsg::Departed`].
    Depart {
        /// Members crossing out of this worker's region.
        agents: Vec<u32>,
    },
    /// Adopt the records (writing them into this worker's database) as
    /// new members. Reply: [`ShardMsg::Done`].
    Arrive {
        /// Records handed over by the departing workers.
        records: Vec<NodeRecord<P>>,
    },
    /// Compute the rule edges between each probe and this worker's
    /// members. Reply: [`ShardMsg::Edges`].
    RelinkQuery {
        /// Agents whose incident edges are being rebuilt.
        probes: Vec<Probe<P>>,
    },
    /// Compact history records below `floor` (the controller's global
    /// minimum step — the deepest legal rollback). Reply:
    /// [`ShardMsg::Evicted`].
    EvictHistory {
        /// Steps strictly below this are dead for scheduling purposes.
        floor: u32,
    },
    /// Report the worker's full member state (checkpoint barriers and
    /// invariant checks). Reply: [`ShardMsg::Quiesced`].
    Quiesce,
    /// Rebuild the worker's in-memory state (members, spatial index,
    /// step bounds) from its own database, given the member list the
    /// controller expects it to own. Reply: [`ShardMsg::Recovered`].
    Recover {
        /// The agents this worker must own per the controller's mirror.
        expected: Vec<u32>,
    },
    /// Drain the spans and counter increments the worker has recorded
    /// since the previous harvest (protocol invariant 4: this is an
    /// ordinary in-order request that never blocks or reorders commits,
    /// and worker-side buffer overflow is reported, never silent).
    /// Reply: [`ShardMsg::Telemetry`].
    ///
    /// `now_us` is the controller's clock at send time; together with
    /// the reply's `now_us` (the worker's clock) and the reply's arrival
    /// time it forms the per-harvest clock-offset handshake that lands
    /// spans from both clock domains on one timeline.
    HarvestTelemetry {
        /// Controller clock (µs on its telemetry epoch) at send time.
        now_us: u64,
    },
    /// Poll the worker's liveness/lag gauges (protocol invariant 4: an
    /// ordinary in-order request answered without touching the
    /// database). Reply: [`ShardMsg::Heartbeat`].
    Heartbeat {
        /// Controller clock (µs on its telemetry epoch) at send time.
        now_us: u64,
    },
    /// Terminate the worker loop after one final [`ShardMsg::Done`].
    Shutdown,
}

/// Worker → controller replies.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardMsg<P> {
    /// The request was applied in full.
    Done,
    /// Reply to [`CtrlMsg::Depart`]: the removed agents' full records.
    Departed {
        /// One record per departed agent, in request order.
        records: Vec<NodeRecord<P>>,
    },
    /// Reply to [`CtrlMsg::RelinkQuery`]: every exact rule edge between
    /// a probe and a member.
    Edges {
        /// The verified edges (possibly empty).
        edges: Vec<WireEdge>,
    },
    /// Reply to [`CtrlMsg::EvictHistory`].
    Evicted {
        /// History records deleted by this pass.
        removed: u64,
    },
    /// Reply to [`CtrlMsg::Quiesce`]: `(agent, step, position)` of every
    /// member, ascending by agent id.
    Quiesced {
        /// The worker's complete member state.
        states: Vec<(u32, u32, P)>,
    },
    /// Reply to [`CtrlMsg::Recover`]: the rebuilt member states,
    /// ascending by agent id.
    Recovered {
        /// `(agent, step, position)` per recovered member.
        states: Vec<(u32, u32, P)>,
    },
    /// Reply to [`CtrlMsg::HarvestTelemetry`]: everything the worker
    /// recorded since the previous harvest. Spans and counters are
    /// *increments* (drained exactly once); `dropped` is the worker's
    /// running overflow total (absolute, so a lost harvest can only
    /// over-report, never hide, a drop).
    Telemetry {
        /// The replying worker's shard index.
        worker: u32,
        /// Worker clock (µs on its telemetry epoch) at reply time — the
        /// other half of the clock-offset handshake.
        now_us: u64,
        /// Spans recorded since the previous harvest, worker clock.
        spans: Vec<crate::telemetry::Span>,
        /// Counter increments since the previous harvest.
        counters: Vec<(crate::telemetry::Counter, u64)>,
        /// Running total of spans the worker's buffer overflowed.
        dropped: u64,
    },
    /// Reply to [`CtrlMsg::Heartbeat`]: the worker's liveness/lag
    /// gauges. All counts are running totals or current values — the
    /// controller derives queue depth as its own sent-count minus
    /// `handled`, which on a healthy lock-step link is ≈ 0.
    Heartbeat {
        /// The replying worker's shard index.
        worker: u32,
        /// Worker clock (µs on its telemetry epoch) at reply time.
        now_us: u64,
        /// Messages the worker has handled since it started, this
        /// heartbeat included.
        handled: u64,
        /// Highest step any member has applied; `u32::MAX` when the
        /// worker currently owns no agents.
        last_step: u32,
        /// Current member count.
        members: u32,
        /// Running total of spans the worker's local buffer overflowed.
        dropped: u64,
    },
    /// The request could not be applied; nothing was committed.
    Failed {
        /// Human-readable cause.
        message: String,
    },
}
