//! Distributed shards: isolated workers behind a typed message boundary.
//!
//! [`crate::shard::ShardedDepGraph`] shards the dependency graph inside
//! one address space — shard state lives behind `&mut self` and the
//! "protocol" in its module docs is an argument about which state each
//! boundary operation may touch. This module makes that protocol
//! **load-bearing**: each shard becomes a [`ShardWorker`] owning its
//! members, spatial index, step bounds, and its *own* [`aim_store::Db`]
//! instance, and the controller-side [`DistTracker`] may only reach it
//! through the [`msg::CtrlMsg`] / [`msg::ShardMsg`] request–reply
//! protocol. No memory is shared between workers or with the controller
//! (the one observability-only exception is the [`SharedTelemetry`]
//! cell), so the exactness argument now rests on the message types
//! alone.
//!
//! Two transports implement the boundary:
//!
//! - **Phase 1 (always on):** [`ChannelLink`] — each worker is a thread
//!   driven over in-process channels. [`DistTracker`] implements
//!   [`crate::depgraph::DepTracker`], so
//!   [`crate::scheduler::Scheduler`] and both executors drive it
//!   unchanged;
//!   the property suite proves it world-for-world equal to the
//!   single-shard oracle.
//! - **Phase 2 (`dist-socket` feature):** the [`codec`] module frames
//!   every message as `AIMMSG v1` bytes, and the feature-gated `socket`
//!   module carries those frames over a TCP stream so a worker can run
//!   in a **separate process** (`socket::SocketLink` on the controller
//!   side, `socket::serve_connection` worker side).
//!
//! Because every worker keeps the authoritative `dagt`/`dhst` records
//! for its members in its own store (byte-identical to the single-shard
//! layout), a crashed worker is recoverable from its database alone:
//! [`DistTracker::kill_worker`] severs a link,
//! [`DistTracker::respawn_worker`] heals it through the
//! [`msg::CtrlMsg::Recover`] handshake.

pub mod codec;
pub mod msg;
#[cfg(feature = "dist-socket")]
pub mod socket;
mod tracker;
mod worker;

pub use msg::{CtrlMsg, NodeRecord, Probe, ShardMsg, WireEdge};
pub use tracker::DistTracker;
pub use worker::{
    ChannelLink, SeveredLink, ShardWorker, SharedTelemetry, TelemetryCell, WorkerLink,
};
