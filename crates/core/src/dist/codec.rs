//! `AIMMSG v1`: the length-prefixed byte codec for the worker protocol.
//!
//! Frames the [`super::msg`] enums for byte transports (the phase-2
//! socket/pipe path): a stream opens with the [`PREAMBLE`], then carries
//! frames of
//!
//! ```text
//! u32 BE body length | body
//! body = tag byte | variant fields
//! ```
//!
//! Integers are big-endian via [`aim_store::codec`]; positions are
//! serialized by the run's [`Space`] (`encode_pos` / `decode_pos`), so
//! the wire format matches the workers' store records byte for byte.
//! Lists carry a `u32` count prefix; strings are length-prefixed UTF-8.
//!
//! Controller requests use tags 1–9, worker replies tags 65–71 — the
//! disjoint ranges make a swapped stream fail loudly instead of
//! misparsing. Decoding verifies the frame is consumed exactly: trailing
//! bytes are a [`StoreError::Codec`] error, as are truncation, unknown
//! tags, and malformed positions. Both sides of the codec are pure
//! functions of the message and the space, so
//! `decode(encode(msg)) == msg` holds for every message — property-tested
//! below like the `AIMSNAP` snapshot format.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use aim_store::{codec, StoreError};

use crate::space::Space;

use super::msg::{CtrlMsg, NodeRecord, Probe, ShardMsg, WireEdge};

/// Stream preamble exchanged once per connection before any frame.
pub const PREAMBLE: &[u8; 10] = b"AIMMSG v1\n";

// Controller-request tags (1–9).
const TAG_COMMIT: u8 = 1;
const TAG_ROLLBACK: u8 = 2;
const TAG_DEPART: u8 = 3;
const TAG_ARRIVE: u8 = 4;
const TAG_RELINK_QUERY: u8 = 5;
const TAG_EVICT_HISTORY: u8 = 6;
const TAG_QUIESCE: u8 = 7;
const TAG_RECOVER: u8 = 8;
const TAG_SHUTDOWN: u8 = 9;

// Worker-reply tags (65–71).
const TAG_DONE: u8 = 65;
const TAG_DEPARTED: u8 = 66;
const TAG_EDGES: u8 = 67;
const TAG_EVICTED: u8 = 68;
const TAG_QUIESCED: u8 = 69;
const TAG_RECOVERED: u8 = 70;
const TAG_FAILED: u8 = 71;

fn get_u8(buf: &mut Bytes) -> Result<u8, StoreError> {
    if !buf.has_remaining() {
        return Err(StoreError::Codec("truncated frame: missing tag".into()));
    }
    Ok(buf.get_u8())
}

/// Reads a count prefix, bounded by the bytes actually present so a
/// corrupt count cannot force a huge allocation.
fn get_count(buf: &mut Bytes, what: &str) -> Result<usize, StoreError> {
    let n = codec::get_u32(buf)? as usize;
    if n > buf.remaining() {
        return Err(StoreError::Codec(format!(
            "corrupt {what} count {n} exceeds {} remaining bytes",
            buf.remaining()
        )));
    }
    Ok(n)
}

fn put_record<S: Space>(space: &S, r: &NodeRecord<S::Pos>, buf: &mut BytesMut) {
    codec::put_u32(buf, r.agent);
    codec::put_u32(buf, r.step);
    space.encode_pos(r.pos, buf);
    codec::put_u32(buf, r.history.len() as u32);
    for &(step, pos) in &r.history {
        codec::put_u32(buf, step);
        space.encode_pos(pos, buf);
    }
}

fn get_record<S: Space>(space: &S, buf: &mut Bytes) -> Result<NodeRecord<S::Pos>, StoreError> {
    let agent = codec::get_u32(buf)?;
    let step = codec::get_u32(buf)?;
    let pos = space.decode_pos(buf)?;
    let n = get_count(buf, "history")?;
    let mut history = Vec::with_capacity(n);
    for _ in 0..n {
        let step = codec::get_u32(buf)?;
        let pos = space.decode_pos(buf)?;
        history.push((step, pos));
    }
    Ok(NodeRecord {
        agent,
        step,
        pos,
        history,
    })
}

fn put_records<S: Space>(space: &S, records: &[NodeRecord<S::Pos>], buf: &mut BytesMut) {
    codec::put_u32(buf, records.len() as u32);
    for r in records {
        put_record(space, r, buf);
    }
}

fn get_records<S: Space>(
    space: &S,
    buf: &mut Bytes,
) -> Result<Vec<NodeRecord<S::Pos>>, StoreError> {
    let n = get_count(buf, "record list")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_record(space, buf)?);
    }
    Ok(out)
}

fn put_states<S: Space>(space: &S, states: &[(u32, u32, S::Pos)], buf: &mut BytesMut) {
    codec::put_u32(buf, states.len() as u32);
    for &(agent, step, pos) in states {
        codec::put_u32(buf, agent);
        codec::put_u32(buf, step);
        space.encode_pos(pos, buf);
    }
}

fn get_states<S: Space>(space: &S, buf: &mut Bytes) -> Result<Vec<(u32, u32, S::Pos)>, StoreError> {
    let n = get_count(buf, "state list")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let agent = codec::get_u32(buf)?;
        let step = codec::get_u32(buf)?;
        let pos = space.decode_pos(buf)?;
        out.push((agent, step, pos));
    }
    Ok(out)
}

/// Finalizes a frame: length prefix followed by the body.
fn put_frame(body: BytesMut, out: &mut BytesMut) {
    codec::put_u32(out, body.len() as u32);
    out.extend_from_slice(&body);
}

/// Splits one length-prefixed frame body off `buf`.
fn take_frame(buf: &mut Bytes) -> Result<Bytes, StoreError> {
    let len = codec::get_u32(buf)? as usize;
    if buf.remaining() < len {
        return Err(StoreError::Codec(format!(
            "truncated frame: need {len} body bytes, have {}",
            buf.remaining()
        )));
    }
    Ok(buf.split_to(len))
}

/// Rejects unconsumed frame bytes after a successful parse.
fn finish(body: &Bytes, what: &str) -> Result<(), StoreError> {
    if body.has_remaining() {
        return Err(StoreError::Codec(format!(
            "{} trailing bytes after {what} frame",
            body.remaining()
        )));
    }
    Ok(())
}

/// Appends one framed controller request to `out`.
pub fn encode_ctrl<S: Space>(space: &S, msg: &CtrlMsg<S::Pos>, out: &mut BytesMut) {
    let mut body = BytesMut::new();
    match msg {
        CtrlMsg::Commit { updates } => {
            body.put_u8(TAG_COMMIT);
            codec::put_u32(&mut body, updates.len() as u32);
            for &(agent, pos) in updates {
                codec::put_u32(&mut body, agent);
                space.encode_pos(pos, &mut body);
            }
        }
        CtrlMsg::Rollback { updates } => {
            body.put_u8(TAG_ROLLBACK);
            put_states(space, updates, &mut body);
        }
        CtrlMsg::Depart { agents } => {
            body.put_u8(TAG_DEPART);
            codec::put_u32_list(&mut body, agents);
        }
        CtrlMsg::Arrive { records } => {
            body.put_u8(TAG_ARRIVE);
            put_records(space, records, &mut body);
        }
        CtrlMsg::RelinkQuery { probes } => {
            body.put_u8(TAG_RELINK_QUERY);
            codec::put_u32(&mut body, probes.len() as u32);
            for p in probes {
                codec::put_u32(&mut body, p.agent);
                codec::put_u32(&mut body, p.step);
                space.encode_pos(p.pos, &mut body);
            }
        }
        CtrlMsg::EvictHistory { floor } => {
            body.put_u8(TAG_EVICT_HISTORY);
            codec::put_u32(&mut body, *floor);
        }
        CtrlMsg::Quiesce => body.put_u8(TAG_QUIESCE),
        CtrlMsg::Recover { expected } => {
            body.put_u8(TAG_RECOVER);
            codec::put_u32_list(&mut body, expected);
        }
        CtrlMsg::Shutdown => body.put_u8(TAG_SHUTDOWN),
    }
    put_frame(body, out);
}

/// Decodes one framed controller request from the front of `buf`.
///
/// # Errors
///
/// Returns [`StoreError::Codec`] on truncation, an unknown tag (including
/// a worker-reply tag), a malformed position, or trailing frame bytes.
pub fn decode_ctrl<S: Space>(space: &S, buf: &mut Bytes) -> Result<CtrlMsg<S::Pos>, StoreError> {
    let mut body = take_frame(buf)?;
    let tag = get_u8(&mut body)?;
    let msg = match tag {
        TAG_COMMIT => {
            let n = get_count(&mut body, "commit")?;
            let mut updates = Vec::with_capacity(n);
            for _ in 0..n {
                let agent = codec::get_u32(&mut body)?;
                let pos = space.decode_pos(&mut body)?;
                updates.push((agent, pos));
            }
            CtrlMsg::Commit { updates }
        }
        TAG_ROLLBACK => CtrlMsg::Rollback {
            updates: get_states(space, &mut body)?,
        },
        TAG_DEPART => CtrlMsg::Depart {
            agents: codec::get_u32_list(&mut body)?,
        },
        TAG_ARRIVE => CtrlMsg::Arrive {
            records: get_records(space, &mut body)?,
        },
        TAG_RELINK_QUERY => {
            let n = get_count(&mut body, "probe")?;
            let mut probes = Vec::with_capacity(n);
            for _ in 0..n {
                let agent = codec::get_u32(&mut body)?;
                let step = codec::get_u32(&mut body)?;
                let pos = space.decode_pos(&mut body)?;
                probes.push(Probe { agent, step, pos });
            }
            CtrlMsg::RelinkQuery { probes }
        }
        TAG_EVICT_HISTORY => CtrlMsg::EvictHistory {
            floor: codec::get_u32(&mut body)?,
        },
        TAG_QUIESCE => CtrlMsg::Quiesce,
        TAG_RECOVER => CtrlMsg::Recover {
            expected: codec::get_u32_list(&mut body)?,
        },
        TAG_SHUTDOWN => CtrlMsg::Shutdown,
        other => {
            return Err(StoreError::Codec(format!(
                "unknown controller message tag {other}"
            )))
        }
    };
    finish(&body, "controller")?;
    Ok(msg)
}

/// Appends one framed worker reply to `out`.
pub fn encode_shard<S: Space>(space: &S, msg: &ShardMsg<S::Pos>, out: &mut BytesMut) {
    let mut body = BytesMut::new();
    match msg {
        ShardMsg::Done => body.put_u8(TAG_DONE),
        ShardMsg::Departed { records } => {
            body.put_u8(TAG_DEPARTED);
            put_records(space, records, &mut body);
        }
        ShardMsg::Edges { edges } => {
            body.put_u8(TAG_EDGES);
            codec::put_u32(&mut body, edges.len() as u32);
            for e in edges {
                body.put_u8(u8::from(e.coupled));
                codec::put_u32(&mut body, e.a);
                codec::put_u32(&mut body, e.b);
            }
        }
        ShardMsg::Evicted { removed } => {
            body.put_u8(TAG_EVICTED);
            codec::put_u64(&mut body, *removed);
        }
        ShardMsg::Quiesced { states } => {
            body.put_u8(TAG_QUIESCED);
            put_states(space, states, &mut body);
        }
        ShardMsg::Recovered { states } => {
            body.put_u8(TAG_RECOVERED);
            put_states(space, states, &mut body);
        }
        ShardMsg::Failed { message } => {
            body.put_u8(TAG_FAILED);
            codec::put_str(&mut body, message);
        }
    }
    put_frame(body, out);
}

/// Decodes one framed worker reply from the front of `buf`.
///
/// # Errors
///
/// Returns [`StoreError::Codec`] on truncation, an unknown tag (including
/// a controller-request tag), a malformed edge flag or position, or
/// trailing frame bytes.
pub fn decode_shard<S: Space>(space: &S, buf: &mut Bytes) -> Result<ShardMsg<S::Pos>, StoreError> {
    let mut body = take_frame(buf)?;
    let tag = get_u8(&mut body)?;
    let msg = match tag {
        TAG_DONE => ShardMsg::Done,
        TAG_DEPARTED => ShardMsg::Departed {
            records: get_records(space, &mut body)?,
        },
        TAG_EDGES => {
            let n = get_count(&mut body, "edge")?;
            let mut edges = Vec::with_capacity(n);
            for _ in 0..n {
                let coupled = match get_u8(&mut body)? {
                    0 => false,
                    1 => true,
                    bad => return Err(StoreError::Codec(format!("invalid edge kind flag {bad}"))),
                };
                let a = codec::get_u32(&mut body)?;
                let b = codec::get_u32(&mut body)?;
                edges.push(WireEdge { coupled, a, b });
            }
            ShardMsg::Edges { edges }
        }
        TAG_EVICTED => ShardMsg::Evicted {
            removed: codec::get_u64(&mut body)?,
        },
        TAG_QUIESCED => ShardMsg::Quiesced {
            states: get_states(space, &mut body)?,
        },
        TAG_RECOVERED => ShardMsg::Recovered {
            states: get_states(space, &mut body)?,
        },
        TAG_FAILED => ShardMsg::Failed {
            message: codec::get_str(&mut body)?,
        },
        other => {
            return Err(StoreError::Codec(format!(
                "unknown worker message tag {other}"
            )))
        }
    };
    finish(&body, "worker")?;
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{GridSpace, Point};
    use proptest::prelude::*;

    fn space() -> GridSpace {
        GridSpace::new(1000, 1000)
    }

    fn roundtrip_ctrl(msg: CtrlMsg<Point>) {
        let s = space();
        let mut buf = BytesMut::new();
        encode_ctrl(&s, &msg, &mut buf);
        let mut rd = Bytes::from(buf.freeze());
        let back = decode_ctrl(&s, &mut rd).expect("decode");
        assert_eq!(back, msg);
        assert_eq!(rd.remaining(), 0);
    }

    fn roundtrip_shard(msg: ShardMsg<Point>) {
        let s = space();
        let mut buf = BytesMut::new();
        encode_shard(&s, &msg, &mut buf);
        let mut rd = Bytes::from(buf.freeze());
        let back = decode_shard(&s, &mut rd).expect("decode");
        assert_eq!(back, msg);
        assert_eq!(rd.remaining(), 0);
    }

    #[test]
    fn fieldless_variants_roundtrip() {
        roundtrip_ctrl(CtrlMsg::Quiesce);
        roundtrip_ctrl(CtrlMsg::Shutdown);
        roundtrip_shard(ShardMsg::Done);
    }

    #[test]
    fn frames_concatenate_on_one_stream() {
        let s = space();
        let mut buf = BytesMut::new();
        encode_ctrl(&s, &CtrlMsg::EvictHistory { floor: 7 }, &mut buf);
        encode_ctrl(&s, &CtrlMsg::Quiesce, &mut buf);
        let mut rd = Bytes::from(buf.freeze());
        assert_eq!(
            decode_ctrl(&s, &mut rd).unwrap(),
            CtrlMsg::EvictHistory { floor: 7 }
        );
        assert_eq!(decode_ctrl(&s, &mut rd).unwrap(), CtrlMsg::Quiesce);
        assert_eq!(rd.remaining(), 0);
    }

    #[test]
    fn swapped_direction_is_rejected() {
        let s = space();
        let mut buf = BytesMut::new();
        encode_ctrl(&s, &CtrlMsg::<Point>::Quiesce, &mut buf);
        let mut rd = Bytes::from(buf.freeze());
        let err = decode_shard(&s, &mut rd).unwrap_err();
        assert!(err.to_string().contains("unknown worker message tag"));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let s = space();
        let mut body = BytesMut::new();
        body.put_u8(super::TAG_QUIESCE);
        body.put_u8(0xAA);
        let mut framed = BytesMut::new();
        put_frame(body, &mut framed);
        let mut rd = Bytes::from(framed.freeze());
        let err = decode_ctrl(&s, &mut rd).unwrap_err();
        assert!(err.to_string().contains("trailing bytes"));
    }

    #[test]
    fn truncated_frame_is_rejected() {
        let s = space();
        let mut buf = BytesMut::new();
        encode_ctrl(
            &s,
            &CtrlMsg::Commit {
                updates: vec![(3, Point::new(1, 2))],
            },
            &mut buf,
        );
        let full = buf.freeze();
        for cut in 0..full.len() {
            let mut rd = full.slice(..cut);
            assert!(
                decode_ctrl(&s, &mut rd).is_err(),
                "prefix of {cut} bytes must not parse"
            );
        }
    }

    #[test]
    fn corrupt_count_is_rejected_not_oom() {
        let s = space();
        let mut body = BytesMut::new();
        body.put_u8(super::TAG_DEPART);
        // Claims u32::MAX agents with no body behind it.
        body.put_u32(u32::MAX);
        let mut framed = BytesMut::new();
        put_frame(body, &mut framed);
        let mut rd = Bytes::from(framed.freeze());
        assert!(decode_ctrl(&s, &mut rd).is_err());
    }

    fn arb_point() -> impl Strategy<Value = Point> {
        (-500i32..500, -500i32..500).prop_map(|(x, y)| Point::new(x, y))
    }

    fn arb_record() -> impl Strategy<Value = NodeRecord<Point>> {
        (
            0u32..10_000,
            0u32..1_000,
            arb_point(),
            proptest::collection::vec((0u32..1_000, arb_point()), 0..8),
        )
            .prop_map(|(agent, step, pos, history)| NodeRecord {
                agent,
                step,
                pos,
                history,
            })
    }

    fn arb_ctrl() -> impl Strategy<Value = CtrlMsg<Point>> {
        prop_oneof![
            proptest::collection::vec((0u32..10_000, arb_point()), 0..16)
                .prop_map(|updates| CtrlMsg::Commit { updates }),
            proptest::collection::vec((0u32..10_000, 0u32..1_000, arb_point()), 0..16)
                .prop_map(|updates| CtrlMsg::Rollback { updates }),
            proptest::collection::vec(0u32..10_000, 0..16)
                .prop_map(|agents| CtrlMsg::Depart { agents }),
            proptest::collection::vec(arb_record(), 0..8)
                .prop_map(|records| CtrlMsg::Arrive { records }),
            proptest::collection::vec(
                (0u32..10_000, 0u32..1_000, arb_point()).prop_map(|(agent, step, pos)| Probe {
                    agent,
                    step,
                    pos
                }),
                0..16
            )
            .prop_map(|probes| CtrlMsg::RelinkQuery { probes }),
            (0u32..1_000).prop_map(|floor| CtrlMsg::EvictHistory { floor }),
            Just(CtrlMsg::Quiesce),
            proptest::collection::vec(0u32..10_000, 0..16)
                .prop_map(|expected| CtrlMsg::Recover { expected }),
            Just(CtrlMsg::Shutdown),
        ]
    }

    fn arb_shard() -> impl Strategy<Value = ShardMsg<Point>> {
        prop_oneof![
            Just(ShardMsg::Done),
            proptest::collection::vec(arb_record(), 0..8)
                .prop_map(|records| ShardMsg::Departed { records }),
            proptest::collection::vec(
                (0u32..2, 0u32..10_000, 0u32..10_000).prop_map(|(coupled, a, b)| WireEdge {
                    coupled: coupled == 1,
                    a,
                    b
                }),
                0..16
            )
            .prop_map(|edges| ShardMsg::Edges { edges }),
            (0u64..1_000_000).prop_map(|removed| ShardMsg::Evicted { removed }),
            proptest::collection::vec((0u32..10_000, 0u32..1_000, arb_point()), 0..16)
                .prop_map(|states| ShardMsg::Quiesced { states }),
            proptest::collection::vec((0u32..10_000, 0u32..1_000, arb_point()), 0..16)
                .prop_map(|states| ShardMsg::Recovered { states }),
            (0u32..1_000).prop_map(|n| ShardMsg::Failed {
                message: format!("worker error ({n})"),
            }),
        ]
    }

    proptest! {
        #[test]
        fn every_ctrl_message_roundtrips(msg in arb_ctrl()) {
            roundtrip_ctrl(msg);
        }

        #[test]
        fn every_shard_message_roundtrips(msg in arb_shard()) {
            roundtrip_shard(msg);
        }

        #[test]
        fn ctrl_streams_roundtrip_in_order(msgs in proptest::collection::vec(arb_ctrl(), 0..6)) {
            let s = space();
            let mut buf = BytesMut::new();
            for m in &msgs {
                encode_ctrl(&s, m, &mut buf);
            }
            let mut rd = Bytes::from(buf.freeze());
            for m in &msgs {
                prop_assert_eq!(&decode_ctrl(&s, &mut rd).unwrap(), m);
            }
            prop_assert_eq!(rd.remaining(), 0);
        }
    }
}
