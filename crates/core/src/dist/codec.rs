//! `AIMMSG v1`: the length-prefixed byte codec for the worker protocol.
//!
//! Frames the [`super::msg`] enums for byte transports (the phase-2
//! socket/pipe path): a stream opens with the [`PREAMBLE`], then carries
//! frames of
//!
//! ```text
//! u32 BE body length | body
//! body = tag byte | variant fields
//! ```
//!
//! Integers are big-endian via [`aim_store::codec`]; positions are
//! serialized by the run's [`Space`] (`encode_pos` / `decode_pos`), so
//! the wire format matches the workers' store records byte for byte.
//! Lists carry a `u32` count prefix; strings are length-prefixed UTF-8.
//!
//! Controller requests use tags 1–9, worker replies tags 65–71 — the
//! disjoint ranges make a swapped stream fail loudly instead of
//! misparsing. Decoding verifies the frame is consumed exactly: trailing
//! bytes are a [`StoreError::Codec`] error, as are truncation, unknown
//! tags, and malformed positions. Both sides of the codec are pure
//! functions of the message and the space, so
//! `decode(encode(msg)) == msg` holds for every message — property-tested
//! below like the `AIMSNAP` snapshot format.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use aim_llm::{AttemptOutcome, CallKind};
use aim_store::{codec, StoreError};

use crate::space::Space;
use crate::telemetry::{BlockReason, BoundaryOp, Counter, Span, SpanKind};

use super::msg::{CtrlMsg, NodeRecord, Probe, ShardMsg, WireEdge};

/// Stream preamble exchanged once per connection before any frame.
pub const PREAMBLE: &[u8; 10] = b"AIMMSG v1\n";

// Controller-request tags (1–10).
const TAG_COMMIT: u8 = 1;
const TAG_ROLLBACK: u8 = 2;
const TAG_DEPART: u8 = 3;
const TAG_ARRIVE: u8 = 4;
const TAG_RELINK_QUERY: u8 = 5;
const TAG_EVICT_HISTORY: u8 = 6;
const TAG_QUIESCE: u8 = 7;
const TAG_RECOVER: u8 = 8;
const TAG_SHUTDOWN: u8 = 9;
const TAG_HARVEST_TELEMETRY: u8 = 10;
const TAG_HEARTBEAT: u8 = 11;

// Worker-reply tags (65–72).
const TAG_DONE: u8 = 65;
const TAG_DEPARTED: u8 = 66;
const TAG_EDGES: u8 = 67;
const TAG_EVICTED: u8 = 68;
const TAG_QUIESCED: u8 = 69;
const TAG_RECOVERED: u8 = 70;
const TAG_FAILED: u8 = 71;
const TAG_TELEMETRY: u8 = 72;
const TAG_HEARTBEAT_REPLY: u8 = 73;

fn get_u8(buf: &mut Bytes) -> Result<u8, StoreError> {
    if !buf.has_remaining() {
        return Err(StoreError::Codec("truncated frame: missing tag".into()));
    }
    Ok(buf.get_u8())
}

/// Reads a count prefix, bounded by the bytes actually present so a
/// corrupt count cannot force a huge allocation.
fn get_count(buf: &mut Bytes, what: &str) -> Result<usize, StoreError> {
    let n = codec::get_u32(buf)? as usize;
    if n > buf.remaining() {
        return Err(StoreError::Codec(format!(
            "corrupt {what} count {n} exceeds {} remaining bytes",
            buf.remaining()
        )));
    }
    Ok(n)
}

fn put_record<S: Space>(space: &S, r: &NodeRecord<S::Pos>, buf: &mut BytesMut) {
    codec::put_u32(buf, r.agent);
    codec::put_u32(buf, r.step);
    space.encode_pos(r.pos, buf);
    codec::put_u32(buf, r.history.len() as u32);
    for &(step, pos) in &r.history {
        codec::put_u32(buf, step);
        space.encode_pos(pos, buf);
    }
}

fn get_record<S: Space>(space: &S, buf: &mut Bytes) -> Result<NodeRecord<S::Pos>, StoreError> {
    let agent = codec::get_u32(buf)?;
    let step = codec::get_u32(buf)?;
    let pos = space.decode_pos(buf)?;
    let n = get_count(buf, "history")?;
    let mut history = Vec::with_capacity(n);
    for _ in 0..n {
        let step = codec::get_u32(buf)?;
        let pos = space.decode_pos(buf)?;
        history.push((step, pos));
    }
    Ok(NodeRecord {
        agent,
        step,
        pos,
        history,
    })
}

fn put_records<S: Space>(space: &S, records: &[NodeRecord<S::Pos>], buf: &mut BytesMut) {
    codec::put_u32(buf, records.len() as u32);
    for r in records {
        put_record(space, r, buf);
    }
}

fn get_records<S: Space>(
    space: &S,
    buf: &mut Bytes,
) -> Result<Vec<NodeRecord<S::Pos>>, StoreError> {
    let n = get_count(buf, "record list")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_record(space, buf)?);
    }
    Ok(out)
}

fn put_states<S: Space>(space: &S, states: &[(u32, u32, S::Pos)], buf: &mut BytesMut) {
    codec::put_u32(buf, states.len() as u32);
    for &(agent, step, pos) in states {
        codec::put_u32(buf, agent);
        codec::put_u32(buf, step);
        space.encode_pos(pos, buf);
    }
}

fn get_states<S: Space>(space: &S, buf: &mut Bytes) -> Result<Vec<(u32, u32, S::Pos)>, StoreError> {
    let n = get_count(buf, "state list")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let agent = codec::get_u32(buf)?;
        let step = codec::get_u32(buf)?;
        let pos = space.decode_pos(buf)?;
        out.push((agent, step, pos));
    }
    Ok(out)
}

// Span-kind tags inside a [`ShardMsg::Telemetry`] frame, in
// [`SpanKind`] declaration order.
const SPAN_CLUSTER: u8 = 1;
const SPAN_LLM_CALL: u8 = 2;
const SPAN_COMMIT: u8 = 3;
const SPAN_BLOCKED: u8 = 4;
const SPAN_RELINK: u8 = 5;
const SPAN_MIGRATE: u8 = 6;
const SPAN_CHECKPOINT: u8 = 7;
const SPAN_FLEET_ATTEMPT: u8 = 8;
const SPAN_CONTROL: u8 = 9;
const SPAN_BOUNDARY: u8 = 10;

fn put_span(s: &Span, buf: &mut BytesMut) {
    codec::put_u64(buf, s.start_us);
    codec::put_u64(buf, s.end_us);
    codec::put_u32(buf, s.track);
    match s.kind {
        SpanKind::Cluster {
            cluster,
            step,
            members,
        } => {
            buf.put_u8(SPAN_CLUSTER);
            codec::put_u64(buf, cluster);
            codec::put_u32(buf, step);
            codec::put_u32(buf, members);
        }
        SpanKind::LlmCall {
            agent,
            step,
            request,
            kind,
        } => {
            buf.put_u8(SPAN_LLM_CALL);
            codec::put_u32(buf, agent);
            codec::put_u32(buf, step);
            codec::put_u64(buf, request);
            buf.put_u8(kind.index() as u8);
        }
        SpanKind::Commit {
            cluster,
            step,
            members,
        } => {
            buf.put_u8(SPAN_COMMIT);
            codec::put_u64(buf, cluster);
            codec::put_u32(buf, step);
            codec::put_u32(buf, members);
        }
        SpanKind::Blocked {
            agent,
            blocker,
            step,
            reason,
        } => {
            buf.put_u8(SPAN_BLOCKED);
            codec::put_u32(buf, agent);
            codec::put_u32(buf, blocker);
            codec::put_u32(buf, step);
            buf.put_u8(match reason {
                BlockReason::Dependency => 0,
                BlockReason::Barrier => 1,
            });
        }
        SpanKind::Relink { agents, workers } => {
            buf.put_u8(SPAN_RELINK);
            codec::put_u32(buf, agents);
            codec::put_u32(buf, workers);
        }
        SpanKind::Migrate { agents, crossings } => {
            buf.put_u8(SPAN_MIGRATE);
            codec::put_u32(buf, agents);
            codec::put_u32(buf, crossings);
        }
        SpanKind::Checkpoint { step } => {
            buf.put_u8(SPAN_CHECKPOINT);
            codec::put_u32(buf, step);
        }
        SpanKind::FleetAttempt {
            request,
            replica,
            hedge,
            outcome,
        } => {
            buf.put_u8(SPAN_FLEET_ATTEMPT);
            codec::put_u64(buf, request);
            codec::put_u32(buf, replica);
            buf.put_u8(u8::from(hedge));
            buf.put_u8(match outcome {
                AttemptOutcome::Served => 0,
                AttemptOutcome::Failed => 1,
                AttemptOutcome::Refused => 2,
                _ => 0,
            });
        }
        SpanKind::Control { cluster, members } => {
            buf.put_u8(SPAN_CONTROL);
            codec::put_u64(buf, cluster);
            codec::put_u32(buf, members);
        }
        SpanKind::Boundary {
            worker,
            op,
            messages,
        } => {
            buf.put_u8(SPAN_BOUNDARY);
            codec::put_u32(buf, worker);
            buf.put_u8(match op {
                BoundaryOp::Send => 0,
                BoundaryOp::Wait => 1,
                BoundaryOp::Apply => 2,
            });
            codec::put_u32(buf, messages);
        }
    }
}

fn get_span(buf: &mut Bytes) -> Result<Span, StoreError> {
    let start_us = codec::get_u64(buf)?;
    let end_us = codec::get_u64(buf)?;
    let track = codec::get_u32(buf)?;
    let kind = match get_u8(buf)? {
        SPAN_CLUSTER => SpanKind::Cluster {
            cluster: codec::get_u64(buf)?,
            step: codec::get_u32(buf)?,
            members: codec::get_u32(buf)?,
        },
        SPAN_LLM_CALL => SpanKind::LlmCall {
            agent: codec::get_u32(buf)?,
            step: codec::get_u32(buf)?,
            request: codec::get_u64(buf)?,
            kind: {
                let idx = get_u8(buf)?;
                *CallKind::ALL
                    .get(idx as usize)
                    .ok_or_else(|| StoreError::Codec(format!("invalid call kind index {idx}")))?
            },
        },
        SPAN_COMMIT => SpanKind::Commit {
            cluster: codec::get_u64(buf)?,
            step: codec::get_u32(buf)?,
            members: codec::get_u32(buf)?,
        },
        SPAN_BLOCKED => SpanKind::Blocked {
            agent: codec::get_u32(buf)?,
            blocker: codec::get_u32(buf)?,
            step: codec::get_u32(buf)?,
            reason: match get_u8(buf)? {
                0 => BlockReason::Dependency,
                1 => BlockReason::Barrier,
                bad => {
                    return Err(StoreError::Codec(format!("invalid block reason {bad}")));
                }
            },
        },
        SPAN_RELINK => SpanKind::Relink {
            agents: codec::get_u32(buf)?,
            workers: codec::get_u32(buf)?,
        },
        SPAN_MIGRATE => SpanKind::Migrate {
            agents: codec::get_u32(buf)?,
            crossings: codec::get_u32(buf)?,
        },
        SPAN_CHECKPOINT => SpanKind::Checkpoint {
            step: codec::get_u32(buf)?,
        },
        SPAN_FLEET_ATTEMPT => SpanKind::FleetAttempt {
            request: codec::get_u64(buf)?,
            replica: codec::get_u32(buf)?,
            hedge: match get_u8(buf)? {
                0 => false,
                1 => true,
                bad => {
                    return Err(StoreError::Codec(format!("invalid hedge flag {bad}")));
                }
            },
            outcome: match get_u8(buf)? {
                0 => AttemptOutcome::Served,
                1 => AttemptOutcome::Failed,
                2 => AttemptOutcome::Refused,
                bad => {
                    return Err(StoreError::Codec(format!("invalid attempt outcome {bad}")));
                }
            },
        },
        SPAN_CONTROL => SpanKind::Control {
            cluster: codec::get_u64(buf)?,
            members: codec::get_u32(buf)?,
        },
        SPAN_BOUNDARY => SpanKind::Boundary {
            worker: codec::get_u32(buf)?,
            op: match get_u8(buf)? {
                0 => BoundaryOp::Send,
                1 => BoundaryOp::Wait,
                2 => BoundaryOp::Apply,
                bad => {
                    return Err(StoreError::Codec(format!("invalid boundary op {bad}")));
                }
            },
            messages: codec::get_u32(buf)?,
        },
        other => {
            return Err(StoreError::Codec(format!("unknown span kind tag {other}")));
        }
    };
    Ok(Span {
        start_us,
        end_us,
        track,
        kind,
    })
}

fn put_spans(spans: &[Span], buf: &mut BytesMut) {
    codec::put_u32(buf, spans.len() as u32);
    for s in spans {
        put_span(s, buf);
    }
}

fn get_spans(buf: &mut Bytes) -> Result<Vec<Span>, StoreError> {
    let n = get_count(buf, "span list")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_span(buf)?);
    }
    Ok(out)
}

fn put_counters(counters: &[(Counter, u64)], buf: &mut BytesMut) {
    codec::put_u32(buf, counters.len() as u32);
    for &(c, n) in counters {
        buf.put_u8(c as u8);
        codec::put_u64(buf, n);
    }
}

fn get_counters(buf: &mut Bytes) -> Result<Vec<(Counter, u64)>, StoreError> {
    let n = get_count(buf, "counter list")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let idx = get_u8(buf)?;
        let c = *Counter::ALL
            .get(idx as usize)
            .ok_or_else(|| StoreError::Codec(format!("invalid counter index {idx}")))?;
        out.push((c, codec::get_u64(buf)?));
    }
    Ok(out)
}

/// Finalizes a frame: length prefix followed by the body.
fn put_frame(body: BytesMut, out: &mut BytesMut) {
    codec::put_u32(out, body.len() as u32);
    out.extend_from_slice(&body);
}

/// Splits one length-prefixed frame body off `buf`.
fn take_frame(buf: &mut Bytes) -> Result<Bytes, StoreError> {
    let len = codec::get_u32(buf)? as usize;
    if buf.remaining() < len {
        return Err(StoreError::Codec(format!(
            "truncated frame: need {len} body bytes, have {}",
            buf.remaining()
        )));
    }
    Ok(buf.split_to(len))
}

/// Rejects unconsumed frame bytes after a successful parse.
fn finish(body: &Bytes, what: &str) -> Result<(), StoreError> {
    if body.has_remaining() {
        return Err(StoreError::Codec(format!(
            "{} trailing bytes after {what} frame",
            body.remaining()
        )));
    }
    Ok(())
}

/// Appends one framed controller request to `out`.
pub fn encode_ctrl<S: Space>(space: &S, msg: &CtrlMsg<S::Pos>, out: &mut BytesMut) {
    let mut body = BytesMut::new();
    match msg {
        CtrlMsg::Commit { updates } => {
            body.put_u8(TAG_COMMIT);
            codec::put_u32(&mut body, updates.len() as u32);
            for &(agent, pos) in updates {
                codec::put_u32(&mut body, agent);
                space.encode_pos(pos, &mut body);
            }
        }
        CtrlMsg::Rollback { updates } => {
            body.put_u8(TAG_ROLLBACK);
            put_states(space, updates, &mut body);
        }
        CtrlMsg::Depart { agents } => {
            body.put_u8(TAG_DEPART);
            codec::put_u32_list(&mut body, agents);
        }
        CtrlMsg::Arrive { records } => {
            body.put_u8(TAG_ARRIVE);
            put_records(space, records, &mut body);
        }
        CtrlMsg::RelinkQuery { probes } => {
            body.put_u8(TAG_RELINK_QUERY);
            codec::put_u32(&mut body, probes.len() as u32);
            for p in probes {
                codec::put_u32(&mut body, p.agent);
                codec::put_u32(&mut body, p.step);
                space.encode_pos(p.pos, &mut body);
            }
        }
        CtrlMsg::EvictHistory { floor } => {
            body.put_u8(TAG_EVICT_HISTORY);
            codec::put_u32(&mut body, *floor);
        }
        CtrlMsg::Quiesce => body.put_u8(TAG_QUIESCE),
        CtrlMsg::Recover { expected } => {
            body.put_u8(TAG_RECOVER);
            codec::put_u32_list(&mut body, expected);
        }
        CtrlMsg::Shutdown => body.put_u8(TAG_SHUTDOWN),
        CtrlMsg::HarvestTelemetry { now_us } => {
            body.put_u8(TAG_HARVEST_TELEMETRY);
            codec::put_u64(&mut body, *now_us);
        }
        CtrlMsg::Heartbeat { now_us } => {
            body.put_u8(TAG_HEARTBEAT);
            codec::put_u64(&mut body, *now_us);
        }
    }
    put_frame(body, out);
}

/// Decodes one framed controller request from the front of `buf`.
///
/// # Errors
///
/// Returns [`StoreError::Codec`] on truncation, an unknown tag (including
/// a worker-reply tag), a malformed position, or trailing frame bytes.
pub fn decode_ctrl<S: Space>(space: &S, buf: &mut Bytes) -> Result<CtrlMsg<S::Pos>, StoreError> {
    let mut body = take_frame(buf)?;
    let tag = get_u8(&mut body)?;
    let msg = match tag {
        TAG_COMMIT => {
            let n = get_count(&mut body, "commit")?;
            let mut updates = Vec::with_capacity(n);
            for _ in 0..n {
                let agent = codec::get_u32(&mut body)?;
                let pos = space.decode_pos(&mut body)?;
                updates.push((agent, pos));
            }
            CtrlMsg::Commit { updates }
        }
        TAG_ROLLBACK => CtrlMsg::Rollback {
            updates: get_states(space, &mut body)?,
        },
        TAG_DEPART => CtrlMsg::Depart {
            agents: codec::get_u32_list(&mut body)?,
        },
        TAG_ARRIVE => CtrlMsg::Arrive {
            records: get_records(space, &mut body)?,
        },
        TAG_RELINK_QUERY => {
            let n = get_count(&mut body, "probe")?;
            let mut probes = Vec::with_capacity(n);
            for _ in 0..n {
                let agent = codec::get_u32(&mut body)?;
                let step = codec::get_u32(&mut body)?;
                let pos = space.decode_pos(&mut body)?;
                probes.push(Probe { agent, step, pos });
            }
            CtrlMsg::RelinkQuery { probes }
        }
        TAG_EVICT_HISTORY => CtrlMsg::EvictHistory {
            floor: codec::get_u32(&mut body)?,
        },
        TAG_QUIESCE => CtrlMsg::Quiesce,
        TAG_RECOVER => CtrlMsg::Recover {
            expected: codec::get_u32_list(&mut body)?,
        },
        TAG_SHUTDOWN => CtrlMsg::Shutdown,
        TAG_HARVEST_TELEMETRY => CtrlMsg::HarvestTelemetry {
            now_us: codec::get_u64(&mut body)?,
        },
        TAG_HEARTBEAT => CtrlMsg::Heartbeat {
            now_us: codec::get_u64(&mut body)?,
        },
        other => {
            return Err(StoreError::Codec(format!(
                "unknown controller message tag {other}"
            )))
        }
    };
    finish(&body, "controller")?;
    Ok(msg)
}

/// Appends one framed worker reply to `out`.
pub fn encode_shard<S: Space>(space: &S, msg: &ShardMsg<S::Pos>, out: &mut BytesMut) {
    let mut body = BytesMut::new();
    match msg {
        ShardMsg::Done => body.put_u8(TAG_DONE),
        ShardMsg::Departed { records } => {
            body.put_u8(TAG_DEPARTED);
            put_records(space, records, &mut body);
        }
        ShardMsg::Edges { edges } => {
            body.put_u8(TAG_EDGES);
            codec::put_u32(&mut body, edges.len() as u32);
            for e in edges {
                body.put_u8(u8::from(e.coupled));
                codec::put_u32(&mut body, e.a);
                codec::put_u32(&mut body, e.b);
            }
        }
        ShardMsg::Evicted { removed } => {
            body.put_u8(TAG_EVICTED);
            codec::put_u64(&mut body, *removed);
        }
        ShardMsg::Quiesced { states } => {
            body.put_u8(TAG_QUIESCED);
            put_states(space, states, &mut body);
        }
        ShardMsg::Recovered { states } => {
            body.put_u8(TAG_RECOVERED);
            put_states(space, states, &mut body);
        }
        ShardMsg::Telemetry {
            worker,
            now_us,
            spans,
            counters,
            dropped,
        } => {
            body.put_u8(TAG_TELEMETRY);
            codec::put_u32(&mut body, *worker);
            codec::put_u64(&mut body, *now_us);
            codec::put_u64(&mut body, *dropped);
            put_spans(spans, &mut body);
            put_counters(counters, &mut body);
        }
        ShardMsg::Heartbeat {
            worker,
            now_us,
            handled,
            last_step,
            members,
            dropped,
        } => {
            body.put_u8(TAG_HEARTBEAT_REPLY);
            codec::put_u32(&mut body, *worker);
            codec::put_u64(&mut body, *now_us);
            codec::put_u64(&mut body, *handled);
            codec::put_u32(&mut body, *last_step);
            codec::put_u32(&mut body, *members);
            codec::put_u64(&mut body, *dropped);
        }
        ShardMsg::Failed { message } => {
            body.put_u8(TAG_FAILED);
            codec::put_str(&mut body, message);
        }
    }
    put_frame(body, out);
}

/// Decodes one framed worker reply from the front of `buf`.
///
/// # Errors
///
/// Returns [`StoreError::Codec`] on truncation, an unknown tag (including
/// a controller-request tag), a malformed edge flag or position, or
/// trailing frame bytes.
pub fn decode_shard<S: Space>(space: &S, buf: &mut Bytes) -> Result<ShardMsg<S::Pos>, StoreError> {
    let mut body = take_frame(buf)?;
    let tag = get_u8(&mut body)?;
    let msg = match tag {
        TAG_DONE => ShardMsg::Done,
        TAG_DEPARTED => ShardMsg::Departed {
            records: get_records(space, &mut body)?,
        },
        TAG_EDGES => {
            let n = get_count(&mut body, "edge")?;
            let mut edges = Vec::with_capacity(n);
            for _ in 0..n {
                let coupled = match get_u8(&mut body)? {
                    0 => false,
                    1 => true,
                    bad => return Err(StoreError::Codec(format!("invalid edge kind flag {bad}"))),
                };
                let a = codec::get_u32(&mut body)?;
                let b = codec::get_u32(&mut body)?;
                edges.push(WireEdge { coupled, a, b });
            }
            ShardMsg::Edges { edges }
        }
        TAG_EVICTED => ShardMsg::Evicted {
            removed: codec::get_u64(&mut body)?,
        },
        TAG_QUIESCED => ShardMsg::Quiesced {
            states: get_states(space, &mut body)?,
        },
        TAG_RECOVERED => ShardMsg::Recovered {
            states: get_states(space, &mut body)?,
        },
        TAG_TELEMETRY => {
            let worker = codec::get_u32(&mut body)?;
            let now_us = codec::get_u64(&mut body)?;
            let dropped = codec::get_u64(&mut body)?;
            let spans = get_spans(&mut body)?;
            let counters = get_counters(&mut body)?;
            ShardMsg::Telemetry {
                worker,
                now_us,
                spans,
                counters,
                dropped,
            }
        }
        TAG_HEARTBEAT_REPLY => {
            let worker = codec::get_u32(&mut body)?;
            let now_us = codec::get_u64(&mut body)?;
            let handled = codec::get_u64(&mut body)?;
            let last_step = codec::get_u32(&mut body)?;
            let members = codec::get_u32(&mut body)?;
            let dropped = codec::get_u64(&mut body)?;
            ShardMsg::Heartbeat {
                worker,
                now_us,
                handled,
                last_step,
                members,
                dropped,
            }
        }
        TAG_FAILED => ShardMsg::Failed {
            message: codec::get_str(&mut body)?,
        },
        other => {
            return Err(StoreError::Codec(format!(
                "unknown worker message tag {other}"
            )))
        }
    };
    finish(&body, "worker")?;
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{GridSpace, Point};
    use proptest::prelude::*;

    fn space() -> GridSpace {
        GridSpace::new(1000, 1000)
    }

    fn roundtrip_ctrl(msg: CtrlMsg<Point>) {
        let s = space();
        let mut buf = BytesMut::new();
        encode_ctrl(&s, &msg, &mut buf);
        let mut rd = Bytes::from(buf.freeze());
        let back = decode_ctrl(&s, &mut rd).expect("decode");
        assert_eq!(back, msg);
        assert_eq!(rd.remaining(), 0);
    }

    fn roundtrip_shard(msg: ShardMsg<Point>) {
        let s = space();
        let mut buf = BytesMut::new();
        encode_shard(&s, &msg, &mut buf);
        let mut rd = Bytes::from(buf.freeze());
        let back = decode_shard(&s, &mut rd).expect("decode");
        assert_eq!(back, msg);
        assert_eq!(rd.remaining(), 0);
    }

    #[test]
    fn fieldless_variants_roundtrip() {
        roundtrip_ctrl(CtrlMsg::Quiesce);
        roundtrip_ctrl(CtrlMsg::Shutdown);
        roundtrip_shard(ShardMsg::Done);
    }

    #[test]
    fn frames_concatenate_on_one_stream() {
        let s = space();
        let mut buf = BytesMut::new();
        encode_ctrl(&s, &CtrlMsg::EvictHistory { floor: 7 }, &mut buf);
        encode_ctrl(&s, &CtrlMsg::Quiesce, &mut buf);
        let mut rd = Bytes::from(buf.freeze());
        assert_eq!(
            decode_ctrl(&s, &mut rd).unwrap(),
            CtrlMsg::EvictHistory { floor: 7 }
        );
        assert_eq!(decode_ctrl(&s, &mut rd).unwrap(), CtrlMsg::Quiesce);
        assert_eq!(rd.remaining(), 0);
    }

    #[test]
    fn swapped_direction_is_rejected() {
        let s = space();
        let mut buf = BytesMut::new();
        encode_ctrl(&s, &CtrlMsg::<Point>::Quiesce, &mut buf);
        let mut rd = Bytes::from(buf.freeze());
        let err = decode_shard(&s, &mut rd).unwrap_err();
        assert!(err.to_string().contains("unknown worker message tag"));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let s = space();
        let mut body = BytesMut::new();
        body.put_u8(super::TAG_QUIESCE);
        body.put_u8(0xAA);
        let mut framed = BytesMut::new();
        put_frame(body, &mut framed);
        let mut rd = Bytes::from(framed.freeze());
        let err = decode_ctrl(&s, &mut rd).unwrap_err();
        assert!(err.to_string().contains("trailing bytes"));
    }

    #[test]
    fn truncated_frame_is_rejected() {
        let s = space();
        let mut buf = BytesMut::new();
        encode_ctrl(
            &s,
            &CtrlMsg::Commit {
                updates: vec![(3, Point::new(1, 2))],
            },
            &mut buf,
        );
        let full = buf.freeze();
        for cut in 0..full.len() {
            let mut rd = full.slice(..cut);
            assert!(
                decode_ctrl(&s, &mut rd).is_err(),
                "prefix of {cut} bytes must not parse"
            );
        }
    }

    #[test]
    fn corrupt_count_is_rejected_not_oom() {
        let s = space();
        let mut body = BytesMut::new();
        body.put_u8(super::TAG_DEPART);
        // Claims u32::MAX agents with no body behind it.
        body.put_u32(u32::MAX);
        let mut framed = BytesMut::new();
        put_frame(body, &mut framed);
        let mut rd = Bytes::from(framed.freeze());
        assert!(decode_ctrl(&s, &mut rd).is_err());
    }

    fn telemetry_reply() -> ShardMsg<Point> {
        ShardMsg::Telemetry {
            worker: 3,
            now_us: 12_345,
            spans: vec![Span {
                start_us: 10,
                end_us: 40,
                track: 0,
                kind: SpanKind::Boundary {
                    worker: 3,
                    op: BoundaryOp::Apply,
                    messages: 2,
                },
            }],
            counters: vec![(Counter::BoundaryMessages, 7)],
            dropped: 1,
        }
    }

    #[test]
    fn telemetry_reply_roundtrips_and_truncation_is_rejected() {
        let msg = telemetry_reply();
        roundtrip_shard(msg.clone());
        let s = space();
        let mut buf = BytesMut::new();
        encode_shard(&s, &msg, &mut buf);
        let full = buf.freeze();
        for cut in 0..full.len() {
            let mut rd = full.slice(..cut);
            assert!(
                decode_shard(&s, &mut rd).is_err(),
                "prefix of {cut} bytes must not parse"
            );
        }
    }

    #[test]
    fn bad_span_kind_tag_is_rejected() {
        let s = space();
        let mut body = BytesMut::new();
        body.put_u8(super::TAG_TELEMETRY);
        codec::put_u32(&mut body, 0); // worker
        codec::put_u64(&mut body, 0); // now_us
        codec::put_u64(&mut body, 0); // dropped
        codec::put_u32(&mut body, 1); // one span
        codec::put_u64(&mut body, 0); // start
        codec::put_u64(&mut body, 1); // end
        codec::put_u32(&mut body, 0); // track
        body.put_u8(200); // bogus span kind tag
        let mut framed = BytesMut::new();
        put_frame(body, &mut framed);
        let mut rd = Bytes::from(framed.freeze());
        let err = decode_shard(&s, &mut rd).unwrap_err();
        assert!(err.to_string().contains("unknown span kind tag"));
    }

    #[test]
    fn bad_counter_index_is_rejected() {
        let s = space();
        let mut body = BytesMut::new();
        body.put_u8(super::TAG_TELEMETRY);
        codec::put_u32(&mut body, 0); // worker
        codec::put_u64(&mut body, 0); // now_us
        codec::put_u64(&mut body, 0); // dropped
        codec::put_u32(&mut body, 0); // no spans
        codec::put_u32(&mut body, 1); // one counter
        body.put_u8(Counter::ALL.len() as u8); // first invalid index
        codec::put_u64(&mut body, 5);
        let mut framed = BytesMut::new();
        put_frame(body, &mut framed);
        let mut rd = Bytes::from(framed.freeze());
        let err = decode_shard(&s, &mut rd).unwrap_err();
        assert!(err.to_string().contains("invalid counter index"));
    }

    #[test]
    fn harvest_request_roundtrips_with_disjoint_tag() {
        roundtrip_ctrl(CtrlMsg::HarvestTelemetry { now_us: 987_654 });
        // The new request must stay on the controller side of the tag
        // split: decoding it as a worker reply fails loudly.
        let s = space();
        let mut buf = BytesMut::new();
        encode_ctrl(
            &s,
            &CtrlMsg::<Point>::HarvestTelemetry { now_us: 1 },
            &mut buf,
        );
        let mut rd = Bytes::from(buf.freeze());
        let err = decode_shard(&s, &mut rd).unwrap_err();
        assert!(err.to_string().contains("unknown worker message tag"));
    }

    fn heartbeat_reply() -> ShardMsg<Point> {
        ShardMsg::Heartbeat {
            worker: 5,
            now_us: 44_000,
            handled: 129,
            last_step: 17,
            members: 1250,
            dropped: 3,
        }
    }

    #[test]
    fn heartbeat_roundtrips_with_disjoint_tags() {
        roundtrip_ctrl(CtrlMsg::Heartbeat { now_us: 123_456 });
        roundtrip_shard(heartbeat_reply());
        // The request and reply must stay on their own sides of the tag
        // split: decoding either in the other direction fails loudly.
        let s = space();
        let mut buf = BytesMut::new();
        encode_ctrl(&s, &CtrlMsg::<Point>::Heartbeat { now_us: 1 }, &mut buf);
        let mut rd = Bytes::from(buf.freeze());
        let err = decode_shard(&s, &mut rd).unwrap_err();
        assert!(err.to_string().contains("unknown worker message tag"));
        let mut buf = BytesMut::new();
        encode_shard(&s, &heartbeat_reply(), &mut buf);
        let mut rd = Bytes::from(buf.freeze());
        let err = decode_ctrl(&s, &mut rd).unwrap_err();
        assert!(err.to_string().contains("unknown controller message tag"));
    }

    #[test]
    fn heartbeat_truncation_is_rejected() {
        let s = space();
        let mut buf = BytesMut::new();
        encode_shard(&s, &heartbeat_reply(), &mut buf);
        let full = buf.freeze();
        for cut in 0..full.len() {
            let mut rd = full.slice(..cut);
            assert!(
                decode_shard(&s, &mut rd).is_err(),
                "prefix of {cut} bytes must not parse"
            );
        }
    }

    fn arb_point() -> impl Strategy<Value = Point> {
        (-500i32..500, -500i32..500).prop_map(|(x, y)| Point::new(x, y))
    }

    fn arb_record() -> impl Strategy<Value = NodeRecord<Point>> {
        (
            0u32..10_000,
            0u32..1_000,
            arb_point(),
            proptest::collection::vec((0u32..1_000, arb_point()), 0..8),
        )
            .prop_map(|(agent, step, pos, history)| NodeRecord {
                agent,
                step,
                pos,
                history,
            })
    }

    fn arb_ctrl() -> impl Strategy<Value = CtrlMsg<Point>> {
        prop_oneof![
            proptest::collection::vec((0u32..10_000, arb_point()), 0..16)
                .prop_map(|updates| CtrlMsg::Commit { updates }),
            proptest::collection::vec((0u32..10_000, 0u32..1_000, arb_point()), 0..16)
                .prop_map(|updates| CtrlMsg::Rollback { updates }),
            proptest::collection::vec(0u32..10_000, 0..16)
                .prop_map(|agents| CtrlMsg::Depart { agents }),
            proptest::collection::vec(arb_record(), 0..8)
                .prop_map(|records| CtrlMsg::Arrive { records }),
            proptest::collection::vec(
                (0u32..10_000, 0u32..1_000, arb_point()).prop_map(|(agent, step, pos)| Probe {
                    agent,
                    step,
                    pos
                }),
                0..16
            )
            .prop_map(|probes| CtrlMsg::RelinkQuery { probes }),
            (0u32..1_000).prop_map(|floor| CtrlMsg::EvictHistory { floor }),
            Just(CtrlMsg::Quiesce),
            proptest::collection::vec(0u32..10_000, 0..16)
                .prop_map(|expected| CtrlMsg::Recover { expected }),
            Just(CtrlMsg::Shutdown),
            (0u64..1_000_000_000).prop_map(|now_us| CtrlMsg::HarvestTelemetry { now_us }),
            (0u64..1_000_000_000).prop_map(|now_us| CtrlMsg::Heartbeat { now_us }),
        ]
    }

    fn arb_span_kind() -> impl Strategy<Value = SpanKind> {
        prop_oneof![
            (0u64..1_000, 0u32..100, 1u32..64).prop_map(|(cluster, step, members)| {
                SpanKind::Cluster {
                    cluster,
                    step,
                    members,
                }
            }),
            (
                0u32..10_000,
                0u32..100,
                0u64..1_000,
                0usize..CallKind::ALL.len()
            )
                .prop_map(|(agent, step, request, kind)| SpanKind::LlmCall {
                    agent,
                    step,
                    request,
                    kind: CallKind::ALL[kind],
                }),
            (0u64..1_000, 0u32..100, 1u32..64).prop_map(|(cluster, step, members)| {
                SpanKind::Commit {
                    cluster,
                    step,
                    members,
                }
            }),
            (0u32..10_000, 0u32..10_000, 0u32..100, any::<bool>()).prop_map(
                |(agent, blocker, step, barrier)| SpanKind::Blocked {
                    agent,
                    blocker,
                    step,
                    reason: if barrier {
                        BlockReason::Barrier
                    } else {
                        BlockReason::Dependency
                    },
                }
            ),
            (0u32..10_000, 1u32..32)
                .prop_map(|(agents, workers)| SpanKind::Relink { agents, workers }),
            (0u32..10_000, 0u32..100)
                .prop_map(|(agents, crossings)| SpanKind::Migrate { agents, crossings }),
            (0u32..100).prop_map(|step| SpanKind::Checkpoint { step }),
            (
                0u64..1_000,
                0u32..16,
                any::<bool>(),
                prop_oneof![
                    Just(AttemptOutcome::Served),
                    Just(AttemptOutcome::Failed),
                    Just(AttemptOutcome::Refused)
                ]
            )
                .prop_map(|(request, replica, hedge, outcome)| {
                    SpanKind::FleetAttempt {
                        request,
                        replica,
                        hedge,
                        outcome,
                    }
                }),
            (0u64..1_000, 1u32..64)
                .prop_map(|(cluster, members)| SpanKind::Control { cluster, members }),
            (
                0u32..16,
                prop_oneof![
                    Just(BoundaryOp::Send),
                    Just(BoundaryOp::Wait),
                    Just(BoundaryOp::Apply)
                ],
                1u32..100
            )
                .prop_map(|(worker, op, messages)| SpanKind::Boundary {
                    worker,
                    op,
                    messages,
                }),
        ]
    }

    fn arb_span() -> impl Strategy<Value = Span> {
        (0u64..1_000_000, 0u64..1_000_000, 0u32..8, arb_span_kind()).prop_map(
            |(a, b, track, kind)| Span {
                start_us: a.min(b),
                end_us: a.max(b),
                track,
                kind,
            },
        )
    }

    fn arb_telemetry_reply() -> impl Strategy<Value = ShardMsg<Point>> {
        (
            0u32..16,
            0u64..1_000_000_000,
            proptest::collection::vec(arb_span(), 0..12),
            proptest::collection::vec(
                (0usize..Counter::ALL.len(), 0u64..1_000).prop_map(|(i, n)| (Counter::ALL[i], n)),
                0..4,
            ),
            0u64..1_000,
        )
            .prop_map(
                |(worker, now_us, spans, counters, dropped)| ShardMsg::Telemetry {
                    worker,
                    now_us,
                    spans,
                    counters,
                    dropped,
                },
            )
    }

    fn arb_shard() -> impl Strategy<Value = ShardMsg<Point>> {
        prop_oneof![
            Just(ShardMsg::Done),
            proptest::collection::vec(arb_record(), 0..8)
                .prop_map(|records| ShardMsg::Departed { records }),
            proptest::collection::vec(
                (0u32..2, 0u32..10_000, 0u32..10_000).prop_map(|(coupled, a, b)| WireEdge {
                    coupled: coupled == 1,
                    a,
                    b
                }),
                0..16
            )
            .prop_map(|edges| ShardMsg::Edges { edges }),
            (0u64..1_000_000).prop_map(|removed| ShardMsg::Evicted { removed }),
            proptest::collection::vec((0u32..10_000, 0u32..1_000, arb_point()), 0..16)
                .prop_map(|states| ShardMsg::Quiesced { states }),
            proptest::collection::vec((0u32..10_000, 0u32..1_000, arb_point()), 0..16)
                .prop_map(|states| ShardMsg::Recovered { states }),
            (0u32..1_000).prop_map(|n| ShardMsg::Failed {
                message: format!("worker error ({n})"),
            }),
            arb_telemetry_reply(),
            (
                0u32..16,
                0u64..1_000_000_000,
                0u64..1_000_000,
                0u32..1_000,
                0u32..10_000,
                0u64..1_000
            )
                .prop_map(|(worker, now_us, handled, last_step, members, dropped)| {
                    ShardMsg::Heartbeat {
                        worker,
                        now_us,
                        handled,
                        last_step,
                        members,
                        dropped,
                    }
                }),
        ]
    }

    proptest! {
        #[test]
        fn every_ctrl_message_roundtrips(msg in arb_ctrl()) {
            roundtrip_ctrl(msg);
        }

        #[test]
        fn every_shard_message_roundtrips(msg in arb_shard()) {
            roundtrip_shard(msg);
        }

        #[test]
        fn ctrl_streams_roundtrip_in_order(msgs in proptest::collection::vec(arb_ctrl(), 0..6)) {
            let s = space();
            let mut buf = BytesMut::new();
            for m in &msgs {
                encode_ctrl(&s, m, &mut buf);
            }
            let mut rd = Bytes::from(buf.freeze());
            for m in &msgs {
                prop_assert_eq!(&decode_ctrl(&s, &mut rd).unwrap(), m);
            }
            prop_assert_eq!(rd.remaining(), 0);
        }
    }
}
