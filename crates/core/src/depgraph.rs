//! The spatiotemporal dependency graph (paper §3.3).
//!
//! Each node is an agent with its temporal (step) and spatial (position)
//! state; edges are *derived* from the rules of [`crate::rules`]: an edge
//! `B → A` means `A` is currently blocked by `B`, a double edge `A ↔ B`
//! means the agents are coupled. Mirroring the paper, the authoritative
//! node state lives in an in-memory database ([`aim_store::Db`], our Redis
//! substitute) and every cluster advancement is applied as one
//! transaction; an in-process mirror of the nodes answers the controller's
//! queries (is an agent blocked? who couples with whom?) without round
//! trips.

use std::collections::BTreeSet;
use std::sync::Arc;

use bytes::{Bytes, BytesMut};

use aim_store::{codec, Db, StoreError};

use crate::ids::{AgentId, Step};
use crate::rules::{self, RuleParams};
use crate::space::Space;

fn agent_key(a: AgentId) -> String {
    format!("dep:agent:{:08}", a.0)
}

/// A dump of the graph for visualization (paper Fig. 3) and debugging.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphSnapshot {
    /// `(agent, step, position label)` per node.
    pub nodes: Vec<(AgentId, Step, String)>,
    /// `(blocker, blocked)` pairs — the single arrows of Fig. 3.
    pub blocked: Vec<(AgentId, AgentId)>,
    /// Coupled pairs (`a < b`) — the double arrows of Fig. 3.
    pub coupled: Vec<(AgentId, AgentId)>,
}

#[derive(Debug, Clone, Copy)]
struct Node<P> {
    pos: P,
    step: Step,
}

/// Store-backed node table plus rule-driven edge queries.
///
/// `DepGraph` deliberately stores only *nodes*; blocked/coupled edges are
/// recomputed from the rules on demand. This keeps the database writes per
/// cluster advancement O(cluster size) — the paper's workers do exactly
/// this re-examination inside a transaction when they commit a cluster.
pub struct DepGraph<S: Space> {
    space: Arc<S>,
    params: RuleParams,
    db: Arc<Db>,
    nodes: Vec<Node<S::Pos>>,
    /// `(step, agent)` ordered index for lagging-agent scans.
    step_index: BTreeSet<(u32, u32)>,
}

impl<S: Space> std::fmt::Debug for DepGraph<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DepGraph")
            .field("agents", &self.nodes.len())
            .field("min_step", &self.min_step())
            .field("params", &self.params)
            .finish()
    }
}

impl<S: Space> DepGraph<S> {
    /// Creates the graph with every agent at [`Step::ZERO`] and writes the
    /// initial records to `db`.
    ///
    /// # Errors
    ///
    /// Propagates database errors from the initial population transaction.
    pub fn new(
        space: Arc<S>,
        params: RuleParams,
        db: Arc<Db>,
        initial: &[S::Pos],
    ) -> Result<Self, StoreError> {
        let nodes: Vec<Node<S::Pos>> = initial
            .iter()
            .map(|p| Node {
                pos: *p,
                step: Step::ZERO,
            })
            .collect();
        let step_index = (0..nodes.len() as u32).map(|a| (0u32, a)).collect();
        let graph = DepGraph {
            space,
            params,
            db,
            nodes,
            step_index,
        };
        graph.db.transaction(|txn| {
            for (i, node) in graph.nodes.iter().enumerate() {
                txn.set(agent_key(AgentId(i as u32)), graph.encode_node(node));
            }
            txn.set_i64("dep:commits", 0);
            Ok(())
        })?;
        Ok(graph)
    }

    /// Rebuilds the in-memory mirror from the database — demonstrates that
    /// the store, like the paper's Redis, holds the authoritative state.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Codec`] if a record is missing or malformed.
    pub fn recover(
        space: Arc<S>,
        params: RuleParams,
        db: Arc<Db>,
        num_agents: usize,
    ) -> Result<Self, StoreError> {
        let mut nodes = Vec::with_capacity(num_agents);
        for i in 0..num_agents {
            let raw = db
                .get(agent_key(AgentId(i as u32)))
                .ok_or_else(|| StoreError::Codec(format!("missing record for agent {i}")))?;
            let mut rd = Bytes::from(raw);
            let step = Step(codec::get_u32(&mut rd)?);
            let pos = space.decode_pos(&mut rd)?;
            nodes.push(Node { pos, step });
        }
        let step_index = nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (n.step.0, i as u32))
            .collect();
        Ok(DepGraph {
            space,
            params,
            db,
            nodes,
            step_index,
        })
    }

    fn encode_node(&self, node: &Node<S::Pos>) -> Vec<u8> {
        let mut buf = BytesMut::new();
        codec::put_u32(&mut buf, node.step.0);
        self.space.encode_pos(node.pos, &mut buf);
        buf.to_vec()
    }

    /// Number of agents.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph tracks no agents.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The rule parameters in force.
    pub fn params(&self) -> RuleParams {
        self.params
    }

    /// The space agents live in.
    pub fn space(&self) -> &Arc<S> {
        &self.space
    }

    /// The backing store holding the authoritative node records.
    pub fn db(&self) -> &Arc<Db> {
        &self.db
    }

    /// Current position of `a`.
    pub fn pos(&self, a: AgentId) -> S::Pos {
        self.nodes[a.index()].pos
    }

    /// Current (next-to-execute) step of `a`.
    pub fn step(&self, a: AgentId) -> Step {
        self.nodes[a.index()].step
    }

    /// The lowest step any agent is at — the paper's `base_step`.
    pub fn min_step(&self) -> Step {
        self.step_index
            .iter()
            .next()
            .map(|(s, _)| Step(*s))
            .unwrap_or(Step::ZERO)
    }

    /// Advances every `(agent, new_position)` in `updates` by one step, as
    /// a single store transaction (the paper's worker-side graph update).
    ///
    /// # Errors
    ///
    /// Propagates transaction failures; the mirror is only updated after
    /// the transaction commits.
    ///
    /// # Panics
    ///
    /// Panics if an agent id is out of range.
    pub fn advance(&mut self, updates: &[(AgentId, S::Pos)]) -> Result<(), StoreError> {
        // Compute the records outside the closure: retries must be
        // idempotent and the mirror untouched until commit.
        let records: Vec<(String, Vec<u8>)> = updates
            .iter()
            .map(|(a, pos)| {
                let node = Node {
                    pos: *pos,
                    step: self.nodes[a.index()].step.next(),
                };
                (agent_key(*a), self.encode_node(&node))
            })
            .collect();
        self.db.transaction(|txn| {
            for (key, value) in &records {
                txn.set(key, value.clone());
            }
            let commits = txn.get_i64("dep:commits")?;
            txn.set_i64("dep:commits", commits + 1);
            Ok(())
        })?;
        for (a, pos) in updates {
            let node = &mut self.nodes[a.index()];
            let was = (node.step.0, a.0);
            let removed = self.step_index.remove(&was);
            debug_assert!(removed, "agent {a} missing from step index");
            node.step = node.step.next();
            node.pos = *pos;
            self.step_index.insert((node.step.0, a.0));
        }
        Ok(())
    }

    /// Rolls every `(agent, step, position)` in `updates` back to an
    /// earlier state, as a single store transaction — the squash path of
    /// speculative execution (paper §6, implemented in [`crate::spec`]).
    ///
    /// Unlike [`DepGraph::advance`], which always moves an agent forward by
    /// exactly one step, a rollback may rewind several steps at once.
    ///
    /// # Errors
    ///
    /// Propagates transaction failures; the mirror is only updated after
    /// the transaction commits.
    ///
    /// # Panics
    ///
    /// Panics if an agent id is out of range or a target step is *ahead*
    /// of the agent's current step (rollback must rewind, not advance).
    pub fn rollback(&mut self, updates: &[(AgentId, Step, S::Pos)]) -> Result<(), StoreError> {
        let records: Vec<(String, Vec<u8>)> = updates
            .iter()
            .map(|(a, step, pos)| {
                assert!(
                    *step <= self.nodes[a.index()].step,
                    "rollback of {a} to {step} is ahead of current {}",
                    self.nodes[a.index()].step
                );
                (
                    agent_key(*a),
                    self.encode_node(&Node {
                        pos: *pos,
                        step: *step,
                    }),
                )
            })
            .collect();
        self.db.transaction(|txn| {
            for (key, value) in &records {
                txn.set(key, value.clone());
            }
            Ok(())
        })?;
        for (a, step, pos) in updates {
            let node = &mut self.nodes[a.index()];
            let was = (node.step.0, a.0);
            let removed = self.step_index.remove(&was);
            debug_assert!(removed, "agent {a} missing from step index");
            node.step = *step;
            node.pos = *pos;
            self.step_index.insert((node.step.0, a.0));
        }
        Ok(())
    }

    /// Cluster advancements committed so far (read from the store).
    pub fn commits(&self) -> i64 {
        self.db
            .get("dep:commits")
            .map(|v| i64::from_be_bytes(v.as_ref().try_into().unwrap_or([0; 8])))
            .unwrap_or(0)
    }

    /// First agent (in `(step, id)` order) that blocks `a`, if any.
    ///
    /// Scans agents at strictly lower steps, nearest step first, applying
    /// the blocking rule with its gap-dependent radius. `None` means `a`'s
    /// cluster may advance as far as `a` is concerned.
    pub fn first_blocker(&self, a: AgentId) -> Option<AgentId> {
        let node = &self.nodes[a.index()];
        let sa = node.step.0;
        for &(sb, b) in self.step_index.range(..(sa, 0u32)) {
            let delta = sa - sb;
            let units = self.params.blocking_units(delta);
            if self
                .space
                .within_units(node.pos, self.nodes[b as usize].pos, units)
            {
                return Some(AgentId(b));
            }
        }
        None
    }

    /// All agents that block `a` (diagnostics; the scheduler uses
    /// [`DepGraph::first_blocker`]).
    pub fn blockers_of(&self, a: AgentId) -> Vec<AgentId> {
        let node = &self.nodes[a.index()];
        let sa = node.step.0;
        self.step_index
            .range(..(sa, 0u32))
            .filter(|&&(sb, b)| {
                let units = self.params.blocking_units(sa - sb);
                self.space
                    .within_units(node.pos, self.nodes[b as usize].pos, units)
            })
            .map(|&(_, b)| AgentId(b))
            .collect()
    }

    /// Agents at the same step as `a` within the coupling radius
    /// (excluding `a`).
    pub fn coupled_neighbors(&self, a: AgentId) -> Vec<AgentId> {
        let node = &self.nodes[a.index()];
        let s = node.step.0;
        let units = self.params.coupling_units();
        self.step_index
            .range((s, 0u32)..(s + 1, 0u32))
            .filter(|&&(_, b)| b != a.0)
            .filter(|&&(_, b)| {
                self.space
                    .within_units(node.pos, self.nodes[b as usize].pos, units)
            })
            .map(|&(_, b)| AgentId(b))
            .collect()
    }

    /// Agents whose current step is `<= step`, in `(step, id)` order —
    /// the candidates that could still write into a read performed at
    /// `step` (used by speculative retirement clearance).
    pub fn agents_at_or_below(&self, step: Step) -> impl Iterator<Item = (Step, AgentId)> + '_ {
        self.step_index
            .range(..(step.0 + 1, 0u32))
            .map(|&(s, a)| (Step(s), AgentId(a)))
    }

    /// Agents whose step equals `step` (sorted by id).
    pub fn agents_at_step(&self, step: Step) -> Vec<AgentId> {
        self.step_index
            .range((step.0, 0u32)..(step.0 + 1, 0u32))
            .map(|&(_, b)| AgentId(b))
            .collect()
    }

    /// Verifies the §3.2 validity condition over the whole graph.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violating pair.
    pub fn validate(&self) -> Result<(), String> {
        let states: Vec<(S::Pos, Step)> = self.nodes.iter().map(|n| (n.pos, n.step)).collect();
        match rules::find_violation(self.space.as_ref(), self.params, &states) {
            None => Ok(()),
            Some((i, j)) => Err(format!(
                "validity violated: agent{} at {:?}/{} vs agent{} at {:?}/{}",
                i, self.nodes[i].pos, self.nodes[i].step, j, self.nodes[j].pos, self.nodes[j].step
            )),
        }
    }

    /// Dumps nodes and derived edges (O(n²)) for visualization.
    pub fn snapshot(&self) -> GraphSnapshot {
        let mut blocked = Vec::new();
        let mut coupled = Vec::new();
        for i in 0..self.nodes.len() {
            let a = AgentId(i as u32);
            for b in self.blockers_of(a) {
                blocked.push((b, a));
            }
            for b in self.coupled_neighbors(a) {
                if a.0 < b.0 {
                    coupled.push((a, b));
                }
            }
        }
        GraphSnapshot {
            nodes: self
                .nodes
                .iter()
                .enumerate()
                .map(|(i, n)| (AgentId(i as u32), n.step, format!("{:?}", n.pos)))
                .collect(),
            blocked,
            coupled,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{GridSpace, Point};

    fn graph(points: &[(i32, i32)]) -> DepGraph<GridSpace> {
        let space = Arc::new(GridSpace::new(100, 140));
        let db = Arc::new(Db::new());
        let initial: Vec<Point> = points.iter().map(|&(x, y)| Point::new(x, y)).collect();
        DepGraph::new(space, RuleParams::genagent(), db, &initial).unwrap()
    }

    #[test]
    fn initial_state_is_step_zero_everywhere() {
        let g = graph(&[(0, 0), (10, 10), (20, 20)]);
        assert_eq!(g.len(), 3);
        for i in 0..3 {
            assert_eq!(g.step(AgentId(i)), Step::ZERO);
        }
        assert_eq!(g.min_step(), Step::ZERO);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn advance_moves_step_and_position() {
        let mut g = graph(&[(0, 0), (50, 50)]);
        g.advance(&[(AgentId(0), Point::new(1, 0))]).unwrap();
        assert_eq!(g.step(AgentId(0)), Step(1));
        assert_eq!(g.pos(AgentId(0)), Point::new(1, 0));
        assert_eq!(g.step(AgentId(1)), Step(0));
        assert_eq!(g.min_step(), Step(0));
        assert_eq!(g.commits(), 1);
    }

    #[test]
    fn blockers_follow_gap_radius() {
        let mut g = graph(&[(0, 0), (8, 0), (50, 50)]);
        // Move agent 1 three steps ahead (staying at x=8).
        for _ in 0..3 {
            g.advance(&[(AgentId(1), Point::new(8, 0))]).unwrap();
        }
        // Gap 3: blocking radius (3+1)*1+4 = 8 → agent 0 at dist 8 blocks 1.
        assert_eq!(g.first_blocker(AgentId(1)), Some(AgentId(0)));
        assert_eq!(g.blockers_of(AgentId(1)), vec![AgentId(0)]);
        // Agent 0 is at the min step: nothing can block it.
        assert_eq!(g.first_blocker(AgentId(0)), None);
        // Agent 2 is far away: unblocked despite lagging agents.
        for _ in 0..3 {
            g.advance(&[(AgentId(2), Point::new(50, 50))]).unwrap();
        }
        assert_eq!(g.first_blocker(AgentId(2)), None);
    }

    #[test]
    fn coupled_neighbors_same_step_only() {
        let mut g = graph(&[(0, 0), (5, 0), (6, 0)]);
        assert_eq!(g.coupled_neighbors(AgentId(0)), vec![AgentId(1)]);
        assert_eq!(
            g.coupled_neighbors(AgentId(1)),
            vec![AgentId(0), AgentId(2)]
        );
        // Advance agent 1: no longer same step, couples with nobody.
        g.advance(&[(AgentId(1), Point::new(5, 0))]).unwrap();
        assert!(g.coupled_neighbors(AgentId(1)).is_empty());
        assert!(g.coupled_neighbors(AgentId(0)).is_empty());
    }

    #[test]
    fn agents_at_step_buckets() {
        let mut g = graph(&[(0, 0), (50, 0), (99, 0)]);
        g.advance(&[(AgentId(2), Point::new(99, 1))]).unwrap();
        assert_eq!(g.agents_at_step(Step(0)), vec![AgentId(0), AgentId(1)]);
        assert_eq!(g.agents_at_step(Step(1)), vec![AgentId(2)]);
        assert!(g.agents_at_step(Step(2)).is_empty());
    }

    #[test]
    fn snapshot_contains_expected_edges() {
        let mut g = graph(&[(0, 0), (4, 0), (30, 30)]);
        // Advance the far agent so a blocked edge exists… it is too far to
        // be blocked; instead advance the near pair's neighbor.
        g.advance(&[(AgentId(2), Point::new(30, 30))]).unwrap();
        let snap = g.snapshot();
        assert_eq!(snap.nodes.len(), 3);
        assert!(snap.coupled.contains(&(AgentId(0), AgentId(1))));
        assert!(snap.blocked.is_empty());
    }

    #[test]
    fn recover_matches_live_state() {
        let space = Arc::new(GridSpace::new(100, 140));
        let db = Arc::new(Db::new());
        let initial = vec![Point::new(0, 0), Point::new(20, 20)];
        let mut g = DepGraph::new(
            Arc::clone(&space),
            RuleParams::genagent(),
            Arc::clone(&db),
            &initial,
        )
        .unwrap();
        g.advance(&[(AgentId(0), Point::new(1, 1))]).unwrap();
        g.advance(&[(AgentId(0), Point::new(2, 2))]).unwrap();
        let r = DepGraph::recover(space, RuleParams::genagent(), db, 2).unwrap();
        assert_eq!(r.step(AgentId(0)), Step(2));
        assert_eq!(r.pos(AgentId(0)), Point::new(2, 2));
        assert_eq!(r.step(AgentId(1)), Step(0));
        assert_eq!(r.min_step(), Step(0));
    }

    #[test]
    fn rollback_rewinds_step_and_position() {
        let mut g = graph(&[(0, 0), (50, 50)]);
        g.advance(&[(AgentId(0), Point::new(1, 0))]).unwrap();
        g.advance(&[(AgentId(0), Point::new(2, 0))]).unwrap();
        assert_eq!(g.step(AgentId(0)), Step(2));
        g.rollback(&[(AgentId(0), Step(1), Point::new(1, 0))])
            .unwrap();
        assert_eq!(g.step(AgentId(0)), Step(1));
        assert_eq!(g.pos(AgentId(0)), Point::new(1, 0));
        assert_eq!(g.min_step(), Step(0));
        // The store reflects the rollback: recovery sees the rewound state.
        let r = DepGraph::recover(
            Arc::new(GridSpace::new(100, 140)),
            RuleParams::genagent(),
            Arc::clone(g.db()),
            2,
        )
        .unwrap();
        assert_eq!(r.step(AgentId(0)), Step(1));
        assert_eq!(r.pos(AgentId(0)), Point::new(1, 0));
    }

    #[test]
    fn rollback_to_current_step_is_identity_on_step() {
        let mut g = graph(&[(0, 0)]);
        g.advance(&[(AgentId(0), Point::new(1, 0))]).unwrap();
        g.rollback(&[(AgentId(0), Step(1), Point::new(0, 1))])
            .unwrap();
        assert_eq!(g.step(AgentId(0)), Step(1));
        assert_eq!(g.pos(AgentId(0)), Point::new(0, 1));
    }

    #[test]
    fn rollback_ahead_of_current_step_panics() {
        let mut g = graph(&[(0, 0)]);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            g.rollback(&[(AgentId(0), Step(3), Point::new(0, 0))])
                .unwrap();
        }));
        assert!(result.is_err());
    }

    #[test]
    fn validate_detects_violation() {
        // Force an invalid state through raw advances: two adjacent agents
        // with a step gap of 2 violates dist > radius_p + max_vel.
        let mut g = graph(&[(0, 0), (1, 0)]);
        g.advance(&[(AgentId(1), Point::new(1, 0))]).unwrap();
        g.advance(&[(AgentId(1), Point::new(1, 0))]).unwrap();
        assert!(g.validate().is_err());
    }
}
