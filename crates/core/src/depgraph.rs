//! The spatiotemporal dependency graph (paper §3.3).
//!
//! Each node is an agent with its temporal (step) and spatial (position)
//! state; edges are *derived* from the rules of [`crate::rules`]: an edge
//! `B → A` means `A` is currently blocked by `B`, a double edge `A ↔ B`
//! means the agents are coupled. Mirroring the paper, the authoritative
//! node state lives in an in-memory database ([`aim_store::Db`], our Redis
//! substitute) and every cluster advancement is applied as one
//! transaction; an in-process mirror of the nodes answers the controller's
//! queries (is an agent blocked? who couples with whom?) without round
//! trips.
//!
//! # Incremental edge maintenance
//!
//! Blocked/coupled edges are **maintained**, not recomputed per query:
//! when a commit (or rollback) moves a set of agents, only the edges
//! *incident to those agents* are torn down and rebuilt, using the
//! space's [`SpatialIndex`] to enumerate candidate neighbors instead of
//! scanning the population. This is sound because an edge between two
//! agents that both stayed put cannot change — positions are fixed and
//! the blocking radius depends only on the pair's step gap — and, by the
//! validity argument of §3.2 (Appendix A), an agent advancing can only
//! *shed* edges it has to bystanders, never create one; every edge it
//! gains is incident to it and therefore rebuilt here. Queries
//! ([`DepGraph::first_blocker`], [`DepGraph::coupled_of`]) then serve
//! from adjacency lists in O(degree) without allocating.
//!
//! The node table in the store remains the authoritative state; adjacency
//! is a derived cache that [`DepGraph::recover`] rebuilds from scratch,
//! which the property tests exploit to cross-check the incremental
//! maintenance against a full rebuild after every operation.

use std::collections::BTreeSet;
use std::sync::Arc;

use bytes::{Bytes, BytesMut};

use aim_store::{codec, Db, Key, StoreError};

use crate::ids::{AgentId, Step};
use crate::rules::{self, RuleParams};
use crate::space::{Space, SpatialIndex};

/// Namespace tag of the per-agent node records (`Key::tagged_u32`).
/// Crate-visible so the distributed shard workers ([`crate::dist`]) write
/// the identical authoritative layout into their own databases.
pub(crate) const AGENT_TAG: [u8; 4] = *b"dagt";

/// Namespace tag of the per-step history records
/// (`Key::tagged_u32_pair(HIST_TAG, step, agent)`). Step-major layout:
/// an ordered prefix walk visits history oldest-step-first, so the
/// eviction pass stops touching records at the first retained step.
pub(crate) const HIST_TAG: [u8; 4] = *b"dhst";

/// Store key of the history-eviction watermark: every history record at a
/// step `< dep:hist_floor` has been compacted away.
pub(crate) const HIST_FLOOR_KEY: &str = "dep:hist_floor";

/// The dependency-tracking surface the [`crate::scheduler::Scheduler`]
/// and the executors consume, abstracted so the same state machine drives
/// both the single-shard [`DepGraph`] and the partitioned
/// [`crate::shard::ShardedDepGraph`].
///
/// Implementations must answer edge queries (`first_blocker`,
/// `coupled_of`) **exactly** per the §3.2 rules — the scheduler's
/// correctness argument assumes the tracker never misses an edge. How the
/// adjacency is stored (one global index, spatial shards…) is the
/// implementation's business; it changes cost, never a scheduling
/// decision.
pub trait DepTracker<S: Space>: Send {
    /// Number of agents tracked.
    fn len(&self) -> usize;

    /// Current (next-to-execute) step of `a`.
    fn step(&self, a: AgentId) -> Step;

    /// Current position of `a`.
    fn pos(&self, a: AgentId) -> S::Pos;

    /// The lowest step any agent is at (the paper's `base_step`).
    fn min_step(&self) -> Step;

    /// The highest step any agent is at.
    fn max_step(&self) -> Step;

    /// Advances every `(agent, new_position)` one step as a single store
    /// transaction and repairs the derived edges.
    ///
    /// # Errors
    ///
    /// Propagates store transaction failures.
    fn advance(&mut self, updates: &[(AgentId, S::Pos)]) -> Result<(), StoreError>;

    /// First agent (in `(step, id)` order) currently blocking `a`.
    fn first_blocker(&self, a: AgentId) -> Option<AgentId>;

    /// Same-step coupling partners of `a`, ascending by id.
    fn coupled_of(&self, a: AgentId) -> &[AgentId];

    /// Compacts per-step history below the deepest legal rollback (no-op
    /// without history recording).
    ///
    /// # Errors
    ///
    /// Propagates store errors.
    fn evict_history(&mut self) -> Result<u64, StoreError>;

    /// Checks the §3.2 validity condition over the whole graph.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violating pair.
    fn validate(&self) -> Result<(), String>;

    /// Attaches a telemetry sink so the tracker can record its internal
    /// work (relink batches, shard migrations) as spans. Default: ignore
    /// — the single-shard [`DepGraph`]'s per-commit edge repair is folded
    /// into the controller span, so only partitioned trackers override.
    fn set_telemetry(&mut self, telemetry: std::sync::Arc<crate::telemetry::Telemetry>) {
        let _ = telemetry;
    }

    /// Drains any telemetry buffered outside the attached sink into it
    /// (end-of-run and on-demand hook). Default: no-op — only trackers
    /// whose workers record into their own buffers
    /// ([`crate::dist::DistTracker`]) have anything to collect; harvest
    /// is best-effort observability and must never fail a run.
    fn harvest_telemetry(&mut self) {}
}

/// A dump of the graph for visualization (paper Fig. 3) and debugging.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphSnapshot {
    /// `(agent, step, position label)` per node.
    pub nodes: Vec<(AgentId, Step, String)>,
    /// `(blocker, blocked)` pairs — the single arrows of Fig. 3.
    pub blocked: Vec<(AgentId, AgentId)>,
    /// Coupled pairs (`a < b`) — the double arrows of Fig. 3.
    pub coupled: Vec<(AgentId, AgentId)>,
}

#[derive(Debug, Clone, Copy)]
struct Node<P> {
    pos: P,
    step: Step,
}

/// Whether a [`DepGraph`] maintains the derived blocked/coupled edges.
///
/// Edge maintenance costs a little work on every commit; policies that
/// never ask edge questions (global-sync, no-dependency, oracle — they
/// schedule without consulting the spatiotemporal rules) run with
/// [`EdgeMode::Off`] so the ablation arms do not pay for machinery only
/// the metropolis policy uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeMode {
    /// Keep blocked/coupled adjacency up to date incrementally on every
    /// advance/rollback. Edge queries are O(degree).
    Maintained,
    /// Skip edge maintenance entirely. Edge queries
    /// ([`DepGraph::first_blocker`], [`DepGraph::coupled_of`],
    /// [`DepGraph::blockers_of`], [`DepGraph::snapshot`]) panic.
    Off,
}

/// Construction options of a [`DepGraph`]: edge maintenance plus
/// per-step history recording.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphOptions {
    /// Whether derived blocked/coupled edges are maintained (see
    /// [`EdgeMode`]).
    pub edges: EdgeMode,
    /// Whether every committed `(agent, step)` record is also written as
    /// an immutable history record `dhst ‖ step ‖ agent` in the same
    /// transaction. History is what long-horizon checkpoint/resume and
    /// rollback auditing read; it grows O(agents × horizon) unless the
    /// run periodically calls [`DepGraph::evict_history`], which compacts
    /// it to O(agents × window). Off by default — the conservative
    /// replay paths never read it.
    pub history: bool,
}

impl Default for GraphOptions {
    fn default() -> Self {
        GraphOptions {
            edges: EdgeMode::Maintained,
            history: false,
        }
    }
}

/// The derived-edge state of a [`DepGraph`] in [`EdgeMode::Maintained`].
struct Edges<S: Space> {
    /// Dynamic neighborhood index, when the space provides one.
    index: Option<Box<dyn SpatialIndex<S::Pos>>>,
    /// Same-step coupling partners per agent, ascending by id.
    coupled: Vec<Vec<AgentId>>,
    /// Agents currently blocking each agent, ascending by id.
    blockers: Vec<Vec<AgentId>>,
    /// Reverse of `blockers`: agents each agent currently blocks.
    blockees: Vec<Vec<AgentId>>,
    /// Reused candidate buffer for index queries.
    scratch: Vec<u32>,
}

/// Store-backed node table plus incrementally maintained rule edges.
///
/// The store holds only *nodes* (database writes per cluster advancement
/// stay O(cluster size), as in the paper's worker transactions); the
/// in-process mirror additionally maintains the derived blocked/coupled
/// adjacency so controller queries are O(degree) — see the
/// [module docs](self) for the maintenance invariant.
pub struct DepGraph<S: Space> {
    space: Arc<S>,
    params: RuleParams,
    db: Arc<Db>,
    nodes: Vec<Node<S::Pos>>,
    /// `(step, agent)` ordered index for lagging-agent scans.
    step_index: BTreeSet<(u32, u32)>,
    /// Interned store key per agent record (allocation-free write path).
    keys: Vec<Key>,
    commits_key: Key,
    /// Maintained edge state, present in [`EdgeMode::Maintained`].
    edges: Option<Edges<S>>,
    /// Reused `(agent, encoded record)` buffer for transactions.
    records: Vec<(u32, Bytes)>,
    /// Whether per-step history records are written (see [`GraphOptions`]).
    history: bool,
    /// Reused history write/delete buffer: `(key, Some(value))` writes,
    /// `(key, None)` deletes.
    hist_records: Vec<(Key, Option<Bytes>)>,
}

impl<S: Space> std::fmt::Debug for DepGraph<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DepGraph")
            .field("agents", &self.nodes.len())
            .field("min_step", &self.min_step())
            .field("params", &self.params)
            .finish()
    }
}

impl<S: Space> DepGraph<S> {
    /// Creates the graph with every agent at [`Step::ZERO`] and writes the
    /// initial records to `db`.
    ///
    /// # Errors
    ///
    /// Propagates database errors from the initial population transaction.
    pub fn new(
        space: Arc<S>,
        params: RuleParams,
        db: Arc<Db>,
        initial: &[S::Pos],
    ) -> Result<Self, StoreError> {
        Self::new_with_mode(space, params, db, initial, EdgeMode::Maintained)
    }

    /// [`DepGraph::new`] with explicit control over edge maintenance (see
    /// [`EdgeMode`]).
    ///
    /// # Errors
    ///
    /// Propagates database errors from the initial population transaction.
    pub fn new_with_mode(
        space: Arc<S>,
        params: RuleParams,
        db: Arc<Db>,
        initial: &[S::Pos],
        mode: EdgeMode,
    ) -> Result<Self, StoreError> {
        Self::new_with_options(
            space,
            params,
            db,
            initial,
            GraphOptions {
                edges: mode,
                history: false,
            },
        )
    }

    /// [`DepGraph::new`] with full construction options (edge maintenance
    /// and per-step history recording — see [`GraphOptions`]).
    ///
    /// # Errors
    ///
    /// Propagates database errors from the initial population transaction.
    pub fn new_with_options(
        space: Arc<S>,
        params: RuleParams,
        db: Arc<Db>,
        initial: &[S::Pos],
        options: GraphOptions,
    ) -> Result<Self, StoreError> {
        let nodes: Vec<Node<S::Pos>> = initial
            .iter()
            .map(|p| Node {
                pos: *p,
                step: Step::ZERO,
            })
            .collect();
        let graph = Self::assemble(space, params, db, nodes, options);
        graph.db.transaction(|txn| {
            for (i, node) in graph.nodes.iter().enumerate() {
                let value = graph.encode_node(node);
                if graph.history {
                    txn.set_key(&Key::tagged_u32_pair(HIST_TAG, 0, i as u32), value.clone());
                }
                txn.set_key(&graph.keys[i], value);
            }
            txn.set_i64("dep:commits", 0);
            if graph.history {
                txn.set_i64(HIST_FLOOR_KEY, 0);
            }
            Ok(())
        })?;
        Ok(graph)
    }

    /// Builds the full in-process mirror (step index, spatial index,
    /// adjacency) around an already-decided node table.
    fn assemble(
        space: Arc<S>,
        params: RuleParams,
        db: Arc<Db>,
        nodes: Vec<Node<S::Pos>>,
        options: GraphOptions,
    ) -> Self {
        let n = nodes.len();
        let step_index = nodes
            .iter()
            .enumerate()
            .map(|(i, node)| (node.step.0, i as u32))
            .collect();
        let keys = (0..n as u32)
            .map(|a| Key::tagged_u32(AGENT_TAG, a))
            .collect();
        let edges = match options.edges {
            EdgeMode::Off => None,
            EdgeMode::Maintained => {
                let mut index = space.make_index(params.coupling_units());
                if let Some(idx) = index.as_mut() {
                    for (i, node) in nodes.iter().enumerate() {
                        idx.insert(i as u32, node.pos);
                    }
                }
                Some(Edges {
                    index,
                    coupled: vec![Vec::new(); n],
                    blockers: vec![Vec::new(); n],
                    blockees: vec![Vec::new(); n],
                    scratch: Vec::new(),
                })
            }
        };
        let mut graph = DepGraph {
            space,
            params,
            db,
            nodes,
            step_index,
            keys,
            commits_key: Key::new("dep:commits"),
            edges,
            records: Vec::new(),
            history: options.history,
            hist_records: Vec::new(),
        };
        graph.rebuild_edges();
        graph
    }

    /// The edge maintenance mode in force.
    pub fn edge_mode(&self) -> EdgeMode {
        if self.edges.is_some() {
            EdgeMode::Maintained
        } else {
            EdgeMode::Off
        }
    }

    fn edges(&self) -> &Edges<S> {
        self.edges
            .as_ref()
            .expect("edge queries require EdgeMode::Maintained")
    }

    /// Recomputes every blocked/coupled edge from scratch (initialisation
    /// and recovery; steady-state maintenance is incremental).
    fn rebuild_edges(&mut self) {
        let Some(edges) = self.edges.as_mut() else {
            return;
        };
        for list in edges
            .coupled
            .iter_mut()
            .chain(edges.blockers.iter_mut())
            .chain(edges.blockees.iter_mut())
        {
            list.clear();
        }
        for a in 0..self.nodes.len() as u32 {
            self.relink(AgentId(a), true);
        }
    }

    /// The widest rule radius relevant to `a` right now: the blocking
    /// threshold at `a`'s largest possible step gap (which also covers the
    /// coupling threshold, `blocking_units(0)`).
    fn query_units(&self, step: Step) -> u64 {
        let lo = self.min_step().0;
        let hi = self.max_step().0;
        let gap = (step.0 - lo.min(step.0)).max(hi.max(step.0) - step.0);
        self.params.blocking_units(gap)
    }

    /// Rebuilds the edges incident to `a` from its current node state.
    ///
    /// With `forward_only`, only neighbors with a larger id are linked —
    /// used by [`DepGraph::rebuild_edges`], where every agent is visited
    /// and each unordered pair must be linked exactly once. Incremental
    /// callers pass `false` (and detach `a` first). No-op in
    /// [`EdgeMode::Off`].
    fn relink(&mut self, a: AgentId, forward_only: bool) {
        let Some(mut edges) = self.edges.take() else {
            return;
        };
        let node = self.nodes[a.index()];
        let units = self.query_units(node.step);
        edges.scratch.clear();
        let mut scratch = std::mem::take(&mut edges.scratch);
        let candidates: &[u32] = match edges.index.as_ref() {
            Some(idx) => {
                idx.query(node.pos, units, &mut scratch);
                &scratch
            }
            None => {
                scratch.extend(0..self.nodes.len() as u32);
                &scratch
            }
        };
        for &c in candidates {
            if c == a.0 || (forward_only && c < a.0) {
                continue;
            }
            let b = AgentId(c);
            let other = self.nodes[b.index()];
            if other.step == node.step {
                if self
                    .space
                    .within_units(node.pos, other.pos, self.params.coupling_units())
                {
                    insert_sorted(&mut edges.coupled[a.index()], b);
                    insert_sorted(&mut edges.coupled[b.index()], a);
                }
            } else {
                // The lower-step agent blocks the higher-step one inside
                // the gap-widened radius.
                let (lo, hi) = if node.step < other.step {
                    (a, b)
                } else {
                    (b, a)
                };
                let gap = node.step.abs_diff(other.step);
                if self
                    .space
                    .within_units(node.pos, other.pos, self.params.blocking_units(gap))
                {
                    insert_sorted(&mut edges.blockers[hi.index()], lo);
                    insert_sorted(&mut edges.blockees[lo.index()], hi);
                }
            }
        }
        edges.scratch = scratch;
        self.edges = Some(edges);
    }

    /// Applies one committed `(step, pos)` mirror update and tears down the
    /// agent's incident edges; callers [`DepGraph::relink`] every updated
    /// agent once the whole batch's node states are in place.
    fn apply_node(&mut self, a: AgentId, step: Step, pos: S::Pos) {
        let node = &mut self.nodes[a.index()];
        let was = (node.step.0, a.0);
        let removed = self.step_index.remove(&was);
        debug_assert!(removed, "agent {a} missing from step index");
        if let Some(edges) = self.edges.as_mut() {
            if let Some(idx) = edges.index.as_mut() {
                idx.update(a.0, node.pos, pos);
            }
        }
        node.step = step;
        node.pos = pos;
        self.step_index.insert((step.0, a.0));
        // Detach every edge incident to `a` (both directions).
        if let Some(edges) = self.edges.as_mut() {
            for b in std::mem::take(&mut edges.coupled[a.index()]) {
                remove_sorted(&mut edges.coupled[b.index()], a);
            }
            for b in std::mem::take(&mut edges.blockers[a.index()]) {
                remove_sorted(&mut edges.blockees[b.index()], a);
            }
            for b in std::mem::take(&mut edges.blockees[a.index()]) {
                remove_sorted(&mut edges.blockers[b.index()], a);
            }
        }
    }

    /// Rebuilds the in-memory mirror from the database — demonstrates that
    /// the store, like the paper's Redis, holds the authoritative state.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Codec`] if a record is missing or malformed.
    pub fn recover(
        space: Arc<S>,
        params: RuleParams,
        db: Arc<Db>,
        num_agents: usize,
    ) -> Result<Self, StoreError> {
        Self::recover_with_options(space, params, db, num_agents, GraphOptions::default())
    }

    /// [`DepGraph::recover`] with explicit [`GraphOptions`] — how a
    /// restored snapshot resumes: the records (including history and the
    /// eviction watermark) are already in `db`, so recovery just rebuilds
    /// the in-process mirror around them.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Codec`] if a record is missing or malformed.
    pub fn recover_with_options(
        space: Arc<S>,
        params: RuleParams,
        db: Arc<Db>,
        num_agents: usize,
        options: GraphOptions,
    ) -> Result<Self, StoreError> {
        let mut nodes = Vec::with_capacity(num_agents);
        for i in 0..num_agents {
            let raw = db
                .get(Key::tagged_u32(AGENT_TAG, i as u32))
                .ok_or_else(|| StoreError::Codec(format!("missing record for agent {i}")))?;
            let mut rd = raw;
            let step = Step(codec::get_u32(&mut rd)?);
            let pos = space.decode_pos(&mut rd)?;
            nodes.push(Node { pos, step });
        }
        Ok(Self::assemble(space, params, db, nodes, options))
    }

    fn encode_node(&self, node: &Node<S::Pos>) -> Bytes {
        let mut buf = BytesMut::new();
        codec::put_u32(&mut buf, node.step.0);
        self.space.encode_pos(node.pos, &mut buf);
        buf.freeze()
    }

    /// Number of agents.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph tracks no agents.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The rule parameters in force.
    pub fn params(&self) -> RuleParams {
        self.params
    }

    /// The space agents live in.
    pub fn space(&self) -> &Arc<S> {
        &self.space
    }

    /// The backing store holding the authoritative node records.
    pub fn db(&self) -> &Arc<Db> {
        &self.db
    }

    /// Current position of `a`.
    pub fn pos(&self, a: AgentId) -> S::Pos {
        self.nodes[a.index()].pos
    }

    /// Current (next-to-execute) step of `a`.
    pub fn step(&self, a: AgentId) -> Step {
        self.nodes[a.index()].step
    }

    /// The lowest step any agent is at — the paper's `base_step`.
    pub fn min_step(&self) -> Step {
        self.step_index
            .iter()
            .next()
            .map(|(s, _)| Step(*s))
            .unwrap_or(Step::ZERO)
    }

    /// The highest step any agent is at; `max_step() - min_step()` is the
    /// current step skew, O(log n) from the step index.
    pub fn max_step(&self) -> Step {
        self.step_index
            .iter()
            .next_back()
            .map(|(s, _)| Step(*s))
            .unwrap_or(Step::ZERO)
    }

    /// Advances every `(agent, new_position)` in `updates` by one step, as
    /// a single store transaction (the paper's worker-side graph update).
    ///
    /// # Errors
    ///
    /// Propagates transaction failures; the mirror is only updated after
    /// the transaction commits.
    ///
    /// # Panics
    ///
    /// Panics if an agent id is out of range.
    pub fn advance(&mut self, updates: &[(AgentId, S::Pos)]) -> Result<(), StoreError> {
        // Encode the records outside the closure: retries must be
        // idempotent and the mirror untouched until commit. The buffer,
        // keys, and values are all reused/refcounted — the loop allocates
        // once per record for the encoded value and nothing else.
        let mut records = std::mem::take(&mut self.records);
        records.clear();
        records.extend(updates.iter().map(|(a, pos)| {
            let node = Node {
                pos: *pos,
                step: self.nodes[a.index()].step.next(),
            };
            (a.0, self.encode_node(&node))
        }));
        let result = if self.history {
            // History rides in the same transaction: the step's record and
            // its immutable history entry commit or retry together. This
            // arm is deliberately separate from the history-off one below
            // so runs without history keep the lean original closure on
            // their per-commit hot path.
            let mut hist = std::mem::take(&mut self.hist_records);
            hist.clear();
            hist.extend(updates.iter().zip(&records).map(|((a, _), (_, value))| {
                let step = self.nodes[a.index()].step.next();
                (
                    Key::tagged_u32_pair(HIST_TAG, step.0, a.0),
                    Some(value.clone()),
                )
            }));
            let keys = &self.keys;
            let commits_key = &self.commits_key;
            let r = self.db.transaction(|txn| {
                for (a, value) in &records {
                    txn.set_key(&keys[*a as usize], value.clone());
                }
                for (key, value) in &hist {
                    match value {
                        Some(v) => txn.set_key(key, v.clone()),
                        None => txn.del(key),
                    }
                }
                bump_commit_counter(txn, commits_key)
            });
            hist.clear();
            self.hist_records = hist;
            r
        } else {
            let keys = &self.keys;
            let commits_key = &self.commits_key;
            self.db.transaction(|txn| {
                for (a, value) in &records {
                    txn.set_key(&keys[*a as usize], value.clone());
                }
                bump_commit_counter(txn, commits_key)
            })
        };
        records.clear();
        self.records = records;
        result?;
        for &(a, pos) in updates {
            let next = self.nodes[a.index()].step.next();
            self.apply_node(a, next, pos);
        }
        for &(a, _) in updates {
            self.relink(a, false);
        }
        Ok(())
    }

    /// Rolls every `(agent, step, position)` in `updates` back to an
    /// earlier state, as a single store transaction — the squash path of
    /// speculative execution (paper §6, implemented in [`crate::spec`]).
    ///
    /// Unlike [`DepGraph::advance`], which always moves an agent forward by
    /// exactly one step, a rollback may rewind several steps at once.
    ///
    /// # Errors
    ///
    /// Propagates transaction failures; the mirror is only updated after
    /// the transaction commits.
    ///
    /// # Panics
    ///
    /// Panics if an agent id is out of range or a target step is *ahead*
    /// of the agent's current step (rollback must rewind, not advance).
    pub fn rollback(&mut self, updates: &[(AgentId, Step, S::Pos)]) -> Result<(), StoreError> {
        let mut records = std::mem::take(&mut self.records);
        records.clear();
        records.extend(updates.iter().map(|(a, step, pos)| {
            assert!(
                *step <= self.nodes[a.index()].step,
                "rollback of {a} to {step} is ahead of current {}",
                self.nodes[a.index()].step
            );
            (
                a.0,
                self.encode_node(&Node {
                    pos: *pos,
                    step: *step,
                }),
            )
        }));
        let mut hist = std::mem::take(&mut self.hist_records);
        hist.clear();
        if self.history {
            // A squash rewrites history: the target step's record is
            // replaced (its position may differ from the first visit) and
            // every discarded future step's record is deleted, so history
            // only ever describes committed, non-squashed state.
            for ((a, step, _), (_, value)) in updates.iter().zip(&records) {
                hist.push((
                    Key::tagged_u32_pair(HIST_TAG, step.0, a.0),
                    Some(value.clone()),
                ));
                for squashed in (step.0 + 1)..=self.nodes[a.index()].step.0 {
                    hist.push((Key::tagged_u32_pair(HIST_TAG, squashed, a.0), None));
                }
            }
        }
        let result = {
            let keys = &self.keys;
            self.db.transaction(|txn| {
                for (a, value) in &records {
                    txn.set_key(&keys[*a as usize], value.clone());
                }
                for (key, value) in &hist {
                    match value {
                        Some(v) => txn.set_key(key, v.clone()),
                        None => txn.del(key),
                    }
                }
                Ok(())
            })
        };
        records.clear();
        self.records = records;
        hist.clear();
        self.hist_records = hist;
        result?;
        for &(a, step, pos) in updates {
            self.apply_node(a, step, pos);
        }
        for &(a, _, _) in updates {
            self.relink(a, false);
        }
        Ok(())
    }

    /// Cluster advancements committed so far (read from the store).
    pub fn commits(&self) -> i64 {
        self.db
            .get("dep:commits")
            .map(|v| i64::from_be_bytes(v.as_ref().try_into().unwrap_or([0; 8])))
            .unwrap_or(0)
    }

    /// Whether per-step history records are being written (see
    /// [`GraphOptions`]).
    pub fn history_enabled(&self) -> bool {
        self.history
    }

    /// The eviction watermark: every history record at a step below this
    /// has been compacted away. Read from the store (`dep:hist_floor`),
    /// so it survives snapshot/restore.
    pub fn history_floor(&self) -> Step {
        Step(self.db.get_i64(HIST_FLOOR_KEY).unwrap_or(0).max(0) as u32)
    }

    /// Number of resident history records (an O(history) scan —
    /// diagnostics and tests, not a hot path).
    pub fn history_records(&self) -> u64 {
        let mut n = 0u64;
        self.db.for_each_prefix(HIST_TAG, |_, _| {
            n += 1;
            std::ops::ControlFlow::Continue(())
        });
        n
    }

    /// Decodes the historical `(step, position)` record of `a` at `step`,
    /// if it is still resident (recorded and not evicted or squashed).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Codec`] if the record exists but is
    /// malformed.
    pub fn history_at(&self, a: AgentId, step: Step) -> Result<Option<(Step, S::Pos)>, StoreError> {
        let Some(raw) = self.db.get(Key::tagged_u32_pair(HIST_TAG, step.0, a.0)) else {
            return Ok(None);
        };
        let mut rd = raw;
        let s = Step(codec::get_u32(&mut rd)?);
        let pos = self.space.decode_pos(&mut rd)?;
        Ok(Some((s, pos)))
    }

    /// Compacts history records older than the deepest rollback any legal
    /// schedule could still perform, returning the number evicted.
    ///
    /// # Eviction invariant
    ///
    /// **Never evict a record a legal rollback could read.** Rollbacks
    /// (speculative squashes, [`crate::spec`]) always target a step at or
    /// above the step of the lagging cluster whose commit raced them, and
    /// that committing cluster is at or above the global minimum step —
    /// so no rollback can ever rewind an agent below `min_step()`, and
    /// `min_step` itself is monotone non-decreasing. Records at steps
    /// `< min_step` are therefore dead for scheduling purposes (the
    /// authoritative current record `dagt ‖ agent` is separate and never
    /// evicted) and the pass deletes exactly those, advancing the
    /// `dep:hist_floor` watermark. Resident history is then
    /// O(agents × window) where the window is the step skew plus the
    /// eviction cadence, instead of O(agents × horizon).
    ///
    /// Call from a quiesced writer (e.g. the threaded executor's
    /// checkpoint barrier): the key walk and the deletes are not one
    /// transaction.
    ///
    /// # Errors
    ///
    /// Propagates store errors from the watermark read.
    pub fn evict_history(&mut self) -> Result<u64, StoreError> {
        if !self.history {
            return Ok(0);
        }
        let floor = self.min_step().0;
        let prev = self.db.get_i64(HIST_FLOOR_KEY)?.max(0) as u32;
        if floor <= prev {
            return Ok(0); // nothing new below the watermark
        }
        // Keys sort step-major, so value visits stop at the first
        // retained step — the per-record work is O(evicted + 1). (The
        // walk's key gather still scans the store's keys once; see
        // `Db::for_each_prefix`.)
        let mut doomed: Vec<Bytes> = Vec::new();
        self.db.for_each_prefix(HIST_TAG, |k, _| {
            let step = u32::from_be_bytes(k[4..8].try_into().expect("12-byte history key"));
            if step >= floor {
                return std::ops::ControlFlow::Break(());
            }
            doomed.push(k.clone());
            std::ops::ControlFlow::Continue(())
        });
        for k in &doomed {
            self.db.del(k);
        }
        self.db.set_i64(HIST_FLOOR_KEY, floor as i64);
        Ok(doomed.len() as u64)
    }

    /// First agent (in `(step, id)` order) that blocks `a`, if any.
    ///
    /// Served from the maintained adjacency in O(blocker count), without
    /// allocating. `None` means `a`'s cluster may advance as far as `a`
    /// is concerned.
    pub fn first_blocker(&self, a: AgentId) -> Option<AgentId> {
        self.edges().blockers[a.index()]
            .iter()
            .copied()
            .min_by_key(|b| (self.nodes[b.index()].step.0, b.0))
    }

    /// All agents that block `a`, in `(step, id)` order (diagnostics; the
    /// scheduler uses [`DepGraph::first_blocker`]).
    pub fn blockers_of(&self, a: AgentId) -> Vec<AgentId> {
        let mut out = self.edges().blockers[a.index()].clone();
        out.sort_unstable_by_key(|b| (self.nodes[b.index()].step.0, b.0));
        out
    }

    /// Agents at the same step as `a` within the coupling radius
    /// (excluding `a`), ascending by id — the maintained adjacency slice,
    /// no allocation.
    pub fn coupled_of(&self, a: AgentId) -> &[AgentId] {
        &self.edges().coupled[a.index()]
    }

    /// Allocating convenience form of [`DepGraph::coupled_of`].
    pub fn coupled_neighbors(&self, a: AgentId) -> Vec<AgentId> {
        self.coupled_of(a).to_vec()
    }

    /// Agents whose current step is `<= step`, in `(step, id)` order —
    /// the candidates that could still write into a read performed at
    /// `step` (used by speculative retirement clearance).
    pub fn agents_at_or_below(&self, step: Step) -> impl Iterator<Item = (Step, AgentId)> + '_ {
        self.step_index
            .range(..(step.0 + 1, 0u32))
            .map(|&(s, a)| (Step(s), AgentId(a)))
    }

    /// Agents whose step equals `step` (sorted by id).
    pub fn agents_at_step(&self, step: Step) -> Vec<AgentId> {
        self.step_index
            .range((step.0, 0u32)..(step.0 + 1, 0u32))
            .map(|&(_, b)| AgentId(b))
            .collect()
    }

    /// Verifies the §3.2 validity condition over the whole graph.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violating pair.
    pub fn validate(&self) -> Result<(), String> {
        let states: Vec<(S::Pos, Step)> = self.nodes.iter().map(|n| (n.pos, n.step)).collect();
        match rules::find_violation(self.space.as_ref(), self.params, &states) {
            None => Ok(()),
            Some((i, j)) => Err(format!(
                "validity violated: agent{} at {:?}/{} vs agent{} at {:?}/{}",
                i, self.nodes[i].pos, self.nodes[i].step, j, self.nodes[j].pos, self.nodes[j].step
            )),
        }
    }

    /// Dumps nodes and the maintained edges (O(n + edges)) for
    /// visualization and for cross-checking incremental maintenance
    /// against a from-scratch rebuild.
    pub fn snapshot(&self) -> GraphSnapshot {
        let mut blocked = Vec::new();
        let mut coupled = Vec::new();
        for i in 0..self.nodes.len() {
            let a = AgentId(i as u32);
            for b in self.blockers_of(a) {
                blocked.push((b, a));
            }
            for b in self.coupled_neighbors(a) {
                if a.0 < b.0 {
                    coupled.push((a, b));
                }
            }
        }
        GraphSnapshot {
            nodes: self
                .nodes
                .iter()
                .enumerate()
                .map(|(i, n)| (AgentId(i as u32), n.step, format!("{:?}", n.pos)))
                .collect(),
            blocked,
            coupled,
        }
    }
}

impl<S: Space> DepTracker<S> for DepGraph<S> {
    #[inline]
    fn len(&self) -> usize {
        DepGraph::len(self)
    }

    #[inline]
    fn step(&self, a: AgentId) -> Step {
        DepGraph::step(self, a)
    }

    #[inline]
    fn pos(&self, a: AgentId) -> S::Pos {
        DepGraph::pos(self, a)
    }

    #[inline]
    fn min_step(&self) -> Step {
        DepGraph::min_step(self)
    }

    #[inline]
    fn max_step(&self) -> Step {
        DepGraph::max_step(self)
    }

    #[inline]
    fn advance(&mut self, updates: &[(AgentId, S::Pos)]) -> Result<(), StoreError> {
        DepGraph::advance(self, updates)
    }

    #[inline]
    fn first_blocker(&self, a: AgentId) -> Option<AgentId> {
        DepGraph::first_blocker(self, a)
    }

    #[inline]
    fn coupled_of(&self, a: AgentId) -> &[AgentId] {
        DepGraph::coupled_of(self, a)
    }

    #[inline]
    fn evict_history(&mut self) -> Result<u64, StoreError> {
        DepGraph::evict_history(self)
    }

    #[inline]
    fn validate(&self) -> Result<(), String> {
        DepGraph::validate(self)
    }
}

/// Reads, increments, and rewrites the cluster-commit counter inside a
/// transaction (shared by both arms of the advance commit, and by the
/// [`crate::dist`] shard workers for their per-worker counters).
pub(crate) fn bump_commit_counter(
    txn: &mut aim_store::Txn<'_>,
    commits_key: &Key,
) -> Result<(), StoreError> {
    let commits = txn
        .get_key(commits_key)
        .map(|v| {
            v.as_ref()
                .try_into()
                .map(i64::from_be_bytes)
                .map_err(|_| StoreError::Codec("bad commit counter".into()))
        })
        .transpose()?
        .unwrap_or(0);
    txn.set_key(commits_key, (commits + 1).to_be_bytes().to_vec());
    Ok(())
}

/// Inserts `x` into an id-sorted adjacency list, keeping it sorted;
/// idempotent (re-linking an existing edge is a no-op), which lets a batch
/// update relink both endpoints of an intra-batch edge safely.
fn insert_sorted(list: &mut Vec<AgentId>, x: AgentId) {
    if let Err(at) = list.binary_search(&x) {
        list.insert(at, x);
    }
}

/// Removes `x` from an id-sorted adjacency list if present.
fn remove_sorted(list: &mut Vec<AgentId>, x: AgentId) {
    if let Ok(at) = list.binary_search(&x) {
        list.remove(at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{GridSpace, Point};

    fn graph(points: &[(i32, i32)]) -> DepGraph<GridSpace> {
        let space = Arc::new(GridSpace::new(100, 140));
        let db = Arc::new(Db::new());
        let initial: Vec<Point> = points.iter().map(|&(x, y)| Point::new(x, y)).collect();
        DepGraph::new(space, RuleParams::genagent(), db, &initial).unwrap()
    }

    #[test]
    fn initial_state_is_step_zero_everywhere() {
        let g = graph(&[(0, 0), (10, 10), (20, 20)]);
        assert_eq!(g.len(), 3);
        for i in 0..3 {
            assert_eq!(g.step(AgentId(i)), Step::ZERO);
        }
        assert_eq!(g.min_step(), Step::ZERO);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn advance_moves_step_and_position() {
        let mut g = graph(&[(0, 0), (50, 50)]);
        g.advance(&[(AgentId(0), Point::new(1, 0))]).unwrap();
        assert_eq!(g.step(AgentId(0)), Step(1));
        assert_eq!(g.pos(AgentId(0)), Point::new(1, 0));
        assert_eq!(g.step(AgentId(1)), Step(0));
        assert_eq!(g.min_step(), Step(0));
        assert_eq!(g.commits(), 1);
    }

    #[test]
    fn blockers_follow_gap_radius() {
        let mut g = graph(&[(0, 0), (8, 0), (50, 50)]);
        // Move agent 1 three steps ahead (staying at x=8).
        for _ in 0..3 {
            g.advance(&[(AgentId(1), Point::new(8, 0))]).unwrap();
        }
        // Gap 3: blocking radius (3+1)*1+4 = 8 → agent 0 at dist 8 blocks 1.
        assert_eq!(g.first_blocker(AgentId(1)), Some(AgentId(0)));
        assert_eq!(g.blockers_of(AgentId(1)), vec![AgentId(0)]);
        // Agent 0 is at the min step: nothing can block it.
        assert_eq!(g.first_blocker(AgentId(0)), None);
        // Agent 2 is far away: unblocked despite lagging agents.
        for _ in 0..3 {
            g.advance(&[(AgentId(2), Point::new(50, 50))]).unwrap();
        }
        assert_eq!(g.first_blocker(AgentId(2)), None);
    }

    #[test]
    fn coupled_neighbors_same_step_only() {
        let mut g = graph(&[(0, 0), (5, 0), (6, 0)]);
        assert_eq!(g.coupled_neighbors(AgentId(0)), vec![AgentId(1)]);
        assert_eq!(
            g.coupled_neighbors(AgentId(1)),
            vec![AgentId(0), AgentId(2)]
        );
        // Advance agent 1: no longer same step, couples with nobody.
        g.advance(&[(AgentId(1), Point::new(5, 0))]).unwrap();
        assert!(g.coupled_neighbors(AgentId(1)).is_empty());
        assert!(g.coupled_neighbors(AgentId(0)).is_empty());
    }

    #[test]
    fn agents_at_step_buckets() {
        let mut g = graph(&[(0, 0), (50, 0), (99, 0)]);
        g.advance(&[(AgentId(2), Point::new(99, 1))]).unwrap();
        assert_eq!(g.agents_at_step(Step(0)), vec![AgentId(0), AgentId(1)]);
        assert_eq!(g.agents_at_step(Step(1)), vec![AgentId(2)]);
        assert!(g.agents_at_step(Step(2)).is_empty());
    }

    #[test]
    fn snapshot_contains_expected_edges() {
        let mut g = graph(&[(0, 0), (4, 0), (30, 30)]);
        // Advance the far agent so a blocked edge exists… it is too far to
        // be blocked; instead advance the near pair's neighbor.
        g.advance(&[(AgentId(2), Point::new(30, 30))]).unwrap();
        let snap = g.snapshot();
        assert_eq!(snap.nodes.len(), 3);
        assert!(snap.coupled.contains(&(AgentId(0), AgentId(1))));
        assert!(snap.blocked.is_empty());
    }

    #[test]
    fn recover_matches_live_state() {
        let space = Arc::new(GridSpace::new(100, 140));
        let db = Arc::new(Db::new());
        let initial = vec![Point::new(0, 0), Point::new(20, 20)];
        let mut g = DepGraph::new(
            Arc::clone(&space),
            RuleParams::genagent(),
            Arc::clone(&db),
            &initial,
        )
        .unwrap();
        g.advance(&[(AgentId(0), Point::new(1, 1))]).unwrap();
        g.advance(&[(AgentId(0), Point::new(2, 2))]).unwrap();
        let r = DepGraph::recover(space, RuleParams::genagent(), db, 2).unwrap();
        assert_eq!(r.step(AgentId(0)), Step(2));
        assert_eq!(r.pos(AgentId(0)), Point::new(2, 2));
        assert_eq!(r.step(AgentId(1)), Step(0));
        assert_eq!(r.min_step(), Step(0));
    }

    #[test]
    fn rollback_rewinds_step_and_position() {
        let mut g = graph(&[(0, 0), (50, 50)]);
        g.advance(&[(AgentId(0), Point::new(1, 0))]).unwrap();
        g.advance(&[(AgentId(0), Point::new(2, 0))]).unwrap();
        assert_eq!(g.step(AgentId(0)), Step(2));
        g.rollback(&[(AgentId(0), Step(1), Point::new(1, 0))])
            .unwrap();
        assert_eq!(g.step(AgentId(0)), Step(1));
        assert_eq!(g.pos(AgentId(0)), Point::new(1, 0));
        assert_eq!(g.min_step(), Step(0));
        // The store reflects the rollback: recovery sees the rewound state.
        let r = DepGraph::recover(
            Arc::new(GridSpace::new(100, 140)),
            RuleParams::genagent(),
            Arc::clone(g.db()),
            2,
        )
        .unwrap();
        assert_eq!(r.step(AgentId(0)), Step(1));
        assert_eq!(r.pos(AgentId(0)), Point::new(1, 0));
    }

    #[test]
    fn rollback_to_current_step_is_identity_on_step() {
        let mut g = graph(&[(0, 0)]);
        g.advance(&[(AgentId(0), Point::new(1, 0))]).unwrap();
        g.rollback(&[(AgentId(0), Step(1), Point::new(0, 1))])
            .unwrap();
        assert_eq!(g.step(AgentId(0)), Step(1));
        assert_eq!(g.pos(AgentId(0)), Point::new(0, 1));
    }

    #[test]
    fn rollback_ahead_of_current_step_panics() {
        let mut g = graph(&[(0, 0)]);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            g.rollback(&[(AgentId(0), Step(3), Point::new(0, 0))])
                .unwrap();
        }));
        assert!(result.is_err());
    }

    fn history_graph(points: &[(i32, i32)]) -> DepGraph<GridSpace> {
        let space = Arc::new(GridSpace::new(100, 140));
        let db = Arc::new(Db::new());
        let initial: Vec<Point> = points.iter().map(|&(x, y)| Point::new(x, y)).collect();
        DepGraph::new_with_options(
            space,
            RuleParams::genagent(),
            db,
            &initial,
            GraphOptions {
                edges: EdgeMode::Maintained,
                history: true,
            },
        )
        .unwrap()
    }

    #[test]
    fn history_records_every_committed_step() {
        let mut g = history_graph(&[(0, 0), (50, 50)]);
        assert!(g.history_enabled());
        assert_eq!(g.history_records(), 2, "step-0 records written at init");
        g.advance(&[(AgentId(0), Point::new(1, 0))]).unwrap();
        g.advance(&[(AgentId(0), Point::new(2, 0))]).unwrap();
        g.advance(&[(AgentId(1), Point::new(50, 51))]).unwrap();
        assert_eq!(g.history_records(), 5);
        let (s, p) = g.history_at(AgentId(0), Step(1)).unwrap().unwrap();
        assert_eq!((s, p), (Step(1), Point::new(1, 0)));
        assert!(g.history_at(AgentId(1), Step(2)).unwrap().is_none());
        // Default-built graphs record nothing.
        let plain = graph(&[(0, 0)]);
        assert!(!plain.history_enabled());
        assert_eq!(plain.history_records(), 0);
    }

    #[test]
    fn rollback_rewrites_history() {
        let mut g = history_graph(&[(0, 0)]);
        g.advance(&[(AgentId(0), Point::new(1, 0))]).unwrap();
        g.advance(&[(AgentId(0), Point::new(2, 0))]).unwrap();
        g.advance(&[(AgentId(0), Point::new(3, 0))]).unwrap();
        assert_eq!(g.history_records(), 4);
        // Squash back to step 1 with a different position: future records
        // vanish, the target record is replaced.
        g.rollback(&[(AgentId(0), Step(1), Point::new(0, 1))])
            .unwrap();
        assert_eq!(g.history_records(), 2);
        let (_, p) = g.history_at(AgentId(0), Step(1)).unwrap().unwrap();
        assert_eq!(p, Point::new(0, 1));
        assert!(g.history_at(AgentId(0), Step(2)).unwrap().is_none());
        assert!(g.history_at(AgentId(0), Step(3)).unwrap().is_none());
    }

    #[test]
    fn eviction_compacts_below_min_step_only() {
        let mut g = history_graph(&[(0, 0), (50, 50)]);
        // Advance both agents 3 steps, then agent 1 two more.
        for i in 1..=3 {
            g.advance(&[(AgentId(0), Point::new(i, 0))]).unwrap();
            g.advance(&[(AgentId(1), Point::new(50, 50 + i))]).unwrap();
        }
        g.advance(&[(AgentId(1), Point::new(50, 54))]).unwrap();
        g.advance(&[(AgentId(1), Point::new(50, 55))]).unwrap();
        // History: agent 0 at steps 0..=3, agent 1 at steps 0..=5.
        assert_eq!(g.history_records(), 10);
        assert_eq!(g.history_floor(), Step(0));
        // min_step = 3: steps 0..=2 are below any legal rollback.
        let evicted = g.evict_history().unwrap();
        assert_eq!(evicted, 6);
        assert_eq!(g.history_floor(), Step(3));
        assert_eq!(g.history_records(), 4); // agent0@3, agent1@{3,4,5}
        assert!(g.history_at(AgentId(0), Step(2)).unwrap().is_none());
        assert!(g.history_at(AgentId(0), Step(3)).unwrap().is_some());
        // Idempotent until min_step moves again.
        assert_eq!(g.evict_history().unwrap(), 0);
        // Resident size is O(agents × window): current skew is 2.
        let window = (g.max_step().0 - g.min_step().0 + 1) as u64;
        assert!(g.history_records() <= g.len() as u64 * window);
    }

    #[test]
    fn recover_preserves_history_and_floor() {
        let mut g = history_graph(&[(0, 0), (50, 50)]);
        for i in 1..=2 {
            g.advance(&[(AgentId(0), Point::new(i, 0))]).unwrap();
            g.advance(&[(AgentId(1), Point::new(50, 50 + i))]).unwrap();
        }
        g.evict_history().unwrap();
        let (records, floor) = (g.history_records(), g.history_floor());
        let r = DepGraph::recover_with_options(
            Arc::new(GridSpace::new(100, 140)),
            RuleParams::genagent(),
            Arc::clone(g.db()),
            2,
            GraphOptions {
                edges: EdgeMode::Maintained,
                history: true,
            },
        )
        .unwrap();
        assert!(r.history_enabled());
        assert_eq!(r.history_records(), records);
        assert_eq!(r.history_floor(), floor);
    }

    #[test]
    fn validate_detects_violation() {
        // Force an invalid state through raw advances: two adjacent agents
        // with a step gap of 2 violates dist > radius_p + max_vel.
        let mut g = graph(&[(0, 0), (1, 0)]);
        g.advance(&[(AgentId(1), Point::new(1, 0))]).unwrap();
        g.advance(&[(AgentId(1), Point::new(1, 0))]).unwrap();
        assert!(g.validate().is_err());
    }
}
