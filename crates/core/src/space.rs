//! Spaces: where agents live and how distance is measured.
//!
//! The dependency rules of §3.2 only consume distances, so the engine is
//! generic over a [`Space`]. The paper's evaluation world is a 2-D grid
//! ([`GridSpace`]); §6 points out the same rules apply to non-Euclidean
//! settings such as social networks, which [`SocialSpace`] demonstrates
//! (distance = hops in a relationship graph).
//!
//! # Spatial indexing
//!
//! Dependency tracking asks two neighborhood questions constantly: "which
//! pairs of a point set are within `units`?" ([`Space::pairs_within`],
//! driving geo-clustering) and "which tracked agents are within `units` of
//! this position?" ([`SpatialIndex::query`], driving incremental edge
//! maintenance in [`crate::depgraph`]). For [`GridSpace`] both are served
//! by a uniform grid of `units`-sized cells, so any two points within
//! `units` land in the same or adjacent cells and only a 9-cell
//! neighborhood is examined — O(n) for bounded-density crowds instead of
//! the O(n²) all-pairs scan. Candidate filtering always goes through
//! [`Space::within_units`], which is **exact** (integer / 128-bit
//! arithmetic, no floating point), so indexing changes *cost*, never a
//! scheduling decision.

use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};

use bytes::{Bytes, BytesMut};
use serde::{Deserialize, Serialize};

use aim_store::{codec, StoreError};

/// A position on a 2-D integer grid.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct Point {
    /// Column (grows east).
    pub x: i32,
    /// Row (grows south).
    pub y: i32,
}

impl Point {
    /// Creates a point.
    pub const fn new(x: i32, y: i32) -> Self {
        Point { x, y }
    }

    /// Squared Euclidean distance, saturating at `u64::MAX`.
    ///
    /// Coordinate *differences* are taken in 64-bit arithmetic, so the
    /// full `i32` range is safe (no subtraction overflow); only the final
    /// square can exceed `u64` for spans beyond ±2³² and saturates. Exact
    /// threshold comparisons should use [`Point::dist2_u128`].
    pub fn dist2(self, other: Point) -> u64 {
        u64::try_from(self.dist2_u128(other)).unwrap_or(u64::MAX)
    }

    /// Squared Euclidean distance in 128-bit arithmetic — exact for every
    /// pair of `i32` points (the maximum is `2 · (2³² − 1)² < 2¹²⁸`).
    pub fn dist2_u128(self, other: Point) -> u128 {
        let dx = (self.x as i64 - other.x as i64).unsigned_abs() as u128;
        let dy = (self.y as i64 - other.y as i64).unsigned_abs() as u128;
        dx * dx + dy * dy
    }

    /// Euclidean distance.
    pub fn dist(self, other: Point) -> f64 {
        (self.dist2(other) as f64).sqrt()
    }

    /// Manhattan (L1) distance, used by the A* heuristic.
    pub fn manhattan(self, other: Point) -> u32 {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// A metric space the dependency rules can reason about.
///
/// The engine compares distances against integer *rule thresholds* of the
/// form `radius_p + k·max_vel` (§3.2), delivered here as `units`.
/// Implementations should make [`Space::within_units`] exact — the grid
/// space compares squared integers so no floating-point edge cases can flip
/// a scheduling decision.
///
/// Positions are encoded into the dependency-graph database, hence the
/// codec methods.
pub trait Space: Send + Sync + 'static {
    /// An agent position.
    type Pos: Copy + fmt::Debug + Send + Sync + PartialEq + 'static;

    /// Distance between two positions (diagnostics and reporting).
    fn dist(&self, a: Self::Pos, b: Self::Pos) -> f64;

    /// Is `dist(a, b) <= units`? Must be exact.
    fn within_units(&self, a: Self::Pos, b: Self::Pos, units: u64) -> bool;

    /// Serializes a position for the dependency-graph store.
    fn encode_pos(&self, pos: Self::Pos, buf: &mut BytesMut);

    /// Deserializes a position written by [`Space::encode_pos`].
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Codec`] on malformed input.
    fn decode_pos(&self, buf: &mut Bytes) -> Result<Self::Pos, StoreError>;

    /// All unordered index pairs `(i, j)`, `i < j`, with
    /// `dist(pts[i], pts[j]) <= units`.
    ///
    /// The returned *set* of pairs is exact and deterministic for a given
    /// input, but the order is unspecified (callers that need a canonical
    /// order sort the result). The default implementation is the O(n²)
    /// scan; spatially indexable spaces should override it.
    fn pairs_within(&self, pts: &[Self::Pos], units: u64) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                if self.within_units(pts[i], pts[j], units) {
                    out.push((i, j));
                }
            }
        }
        out
    }

    /// Builds a dynamic neighborhood index over this space with query
    /// granularity `cell_units` (typically the coupling radius), or `None`
    /// if the space has no better answer than scanning every tracked
    /// point. [`crate::depgraph::DepGraph`] uses this to maintain edges
    /// incrementally; correctness never depends on an index existing.
    fn make_index(&self, cell_units: u64) -> Option<Box<dyn SpatialIndex<Self::Pos>>> {
        let _ = cell_units;
        None
    }
}

/// The 2-D integer grid with Euclidean distance — SmallVille's space
/// (a 100×140 grid in the paper, §4.2).
///
/// # Example
///
/// ```
/// use aim_core::space::{GridSpace, Point, Space};
///
/// let g = GridSpace::new(100, 140);
/// let a = Point::new(0, 0);
/// let b = Point::new(3, 4);
/// assert_eq!(g.dist(a, b), 5.0);
/// assert!(g.within_units(a, b, 5));
/// assert!(!g.within_units(a, b, 4));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridSpace {
    width: u32,
    height: u32,
}

impl GridSpace {
    /// Creates a grid of `width × height` cells.
    ///
    /// The bounds are advisory (used by world generators and validation);
    /// distance math works for any coordinates.
    pub fn new(width: u32, height: u32) -> Self {
        GridSpace { width, height }
    }

    /// Grid width in cells.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Grid height in cells.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Whether `p` lies inside the grid bounds.
    pub fn in_bounds(&self, p: Point) -> bool {
        p.x >= 0 && p.y >= 0 && (p.x as u32) < self.width && (p.y as u32) < self.height
    }
}

impl Space for GridSpace {
    type Pos = Point;

    fn dist(&self, a: Point, b: Point) -> f64 {
        a.dist(b)
    }

    fn within_units(&self, a: Point, b: Point, units: u64) -> bool {
        // Exact: compare squared integers in 128 bits, so neither extreme
        // coordinates nor huge thresholds can overflow and flip a
        // scheduling decision.
        a.dist2_u128(b) <= (units as u128) * (units as u128)
    }

    fn encode_pos(&self, pos: Point, buf: &mut BytesMut) {
        codec::put_i32(buf, pos.x);
        codec::put_i32(buf, pos.y);
    }

    fn decode_pos(&self, buf: &mut Bytes) -> Result<Point, StoreError> {
        Ok(Point::new(codec::get_i32(buf)?, codec::get_i32(buf)?))
    }

    /// Uniform-grid pair search: bucket points into cells of side `units`
    /// by sorting packed cell keys (no hashing, no per-bucket
    /// allocations), then pair each cell only with its forward
    /// neighborhood — east, south-west, south, south-east — so every
    /// candidate cell pair is visited exactly once. O(n log n) worst case,
    /// O(n + pairs) for bounded-density crowds.
    fn pairs_within(&self, pts: &[Point], units: u64) -> Vec<(usize, usize)> {
        // Tiny inputs and degenerate thresholds (a radius that spans the
        // whole i32 plane pairs nearly everything anyway): plain scan.
        if pts.len() < 16 || units >= cells::MAX_UNITS {
            let mut out = Vec::new();
            for i in 0..pts.len() {
                for j in (i + 1)..pts.len() {
                    if self.within_units(pts[i], pts[j], units) {
                        out.push((i, j));
                    }
                }
            }
            return out;
        }
        let cell = units.max(1) as i64;
        let mut keyed: Vec<(u64, u32)> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| (cells::key_of(*p, cell), i as u32))
            .collect();
        keyed.sort_unstable();
        let push_checked = |out: &mut Vec<(usize, usize)>, a: u32, b: u32| {
            if self.within_units(pts[a as usize], pts[b as usize], units) {
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                out.push((lo as usize, hi as usize));
            }
        };
        let mut out = Vec::new();
        let mut start = 0usize;
        while start < keyed.len() {
            let key = keyed[start].0;
            let mut end = start + 1;
            while end < keyed.len() && keyed[end].0 == key {
                end += 1;
            }
            let (cx, cy) = cells::unpack(key);
            // Same cell: all pairs (cell diagonal exceeds `units`, so the
            // exact check still applies).
            for a in start..end {
                for b in (a + 1)..end {
                    push_checked(&mut out, keyed[a].1, keyed[b].1);
                }
            }
            // East neighbor (cx, cy+1): keys are consecutive, so its run
            // (if populated) starts exactly at `end`.
            if cy < cells::COORD_MAX {
                let mut t = end;
                while t < keyed.len() && keyed[t].0 == key + 1 {
                    for a in start..end {
                        push_checked(&mut out, keyed[a].1, keyed[t].1);
                    }
                    t += 1;
                }
            }
            // South row trio (cx+1, cy-1..=cy+1): one contiguous key range
            // located with a single binary search.
            if cx < cells::COORD_MAX {
                let lo = cells::pack(cx + 1, (cy - 1).max(cells::COORD_MIN));
                let hi = cells::pack(cx + 1, (cy + 1).min(cells::COORD_MAX));
                let mut t = end + keyed[end..].partition_point(|&(k, _)| k < lo);
                while t < keyed.len() && keyed[t].0 <= hi {
                    for a in start..end {
                        push_checked(&mut out, keyed[a].1, keyed[t].1);
                    }
                    t += 1;
                }
            }
            start = end;
        }
        out
    }

    fn make_index(&self, cell_units: u64) -> Option<Box<dyn SpatialIndex<Point>>> {
        Some(Box::new(UniformGrid::new(cell_units)))
    }
}

/// Cell-coordinate math shared by the static pair search and the dynamic
/// [`UniformGrid`]: positions are bucketed by `div_euclid(cell)` and the
/// two cell coordinates are packed into one order-preserving `u64` key
/// (row-major: all of row `cx` sorts before row `cx+1`, and within a row
/// keys are consecutive in `cy`).
mod cells {
    use super::Point;

    /// Cell coordinates derived from `i32` positions always fit
    /// `[-2³¹, 2³¹-1]`; packing offsets them into `u32` range.
    pub(super) const COORD_MIN: i64 = -(1 << 31);
    pub(super) const COORD_MAX: i64 = (1 << 31) - 1;
    const OFFSET: i64 = 1 << 31;

    /// Radii at or beyond 2³¹ cover the whole plane; indexes fall back to
    /// exhaustive scans there rather than reasoning about cells.
    pub(super) const MAX_UNITS: u64 = 1 << 31;

    pub(super) fn pack(cx: i64, cy: i64) -> u64 {
        debug_assert!((COORD_MIN..=COORD_MAX).contains(&cx));
        debug_assert!((COORD_MIN..=COORD_MAX).contains(&cy));
        (((cx + OFFSET) as u64) << 32) | ((cy + OFFSET) as u64)
    }

    pub(super) fn unpack(key: u64) -> (i64, i64) {
        (
            ((key >> 32) as i64) - OFFSET,
            ((key & 0xffff_ffff) as i64) - OFFSET,
        )
    }

    pub(super) fn coords_of(p: Point, cell: i64) -> (i64, i64) {
        ((p.x as i64).div_euclid(cell), (p.y as i64).div_euclid(cell))
    }

    pub(super) fn key_of(p: Point, cell: i64) -> u64 {
        let (cx, cy) = coords_of(p, cell);
        pack(cx, cy)
    }
}

/// A dynamic neighborhood index over tracked points, obtained from
/// [`Space::make_index`].
///
/// Implementations answer [`SpatialIndex::query`] with a **superset** of
/// the tracked ids within `units` of the center (they may over-approximate
/// by whole cells, never under-approximate); callers re-check candidates
/// with the exact dependency rules. This split keeps the index free to
/// trade precision for speed while [`Space::within_units`] alone decides
/// scheduling.
pub trait SpatialIndex<P>: Send + Sync + fmt::Debug {
    /// Starts tracking `id` at `pos`.
    fn insert(&mut self, id: u32, pos: P);

    /// Moves a tracked `id` from `old` to `new`.
    fn update(&mut self, id: u32, old: P, new: P);

    /// Stops tracking `id`, currently at `pos` — the migration half of
    /// shard rebalancing ([`crate::shard`]): an agent crossing a shard
    /// boundary is removed from its old shard's index and inserted into
    /// the new one's.
    fn remove(&mut self, id: u32, pos: P);

    /// Appends to `out` every tracked id within `units` of `center`
    /// (plus, possibly, nearby extras — see the trait docs). `out` is not
    /// cleared; the id at `center` itself may or may not be included.
    fn query(&self, center: P, units: u64, out: &mut Vec<u32>);
}

/// FxHash-style mixer for the `u64` cell keys of [`UniformGrid`]: one
/// multiply by a 64-bit golden-ratio constant plus a finishing xor-shift,
/// ~5 ns per lookup versus ~25 ns for the default SipHash (the difference
/// is the bulk of the old `pairs_within` cost at 1000 agents).
#[derive(Debug, Default, Clone, Copy)]
pub struct CellKeyHasher(u64);

impl Hasher for CellKeyHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }

    fn finish(&self) -> u64 {
        self.0 ^ (self.0 >> 32)
    }
}

type CellMap = std::collections::HashMap<u64, Vec<u32>, BuildHasherDefault<CellKeyHasher>>;

/// The dynamic uniform-grid index behind [`GridSpace::make_index`]:
/// `units`-sized cells in a hash map keyed by packed cell coordinates.
///
/// `insert`/`update` are O(1) amortized; `query` visits the
/// `⌈units/cell⌉`-ring neighborhood of the center cell, falling back to
/// enumerating every tracked id when the ring would visit more cells than
/// there are points (e.g. a blocking radius inflated by a huge step skew).
#[derive(Debug)]
pub struct UniformGrid {
    cell: i64,
    buckets: CellMap,
    len: usize,
}

impl UniformGrid {
    /// Creates an empty index with cells sized for radius-`cell_units`
    /// queries (clamped to the packable range).
    pub fn new(cell_units: u64) -> Self {
        UniformGrid {
            cell: cell_units.clamp(1, cells::MAX_UNITS - 1) as i64,
            buckets: CellMap::default(),
            len: 0,
        }
    }

    /// Number of tracked points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index tracks no points.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops `id` from the cell bucket `key` (panicking if it was never
    /// indexed there — that would mean the caller's position bookkeeping
    /// and the index disagree).
    fn remove_from_cell(&mut self, id: u32, pos: Point, key: u64) {
        let bucket = self
            .buckets
            .get_mut(&key)
            .unwrap_or_else(|| panic!("id {id} not indexed at {pos:?}"));
        let at = bucket
            .iter()
            .position(|&x| x == id)
            .unwrap_or_else(|| panic!("id {id} not indexed at {pos:?}"));
        bucket.swap_remove(at);
        if bucket.is_empty() {
            self.buckets.remove(&key);
        }
    }
}

impl SpatialIndex<Point> for UniformGrid {
    fn insert(&mut self, id: u32, pos: Point) {
        self.buckets
            .entry(cells::key_of(pos, self.cell))
            .or_default()
            .push(id);
        self.len += 1;
    }

    fn update(&mut self, id: u32, old: Point, new: Point) {
        let from = cells::key_of(old, self.cell);
        let to = cells::key_of(new, self.cell);
        if from == to {
            return;
        }
        self.remove_from_cell(id, old, from);
        self.buckets.entry(to).or_default().push(id);
    }

    fn remove(&mut self, id: u32, pos: Point) {
        self.remove_from_cell(id, pos, cells::key_of(pos, self.cell));
        self.len -= 1;
    }

    fn query(&self, center: Point, units: u64, out: &mut Vec<u32>) {
        let rings = if units >= cells::MAX_UNITS {
            i64::MAX
        } else {
            (units as i64 + self.cell - 1) / self.cell
        };
        let side = rings.saturating_mul(2).saturating_add(1);
        if side.saturating_mul(side) as u128 >= self.len as u128 {
            // Scanning every cell in the ring would cost more than just
            // enumerating the population.
            for bucket in self.buckets.values() {
                out.extend_from_slice(bucket);
            }
            return;
        }
        let (cx, cy) = cells::coords_of(center, self.cell);
        for dx in -rings..=rings {
            let x = cx + dx;
            if !(cells::COORD_MIN..=cells::COORD_MAX).contains(&x) {
                continue;
            }
            for dy in -rings..=rings {
                let y = cy + dy;
                if !(cells::COORD_MIN..=cells::COORD_MAX).contains(&y) {
                    continue;
                }
                if let Some(bucket) = self.buckets.get(&cells::pack(x, y)) {
                    out.extend_from_slice(bucket);
                }
            }
        }
    }
}

/// A node in a [`SocialSpace`] graph.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// A non-Euclidean space where distance is the hop count in an undirected
/// graph — the "social network" generalization sketched in paper §6.
///
/// Agents "perceive" their graph neighborhood (e.g. posts by friends) and
/// "move" by hopping along edges, so `radius_p` and `max_vel` translate
/// directly to hop counts. All-pairs shortest paths are precomputed at
/// construction (BFS per node, `O(V·(V+E))`), which is fine for the
/// community-graph sizes this is meant for; unreachable pairs are at
/// infinite distance and never couple or block.
///
/// # Example
///
/// ```
/// use aim_core::space::{NodeId, SocialSpace, Space};
///
/// // 0 - 1 - 2 - 3 (a path), 4 isolated
/// let s = SocialSpace::new(5, &[(0, 1), (1, 2), (2, 3)]);
/// assert_eq!(s.dist(NodeId(0), NodeId(3)), 3.0);
/// assert!(s.within_units(NodeId(0), NodeId(2), 2));
/// assert!(!s.within_units(NodeId(0), NodeId(4), 100)); // unreachable
/// ```
#[derive(Debug, Clone)]
pub struct SocialSpace {
    n: usize,
    /// Row-major hop distances; `u16::MAX` encodes "unreachable".
    dist: Vec<u16>,
    adjacency: Vec<Vec<u32>>,
}

const UNREACHABLE: u16 = u16::MAX;

impl SocialSpace {
    /// Builds the space from an undirected edge list over nodes `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if an edge references a node `>= n` or `n` exceeds `u16`
    /// addressable distance bookkeeping (65k nodes).
    pub fn new(n: usize, edges: &[(u32, u32)]) -> Self {
        assert!(n < u16::MAX as usize, "SocialSpace supports < 65535 nodes");
        let mut adjacency = vec![Vec::new(); n];
        for &(a, b) in edges {
            assert!(
                (a as usize) < n && (b as usize) < n,
                "edge ({a},{b}) out of range"
            );
            if a != b {
                adjacency[a as usize].push(b);
                adjacency[b as usize].push(a);
            }
        }
        let mut dist = vec![UNREACHABLE; n * n];
        let mut queue = std::collections::VecDeque::new();
        for src in 0..n {
            let row = src * n;
            dist[row + src] = 0;
            queue.clear();
            queue.push_back(src as u32);
            while let Some(u) = queue.pop_front() {
                let du = dist[row + u as usize];
                for &v in &adjacency[u as usize] {
                    if dist[row + v as usize] == UNREACHABLE {
                        dist[row + v as usize] = du + 1;
                        queue.push_back(v);
                    }
                }
            }
        }
        SocialSpace { n, dist, adjacency }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Direct neighbors of `node`.
    pub fn neighbors(&self, node: NodeId) -> &[u32] {
        &self.adjacency[node.0 as usize]
    }

    /// Hop distance, `None` when unreachable.
    pub fn hops(&self, a: NodeId, b: NodeId) -> Option<u32> {
        let d = self.dist[a.0 as usize * self.n + b.0 as usize];
        (d != UNREACHABLE).then_some(d as u32)
    }
}

impl Space for SocialSpace {
    type Pos = NodeId;

    fn dist(&self, a: NodeId, b: NodeId) -> f64 {
        match self.hops(a, b) {
            Some(d) => d as f64,
            None => f64::INFINITY,
        }
    }

    fn within_units(&self, a: NodeId, b: NodeId, units: u64) -> bool {
        match self.hops(a, b) {
            Some(d) => d as u64 <= units,
            None => false,
        }
    }

    fn encode_pos(&self, pos: NodeId, buf: &mut BytesMut) {
        codec::put_u32(buf, pos.0);
    }

    fn decode_pos(&self, buf: &mut Bytes) -> Result<NodeId, StoreError> {
        Ok(NodeId(codec::get_u32(buf)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_distances() {
        let a = Point::new(1, 2);
        let b = Point::new(4, 6);
        assert_eq!(a.dist2(b), 25);
        assert_eq!(a.dist(b), 5.0);
        assert_eq!(a.manhattan(b), 7);
    }

    #[test]
    fn grid_within_is_exact_at_boundary() {
        let g = GridSpace::new(10, 10);
        // 3-4-5 triangle: distance exactly 5.
        assert!(g.within_units(Point::new(0, 0), Point::new(3, 4), 5));
        assert!(!g.within_units(Point::new(0, 0), Point::new(3, 4), 4));
        // Large coordinates must not overflow.
        assert!(!g.within_units(Point::new(-100_000, 0), Point::new(100_000, 0), 1000));
    }

    #[test]
    fn grid_bounds() {
        let g = GridSpace::new(100, 140);
        assert!(g.in_bounds(Point::new(0, 0)));
        assert!(g.in_bounds(Point::new(99, 139)));
        assert!(!g.in_bounds(Point::new(100, 0)));
        assert!(!g.in_bounds(Point::new(-1, 0)));
    }

    #[test]
    fn grid_pos_codec_roundtrip() {
        let g = GridSpace::new(10, 10);
        let mut buf = BytesMut::new();
        g.encode_pos(Point::new(-7, 42), &mut buf);
        let mut rd = Bytes::from(buf.freeze());
        assert_eq!(g.decode_pos(&mut rd).unwrap(), Point::new(-7, 42));
    }

    #[test]
    fn pairs_within_matches_naive_scan() {
        let g = GridSpace::new(1000, 1000);
        // Deterministic pseudo-random layout.
        let mut pts = Vec::new();
        let mut state = 12345u64;
        for _ in 0..200 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = (state >> 33) % 300;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let y = (state >> 33) % 300;
            pts.push(Point::new(x as i32, y as i32));
        }
        for units in [1u64, 5, 17, 50] {
            let mut naive = Vec::new();
            for i in 0..pts.len() {
                for j in (i + 1)..pts.len() {
                    if g.within_units(pts[i], pts[j], units) {
                        naive.push((i, j));
                    }
                }
            }
            let mut fast = g.pairs_within(&pts, units);
            fast.sort_unstable();
            assert_eq!(fast, naive, "units={units}");
        }
    }

    #[test]
    fn pairs_within_extreme_coordinates() {
        let g = GridSpace::new(10, 10);
        // Spanning the whole i32 range must neither overflow nor pair.
        let pts = vec![
            Point::new(i32::MIN, i32::MIN),
            Point::new(i32::MAX, i32::MAX),
            Point::new(i32::MIN + 3, i32::MIN),
            Point::new(0, 0),
        ];
        let mut got = g.pairs_within(&pts, 3);
        got.sort_unstable();
        assert_eq!(got, vec![(0, 2)]);
        // A threshold beyond the packable cell range pairs everything.
        let all = g.pairs_within(&pts, u64::MAX);
        assert_eq!(all.len(), 6);
    }

    #[test]
    fn within_units_exact_at_extremes() {
        let g = GridSpace::new(10, 10);
        let a = Point::new(i32::MIN, 0);
        let b = Point::new(i32::MAX, 0);
        // dist = 2^32 - 1 exactly.
        assert!(g.within_units(a, b, u64::MAX));
        assert!(g.within_units(a, b, (1 << 32) - 1));
        assert!(!g.within_units(a, b, (1 << 32) - 2));
        assert_eq!(a.dist2_u128(b), ((1u128 << 32) - 1) * ((1u128 << 32) - 1));
        // dist2 saturates only once the square exceeds u64 (diagonal span).
        let c = Point::new(i32::MIN, i32::MIN);
        let d = Point::new(i32::MAX, i32::MAX);
        assert_eq!(c.dist2(d), u64::MAX);
        assert!(c.dist2_u128(d) > u64::MAX as u128);
    }

    #[test]
    fn uniform_grid_tracks_moves() {
        let g = GridSpace::new(100, 100);
        let mut idx = g.make_index(5).expect("grid space is indexable");
        idx.insert(0, Point::new(0, 0));
        idx.insert(1, Point::new(3, 0));
        idx.insert(2, Point::new(90, 90));
        // Enough far-away population that a tight query prefers cell
        // lookups over the enumerate-everything fallback.
        for i in 3..40u32 {
            idx.insert(i, Point::new(500 + i as i32 * 10, 500));
        }
        let mut out = Vec::new();
        idx.query(Point::new(1, 1), 5, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![0, 1], "far id must not appear in a tight query");
        idx.update(2, Point::new(90, 90), Point::new(2, 2));
        out.clear();
        idx.query(Point::new(1, 1), 5, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![0, 1, 2]);
        // Huge radius: falls back to enumerating everything, still a superset.
        out.clear();
        idx.query(Point::new(1, 1), u64::MAX, &mut out);
        assert_eq!(out.len(), 40);
    }

    #[test]
    fn uniform_grid_remove_untracks() {
        let g = GridSpace::new(100, 100);
        let mut idx = g.make_index(5).expect("grid space is indexable");
        for i in 0..20u32 {
            idx.insert(i, Point::new(i as i32 * 3, 0));
        }
        idx.remove(7, Point::new(21, 0));
        let mut out = Vec::new();
        idx.query(Point::new(21, 0), u64::MAX, &mut out);
        assert_eq!(out.len(), 19);
        assert!(!out.contains(&7), "removed id must not be reported");
        // Removing the last occupant of a cell leaves the bucket clean.
        idx.remove(0, Point::new(0, 0));
        out.clear();
        idx.query(Point::new(0, 0), 2, &mut out);
        assert!(!out.contains(&0));
    }

    #[test]
    fn social_space_has_no_index() {
        let s = SocialSpace::new(2, &[(0, 1)]);
        assert!(s.make_index(5).is_none());
    }

    #[test]
    fn social_space_hops_and_reachability() {
        let s = SocialSpace::new(6, &[(0, 1), (1, 2), (2, 3), (3, 0), (4, 5)]);
        assert_eq!(s.hops(NodeId(0), NodeId(2)), Some(2));
        assert_eq!(s.hops(NodeId(0), NodeId(0)), Some(0));
        assert_eq!(s.hops(NodeId(0), NodeId(4)), None);
        assert_eq!(s.dist(NodeId(0), NodeId(4)), f64::INFINITY);
        assert!(!s.within_units(NodeId(0), NodeId(4), u64::MAX));
        assert_eq!(s.neighbors(NodeId(1)), &[0, 2]);
    }

    #[test]
    fn social_pairs_within_default_impl() {
        let s = SocialSpace::new(4, &[(0, 1), (1, 2), (2, 3)]);
        let pts = vec![NodeId(0), NodeId(1), NodeId(3)];
        assert_eq!(s.pairs_within(&pts, 1), vec![(0, 1)]);
        assert_eq!(s.pairs_within(&pts, 2), vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn social_pos_codec_roundtrip() {
        let s = SocialSpace::new(3, &[(0, 1)]);
        let mut buf = BytesMut::new();
        s.encode_pos(NodeId(2), &mut buf);
        let mut rd = Bytes::from(buf.freeze());
        assert_eq!(s.decode_pos(&mut rd).unwrap(), NodeId(2));
    }

    #[test]
    fn self_loops_and_duplicate_edges_tolerated() {
        let s = SocialSpace::new(3, &[(0, 0), (0, 1), (0, 1)]);
        assert_eq!(s.hops(NodeId(0), NodeId(1)), Some(1));
    }
}
