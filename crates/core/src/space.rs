//! Spaces: where agents live and how distance is measured.
//!
//! The dependency rules of §3.2 only consume distances, so the engine is
//! generic over a [`Space`]. The paper's evaluation world is a 2-D grid
//! ([`GridSpace`]); §6 points out the same rules apply to non-Euclidean
//! settings such as social networks, which [`SocialSpace`] demonstrates
//! (distance = hops in a relationship graph).

use std::fmt;

use bytes::{Bytes, BytesMut};
use serde::{Deserialize, Serialize};

use aim_store::{codec, StoreError};

/// A position on a 2-D integer grid.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct Point {
    /// Column (grows east).
    pub x: i32,
    /// Row (grows south).
    pub y: i32,
}

impl Point {
    /// Creates a point.
    pub const fn new(x: i32, y: i32) -> Self {
        Point { x, y }
    }

    /// Squared Euclidean distance (exact integer arithmetic).
    pub fn dist2(self, other: Point) -> u64 {
        let dx = (self.x - other.x) as i64;
        let dy = (self.y - other.y) as i64;
        (dx * dx + dy * dy) as u64
    }

    /// Euclidean distance.
    pub fn dist(self, other: Point) -> f64 {
        (self.dist2(other) as f64).sqrt()
    }

    /// Manhattan (L1) distance, used by the A* heuristic.
    pub fn manhattan(self, other: Point) -> u32 {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// A metric space the dependency rules can reason about.
///
/// The engine compares distances against integer *rule thresholds* of the
/// form `radius_p + k·max_vel` (§3.2), delivered here as `units`.
/// Implementations should make [`Space::within_units`] exact — the grid
/// space compares squared integers so no floating-point edge cases can flip
/// a scheduling decision.
///
/// Positions are encoded into the dependency-graph database, hence the
/// codec methods.
pub trait Space: Send + Sync + 'static {
    /// An agent position.
    type Pos: Copy + fmt::Debug + Send + Sync + PartialEq + 'static;

    /// Distance between two positions (diagnostics and reporting).
    fn dist(&self, a: Self::Pos, b: Self::Pos) -> f64;

    /// Is `dist(a, b) <= units`? Must be exact.
    fn within_units(&self, a: Self::Pos, b: Self::Pos, units: u64) -> bool;

    /// Serializes a position for the dependency-graph store.
    fn encode_pos(&self, pos: Self::Pos, buf: &mut BytesMut);

    /// Deserializes a position written by [`Space::encode_pos`].
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Codec`] on malformed input.
    fn decode_pos(&self, buf: &mut Bytes) -> Result<Self::Pos, StoreError>;

    /// All unordered index pairs `(i, j)`, `i < j`, with
    /// `dist(pts[i], pts[j]) <= units`. The default implementation is the
    /// O(n²) scan; spatially indexable spaces should override it.
    fn pairs_within(&self, pts: &[Self::Pos], units: u64) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                if self.within_units(pts[i], pts[j], units) {
                    out.push((i, j));
                }
            }
        }
        out
    }
}

/// The 2-D integer grid with Euclidean distance — SmallVille's space
/// (a 100×140 grid in the paper, §4.2).
///
/// # Example
///
/// ```
/// use aim_core::space::{GridSpace, Point, Space};
///
/// let g = GridSpace::new(100, 140);
/// let a = Point::new(0, 0);
/// let b = Point::new(3, 4);
/// assert_eq!(g.dist(a, b), 5.0);
/// assert!(g.within_units(a, b, 5));
/// assert!(!g.within_units(a, b, 4));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridSpace {
    width: u32,
    height: u32,
}

impl GridSpace {
    /// Creates a grid of `width × height` cells.
    ///
    /// The bounds are advisory (used by world generators and validation);
    /// distance math works for any coordinates.
    pub fn new(width: u32, height: u32) -> Self {
        GridSpace { width, height }
    }

    /// Grid width in cells.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Grid height in cells.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Whether `p` lies inside the grid bounds.
    pub fn in_bounds(&self, p: Point) -> bool {
        p.x >= 0 && p.y >= 0 && (p.x as u32) < self.width && (p.y as u32) < self.height
    }
}

impl Space for GridSpace {
    type Pos = Point;

    fn dist(&self, a: Point, b: Point) -> f64 {
        a.dist(b)
    }

    fn within_units(&self, a: Point, b: Point, units: u64) -> bool {
        // Exact: compare squared integers.
        a.dist2(b) <= units * units
    }

    fn encode_pos(&self, pos: Point, buf: &mut BytesMut) {
        codec::put_i32(buf, pos.x);
        codec::put_i32(buf, pos.y);
    }

    fn decode_pos(&self, buf: &mut Bytes) -> Result<Point, StoreError> {
        Ok(Point::new(codec::get_i32(buf)?, codec::get_i32(buf)?))
    }

    fn pairs_within(&self, pts: &[Point], units: u64) -> Vec<(usize, usize)> {
        // Spatial hashing: bucket points into cells of side `units`; only
        // points in the same or adjacent cells can be within range.
        if pts.len() < 8 {
            // Tiny inputs: the plain scan is faster than hashing.
            let mut out = Vec::new();
            for i in 0..pts.len() {
                for j in (i + 1)..pts.len() {
                    if self.within_units(pts[i], pts[j], units) {
                        out.push((i, j));
                    }
                }
            }
            return out;
        }
        use std::collections::HashMap;
        let cell = units.max(1) as i64;
        let key = |p: Point| ((p.x as i64).div_euclid(cell), (p.y as i64).div_euclid(cell));
        let mut buckets: HashMap<(i64, i64), Vec<usize>> = HashMap::new();
        for (i, p) in pts.iter().enumerate() {
            buckets.entry(key(*p)).or_default().push(i);
        }
        let mut out = Vec::new();
        for (i, p) in pts.iter().enumerate() {
            let (cx, cy) = key(*p);
            for dx in -1..=1 {
                for dy in -1..=1 {
                    let Some(cand) = buckets.get(&(cx + dx, cy + dy)) else {
                        continue;
                    };
                    for &j in cand {
                        if j > i && self.within_units(*p, pts[j], units) {
                            out.push((i, j));
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }
}

/// A node in a [`SocialSpace`] graph.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// A non-Euclidean space where distance is the hop count in an undirected
/// graph — the "social network" generalization sketched in paper §6.
///
/// Agents "perceive" their graph neighborhood (e.g. posts by friends) and
/// "move" by hopping along edges, so `radius_p` and `max_vel` translate
/// directly to hop counts. All-pairs shortest paths are precomputed at
/// construction (BFS per node, `O(V·(V+E))`), which is fine for the
/// community-graph sizes this is meant for; unreachable pairs are at
/// infinite distance and never couple or block.
///
/// # Example
///
/// ```
/// use aim_core::space::{NodeId, SocialSpace, Space};
///
/// // 0 - 1 - 2 - 3 (a path), 4 isolated
/// let s = SocialSpace::new(5, &[(0, 1), (1, 2), (2, 3)]);
/// assert_eq!(s.dist(NodeId(0), NodeId(3)), 3.0);
/// assert!(s.within_units(NodeId(0), NodeId(2), 2));
/// assert!(!s.within_units(NodeId(0), NodeId(4), 100)); // unreachable
/// ```
#[derive(Debug, Clone)]
pub struct SocialSpace {
    n: usize,
    /// Row-major hop distances; `u16::MAX` encodes "unreachable".
    dist: Vec<u16>,
    adjacency: Vec<Vec<u32>>,
}

const UNREACHABLE: u16 = u16::MAX;

impl SocialSpace {
    /// Builds the space from an undirected edge list over nodes `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if an edge references a node `>= n` or `n` exceeds `u16`
    /// addressable distance bookkeeping (65k nodes).
    pub fn new(n: usize, edges: &[(u32, u32)]) -> Self {
        assert!(n < u16::MAX as usize, "SocialSpace supports < 65535 nodes");
        let mut adjacency = vec![Vec::new(); n];
        for &(a, b) in edges {
            assert!(
                (a as usize) < n && (b as usize) < n,
                "edge ({a},{b}) out of range"
            );
            if a != b {
                adjacency[a as usize].push(b);
                adjacency[b as usize].push(a);
            }
        }
        let mut dist = vec![UNREACHABLE; n * n];
        let mut queue = std::collections::VecDeque::new();
        for src in 0..n {
            let row = src * n;
            dist[row + src] = 0;
            queue.clear();
            queue.push_back(src as u32);
            while let Some(u) = queue.pop_front() {
                let du = dist[row + u as usize];
                for &v in &adjacency[u as usize] {
                    if dist[row + v as usize] == UNREACHABLE {
                        dist[row + v as usize] = du + 1;
                        queue.push_back(v);
                    }
                }
            }
        }
        SocialSpace { n, dist, adjacency }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Direct neighbors of `node`.
    pub fn neighbors(&self, node: NodeId) -> &[u32] {
        &self.adjacency[node.0 as usize]
    }

    /// Hop distance, `None` when unreachable.
    pub fn hops(&self, a: NodeId, b: NodeId) -> Option<u32> {
        let d = self.dist[a.0 as usize * self.n + b.0 as usize];
        (d != UNREACHABLE).then_some(d as u32)
    }
}

impl Space for SocialSpace {
    type Pos = NodeId;

    fn dist(&self, a: NodeId, b: NodeId) -> f64 {
        match self.hops(a, b) {
            Some(d) => d as f64,
            None => f64::INFINITY,
        }
    }

    fn within_units(&self, a: NodeId, b: NodeId, units: u64) -> bool {
        match self.hops(a, b) {
            Some(d) => d as u64 <= units,
            None => false,
        }
    }

    fn encode_pos(&self, pos: NodeId, buf: &mut BytesMut) {
        codec::put_u32(buf, pos.0);
    }

    fn decode_pos(&self, buf: &mut Bytes) -> Result<NodeId, StoreError> {
        Ok(NodeId(codec::get_u32(buf)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_distances() {
        let a = Point::new(1, 2);
        let b = Point::new(4, 6);
        assert_eq!(a.dist2(b), 25);
        assert_eq!(a.dist(b), 5.0);
        assert_eq!(a.manhattan(b), 7);
    }

    #[test]
    fn grid_within_is_exact_at_boundary() {
        let g = GridSpace::new(10, 10);
        // 3-4-5 triangle: distance exactly 5.
        assert!(g.within_units(Point::new(0, 0), Point::new(3, 4), 5));
        assert!(!g.within_units(Point::new(0, 0), Point::new(3, 4), 4));
        // Large coordinates must not overflow.
        assert!(!g.within_units(Point::new(-100_000, 0), Point::new(100_000, 0), 1000));
    }

    #[test]
    fn grid_bounds() {
        let g = GridSpace::new(100, 140);
        assert!(g.in_bounds(Point::new(0, 0)));
        assert!(g.in_bounds(Point::new(99, 139)));
        assert!(!g.in_bounds(Point::new(100, 0)));
        assert!(!g.in_bounds(Point::new(-1, 0)));
    }

    #[test]
    fn grid_pos_codec_roundtrip() {
        let g = GridSpace::new(10, 10);
        let mut buf = BytesMut::new();
        g.encode_pos(Point::new(-7, 42), &mut buf);
        let mut rd = Bytes::from(buf.freeze());
        assert_eq!(g.decode_pos(&mut rd).unwrap(), Point::new(-7, 42));
    }

    #[test]
    fn pairs_within_matches_naive_scan() {
        let g = GridSpace::new(1000, 1000);
        // Deterministic pseudo-random layout.
        let mut pts = Vec::new();
        let mut state = 12345u64;
        for _ in 0..200 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = (state >> 33) % 300;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let y = (state >> 33) % 300;
            pts.push(Point::new(x as i32, y as i32));
        }
        for units in [1u64, 5, 17, 50] {
            let mut naive = Vec::new();
            for i in 0..pts.len() {
                for j in (i + 1)..pts.len() {
                    if g.within_units(pts[i], pts[j], units) {
                        naive.push((i, j));
                    }
                }
            }
            let fast = g.pairs_within(&pts, units);
            assert_eq!(fast, naive, "units={units}");
        }
    }

    #[test]
    fn social_space_hops_and_reachability() {
        let s = SocialSpace::new(6, &[(0, 1), (1, 2), (2, 3), (3, 0), (4, 5)]);
        assert_eq!(s.hops(NodeId(0), NodeId(2)), Some(2));
        assert_eq!(s.hops(NodeId(0), NodeId(0)), Some(0));
        assert_eq!(s.hops(NodeId(0), NodeId(4)), None);
        assert_eq!(s.dist(NodeId(0), NodeId(4)), f64::INFINITY);
        assert!(!s.within_units(NodeId(0), NodeId(4), u64::MAX));
        assert_eq!(s.neighbors(NodeId(1)), &[0, 2]);
    }

    #[test]
    fn social_pairs_within_default_impl() {
        let s = SocialSpace::new(4, &[(0, 1), (1, 2), (2, 3)]);
        let pts = vec![NodeId(0), NodeId(1), NodeId(3)];
        assert_eq!(s.pairs_within(&pts, 1), vec![(0, 1)]);
        assert_eq!(s.pairs_within(&pts, 2), vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn social_pos_codec_roundtrip() {
        let s = SocialSpace::new(3, &[(0, 1)]);
        let mut buf = BytesMut::new();
        s.encode_pos(NodeId(2), &mut buf);
        let mut rd = Bytes::from(buf.freeze());
        assert_eq!(s.decode_pos(&mut rd).unwrap(), NodeId(2));
    }

    #[test]
    fn self_loops_and_duplicate_edges_tolerated() {
        let s = SocialSpace::new(3, &[(0, 0), (0, 1), (0, 1)]);
        assert_eq!(s.hops(NodeId(0), NodeId(1)), Some(1));
    }
}
