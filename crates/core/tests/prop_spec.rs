//! Property tests for speculative execution (paper §6, `aim_core::spec`).
//!
//! The contract under test: for *any* agent layout, movement pattern,
//! run-ahead budget, and adversarial completion order, the speculative
//! scheduler (a) terminates with every agent retired at the target step,
//! (b) produces exactly the same simulation outcome as the conservative
//! §3.2 schedule (replay determinism makes outcomes comparable), and
//! (c) keeps its books straight — every emitted execution is eventually
//! retired exactly once or reported squashed/poisoned.

use std::sync::Arc;

use aim_core::policy::DependencyPolicy;
use aim_core::prelude::*;
use aim_core::spec::{SpecParams, SpecScheduler};
use aim_core::workload::CallSpec;
use aim_llm::{presets, CallKind, ServerConfig, SimServer};
use aim_store::Db;
use proptest::prelude::*;

/// Deterministic per-(agent, step) hash — the replay-mode contract.
fn mix(seed: u64, agent: u32, step: u32) -> u64 {
    let mut x = seed ^ ((agent as u64) << 32) ^ step as u64;
    x = x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 29;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 32;
    x
}

/// A replayable workload whose calls and unit-step movement derive from a
/// seed: identical queries always return identical answers, so squashed
/// steps re-execute bit-identically (the paper's replay mode).
#[derive(Debug, Clone)]
struct HashWorkload {
    initial: Vec<Point>,
    target: Step,
    seed: u64,
}

impl HashWorkload {
    fn pos(&self, agent: AgentId, steps_done: u32) -> Point {
        let mut p = self.initial[agent.index()];
        for s in 0..steps_done {
            let d = mix(self.seed, agent.0, s) % 5;
            let (dx, dy) = [(0, 0), (1, 0), (-1, 0), (0, 1), (0, -1)][d as usize];
            p = Point::new(p.x + dx, p.y + dy);
        }
        p
    }
}

impl Workload<Point> for HashWorkload {
    fn num_agents(&self) -> usize {
        self.initial.len()
    }
    fn target_step(&self) -> Step {
        self.target
    }
    fn initial_pos(&self, agent: AgentId) -> Point {
        self.initial[agent.index()]
    }
    fn calls(&self, agent: AgentId, step: Step) -> Vec<CallSpec> {
        let h = mix(self.seed ^ 0xabcd, agent.0, step.0);
        let n = (h % 3) as usize; // 0..=2 calls per step
        (0..n)
            .map(|i| {
                let hh = mix(h, agent.0, i as u32);
                CallSpec::new(50 + (hh % 300) as u32, 4 + (hh % 40) as u32, CallKind::Plan)
            })
            .collect()
    }
    fn pos_after(&self, agent: AgentId, step: Step) -> Point {
        self.pos(agent, step.0 + 1)
    }
}

fn arb_points(n: usize, extent: i32) -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec((0..extent, 0..extent), n..=n)
        .prop_map(|v| v.into_iter().map(|(x, y)| Point::new(x, y)).collect())
}

/// Runs the conservative scheduler over the workload (complete everything
/// each round) and returns the final per-agent positions.
fn conservative_outcome(w: &HashWorkload) -> Vec<Point> {
    let mut sched = Scheduler::new(
        Arc::new(GridSpace::new(64, 64)),
        RuleParams::genagent(),
        DependencyPolicy::Spatiotemporal,
        Arc::new(Db::new()),
        &w.initial,
        w.target,
    )
    .unwrap();
    let mut safety = 0;
    while !sched.is_done() {
        safety += 1;
        assert!(safety < 100_000, "conservative run failed to converge");
        for c in sched.ready_clusters() {
            let pos: Vec<(AgentId, Point)> = c
                .members
                .iter()
                .map(|m| (*m, w.pos_after(*m, c.step)))
                .collect();
            sched.complete(&c.id, &pos).unwrap();
        }
    }
    (0..w.initial.len())
        .map(|a| sched.graph().pos(AgentId(a as u32)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Adversarial speculative execution: random completion order, random
    /// run-ahead budget, seeded movement. Must terminate fully retired
    /// with the conservative outcome and consistent accounting.
    #[test]
    fn adversarial_spec_schedules_terminate_and_match(
        points in arb_points(7, 24),
        target in 2u32..7,
        runahead in 0u32..5,
        seed in any::<u64>(),
        picks in proptest::collection::vec(any::<u16>(), 0..600),
    ) {
        let w = HashWorkload { initial: points.clone(), target: Step(target), seed };
        let expected = conservative_outcome(&w);

        let mut sched = SpecScheduler::new(
            Arc::new(GridSpace::new(64, 64)),
            RuleParams::genagent(),
            SpecParams::new(runahead),
            Arc::new(Db::new()),
            &points,
            Step(target),
        ).unwrap();

        let mut pending: Vec<Cluster> = Vec::new();
        let mut pick_iter = picks.into_iter();
        let mut squash_total = 0usize;
        let mut safety = 0;
        while !sched.is_done() {
            safety += 1;
            prop_assert!(safety < 50_000, "speculative run failed to converge");
            pending.extend(sched.ready_clusters().unwrap());
            squash_total += sched.drain_squashed().len();
            prop_assert!(
                !pending.is_empty() || sched.inflight_len() > 0,
                "deadlock: nothing ready, nothing in flight"
            );
            if pending.is_empty() {
                continue;
            }
            let pick = pick_iter.next().unwrap_or(0) as usize % pending.len();
            let cluster = pending.swap_remove(pick);
            let pos: Vec<(AgentId, Point)> = cluster
                .members
                .iter()
                .map(|m| (*m, w.pos_after(*m, cluster.step)))
                .collect();
            sched.complete(&cluster.id, &pos).unwrap();
            squash_total += sched.drain_squashed().len();
        }
        prop_assert_eq!(pending.len(), 0, "nothing may remain pending at completion");
        prop_assert_eq!(sched.live_entries(), 0);

        // Outcome equivalence with the conservative schedule.
        for a in 0..points.len() {
            prop_assert_eq!(sched.graph().step(AgentId(a as u32)), Step(target));
            prop_assert_eq!(
                sched.graph().pos(AgentId(a as u32)),
                expected[a],
                "agent {} final position diverged", a
            );
        }
        prop_assert!(sched.graph().validate().is_ok());

        // Accounting: every agent-step retires exactly once; emissions
        // cover retirements plus discarded work; the squash log matches
        // the squash counter.
        let st = sched.stats();
        prop_assert_eq!(st.retired_steps, (points.len() as u64) * target as u64);
        prop_assert_eq!(squash_total as u64, st.squashed_steps);
        prop_assert_eq!(
            st.agent_steps,
            st.retired_steps + st.squashed_steps + st.poisoned_steps,
            "every emitted execution must retire or be discarded"
        );
        if runahead == 0 {
            prop_assert_eq!(st.emitted_spec, 0);
            prop_assert_eq!(st.squashed_steps, 0, "no speculation, no waste");
            prop_assert_eq!(st.poisoned_clusters, 0);
        }
    }

    /// With run-ahead 0 the speculative scheduler emits the conservative
    /// schedule verbatim (same clusters, same order, round by round).
    #[test]
    fn spec_zero_emits_conservative_schedule(
        points in arb_points(8, 20),
        target in 2u32..6,
        seed in any::<u64>(),
    ) {
        let w = HashWorkload { initial: points.clone(), target: Step(target), seed };
        let space = Arc::new(GridSpace::new(64, 64));
        let mut cons = Scheduler::new(
            Arc::clone(&space),
            RuleParams::genagent(),
            DependencyPolicy::Spatiotemporal,
            Arc::new(Db::new()),
            &points,
            Step(target),
        ).unwrap();
        let mut spec = SpecScheduler::new(
            space,
            RuleParams::genagent(),
            SpecParams::conservative(),
            Arc::new(Db::new()),
            &points,
            Step(target),
        ).unwrap();

        let mut safety = 0;
        loop {
            safety += 1;
            prop_assert!(safety < 50_000);
            let a = cons.ready_clusters();
            let b = spec.ready_clusters().unwrap();
            let a_sig: Vec<(Step, Vec<AgentId>)> =
                a.iter().map(|c| (c.step, c.members.clone())).collect();
            let b_sig: Vec<(Step, Vec<AgentId>)> =
                b.iter().map(|c| (c.step, c.members.clone())).collect();
            prop_assert_eq!(&a_sig, &b_sig, "schedules diverged");
            if a.is_empty() {
                break;
            }
            for c in a {
                let pos: Vec<(AgentId, Point)> =
                    c.members.iter().map(|m| (*m, w.pos_after(*m, c.step))).collect();
                cons.complete(&c.id, &pos).unwrap();
            }
            for c in b {
                let pos: Vec<(AgentId, Point)> =
                    c.members.iter().map(|m| (*m, w.pos_after(*m, c.step))).collect();
                spec.complete(&c.id, &pos).unwrap();
            }
        }
        prop_assert!(cons.is_done());
        prop_assert!(spec.is_done());
        prop_assert_eq!(spec.drain_squashed().len(), 0);
    }

    /// Executor-level: the speculative DES run completes for any budget,
    /// never loses work (issued calls ≥ workload calls; the surplus is
    /// exactly the re-executed waste), and speculation never slows the
    /// virtual-time completion compared to run-ahead 0.
    #[test]
    fn spec_executor_accounting_holds(
        points in arb_points(6, 22),
        target in 2u32..6,
        runahead in 1u32..5,
        seed in any::<u64>(),
    ) {
        let w = HashWorkload { initial: points.clone(), target: Step(target), seed };
        let run = |budget: u32| {
            let mut sched = SpecScheduler::new(
                Arc::new(GridSpace::new(64, 64)),
                RuleParams::genagent(),
                SpecParams::new(budget),
                Arc::new(Db::new()),
                &points,
                Step(target),
            ).unwrap();
            let mut server =
                SimServer::new(ServerConfig::from_preset(presets::tiny_test(), 1, true));
            aim_core::spec::run_spec_sim(
                &mut sched,
                &w,
                &mut server,
                &aim_core::exec::sim::SimConfig::default(),
            ).unwrap()
        };
        let base = run(0);
        let ahead = run(runahead);
        let workload_calls = w.total_calls();
        prop_assert_eq!(base.total_calls, workload_calls, "runahead 0 never re-executes");
        let sr = ahead.spec.clone().unwrap();
        prop_assert_eq!(
            ahead.total_calls,
            workload_calls + sr.wasted_calls,
            "issued = workload + re-executed waste"
        );
        prop_assert!(
            ahead.total_input_tokens >= base.total_input_tokens,
            "re-execution can only add tokens"
        );
    }
}
