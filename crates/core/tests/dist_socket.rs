//! Two-process smoke test for the `AIMMSG v1` socket transport
//! (`dist-socket` feature): a [`ShardWorker`] served from a **separate
//! OS process** answers the full protocol — arrive, commit, relink,
//! quiesce, history eviction, recover, shutdown — over a TCP stream.
//!
//! Topology: the controller (this test) binds a loopback listener and
//! re-executes its own test binary filtered to [`socket_worker_child`]
//! with the address in an environment variable; the child connects back
//! and serves the connection, so no port discovery is needed. When the
//! child test runs as part of a normal `cargo test` pass (no variable
//! set) it is a no-op.
#![cfg(feature = "dist-socket")]

use std::net::{TcpListener, TcpStream};
use std::process::Command;
use std::sync::Arc;

use aim_core::dist::socket::{serve_connection, SocketLink};
use aim_core::dist::{CtrlMsg, NodeRecord, Probe, ShardMsg, ShardWorker, WireEdge, WorkerLink};
use aim_core::prelude::*;
use aim_core::scheduler::SchedStats;
use aim_core::space::GridSpace;
use aim_core::telemetry::{BoundaryOp, SpanKind, Telemetry};
use aim_store::Db;

const ADDR_VAR: &str = "AIM_DIST_WORKER_ADDR";

fn space() -> Arc<GridSpace> {
    Arc::new(GridSpace::new(64, 64))
}

fn params() -> RuleParams {
    RuleParams::new(2, 1)
}

/// The worker half: only active when re-executed by the controller test
/// with [`ADDR_VAR`] set; a plain `cargo test` run sees it pass as a
/// no-op.
#[test]
fn socket_worker_child() {
    let Ok(addr) = std::env::var(ADDR_VAR) else {
        return;
    };
    let stream = TcpStream::connect(addr).expect("child connects to controller");
    let mut worker = ShardWorker::new(
        7,
        space(),
        params(),
        Arc::new(Db::new()),
        true,
        Arc::default(),
    );
    serve_connection(stream, &mut worker).expect("serve loop");
}

#[test]
fn worker_in_a_separate_process_serves_the_full_protocol() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().unwrap().to_string();

    let exe = std::env::current_exe().expect("test binary path");
    let mut child = Command::new(exe)
        .args(["--exact", "socket_worker_child", "--nocapture"])
        .env(ADDR_VAR, &addr)
        .spawn()
        .expect("spawn worker process");

    let (stream, _) = listener.accept().expect("worker connects");
    let s = space();
    let mut link = SocketLink::connect(7, Arc::clone(&s), stream).expect("AIMMSG handshake");

    // Arm the worker's local telemetry buffer: the process boundary makes
    // the in-process SharedTelemetry cell unreachable, so the first
    // harvest enables worker-side recording (and returns nothing — the
    // worker recorded nothing before it).
    let telemetry = Telemetry::new();
    link.send(CtrlMsg::HarvestTelemetry {
        now_us: telemetry.now_us(),
    })
    .unwrap();
    match link.recv().unwrap() {
        ShardMsg::Telemetry {
            worker: 7,
            spans,
            dropped: 0,
            ..
        } => assert!(spans.is_empty(), "nothing recorded before arming"),
        other => panic!("expected an empty Telemetry reply, got {other:?}"),
    }

    // Populate: three agents, two adjacent (they will couple), one far.
    let records: Vec<NodeRecord<Point>> = [(0, 10, 10), (1, 11, 10), (2, 50, 50)]
        .into_iter()
        .map(|(agent, x, y)| NodeRecord {
            agent,
            step: 0,
            pos: Point::new(x, y),
            history: vec![(0, Point::new(x, y))],
        })
        .collect();
    link.send(CtrlMsg::Arrive { records }).unwrap();
    assert_eq!(link.recv().unwrap(), ShardMsg::Done);

    // Commit one step for agent 0 across the wire.
    link.send(CtrlMsg::Commit {
        updates: vec![(0, Point::new(10, 11))],
    })
    .unwrap();
    assert_eq!(link.recv().unwrap(), ShardMsg::Done);

    // Relink probe for agent 1 (still at step 0): agent 2 is far away,
    // agent 0 is one step ahead — a blocking edge with the lower-step
    // agent 1 as the blocker.
    link.send(CtrlMsg::RelinkQuery {
        probes: vec![Probe {
            agent: 1,
            step: 0,
            pos: Point::new(11, 10),
        }],
    })
    .unwrap();
    let reply = link.recv().unwrap();
    assert_eq!(
        reply,
        ShardMsg::Edges {
            edges: vec![WireEdge {
                coupled: false,
                a: 1,
                b: 0,
            }],
        },
        "expected agent 1 to block run-ahead agent 0"
    );

    // Quiesce: the worker's ground truth reflects the commit.
    link.send(CtrlMsg::Quiesce).unwrap();
    assert_eq!(
        link.recv().unwrap(),
        ShardMsg::Quiesced {
            states: vec![
                (0, 1, Point::new(10, 11)),
                (1, 0, Point::new(11, 10)),
                (2, 0, Point::new(50, 50)),
            ],
        }
    );

    // A protocol-level failure crosses the wire as Failed, not a panic
    // or a dropped connection.
    link.send(CtrlMsg::Commit {
        updates: vec![(99, Point::new(0, 0))],
    })
    .unwrap();
    match link.recv().unwrap() {
        ShardMsg::Failed { message } => {
            assert!(message.contains("not a member"), "{message}");
        }
        other => panic!("expected Failed, got {other:?}"),
    }

    // Recover rebuilds in-memory state from the worker's own database —
    // the same handshake a respawn after a crash uses.
    link.send(CtrlMsg::Recover {
        expected: vec![0, 1, 2],
    })
    .unwrap();
    assert_eq!(
        link.recv().unwrap(),
        ShardMsg::Recovered {
            states: vec![
                (0, 1, Point::new(10, 11)),
                (1, 0, Point::new(11, 10)),
                (2, 0, Point::new(50, 50)),
            ],
        }
    );

    // History eviction over the wire (floor 1 drops the three step-0
    // records; agent 0's step-1 record survives).
    link.send(CtrlMsg::EvictHistory { floor: 1 }).unwrap();
    assert_eq!(link.recv().unwrap(), ShardMsg::Evicted { removed: 3 });

    // Second harvest: everything the armed worker applied above crosses
    // the wire as spans on its own clock; the midpoint-of-RTT offset
    // rebases them onto the controller's timeline.
    let t_send = telemetry.now_us();
    link.send(CtrlMsg::HarvestTelemetry { now_us: t_send })
        .unwrap();
    let reply = link.recv().unwrap();
    let t_recv = telemetry.now_us();
    let ShardMsg::Telemetry {
        worker,
        now_us,
        spans,
        counters,
        dropped,
    } = reply
    else {
        panic!("expected Telemetry, got {reply:?}");
    };
    assert_eq!(worker, 7);
    assert!(
        !spans.is_empty(),
        "the armed worker recorded its protocol applies"
    );
    assert!(
        spans.iter().all(|sp| matches!(
            sp.kind,
            SpanKind::Boundary {
                worker: 7,
                op: BoundaryOp::Apply,
                ..
            }
        )),
        "worker-side spans are all remote applies: {spans:?}"
    );
    assert!(
        counters
            .iter()
            .any(|&(c, n)| c == aim_core::telemetry::Counter::BoundaryMessages && n > 0),
        "worker counts its own boundary messages: {counters:?}"
    );

    // Merge into the controller sink exactly as DistTracker::
    // harvest_telemetry does, then check the remote applies survive into
    // the finished report on their own named track.
    let midpoint = t_send + (t_recv - t_send) / 2;
    let offset = midpoint as i64 - now_us as i64;
    let track = telemetry.remote_track("worker 7 (remote)");
    telemetry.ingest(track, &spans, offset);
    telemetry.set_remote_dropped(track, dropped);
    let wire_spans = spans.len();

    link.send(CtrlMsg::Shutdown).unwrap();
    assert_eq!(link.recv().unwrap(), ShardMsg::Done);

    let end = telemetry.now_us();
    let rt = telemetry.finish(0, end, 3, SchedStats::default(), None);
    assert_eq!(rt.track_name(track), Some("worker 7 (remote)"));
    let remote_applies = rt
        .spans
        .iter()
        .filter(|sp| {
            sp.track == track
                && matches!(
                    sp.kind,
                    SpanKind::Boundary {
                        worker: 7,
                        op: BoundaryOp::Apply,
                        ..
                    }
                )
        })
        .count();
    assert_eq!(
        remote_applies, wire_spans,
        "every harvested remote apply lands in the merged report"
    );

    let status = child.wait().expect("child exit status");
    assert!(status.success(), "worker process failed: {status}");
}
