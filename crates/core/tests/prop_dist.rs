//! Property tests for the distributed tracker: a [`DistTracker`] — shard
//! workers isolated behind the typed message protocol, each with its own
//! database — driven by arbitrary advance/rollback/evict churn must look
//! **identical** to a single-shard [`DepGraph`] fed the same operations.
//! Strips are narrow relative to the move distribution, so migrations
//! (the depart/arrive handshake) are routine; after every operation the
//! controller mirror is cross-checked against the workers' ground truth
//! via the quiesce protocol.

use std::sync::Arc;

use aim_core::depgraph::{DepGraph, EdgeMode, GraphOptions};
use aim_core::dist::DistTracker;
use aim_core::prelude::*;
use aim_core::shard::StripShardMap;
use aim_core::space::{GridSpace, Point};
use aim_store::Db;
use proptest::prelude::*;

const W: u32 = 64;

fn options() -> GraphOptions {
    GraphOptions {
        edges: EdgeMode::Maintained,
        history: true,
    }
}

fn build_pair(
    points: &[(i32, i32)],
    params: RuleParams,
    shards: usize,
) -> (DistTracker<GridSpace>, DepGraph<GridSpace>) {
    let space = Arc::new(GridSpace::new(W, W));
    let initial: Vec<Point> = points.iter().map(|&(x, y)| Point::new(x, y)).collect();
    let dist = DistTracker::new(
        Arc::clone(&space),
        params,
        &initial,
        Arc::new(StripShardMap::new(W, shards)),
        options(),
    )
    .unwrap();
    let single =
        DepGraph::new_with_options(space, params, Arc::new(Db::new()), &initial, options())
            .unwrap();
    (dist, single)
}

/// Full equivalence check between the distributed tracker and the oracle.
fn assert_equivalent(dist: &mut DistTracker<GridSpace>, single: &DepGraph<GridSpace>) {
    dist.check_invariants();
    assert_eq!(dist.snapshot(), single.snapshot(), "graphs diverged");
    assert_eq!(dist.min_step(), single.min_step());
    assert_eq!(dist.max_step(), single.max_step());
    assert_eq!(dist.validate().is_ok(), single.validate().is_ok());
    for a in 0..dist.len() as u32 {
        let a = AgentId(a);
        assert_eq!(
            dist.first_blocker(a),
            single.first_blocker(a),
            "first blocker of {a} diverged"
        );
        assert_eq!(dist.coupled_of(a), single.coupled_of(a));
        assert_eq!(dist.blockers_of(a), single.blockers_of(a));
    }
    assert_eq!(dist.history_records(), single.history_records());
    assert_eq!(dist.history_floor(), single.history_floor());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random single-agent churn — advances, legal rollbacks, history
    /// evictions — leaves the worker-backed tracker world-for-world equal
    /// to the single-shard oracle. Moves of up to ±6 against narrow
    /// strips make boundary migrations routine.
    #[test]
    fn dist_tracker_equals_single_shard_under_churn(
        points in proptest::collection::vec((0i32..W as i32, 0i32..W as i32), 2..10),
        shards in 1usize..7,
        ops in proptest::collection::vec(
            (any::<u16>(), 0u8..12, -6i32..7, -4i32..5),
            1..40
        ),
        params in (1u32..5, 1u32..3).prop_map(|(r, v)| RuleParams::new(r, v)),
    ) {
        let (mut dist, mut single) = build_pair(&points, params, shards);
        assert_equivalent(&mut dist, &single);

        for (pick, kind, dx, dy) in ops {
            let a = AgentId(pick as u32 % dist.len() as u32);
            let cur = dist.pos(a);
            let moved = Point::new(cur.x + dx, cur.y + dy);
            if kind < 8 || dist.step(a) == Step::ZERO {
                dist.advance(&[(a, moved)]).unwrap();
                single.advance(&[(a, moved)]).unwrap();
            } else if kind == 11 {
                let e1 = dist.evict_history().unwrap();
                let e2 = single.evict_history().unwrap();
                prop_assert_eq!(e1, e2, "evicted counts diverged");
            } else {
                let lo = dist.min_step().0;
                let target = Step(lo + pick as u32 % (dist.step(a).0 - lo + 1));
                dist.rollback(&[(a, target, moved)]).unwrap();
                single.rollback(&[(a, target, moved)]).unwrap();
            }
            assert_equivalent(&mut dist, &single);
        }
    }

    /// Batch commits with members scattered across (and crossing) worker
    /// boundaries — the grouped commit fan-out plus the depart/arrive
    /// handshake — keep the trackers identical.
    #[test]
    fn dist_batch_commits_cross_boundaries_exactly(
        points in proptest::collection::vec((0i32..W as i32, 0i32..W as i32), 4..12),
        shards in 2usize..6,
        batches in proptest::collection::vec(
            proptest::collection::vec((any::<u16>(), -5i32..6, -3i32..4), 1..5),
            1..16
        ),
        params in (1u32..4, 1u32..3).prop_map(|(r, v)| RuleParams::new(r, v)),
    ) {
        let (mut dist, mut single) = build_pair(&points, params, shards);
        for batch in batches {
            let mut updates: Vec<(AgentId, Point)> = Vec::new();
            for (pick, dx, dy) in batch {
                let a = AgentId(pick as u32 % dist.len() as u32);
                if updates.iter().any(|(x, _)| *x == a) {
                    continue;
                }
                let cur = dist.pos(a);
                updates.push((a, Point::new(cur.x + dx, cur.y + dy)));
            }
            dist.advance(&updates).unwrap();
            single.advance(&updates).unwrap();
            assert_equivalent(&mut dist, &single);
        }
    }

    /// Asking for more workers than the strip map can cut (`shards >
    /// width`) clamps instead of creating phantom regions, and the
    /// clamped worker fleet still matches the oracle exactly — the
    /// distributed arm of the `StripShardMap` oversharding regression.
    #[test]
    fn oversharded_dist_tracker_equals_oracle(
        points in proptest::collection::vec((0i32..8, 0i32..8), 2..8),
        excess in 0usize..40,
        ops in proptest::collection::vec((any::<u16>(), -3i32..4, -3i32..4), 1..20),
        params in (1u32..4, 1u32..3).prop_map(|(r, v)| RuleParams::new(r, v)),
    ) {
        let narrow: u32 = 8;
        let space = Arc::new(GridSpace::new(narrow, W));
        let initial: Vec<Point> = points.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let map = Arc::new(StripShardMap::new(narrow, narrow as usize + excess));
        prop_assert!(map.num_shards() <= narrow as usize);
        let mut dist = DistTracker::new(
            Arc::clone(&space),
            params,
            &initial,
            map,
            options(),
        )
        .unwrap();
        let mut single = DepGraph::new_with_options(
            space,
            params,
            Arc::new(Db::new()),
            &initial,
            options(),
        )
        .unwrap();
        for (pick, dx, dy) in ops {
            let a = AgentId(pick as u32 % dist.len() as u32);
            let cur = dist.pos(a);
            let moved = Point::new(cur.x + dx, cur.y + dy);
            dist.advance(&[(a, moved)]).unwrap();
            single.advance(&[(a, moved)]).unwrap();
            assert_equivalent(&mut dist, &single);
        }
    }

    /// Rebuilding a tracker from the per-worker databases and member
    /// lists ([`DistTracker::recover`]) reproduces the live tracker after
    /// churn — every worker recovers from its own store alone, including
    /// agents that migrated (their history moved with them).
    #[test]
    fn dist_recovery_from_worker_stores(
        points in proptest::collection::vec((0i32..W as i32, 0i32..W as i32), 2..8),
        shards in 2usize..6,
        ops in proptest::collection::vec((any::<u16>(), -5i32..6, -3i32..4), 1..25),
        params in (1u32..5, 1u32..3).prop_map(|(r, v)| RuleParams::new(r, v)),
    ) {
        let space = Arc::new(GridSpace::new(W, W));
        let initial: Vec<Point> = points.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let map = Arc::new(StripShardMap::new(W, shards));
        let mut live = DistTracker::new(
            Arc::clone(&space),
            params,
            &initial,
            Arc::clone(&map) as Arc<dyn aim_core::shard::ShardMap<Point>>,
            options(),
        )
        .unwrap();
        for (pick, dx, dy) in ops {
            let a = AgentId(pick as u32 % live.len() as u32);
            let cur = live.pos(a);
            live.advance(&[(a, Point::new(cur.x + dx, cur.y + dy))]).unwrap();
        }
        let dbs: Vec<Arc<Db>> =
            (0..live.num_shards()).map(|j| Arc::clone(live.worker_db(j))).collect();
        let members: Vec<Vec<u32>> =
            (0..live.num_shards()).map(|j| live.members(j)).collect();
        let mut rebuilt = DistTracker::recover(
            space,
            params,
            dbs,
            map,
            options(),
            &members,
        )
        .unwrap();
        rebuilt.check_invariants();
        prop_assert_eq!(live.snapshot(), rebuilt.snapshot());
        prop_assert_eq!(live.history_records(), rebuilt.history_records());
        for j in 0..live.num_shards() {
            prop_assert_eq!(live.members(j), rebuilt.members(j));
        }
    }
}
