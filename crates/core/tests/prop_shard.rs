//! Property tests for sharded dependency tracking: a [`ShardedDepGraph`]
//! driven by arbitrary advance/rollback/evict/migration sequences must
//! look **identical** — nodes, blocked edges, coupled edges, step
//! extremes, blocker order — to a single-shard [`DepGraph`] fed the same
//! operations. The strips are kept narrow relative to the move
//! distribution, so agents constantly cross shard boundaries (including
//! while coupled, the boundary-edge protocol's hard case), and the
//! sharded tracker's internal invariants (ownership = shard map, step
//! bounds = node table) are re-checked after every operation.

use std::sync::Arc;

use aim_core::depgraph::{DepGraph, EdgeMode, GraphOptions};
use aim_core::prelude::*;
use aim_core::shard::{ShardedDepGraph, StripShardMap};
use aim_core::space::{GridSpace, Point};
use aim_store::Db;
use proptest::prelude::*;

const W: u32 = 64;

fn options() -> GraphOptions {
    GraphOptions {
        edges: EdgeMode::Maintained,
        history: true,
    }
}

fn build_pair(
    points: &[(i32, i32)],
    params: RuleParams,
    shards: usize,
) -> (ShardedDepGraph<GridSpace>, DepGraph<GridSpace>) {
    let space = Arc::new(GridSpace::new(W, W));
    let initial: Vec<Point> = points.iter().map(|&(x, y)| Point::new(x, y)).collect();
    let sharded = ShardedDepGraph::new_with_options(
        Arc::clone(&space),
        params,
        Arc::new(Db::new()),
        &initial,
        Arc::new(StripShardMap::new(W, shards)),
        options(),
    )
    .unwrap();
    let single =
        DepGraph::new_with_options(space, params, Arc::new(Db::new()), &initial, options())
            .unwrap();
    (sharded, single)
}

/// Full equivalence check between the two trackers.
fn assert_equivalent(sharded: &ShardedDepGraph<GridSpace>, single: &DepGraph<GridSpace>) {
    sharded.check_invariants();
    assert_eq!(sharded.snapshot(), single.snapshot(), "graphs diverged");
    assert_eq!(sharded.min_step(), single.min_step());
    assert_eq!(sharded.max_step(), single.max_step());
    assert_eq!(sharded.validate().is_ok(), single.validate().is_ok());
    for a in 0..sharded.len() as u32 {
        let a = AgentId(a);
        assert_eq!(
            sharded.first_blocker(a),
            single.first_blocker(a),
            "first blocker of {a} diverged"
        );
        assert_eq!(sharded.coupled_of(a), single.coupled_of(a));
        assert_eq!(sharded.blockers_of(a), single.blockers_of(a));
    }
    assert_eq!(sharded.history_records(), single.history_records());
    assert_eq!(sharded.history_floor(), single.history_floor());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random single-agent churn: after every advance / legal rollback /
    /// eviction the sharded tracker equals the single-shard oracle.
    /// Moves of up to ±6 against 64/shards-wide strips make boundary
    /// crossings routine.
    #[test]
    fn sharded_equals_single_shard_under_churn(
        points in proptest::collection::vec((0i32..W as i32, 0i32..W as i32), 2..10),
        shards in 1usize..7,
        ops in proptest::collection::vec(
            (any::<u16>(), 0u8..12, -6i32..7, -4i32..5),
            1..50
        ),
        params in (1u32..5, 1u32..3).prop_map(|(r, v)| RuleParams::new(r, v)),
    ) {
        let (mut sharded, mut single) = build_pair(&points, params, shards);
        assert_equivalent(&sharded, &single);

        for (pick, kind, dx, dy) in ops {
            let a = AgentId(pick as u32 % sharded.len() as u32);
            let cur = sharded.pos(a);
            let moved = Point::new(cur.x + dx, cur.y + dy);
            if kind < 8 || sharded.step(a) == Step::ZERO {
                sharded.advance(&[(a, moved)]).unwrap();
                single.advance(&[(a, moved)]).unwrap();
            } else if kind == 11 {
                // Eviction mid-churn (min_step identical on both sides).
                let e1 = sharded.evict_history().unwrap();
                let e2 = single.evict_history().unwrap();
                prop_assert_eq!(e1, e2, "evicted counts diverged");
            } else {
                // A legal rollback: target at or above the global floor.
                let lo = sharded.min_step().0;
                let target = Step(lo + pick as u32 % (sharded.step(a).0 - lo + 1));
                sharded.rollback(&[(a, target, moved)]).unwrap();
                single.rollback(&[(a, target, moved)]).unwrap();
            }
            assert_equivalent(&sharded, &single);
        }
    }

    /// Cluster-sized batch advances — coupled groups committing together,
    /// members scattered across (and crossing) shard boundaries — keep
    /// the trackers identical, through both the serial and the forced-
    /// parallel relink paths.
    #[test]
    fn batch_commits_cross_boundaries_exactly(
        points in proptest::collection::vec((0i32..W as i32, 0i32..W as i32), 4..12),
        shards in 2usize..6,
        batches in proptest::collection::vec(
            proptest::collection::vec((any::<u16>(), -5i32..6, -3i32..4), 1..5),
            1..20
        ),
        parallel in any::<bool>(),
        params in (1u32..4, 1u32..3).prop_map(|(r, v)| RuleParams::new(r, v)),
    ) {
        let (mut sharded, mut single) = build_pair(&points, params, shards);
        if parallel {
            // Forcing >1 worker exercises the parallel compute/apply
            // split even though these batches are below the automatic
            // threshold (the threshold only gates the *decision*, not
            // correctness).
            sharded.set_relink_threads(2);
        }
        for batch in batches {
            let mut updates: Vec<(AgentId, Point)> = Vec::new();
            for (pick, dx, dy) in batch {
                let a = AgentId(pick as u32 % sharded.len() as u32);
                if updates.iter().any(|(x, _)| *x == a) {
                    continue;
                }
                let cur = sharded.pos(a);
                updates.push((a, Point::new(cur.x + dx, cur.y + dy)));
            }
            sharded.advance(&updates).unwrap();
            single.advance(&updates).unwrap();
            assert_equivalent(&sharded, &single);
        }
    }

    /// Requesting more shards than the map width can cut clamps the
    /// effective shard count (`StripShardMap` oversharding regression)
    /// and the clamped tracker still matches the single-shard oracle
    /// exactly under churn.
    #[test]
    fn oversharded_map_equals_single_shard_oracle(
        points in proptest::collection::vec((0i32..8, 0i32..8), 2..8),
        excess in 0usize..40,
        ops in proptest::collection::vec((any::<u16>(), -3i32..4, -3i32..4), 1..25),
        params in (1u32..4, 1u32..3).prop_map(|(r, v)| RuleParams::new(r, v)),
    ) {
        let narrow: u32 = 8;
        let space = Arc::new(GridSpace::new(narrow, W));
        let initial: Vec<Point> = points.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let map = Arc::new(StripShardMap::new(narrow, narrow as usize + excess));
        prop_assert!(map.num_shards() <= narrow as usize, "oversharding must clamp");
        let mut sharded = ShardedDepGraph::new_with_options(
            Arc::clone(&space),
            params,
            Arc::new(Db::new()),
            &initial,
            map,
            options(),
        )
        .unwrap();
        let mut single = DepGraph::new_with_options(
            space,
            params,
            Arc::new(Db::new()),
            &initial,
            options(),
        )
        .unwrap();
        for (pick, dx, dy) in ops {
            let a = AgentId(pick as u32 % sharded.len() as u32);
            let cur = sharded.pos(a);
            let moved = Point::new(cur.x + dx, cur.y + dy);
            sharded.advance(&[(a, moved)]).unwrap();
            single.advance(&[(a, moved)]).unwrap();
            assert_equivalent(&sharded, &single);
        }
    }

    /// Recovery from the store (with and without recorded membership)
    /// rebuilds a tracker identical to the live one after churn.
    #[test]
    fn recovery_preserves_sharded_state(
        points in proptest::collection::vec((0i32..W as i32, 0i32..W as i32), 2..8),
        shards in 2usize..6,
        ops in proptest::collection::vec((any::<u16>(), -5i32..6, -3i32..4), 1..30),
        params in (1u32..5, 1u32..3).prop_map(|(r, v)| RuleParams::new(r, v)),
    ) {
        let space = Arc::new(GridSpace::new(W, W));
        let db = Arc::new(Db::new());
        let initial: Vec<Point> = points.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let map = Arc::new(StripShardMap::new(W, shards));
        let mut g = ShardedDepGraph::new_with_options(
            Arc::clone(&space),
            params,
            Arc::clone(&db),
            &initial,
            Arc::clone(&map) as Arc<dyn aim_core::shard::ShardMap<Point>>,
            options(),
        )
        .unwrap();
        for (pick, dx, dy) in ops {
            let a = AgentId(pick as u32 % g.len() as u32);
            let cur = g.pos(a);
            g.advance(&[(a, Point::new(cur.x + dx, cur.y + dy))]).unwrap();
        }
        let rescan = ShardedDepGraph::recover(
            Arc::clone(&space),
            params,
            Arc::clone(&db),
            g.len(),
            Arc::clone(&map) as Arc<dyn aim_core::shard::ShardMap<Point>>,
            options(),
        )
        .unwrap();
        prop_assert_eq!(g.snapshot(), rescan.snapshot());
        let members: Vec<Vec<u32>> = (0..shards).map(|j| g.members(j)).collect();
        let seeded = ShardedDepGraph::recover_with_members(
            space,
            params,
            db,
            g.len(),
            map,
            options(),
            &members,
        )
        .unwrap();
        prop_assert_eq!(g.snapshot(), seeded.snapshot());
        seeded.check_invariants();
        for j in 0..shards {
            prop_assert_eq!(g.members(j), seeded.members(j));
        }
    }
}
