//! Merge determinism for distributed telemetry: identical seeded dist
//! runs must yield identical order-normalized merged span structure, and
//! the stall-decomposition coverage gate must hold on the merged report.
//!
//! Two layers are pinned:
//!
//! * **Tracker layer** — two [`DistTracker`] runs fed the same seeded
//!   operation script produce the same multiset of span kinds after the
//!   end-of-run harvest (timestamps differ run to run; structure must
//!   not).
//! * **Transport layer** (`dist-socket` feature) — the same request
//!   script driven through a [`ChannelLink`] and through a TCP
//!   [`SocketLink`](aim_core::dist::socket::SocketLink), each followed by
//!   a wire harvest + merge, produces the same order-normalized merged
//!   span structure. The transport may change the clock domain, never
//!   what was observed.

use std::sync::Arc;

use aim_core::depgraph::{EdgeMode, GraphOptions};
use aim_core::dist::DistTracker;
use aim_core::prelude::*;
use aim_core::scheduler::SchedStats;
use aim_core::shard::StripShardMap;
use aim_core::space::{GridSpace, Point};
use aim_core::telemetry::{RunTelemetry, Telemetry};

const W: u32 = 64;

/// Order-normalized span structure: the multiset of span kinds, with
/// timestamps and buffer-assignment tracks erased.
fn normalized_kinds(rt: &RunTelemetry) -> Vec<String> {
    let mut kinds: Vec<String> = rt.spans.iter().map(|s| format!("{:?}", s.kind)).collect();
    kinds.sort_unstable();
    kinds
}

/// One seeded dist run: a fixed op script over a strip-sharded tracker
/// with telemetry attached, harvested and finished into a merged report.
fn seeded_channel_run() -> RunTelemetry {
    let space = Arc::new(GridSpace::new(W, W));
    let initial: Vec<Point> = (0..12)
        .map(|i| Point::new((i * 5) % W as i32, (i * 7) % W as i32))
        .collect();
    let mut tracker = DistTracker::new(
        Arc::clone(&space),
        RuleParams::new(2, 1),
        &initial,
        Arc::new(StripShardMap::new(W, 4)),
        GraphOptions {
            edges: EdgeMode::Maintained,
            history: true,
        },
    )
    .expect("tracker");
    let telemetry = Arc::new(Telemetry::new());
    tracker.set_telemetry(Arc::clone(&telemetry));
    let start = telemetry.now_us();

    // A fixed LCG drives the script so both runs replay the same ops.
    let mut state = 0x2545F4914F6CDD1Du64;
    let mut rng = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as u32
    };
    for round in 0..40 {
        let a = AgentId(rng() % 12);
        let pos = tracker.pos(a);
        let dx = (rng() % 3) as i32 - 1;
        let dy = (rng() % 3) as i32 - 1;
        let next = Point::new(
            (pos.x + dx).clamp(0, W as i32 - 1),
            (pos.y + dy).clamp(0, W as i32 - 1),
        );
        tracker.advance(&[(a, next)]).expect("advance");
        if round % 10 == 9 {
            tracker.evict_history().expect("evict");
        }
    }
    tracker.harvest_telemetry().expect("harvest");
    let end = telemetry.now_us();
    drop(tracker); // workers release their Arc<Telemetry> clones
    Arc::try_unwrap(telemetry)
        .ok()
        .map(|t| t.finish(start, end, 12, SchedStats::default(), None))
        .unwrap_or_else(|| panic!("telemetry sink still shared at finish"))
}

#[test]
fn seeded_dist_runs_merge_identically() {
    let a = seeded_channel_run();
    let b = seeded_channel_run();
    let ka = normalized_kinds(&a);
    assert!(!ka.is_empty(), "the run recorded protocol spans");
    assert_eq!(
        ka,
        normalized_kinds(&b),
        "identical seeded runs must merge to identical span structure"
    );
    // The ≥95% stall-coverage gate holds on the merged decomposition.
    assert!(
        a.decomposition.coverage() >= 0.95,
        "coverage {:.3} below the gate",
        a.decomposition.coverage()
    );
}

#[cfg(feature = "dist-socket")]
mod transports {
    use super::*;

    use std::net::{TcpListener, TcpStream};

    use aim_core::dist::socket::{serve_connection, SocketLink};
    use aim_core::dist::{
        ChannelLink, CtrlMsg, NodeRecord, Probe, ShardMsg, ShardWorker, WorkerLink,
    };
    use aim_store::Db;

    fn space() -> Arc<GridSpace> {
        Arc::new(GridSpace::new(W, W))
    }

    /// Drives the fixed request script through `link`, harvesting the
    /// worker's wire telemetry into a fresh controller sink, and returns
    /// the finished merged report.
    fn drive(link: &mut dyn WorkerLink<Point>) -> RunTelemetry {
        let telemetry = Telemetry::new();
        let start = telemetry.now_us();

        // Arming harvest: enables worker-local recording.
        link.send(CtrlMsg::HarvestTelemetry {
            now_us: telemetry.now_us(),
        })
        .unwrap();
        assert!(matches!(
            link.recv().unwrap(),
            ShardMsg::Telemetry { worker: 7, .. }
        ));

        let records: Vec<NodeRecord<Point>> = [(0, 10, 10), (1, 11, 10), (2, 50, 50)]
            .into_iter()
            .map(|(agent, x, y)| NodeRecord {
                agent,
                step: 0,
                pos: Point::new(x, y),
                history: vec![(0, Point::new(x, y))],
            })
            .collect();
        link.send(CtrlMsg::Arrive { records }).unwrap();
        assert_eq!(link.recv().unwrap(), ShardMsg::Done);

        link.send(CtrlMsg::Commit {
            updates: vec![(0, Point::new(10, 11))],
        })
        .unwrap();
        assert_eq!(link.recv().unwrap(), ShardMsg::Done);

        link.send(CtrlMsg::RelinkQuery {
            probes: vec![Probe {
                agent: 1,
                step: 0,
                pos: Point::new(11, 10),
            }],
        })
        .unwrap();
        assert!(matches!(link.recv().unwrap(), ShardMsg::Edges { .. }));

        link.send(CtrlMsg::Quiesce).unwrap();
        assert!(matches!(link.recv().unwrap(), ShardMsg::Quiesced { .. }));

        link.send(CtrlMsg::EvictHistory { floor: 1 }).unwrap();
        assert!(matches!(link.recv().unwrap(), ShardMsg::Evicted { .. }));

        // Final harvest with the clock-offset handshake, then merge.
        let t_send = telemetry.now_us();
        link.send(CtrlMsg::HarvestTelemetry { now_us: t_send })
            .unwrap();
        let reply = link.recv().unwrap();
        let t_recv = telemetry.now_us();
        let ShardMsg::Telemetry {
            worker,
            now_us,
            spans,
            counters,
            dropped,
        } = reply
        else {
            panic!("expected Telemetry, got {reply:?}");
        };
        assert_eq!(worker, 7);
        let midpoint = t_send + (t_recv - t_send) / 2;
        let offset = midpoint as i64 - now_us as i64;
        let track = telemetry.remote_track("worker 7 (remote)");
        telemetry.ingest(track, &spans, offset);
        telemetry.set_remote_dropped(track, dropped);
        for (c, n) in counters {
            telemetry.counter_add(c, n);
        }

        link.send(CtrlMsg::Shutdown).unwrap();
        assert_eq!(link.recv().unwrap(), ShardMsg::Done);

        let end = telemetry.now_us();
        telemetry.finish(start, end, 3, SchedStats::default(), None)
    }

    #[test]
    fn channel_and_socket_transports_merge_identically() {
        // Channel transport: no shared sink installed, so the worker
        // records locally and everything crosses as wire telemetry —
        // the same path the socket transport is forced onto.
        let mut channel = ChannelLink::spawn(
            7,
            space(),
            RuleParams::new(2, 1),
            Arc::new(Db::new()),
            true,
            Arc::default(),
        );
        let via_channel = drive(&mut channel);

        // Socket transport: the same worker served over a TCP stream by
        // another thread (the OS-process variant lives in dist_socket.rs;
        // the framing and clock domains are identical).
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let mut worker = ShardWorker::new(
                7,
                space(),
                RuleParams::new(2, 1),
                Arc::new(Db::new()),
                true,
                Arc::default(),
            );
            serve_connection(stream, &mut worker).expect("serve");
        });
        let stream = TcpStream::connect(addr).expect("connect");
        let mut socket = SocketLink::connect(7, space(), stream).expect("handshake");
        let via_socket = drive(&mut socket);
        server.join().expect("server thread");

        let kinds = normalized_kinds(&via_channel);
        assert!(!kinds.is_empty(), "the script recorded spans");
        assert_eq!(
            kinds,
            normalized_kinds(&via_socket),
            "transport must not change the merged span structure"
        );
        assert_eq!(
            via_channel.worker_tracks, via_socket.worker_tracks,
            "same named tracks and drop accounting on both transports"
        );
        assert!(via_channel.decomposition.coverage() >= 0.95);
        assert!(via_socket.decomposition.coverage() >= 0.95);
    }
}
