//! Property tests for the heart of the paper: under *any* schedule the
//! engine can produce, the §3.2 validity condition holds at every reachable
//! state, and the simulation always terminates.

use std::sync::Arc;

use aim_core::cluster::{geo_cluster, DisjointSets};
use aim_core::policy::DependencyPolicy;
use aim_core::prelude::*;
use aim_core::rules::{self, RuleParams};
use aim_core::space::{GridSpace, Point, Space};
use aim_store::Db;
use proptest::prelude::*;

fn arb_points(n: usize, extent: i32) -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec((0..extent, 0..extent), n..=n)
        .prop_map(|v| v.into_iter().map(|(x, y)| Point::new(x, y)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Randomized out-of-order execution: pick any subset of ready clusters
    /// each round, move agents by random unit steps — validity must hold
    /// after every commit and every agent must finish.
    #[test]
    fn random_ooo_schedules_preserve_validity(
        points in arb_points(8, 30),
        target in 2u32..8,
        moves in proptest::collection::vec((0u8..5, any::<u16>()), 0..400),
        params in (1u32..5, 1u32..3).prop_map(|(r, v)| RuleParams::new(r, v)),
    ) {
        let space = Arc::new(GridSpace::new(64, 64));
        let mut sched = Scheduler::new(
            Arc::clone(&space),
            params,
            DependencyPolicy::Spatiotemporal,
            Arc::new(Db::new()),
            &points,
            Step(target),
        ).unwrap();

        let mut pending: Vec<Cluster> = Vec::new();
        let mut move_iter = moves.into_iter();
        let mut safety = 0;
        while !sched.is_done() {
            safety += 1;
            prop_assert!(safety < 10_000, "failed to converge");
            pending.extend(sched.ready_clusters());
            prop_assert!(
                !pending.is_empty() || sched.inflight_len() > pending.len(),
                "deadlock: nothing ready, nothing in flight"
            );
            if pending.is_empty() {
                continue;
            }
            // Complete a pseudo-random pending cluster (the adversarial
            // schedule), moving each member by ≤ max_vel in a random
            // direction.
            let (dir_seed, pick) = move_iter.next().unwrap_or((0, 0));
            let idx = pick as usize % pending.len();
            let cluster = pending.swap_remove(idx);
            let new_pos: Vec<(AgentId, Point)> = cluster
                .members
                .iter()
                .enumerate()
                .map(|(i, m)| {
                    let cur = sched.graph().pos(*m);
                    let d = (dir_seed as usize + i) % 5;
                    let (dx, dy) = [(0, 0), (1, 0), (-1, 0), (0, 1), (0, -1)][d];
                    let v = params.max_vel as i32;
                    (*m, Point::new(cur.x + dx * v, cur.y + dy * v))
                })
                .collect();
            sched.complete(&cluster.id, &new_pos).unwrap();
            // THE invariant: no pair of agents may ever be close enough to
            // observe each other across different simulation times.
            prop_assert!(
                sched.graph().validate().is_ok(),
                "validity violated: {:?}",
                sched.graph().validate()
            );
        }
        prop_assert_eq!(sched.inflight_len(), 0);
    }

    /// Coupling is symmetric and blocking respects step order.
    #[test]
    fn rule_algebra(
        ax in 0i32..50, ay in 0i32..50,
        bx in 0i32..50, by in 0i32..50,
        sa in 0u32..10, sb in 0u32..10,
        r in 1u32..6, v in 1u32..4,
    ) {
        let g = GridSpace::new(64, 64);
        let params = RuleParams::new(r, v);
        let a = (Point::new(ax, ay), Step(sa));
        let b = (Point::new(bx, by), Step(sb));
        prop_assert_eq!(
            rules::coupled(&g, params, a, b),
            rules::coupled(&g, params, b, a),
            "coupling must be symmetric"
        );
        if sa < sb {
            prop_assert!(!rules::blocked_by(&g, params, a, b), "future agents never block");
        }
        // Blocking radius is monotone in the step gap.
        if sa >= sb && rules::blocked_by(&g, params, a, b) {
            let further = (a.0, Step(sa + 1));
            prop_assert!(
                rules::blocked_by(&g, params, further, b),
                "a larger gap must keep the pair blocked at the same distance"
            );
        }
        // Validity is symmetric.
        prop_assert_eq!(
            rules::pair_valid(&g, params, a, b),
            rules::pair_valid(&g, params, b, a)
        );
    }

    /// Ground-truth interactions (within radius_p) are always a subset of
    /// the conservative coupling relation (within radius_p + max_vel):
    /// the oracle never needs an edge metropolis would not have enforced.
    #[test]
    fn oracle_interactions_subset_of_coupling(
        points in arb_points(10, 25),
        r in 1u32..6, v in 1u32..4,
    ) {
        let g = GridSpace::new(64, 64);
        let params = RuleParams::new(r, v);
        for i in 0..points.len() {
            for j in (i + 1)..points.len() {
                let interacting = g.within_units(points[i], points[j], params.radius_p as u64);
                if interacting {
                    prop_assert!(rules::coupled(
                        &g,
                        params,
                        (points[i], Step(0)),
                        (points[j], Step(0))
                    ));
                }
            }
        }
    }

    /// geo_cluster returns exactly the connected components of the
    /// coupling graph.
    #[test]
    fn clusters_are_connected_components(
        points in arb_points(12, 20),
        r in 1u32..5, v in 1u32..3,
    ) {
        let g = GridSpace::new(64, 64);
        let params = RuleParams::new(r, v);
        let agents: Vec<(AgentId, Step, Point)> =
            points.iter().enumerate().map(|(i, p)| (AgentId(i as u32), Step(0), *p)).collect();
        let clusters = geo_cluster(&g, params, Step(0), &agents);
        // Reference: union-find over the naive pair scan.
        let mut ds = DisjointSets::new(points.len());
        for i in 0..points.len() {
            for j in (i + 1)..points.len() {
                if g.within_units(points[i], points[j], params.coupling_units()) {
                    ds.union(i, j);
                }
            }
        }
        let expect: Vec<Vec<AgentId>> = ds
            .groups()
            .into_iter()
            .map(|grp| grp.into_iter().map(|i| AgentId(i as u32)).collect())
            .collect();
        prop_assert_eq!(clusters, expect);
    }

    /// The uniform-grid pair search agrees with the naive O(n²) scan
    /// (as a set — `pairs_within` leaves pair order unspecified).
    #[test]
    fn pairs_within_matches_naive(
        points in arb_points(40, 60),
        units in 1u64..12,
    ) {
        let g = GridSpace::new(64, 64);
        let mut fast = g.pairs_within(&points, units);
        fast.sort_unstable();
        let mut naive = Vec::new();
        for i in 0..points.len() {
            for j in (i + 1)..points.len() {
                if g.within_units(points[i], points[j], units) {
                    naive.push((i, j));
                }
            }
        }
        prop_assert_eq!(fast, naive);
    }
}

mod social_space_scheduling {
    //! The scheduler is generic over the metric space (§6): drive it over
    //! a social graph end to end.

    use super::*;
    use aim_core::space::{NodeId, SocialSpace};

    fn ring(n: u32) -> SocialSpace {
        let edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        SocialSpace::new(n as usize, &edges)
    }

    #[test]
    fn scheduler_runs_on_a_social_graph() {
        // 12 agents spread around a 24-node ring; perception = 2 hops,
        // movement = 1 hop per step. Opposite sides of the ring are far
        // apart and may drift in simulation time.
        let space = Arc::new(ring(24));
        let initial: Vec<NodeId> = (0..12).map(|i| NodeId(i * 2)).collect();
        let mut sched = Scheduler::new(
            Arc::clone(&space),
            RuleParams::new(2, 1),
            DependencyPolicy::Spatiotemporal,
            Arc::new(Db::new()),
            &initial,
            Step(4),
        )
        .unwrap();
        let mut safety = 0;
        while !sched.is_done() {
            safety += 1;
            assert!(safety < 10_000);
            let ready = sched.ready_clusters();
            assert!(!ready.is_empty() || sched.inflight_len() > 0, "deadlock");
            for c in ready {
                // Everyone shuffles one hop clockwise.
                let pos: Vec<(AgentId, NodeId)> = c
                    .members
                    .iter()
                    .map(|m| {
                        let cur = sched.graph().pos(*m);
                        (*m, NodeId((cur.0 + 1) % 24))
                    })
                    .collect();
                sched.complete(&c.id, &pos).unwrap();
                assert!(sched.graph().validate().is_ok());
            }
        }
        // Neighbors on the ring (2 hops apart at start, within coupling
        // radius 3) must have been coupled into shared clusters.
        assert!(sched.stats().max_cluster_size >= 2);
    }

    #[test]
    fn disconnected_components_never_interact() {
        // Two separate triangles: infinite hop distance between them, so
        // one component can run arbitrarily far ahead.
        let space = Arc::new(SocialSpace::new(
            6,
            &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)],
        ));
        let initial = vec![NodeId(0), NodeId(3)];
        let mut sched = Scheduler::new(
            space,
            RuleParams::new(1, 1),
            DependencyPolicy::Spatiotemporal,
            Arc::new(Db::new()),
            &initial,
            Step(50),
        )
        .unwrap();
        // Run only agent 0's component to completion; agent 1 never moves.
        let first = sched.ready_clusters();
        assert_eq!(first.len(), 2);
        let mut cluster = first[0].clone();
        assert_eq!(cluster.members, vec![AgentId(0)]);
        for _ in 0..50 {
            let pos = sched.graph().pos(AgentId(0));
            sched.complete(&cluster.id, &[(AgentId(0), pos)]).unwrap();
            match sched.ready_clusters().pop() {
                Some(c) => cluster = c,
                None => break,
            }
        }
        assert_eq!(
            sched.graph().step(AgentId(0)),
            Step(50),
            "agent 0 should run 50 steps ahead across the disconnect"
        );
        assert_eq!(sched.graph().step(AgentId(1)), Step(0));
        assert!(sched.graph().validate().is_ok());
    }
}
