//! Property tests for incremental dependency-graph maintenance: a
//! [`DepGraph`] driven by arbitrary advance/rollback sequences must look
//! **identical** — nodes, blocked edges, coupled edges — to (a) a graph
//! rebuilt from scratch out of the authoritative store records and (b) a
//! brute-force oracle that evaluates the §3.2 rules over every pair. The
//! incremental path shares no code with (b), so agreement pins down both
//! the maintenance and the spatial-index candidate generation.

use std::sync::Arc;

use aim_core::depgraph::DepGraph;
use aim_core::prelude::*;
use aim_core::rules::{self, RuleParams};
use aim_core::space::{GridSpace, Point};
use aim_store::Db;
use proptest::prelude::*;

/// Expected snapshot edges computed pair-by-pair from the rules alone.
fn oracle_edges(g: &DepGraph<GridSpace>) -> (Vec<(AgentId, AgentId)>, Vec<(AgentId, AgentId)>) {
    let space = GridSpace::new(64, 64);
    let params = g.params();
    let n = g.len() as u32;
    let mut blocked = Vec::new();
    let mut coupled = Vec::new();
    for a in 0..n {
        for b in 0..n {
            if a == b {
                continue;
            }
            let sa = (g.pos(AgentId(a)), g.step(AgentId(a)));
            let sb = (g.pos(AgentId(b)), g.step(AgentId(b)));
            // Strictly lagging blockers only (same-step closeness is
            // coupling, resolved by clustering).
            if sb.1 < sa.1 && rules::blocked_by(&space, params, sa, sb) {
                blocked.push((AgentId(b), AgentId(a)));
            }
            if a < b && rules::coupled(&space, params, sa, sb) {
                coupled.push((AgentId(a), AgentId(b)));
            }
        }
    }
    blocked.sort_unstable();
    coupled.sort_unstable();
    (blocked, coupled)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random advance/rollback sequences: after every operation the
    /// incrementally maintained graph equals a from-scratch rebuild and
    /// the pairwise rules oracle.
    #[test]
    fn incremental_equals_rebuild_and_oracle(
        points in proptest::collection::vec((0i32..48, 0i32..48), 2..10),
        ops in proptest::collection::vec(
            (any::<u16>(), 0u8..10, -2i32..3, -2i32..3),
            1..60
        ),
        params in (1u32..5, 1u32..3).prop_map(|(r, v)| RuleParams::new(r, v)),
    ) {
        let space = Arc::new(GridSpace::new(64, 64));
        let db = Arc::new(Db::new());
        let initial: Vec<Point> = points.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let mut g = DepGraph::new(
            Arc::clone(&space),
            params,
            Arc::clone(&db),
            &initial,
        ).unwrap();

        for (pick, kind, dx, dy) in ops {
            let a = AgentId(pick as u32 % g.len() as u32);
            let cur = g.pos(a);
            let moved = Point::new(cur.x + dx, cur.y + dy);
            if kind < 8 || g.step(a) == Step::ZERO {
                // Advance one step with an arbitrary move (the graph API
                // does not bound displacement; maintenance must not rely
                // on max_vel-sized moves).
                g.advance(&[(a, moved)]).unwrap();
            } else {
                // Rollback to a random earlier step.
                let target = Step(pick as u32 % g.step(a).0);
                g.rollback(&[(a, target, moved)]).unwrap();
            }

            let live = g.snapshot();
            let rebuilt = DepGraph::recover(
                Arc::clone(&space),
                params,
                Arc::clone(&db),
                g.len(),
            ).unwrap().snapshot();
            prop_assert_eq!(&live, &rebuilt, "live graph diverged from store rebuild");

            let (blocked, coupled) = oracle_edges(&g);
            let mut live_blocked = live.blocked.clone();
            live_blocked.sort_unstable();
            let mut live_coupled = live.coupled.clone();
            live_coupled.sort_unstable();
            prop_assert_eq!(live_blocked, blocked, "blocked edges diverged from rules oracle");
            prop_assert_eq!(live_coupled, coupled, "coupled edges diverged from rules oracle");
        }
    }

    /// Cluster-sized batch advances (several agents in one transaction,
    /// the worker commit shape) maintain edges exactly as a rebuild does.
    #[test]
    fn batch_advance_equals_rebuild(
        points in proptest::collection::vec((0i32..32, 0i32..32), 3..9),
        batches in proptest::collection::vec(
            proptest::collection::vec((any::<u16>(), -1i32..2, -1i32..2), 1..4),
            1..25
        ),
        params in (1u32..4, 1u32..3).prop_map(|(r, v)| RuleParams::new(r, v)),
    ) {
        let space = Arc::new(GridSpace::new(64, 64));
        let db = Arc::new(Db::new());
        let initial: Vec<Point> = points.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let mut g = DepGraph::new(Arc::clone(&space), params, Arc::clone(&db), &initial).unwrap();
        for batch in batches {
            // Distinct agents per batch (a cluster never repeats members).
            let mut updates: Vec<(AgentId, Point)> = Vec::new();
            for (pick, dx, dy) in batch {
                let a = AgentId(pick as u32 % g.len() as u32);
                if updates.iter().any(|(x, _)| *x == a) {
                    continue;
                }
                let cur = g.pos(a);
                updates.push((a, Point::new(cur.x + dx, cur.y + dy)));
            }
            g.advance(&updates).unwrap();
            let rebuilt = DepGraph::recover(
                Arc::clone(&space),
                params,
                Arc::clone(&db),
                g.len(),
            ).unwrap();
            prop_assert_eq!(g.snapshot(), rebuilt.snapshot());
        }
    }

    /// AIMSNAP roundtrip under churn: after arbitrary history-recording
    /// advance/rollback/eviction sequences, snapshotting the store,
    /// restoring it, and recovering a graph from the restored store
    /// yields a graph identical to the live one — same validated state,
    /// same adjacency (against the rules oracle), byte-for-byte the same
    /// re-snapshot, and the same resident history.
    #[test]
    fn snapshot_restore_recover_equals_live(
        points in proptest::collection::vec((0i32..48, 0i32..48), 2..8),
        ops in proptest::collection::vec(
            (any::<u16>(), 0u8..12, -2i32..3, -2i32..3),
            1..40
        ),
        params in (1u32..5, 1u32..3).prop_map(|(r, v)| RuleParams::new(r, v)),
    ) {
        use aim_core::depgraph::{EdgeMode, GraphOptions};
        use aim_store::{Snapshot, SnapshotBuilder};

        let space = Arc::new(GridSpace::new(64, 64));
        let db = Arc::new(Db::new());
        let initial: Vec<Point> = points.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let options = GraphOptions { edges: EdgeMode::Maintained, history: true };
        let mut g = DepGraph::new_with_options(
            Arc::clone(&space),
            params,
            Arc::clone(&db),
            &initial,
            options,
        ).unwrap();

        for (pick, kind, dx, dy) in ops {
            let a = AgentId(pick as u32 % g.len() as u32);
            let cur = g.pos(a);
            let moved = Point::new(cur.x + dx, cur.y + dy);
            if kind < 8 || g.step(a) == Step::ZERO {
                g.advance(&[(a, moved)]).unwrap();
            } else if kind == 11 {
                // Eviction is part of the churn, not just a final pass.
                g.evict_history().unwrap();
            } else {
                // A *legal* rollback: schedulers only ever squash to a
                // step at or above the global minimum (the eviction
                // invariant), so the generated target is clamped there.
                let lo = g.min_step().0;
                let target = Step(lo + pick as u32 % (g.step(a).0 - lo + 1));
                g.rollback(&[(a, target, moved)]).unwrap();
            }
        }
        g.evict_history().unwrap();

        let bytes = SnapshotBuilder::new().db(&db).to_bytes().unwrap();
        let snap = Snapshot::from_bytes(bytes.clone()).unwrap();
        let restored = Arc::new(snap.restore_db());
        let r = DepGraph::recover_with_options(
            Arc::clone(&space),
            params,
            Arc::clone(&restored),
            g.len(),
            options,
        ).unwrap();

        // Node-for-node, edge-for-edge identical…
        prop_assert_eq!(g.snapshot(), r.snapshot(), "recovered graph diverged");
        prop_assert_eq!(g.validate().is_ok(), r.validate().is_ok());
        // …with identical resident history and watermark…
        prop_assert_eq!(g.history_records(), r.history_records());
        prop_assert_eq!(g.history_floor(), r.history_floor());
        // …the eviction invariant intact (all resident steps ≥ floor, and
        // every step in [min_step, agent step] resident per agent)…
        let floor = r.history_floor();
        prop_assert!(floor <= r.min_step());
        for a in 0..r.len() as u32 {
            for s in r.min_step().0..=r.step(AgentId(a)).0 {
                prop_assert!(
                    r.history_at(AgentId(a), Step(s)).unwrap().is_some(),
                    "agent {} missing resident history at step {}", a, s
                );
            }
        }
        // …and the recovered adjacency still matches the rules oracle.
        let (blocked, coupled) = oracle_edges(&r);
        let live = r.snapshot();
        let mut live_blocked = live.blocked.clone();
        live_blocked.sort_unstable();
        let mut live_coupled = live.coupled.clone();
        live_coupled.sort_unstable();
        prop_assert_eq!(live_blocked, blocked);
        prop_assert_eq!(live_coupled, coupled);
        // Restoring and re-snapshotting is byte-for-byte stable.
        let again = SnapshotBuilder::new().db(&restored).to_bytes().unwrap();
        prop_assert_eq!(bytes.as_ref(), again.as_ref());
    }
}
