//! Property tests for the uniform-grid spatial index: exactness is
//! load-bearing. `within_units` decides scheduling (coupled/blocked), so
//! the grid-bucketed `pairs_within` must return **exactly** the brute-force
//! O(n²) oracle's pair set — on dense clouds, on points exactly on the
//! `units` boundary, and on negative/extreme coordinates where naive
//! arithmetic would overflow.

use aim_core::space::{GridSpace, Point, Space};
use proptest::prelude::*;

/// Brute-force oracle: every pair, exact check.
fn oracle_pairs(g: &GridSpace, pts: &[Point], units: u64) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for i in 0..pts.len() {
        for j in (i + 1)..pts.len() {
            if g.within_units(pts[i], pts[j], units) {
                out.push((i, j));
            }
        }
    }
    out
}

fn sorted(mut pairs: Vec<(usize, usize)>) -> Vec<(usize, usize)> {
    pairs.sort_unstable();
    pairs
}

/// Point clouds over wildly different extents, including the full i32
/// range (cell coordinates at the packing limits) and tight crowds (many
/// same-cell and adjacent-cell pairs).
fn arb_cloud() -> impl Strategy<Value = Vec<Point>> {
    let coord = prop_oneof![
        (-30i32..30, -30i32..30),
        (-5000i32..5000, -5000i32..5000),
        (i32::MIN..i32::MAX, i32::MIN..i32::MAX),
        // Hug the extremes so div_euclid cells sit on the packable edge.
        (i32::MAX - 40..i32::MAX, i32::MIN..i32::MIN + 40),
    ];
    proptest::collection::vec(coord, 0..60)
        .prop_map(|v| v.into_iter().map(|(x, y)| Point::new(x, y)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The grid-bucketed pair search equals the oracle's pair set.
    #[test]
    fn grid_pairs_equal_oracle(
        pts in arb_cloud(),
        units in prop_oneof![1u64..40, 1000u64..5000, Just(u64::MAX)],
    ) {
        let g = GridSpace::new(100, 140);
        prop_assert_eq!(
            sorted(g.pairs_within(&pts, units)),
            oracle_pairs(&g, &pts, units)
        );
    }

    /// Points *exactly* on the `units` boundary: seed a crowd with scaled
    /// 3-4-5 and axis-aligned offsets whose distances hit `units`
    /// exactly, where a float comparison (or an off-by-one cell walk)
    /// would flip pairs.
    #[test]
    fn grid_pairs_exact_on_boundary(
        base in proptest::collection::vec((-200i32..200, -200i32..200), 1..12),
        k in 1i32..9,
    ) {
        let units = 5 * k as u64;
        let mut pts = Vec::new();
        for (x, y) in base {
            let p = Point::new(x, y);
            pts.push(p);
            pts.push(Point::new(x + 3 * k, y + 4 * k)); // dist = 5k exactly
            pts.push(Point::new(x + 5 * k, y));         // dist = 5k exactly
            pts.push(Point::new(x + 5 * k + 1, y));     // dist = 5k + 1: out
            pts.push(Point::new(x - 3 * k, y + 4 * k));
        }
        let g = GridSpace::new(100, 140);
        let got = sorted(g.pairs_within(&pts, units));
        let want = oracle_pairs(&g, &pts, units);
        prop_assert_eq!(&got, &want);
        // Sanity: the construction really exercises the boundary.
        prop_assert!(
            pts.iter().any(|p| p.dist2_u128(pts[0]) == (units as u128).pow(2)),
            "no boundary pair generated"
        );
    }

    /// The dynamic index's query contract: after any insert/update
    /// sequence, every tracked point within `units` of any probe is in
    /// the query result (superset semantics).
    #[test]
    fn uniform_grid_query_is_superset(
        initial in proptest::collection::vec((-300i32..300, -300i32..300), 1..40),
        moves in proptest::collection::vec((any::<u16>(), -300i32..300, -300i32..300), 0..60),
        units in 1u64..40,
        probe in (-300i32..300, -300i32..300),
    ) {
        let g = GridSpace::new(100, 140);
        let mut idx = g.make_index(5).expect("grid is indexable");
        let mut pts: Vec<Point> = initial.iter().map(|&(x, y)| Point::new(x, y)).collect();
        for (i, p) in pts.iter().enumerate() {
            idx.insert(i as u32, *p);
        }
        for (pick, x, y) in moves {
            let a = pick as usize % pts.len();
            let to = Point::new(x, y);
            idx.update(a as u32, pts[a], to);
            pts[a] = to;
        }
        let center = Point::new(probe.0, probe.1);
        let mut got = Vec::new();
        idx.query(center, units, &mut got);
        for (i, p) in pts.iter().enumerate() {
            if g.within_units(center, *p, units) {
                prop_assert!(
                    got.contains(&(i as u32)),
                    "id {i} at {p:?} within {units} of {center:?} missing from query"
                );
            }
        }
    }
}
